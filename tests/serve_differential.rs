//! Differential tests for the `pgmine serve` query path: every served
//! answer must be bit-identical to post-filtering the mined pattern set
//! directly, and must not depend on which mining engine or PIL
//! representation produced that set.
//!
//! Three layers of agreement are checked:
//!
//! 1. the mined sets themselves are identical across the breadth-first
//!    and hybrid-DFS engines under every `--pil-repr` policy;
//! 2. the protocol transcript (raw response lines for a fixed workload)
//!    is byte-identical no matter which variant built the index;
//! 3. the reference transcript agrees field-by-field with answers
//!    recomputed from the raw mined set (supports, top-k ordering,
//!    prefix filtering, and the exponential naive match enumerator for
//!    overlap).
//!
//! A live TCP daemon is also driven over the same workload to pin the
//! socket path to the in-process `serve_line` results.

use perigap::core::dfs::mpp_dfs;
use perigap::core::mpp::{mpp, MppConfig};
use perigap::core::naive;
use perigap::core::trace::{Json, NoopObserver};
use perigap::core::{GapRequirement, MineOutcome, Pattern, PilRepr, ReprPolicy};
use perigap::seq::{Alphabet, Sequence};
use perigap::serve::{serve_line, Client};
use perigap::store::{LoadedOutcome, PatternIndex};
use std::sync::Arc;
use std::time::Duration;

const RHO: f64 = 0.001;
const N: usize = 10;

fn workload_input() -> (Sequence, GapRequirement) {
    let seq = Sequence::dna(&format!("{}AACCGGTT", "ACGT".repeat(30))).unwrap();
    let gap = GapRequirement::new(0, 2).unwrap();
    (seq, gap)
}

/// Every engine × PIL-representation combination under test, with a
/// label for failure messages.
fn mine_variants(seq: &Sequence, gap: GapRequirement) -> Vec<(String, MineOutcome)> {
    let mut out = Vec::new();
    for repr in [PilRepr::Auto, PilRepr::Sparse, PilRepr::Dense] {
        let config = MppConfig {
            pil_repr: ReprPolicy::of(repr),
            ..MppConfig::default()
        };
        out.push((
            format!("bfs/{repr:?}"),
            mpp(seq, gap, RHO, N, config.clone()).expect("bfs mine"),
        ));
        out.push((
            format!("dfs/{repr:?}"),
            mpp_dfs(seq, gap, RHO, N, config, 2).expect("dfs mine"),
        ));
    }
    out
}

/// Canonical form of a mined set for cross-engine comparison: sorted by
/// code string, ratios compared exactly (by bits).
fn canonical(outcome: &MineOutcome) -> Vec<(Vec<u8>, u128, u64)> {
    let mut rows: Vec<(Vec<u8>, u128, u64)> = outcome
        .frequent
        .iter()
        .map(|f| (f.pattern.codes().to_vec(), f.support, f.ratio.to_bits()))
        .collect();
    rows.sort();
    rows
}

fn build_index(outcome: &MineOutcome, gap: GapRequirement, seq: &Sequence) -> PatternIndex {
    let loaded = LoadedOutcome {
        outcome: outcome.clone(),
        gap,
        rho: RHO,
    };
    PatternIndex::build(&loaded, Alphabet::Dna, Some(seq))
}

/// The fixed query workload: one support probe per mined pattern, one
/// miss probe, top-k at several depths, prefix filters with and without
/// a row cap, and overlap ranges spanning start, middle, and full
/// sequence. Excludes `stats` (its `queries` counter is daemon state,
/// not index state) so transcripts stay comparable across variants.
fn workload(outcome: &MineOutcome, seq_len: usize) -> Vec<String> {
    let alphabet = Alphabet::Dna;
    let mut lines = Vec::new();
    for f in &outcome.frequent {
        lines.push(format!(
            "{{\"q\": \"support\", \"pattern\": \"{}\"}}",
            f.pattern.display(&alphabet)
        ));
    }
    // Longer than the mined `n`, so guaranteed absent.
    lines.push(format!(
        "{{\"q\": \"support\", \"pattern\": \"{}\"}}",
        "A".repeat(N + 1)
    ));
    for k in [1usize, 3, 1_000] {
        lines.push(format!("{{\"q\": \"topk\", \"k\": {k}}}"));
    }
    for prefix in ["", "A", "AC", "GT", "TTT"] {
        lines.push(format!(
            "{{\"q\": \"prefix\", \"prefix\": \"{prefix}\", \"limit\": 1000000}}"
        ));
    }
    lines.push("{\"q\": \"prefix\", \"prefix\": \"\", \"limit\": 2}".to_string());
    for (a, b) in [(1usize, 4), (5, 8), (10, 10), (1, seq_len), (20, 24)] {
        lines.push(format!(
            "{{\"q\": \"overlap\", \"a\": {a}, \"b\": {b}, \"limit\": 1000000}}"
        ));
    }
    lines
}

fn transcript(index: &PatternIndex, lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|line| {
            let served = serve_line(index, "memory:differential", 0, line);
            assert!(
                served.ok,
                "workload line must serve: {line} -> {}",
                served.response
            );
            served.response
        })
        .collect()
}

/// Parse a rows response (`topk`/`prefix`/`overlap`) into
/// `(total, [(codes, support, ratio_bits)])`.
fn parse_rows(response: &str) -> (usize, Vec<(Vec<u8>, u128, u64)>) {
    let json = Json::parse(response).expect("valid response JSON");
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
    let total = json
        .get("total")
        .and_then(Json::as_usize)
        .expect("total field");
    let rows = json
        .get("patterns")
        .and_then(Json::as_arr)
        .expect("patterns array")
        .iter()
        .map(|row| {
            let text = row.get("pattern").and_then(Json::as_str).expect("pattern");
            let codes = Pattern::parse(text, &Alphabet::Dna)
                .expect("served pattern parses")
                .codes()
                .to_vec();
            let support = row.get("support").and_then(Json::as_u128).expect("support");
            let ratio = row.get("ratio").and_then(Json::as_f64).expect("ratio");
            (codes, support, ratio.to_bits())
        })
        .collect();
    (total, rows)
}

/// Mined set sorted the way `topk`/`overlap` rank rows:
/// `(support desc, len asc, codes asc)`.
fn by_support(outcome: &MineOutcome) -> Vec<(Vec<u8>, u128, u64)> {
    let mut rows: Vec<(Vec<u8>, u128, u64)> = canonical(outcome);
    rows.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then(a.0.len().cmp(&b.0.len()))
            .then(a.0.cmp(&b.0))
    });
    rows
}

#[test]
fn engines_and_pil_reprs_mine_identical_sets() {
    let (seq, gap) = workload_input();
    let variants = mine_variants(&seq, gap);
    let reference = canonical(&variants[0].1);
    assert!(
        reference.len() >= 4,
        "workload must mine a non-trivial set, got {}",
        reference.len()
    );
    for (label, outcome) in &variants[1..] {
        assert_eq!(
            canonical(outcome),
            reference,
            "variant {label} mined a different set than {}",
            variants[0].0
        );
    }
}

#[test]
fn every_variant_serves_a_byte_identical_transcript() {
    let (seq, gap) = workload_input();
    let variants = mine_variants(&seq, gap);
    let lines = workload(&variants[0].1, seq.len());
    let reference = transcript(&build_index(&variants[0].1, gap, &seq), &lines);
    for (label, outcome) in &variants[1..] {
        let got = transcript(&build_index(outcome, gap, &seq), &lines);
        for (line, (want, have)) in lines.iter().zip(reference.iter().zip(&got)) {
            assert_eq!(have, want, "variant {label} diverged on {line}");
        }
    }
}

#[test]
fn served_support_and_topk_and_prefix_equal_post_filtering() {
    let (seq, gap) = workload_input();
    let outcome = mpp(&seq, gap, RHO, N, MppConfig::default()).expect("mine");
    let index = build_index(&outcome, gap, &seq);
    let alphabet = Alphabet::Dna;

    // Support: every mined pattern answers with its exact support and
    // ratio; an absent pattern answers found=false.
    for f in &outcome.frequent {
        let line = format!(
            "{{\"q\": \"support\", \"pattern\": \"{}\"}}",
            f.pattern.display(&alphabet)
        );
        let json = Json::parse(&serve_line(&index, "b", 0, &line).response).unwrap();
        assert_eq!(json.get("found").and_then(Json::as_bool), Some(true));
        assert_eq!(
            json.get("support").and_then(Json::as_u128),
            Some(f.support),
            "support mismatch for {:?}",
            f.pattern.codes()
        );
        let ratio = json.get("ratio").and_then(Json::as_f64).expect("ratio");
        assert_eq!(ratio.to_bits(), f.ratio.to_bits());
    }
    let miss = format!(
        "{{\"q\": \"support\", \"pattern\": \"{}\"}}",
        "A".repeat(N + 1)
    );
    let json = Json::parse(&serve_line(&index, "b", 0, &miss).response).unwrap();
    assert_eq!(json.get("found").and_then(Json::as_bool), Some(false));

    // Top-k: the first k of the mined set under the rank order, with
    // total reporting the row count actually returned.
    let ranked = by_support(&outcome);
    for k in [1usize, 3, ranked.len(), ranked.len() + 10] {
        let line = format!("{{\"q\": \"topk\", \"k\": {k}}}");
        let (total, rows) = parse_rows(&serve_line(&index, "b", 0, &line).response);
        let want: Vec<_> = ranked.iter().take(k).cloned().collect();
        assert_eq!(rows, want, "topk k={k}");
        assert_eq!(total, want.len(), "topk k={k} total");
    }

    // Prefix: lexicographic post-filter of the mined set; a row cap
    // truncates rows but never the total.
    let lex = canonical(&outcome);
    for prefix in ["", "A", "AC", "GT", "TTT"] {
        let codes = if prefix.is_empty() {
            Vec::new()
        } else {
            Pattern::parse(prefix, &alphabet).unwrap().codes().to_vec()
        };
        let line = format!("{{\"q\": \"prefix\", \"prefix\": \"{prefix}\", \"limit\": 1000000}}");
        let (total, rows) = parse_rows(&serve_line(&index, "b", 0, &line).response);
        let want: Vec<_> = lex
            .iter()
            .filter(|(c, _, _)| c.starts_with(&codes))
            .cloned()
            .collect();
        assert_eq!(rows, want, "prefix {prefix:?}");
        assert_eq!(total, want.len(), "prefix {prefix:?} total");
    }
    let capped = "{\"q\": \"prefix\", \"prefix\": \"\", \"limit\": 2}";
    let (total, rows) = parse_rows(&serve_line(&index, "b", 0, capped).response);
    assert_eq!(rows, lex.iter().take(2).cloned().collect::<Vec<_>>());
    assert_eq!(total, lex.len());
}

#[test]
fn served_overlap_equals_the_naive_match_enumerator() {
    let (seq, gap) = workload_input();
    let outcome = mpp(&seq, gap, RHO, N, MppConfig::default()).expect("mine");
    let index = build_index(&outcome, gap, &seq);

    // Oracle: a pattern overlaps [a, b] iff the exponential enumerator
    // finds a match whose [first, last] offset window intersects it.
    let ranked = by_support(&outcome);
    let matches: Vec<(Vec<u8>, Vec<Vec<usize>>)> = outcome
        .frequent
        .iter()
        .map(|f| {
            (
                f.pattern.codes().to_vec(),
                naive::enumerate_matches(&seq, gap, &f.pattern),
            )
        })
        .collect();
    for (a, b) in [(1usize, 4), (5, 8), (10, 10), (1, seq.len()), (20, 24)] {
        let line = format!("{{\"q\": \"overlap\", \"a\": {a}, \"b\": {b}, \"limit\": 1000000}}");
        let (total, rows) = parse_rows(&serve_line(&index, "b", 0, &line).response);
        let want: Vec<_> = ranked
            .iter()
            .filter(|(codes, _, _)| {
                let occs = &matches
                    .iter()
                    .find(|(c, _)| c == codes)
                    .expect("pattern enumerated")
                    .1;
                occs.iter().any(|m| {
                    let (first, last) = (m[0], *m.last().unwrap());
                    first <= b && last >= a
                })
            })
            .cloned()
            .collect();
        assert_eq!(rows, want, "overlap [{a}, {b}]");
        assert_eq!(total, want.len(), "overlap [{a}, {b}] total");
    }
}

#[test]
fn tcp_daemon_matches_in_process_serving() {
    let (seq, gap) = workload_input();
    let outcome = mpp(&seq, gap, RHO, N, MppConfig::default()).expect("mine");
    let index = build_index(&outcome, gap, &seq);
    let lines = workload(&outcome, seq.len());
    let want = transcript(&index, &lines);

    let handle = perigap::serve::serve(
        Arc::new(index),
        "memory:differential".to_string(),
        "127.0.0.1:0",
        NoopObserver,
    )
    .expect("daemon binds loopback");
    let mut client =
        Client::connect(handle.addr(), Duration::from_secs(10)).expect("client connects");
    for (line, want) in lines.iter().zip(&want) {
        let got = client.roundtrip(line).expect("roundtrip");
        assert_eq!(&got, want, "socket answer diverged on {line}");
    }
    let bye = client
        .roundtrip("{\"q\": \"shutdown\"}")
        .expect("shutdown roundtrip");
    assert!(bye.contains("\"stopping\": true"), "{bye}");
    handle.shutdown();
}
