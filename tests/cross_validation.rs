//! Cross-validation of the four miners and the two support counters on
//! randomized inputs: every algorithm must agree on the frequent set,
//! and every reported support must match the naive reference.

use perigap::core::adaptive::adaptive_mpp;
use perigap::core::enumerate::enumerate;
use perigap::core::naive::support_dp;
use perigap::prelude::*;
use perigap::seq::gen::iid::{uniform, weighted};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_same_outcomes(a: &MineOutcome, b: &MineOutcome, label: &str) {
    assert_eq!(
        a.frequent.len(),
        b.frequent.len(),
        "{label}: set sizes differ"
    );
    for f in &a.frequent {
        let other = b
            .get(&f.pattern)
            .unwrap_or_else(|| panic!("{label}: missing {:?}", f.pattern));
        assert_eq!(other.support, f.support, "{label}: support differs");
    }
}

#[test]
fn all_miners_agree_across_seeds() {
    for seed in 0..6 {
        let seq = uniform(&mut StdRng::seed_from_u64(seed), Alphabet::Dna, 120);
        let gap = GapRequirement::new(1, 3).unwrap();
        let rho = 0.002;
        let config = MppConfig::default();

        let worst = mpp(&seq, gap, rho, gap.l1(seq.len()), config.clone()).unwrap();
        let auto = mppm(&seq, gap, rho, 4, config.clone()).unwrap();
        let adapt = adaptive_mpp(&seq, gap, rho, 5, config.clone()).unwrap();
        // The enumeration baseline needs a level cap to stay tractable;
        // compare the sets restricted to that depth.
        let depth = worst.longest_len().max(4);
        let capped = MppConfig {
            max_level: Some(depth),
            ..config
        };
        let baseline = enumerate(&seq, gap, rho, capped.clone(), u128::MAX).unwrap();
        let worst_capped = mpp(&seq, gap, rho, gap.l1(seq.len()), capped.clone()).unwrap();

        assert_same_outcomes(&worst, &auto, &format!("seed {seed}: worst vs mppm"));
        assert_same_outcomes(
            &worst,
            &adapt.outcome,
            &format!("seed {seed}: worst vs adaptive"),
        );
        assert_same_outcomes(
            &worst_capped,
            &baseline,
            &format!("seed {seed}: worst vs enum"),
        );
    }
}

#[test]
fn supports_match_naive_reference() {
    for seed in 10..14 {
        let seq = weighted(
            &mut StdRng::seed_from_u64(seed),
            Alphabet::Dna,
            150,
            &[0.35, 0.15, 0.15, 0.35],
        );
        let gap = GapRequirement::new(2, 4).unwrap();
        let outcome = mppm(&seq, gap, 0.001, 3, MppConfig::default()).unwrap();
        assert!(!outcome.frequent.is_empty(), "seed {seed}: nothing mined");
        for f in &outcome.frequent {
            assert_eq!(
                f.support,
                support_dp(&seq, gap, &f.pattern),
                "seed {seed}: support mismatch for {:?}",
                f.pattern
            );
        }
    }
}

#[test]
fn frequent_set_shrinks_with_rho() {
    let seq = uniform(&mut StdRng::seed_from_u64(99), Alphabet::Dna, 200);
    let gap = GapRequirement::new(1, 2).unwrap();
    let mut last = usize::MAX;
    for rho in [0.0005, 0.001, 0.002, 0.004, 0.01] {
        let outcome = mppm(&seq, gap, rho, 3, MppConfig::default()).unwrap();
        assert!(outcome.frequent.len() <= last, "rho {rho} grew the set");
        last = outcome.frequent.len();
    }
}

#[test]
fn theorem1_inequality_holds_on_mined_patterns() {
    // For every mined frequent pattern P and every sub-pattern Q of P:
    // sup(Q) ≥ sup(P)/W^d (Theorem 1), verified with real supports.
    let seq = uniform(&mut StdRng::seed_from_u64(7), Alphabet::Dna, 120);
    let gap = GapRequirement::new(1, 3).unwrap();
    let w = gap.flexibility() as u128;
    let outcome = mppm(&seq, gap, 0.001, 3, MppConfig::default()).unwrap();
    for f in outcome.frequent.iter().filter(|f| f.len() >= 4) {
        let l = f.len();
        for d in 1..l.min(4) {
            for i in 1..=(d + 1) {
                let q = f.pattern.sub_pattern(i, l - d);
                let sup_q = support_dp(&seq, gap, &q);
                assert!(
                    sup_q * w.pow(d as u32) >= f.support,
                    "Theorem 1 violated: sup({:?})={} vs sup(P)={} / W^{d}",
                    q,
                    sup_q,
                    f.support
                );
            }
        }
    }
}

#[test]
fn protein_alphabet_end_to_end() {
    // The miner is alphabet-generic: run the whole stack over the
    // 20-letter alphabet.
    let seq = uniform(&mut StdRng::seed_from_u64(8), Alphabet::Protein, 300);
    let gap = GapRequirement::new(1, 2).unwrap();
    let outcome = mppm(&seq, gap, 0.00001, 3, MppConfig::default()).unwrap();
    for f in &outcome.frequent {
        assert_eq!(f.support, support_dp(&seq, gap, &f.pattern));
    }
}

#[test]
fn custom_alphabet_end_to_end() {
    let alphabet = Alphabet::custom(b"01").unwrap();
    let text = "0110".repeat(50);
    let seq = Sequence::from_str_checked(alphabet, &text).unwrap();
    let gap = GapRequirement::new(0, 1).unwrap();
    let outcome = mppm(&seq, gap, 0.01, 3, MppConfig::default()).unwrap();
    assert!(!outcome.frequent.is_empty());
    for f in &outcome.frequent {
        assert_eq!(f.support, support_dp(&seq, gap, &f.pattern));
    }
}
