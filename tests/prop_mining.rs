//! Property-based tests of the mining invariants on random sequences,
//! gap requirements and thresholds.

use perigap::core::counts::{n_by_position_dp, OffsetCounts};
use perigap::core::naive::{enumerate_matches, support_dp};
use perigap::core::pil::Pil;
use perigap::prelude::*;
use proptest::prelude::*;

/// Strategy: a small DNA sequence as codes.
fn dna_codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, 5..max_len)
}

/// Strategy: a small gap requirement.
fn gap_req() -> impl Strategy<Value = (usize, usize)> {
    (0usize..4, 0usize..4).prop_map(|(n, w)| (n, n + w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pil_support_matches_dp((codes, (n, m)) in (dna_codes(60), gap_req())) {
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        for level in 1..=3usize {
            let pils = Pil::build_all(&seq, gap, level);
            for (pattern, pil) in &pils {
                prop_assert_eq!(pil.support(), support_dp(&seq, gap, pattern));
            }
        }
    }

    #[test]
    fn dp_support_matches_enumeration((codes, (n, m)) in (dna_codes(30), gap_req())) {
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        // Check a handful of fixed short patterns.
        for text in ["A", "AT", "GC", "AAA", "ACG", "TTT"] {
            let p = Pattern::parse(text, &Alphabet::Dna).unwrap();
            prop_assert_eq!(
                support_dp(&seq, gap, &p),
                enumerate_matches(&seq, gap, &p).len() as u128
            );
        }
    }

    #[test]
    fn n_l_closed_forms_match_dp((len, (n, m)) in (5usize..50, gap_req())) {
        let gap = GapRequirement::new(n, m).unwrap();
        let counts = OffsetCounts::new(len, gap);
        for l in 1..=counts.l2() + 1 {
            prop_assert_eq!(counts.n(l), n_by_position_dp(len, gap, l), "l = {}", l);
        }
    }

    #[test]
    fn sum_of_pattern_supports_equals_n_l((codes, (n, m)) in (dna_codes(50), gap_req())) {
        // Every offset sequence spells exactly one pattern, so supports
        // over all patterns of a length must sum to N_l.
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        let counts = OffsetCounts::new(seq.len(), gap);
        for level in 1..=3usize {
            let pils = Pil::build_all(&seq, gap, level);
            let total: u128 = pils.values().map(Pil::support).sum();
            prop_assert_eq!(
                total,
                counts.n(level).to_u128().unwrap(),
                "level {}", level
            );
        }
    }

    #[test]
    fn mined_patterns_meet_threshold((codes, (n, m)) in (dna_codes(80), gap_req())) {
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        let rho = 0.05;
        if seq.len() < gap.min_span(3) {
            return Ok(());
        }
        let outcome = mpp(&seq, gap, rho, 8, MppConfig::default()).unwrap();
        let counts = OffsetCounts::new(seq.len(), gap);
        for f in &outcome.frequent {
            // Exact check: sup · 1 ≥ rho · N_l, via integer math.
            let n_l = counts.n(f.len()).to_u128().unwrap();
            // rho = 1/20 exactly.
            prop_assert!(f.support * 20 >= n_l, "pattern below threshold");
            prop_assert_eq!(f.support, support_dp(&seq, gap, &f.pattern));
        }
    }

    #[test]
    fn mppm_never_misses_what_worst_case_finds((codes, (n, m)) in (dna_codes(60), gap_req())) {
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        if seq.len() < gap.min_span(3) {
            return Ok(());
        }
        let rho = 0.02;
        let worst = mpp(&seq, gap, rho, gap.l1(seq.len()), MppConfig::default()).unwrap();
        let auto = mppm(&seq, gap, rho, 2, MppConfig::default()).unwrap();
        prop_assert_eq!(auto.frequent.len(), worst.frequent.len());
        for f in &worst.frequent {
            prop_assert!(auto.get(&f.pattern).is_some());
        }
    }

    #[test]
    fn em_is_within_bounds((codes, (n, m)) in (dna_codes(60), gap_req())) {
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        let w = gap.flexibility() as u64;
        for em_m in 1..=3usize {
            let em = perigap::core::em::compute_em(&seq, gap, em_m);
            prop_assert!(em <= w.pow(em_m as u32));
        }
    }
}
