//! Full-pipeline integration: FASTA in, mined report out, exercising
//! every crate boundary (seq → core → analysis → math).

use perigap::analysis::casestudy::{run_case_study, CaseStudyConfig};
use perigap::analysis::nullmodel::{enrichment, rank_by_enrichment};
use perigap::analysis::report::TextTable;
use perigap::prelude::*;
use perigap::seq::fasta::{format_fasta, parse_fasta, FastaRecord};
use perigap::seq::fragment::fragments;
use perigap::seq::gen::iid::weighted;
use perigap::seq::gen::periodic::{plant_periodic, PeriodicMotif};
use perigap::seq::oscillation::correlation_spectrum;
use perigap::seq::PackedDna;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a genome, round-trip it through FASTA and 2-bit packing, then
/// mine and analyze it.
#[test]
fn fasta_to_report_pipeline() {
    // 1. Generate.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut genome = weighted(&mut rng, Alphabet::Dna, 6_000, &[0.33, 0.17, 0.17, 0.33]);
    let spec = PeriodicMotif {
        motif: vec![0, 3, 0, 3, 0, 3],
        gap_min: 9,
        gap_max: 11,
        occurrences: 80,
    };
    plant_periodic(&mut rng, &mut genome, &spec);

    // 2. FASTA round trip.
    let records = vec![FastaRecord {
        id: "synthetic".into(),
        description: Some("integration pipeline".into()),
        sequence: genome.clone(),
    }];
    let text = format_fasta(&records, 70);
    let parsed = parse_fasta(&text, &Alphabet::Dna).unwrap();
    assert_eq!(parsed[0].sequence, genome);

    // 3. Packed storage round trip.
    let packed = PackedDna::from_sequence(&genome);
    assert_eq!(packed.to_sequence(), genome);
    assert!(packed.payload_bytes() <= genome.len() / 4 + 1);

    // 4. Oscillation scan finds the planted period band.
    let spectrum = correlation_spectrum(&genome, 0, 3, 5, 20);
    let (peak, _) = spectrum.peak().unwrap();
    assert!((9..=13).contains(&peak), "A->T peak at {peak}");

    // 5. Mine.
    let gap = GapRequirement::new(9, 11).unwrap();
    let outcome = mppm(&genome, gap, 0.0002, 4, MppConfig::default()).unwrap();
    assert!(!outcome.frequent.is_empty());

    // 6. Null-model ranking puts a planted-style pattern above chance.
    let counts = OffsetCounts::new(genome.len(), gap);
    let planted = Pattern::parse("ATATA", &Alphabet::Dna).unwrap();
    let sup = perigap::core::naive::support_dp(&genome, gap, &planted);
    assert!(
        enrichment(&genome, &counts, &planted, sup) > 1.2,
        "planted ATATA should beat the i.i.d. expectation"
    );
    let mined: Vec<(&Pattern, u128)> = outcome
        .frequent
        .iter()
        .map(|f| (&f.pattern, f.support))
        .collect();
    let ranked = rank_by_enrichment(&genome, &counts, mined);
    assert_eq!(ranked.len(), outcome.frequent.len());
    assert!(ranked.windows(2).all(|w| w[0].3 >= w[1].3));

    // 7. Report renders.
    let mut table = TextTable::new(&["pattern", "sup", "enrichment"]);
    for (p, sup, _, e) in ranked.iter().take(5) {
        table.row(&[
            p.display(&Alphabet::Dna),
            sup.to_string(),
            format!("{e:.2}"),
        ]);
    }
    let rendered = table.render();
    assert!(rendered.lines().count() >= 3);
}

#[test]
fn fragmented_case_study_pipeline() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut genome = weighted(&mut rng, Alphabet::Dna, 9_000, &[0.32, 0.18, 0.18, 0.32]);
    for _ in 0..20 {
        let spec = PeriodicMotif {
            motif: vec![0; 10],
            gap_min: 10,
            gap_max: 12,
            occurrences: 1,
        };
        plant_periodic(&mut rng, &mut genome, &spec);
    }
    let config = CaseStudyConfig {
        fragment_width: 3_000,
        min_fragment: 1_500,
        gap: GapRequirement::new(10, 12).unwrap(),
        rho: 0.0001,
        m: 4,
        focal_length: 6,
    };
    let report = run_case_study("it", &genome, &config).unwrap();
    assert_eq!(report.fragments.len(), 3);
    // Manual fragmenting gives the same pieces the study used.
    let frags = fragments(&genome, 3_000, 1_500);
    assert_eq!(frags.len(), 3);
    assert_eq!(frags[1].start, 3_000);
    // Per-fragment mining agrees with a direct run on that fragment.
    let direct = mppm(
        &frags[0].sequence,
        config.gap,
        config.rho,
        config.m,
        MppConfig::default(),
    )
    .unwrap();
    assert_eq!(report.fragments[0].longest, direct.longest_len());
    assert_eq!(
        report.fragments[0].focal_patterns.len(),
        direct.count_of_length(config.focal_length)
    );
}

#[test]
fn mining_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(3);
    let genome = weighted(&mut rng, Alphabet::Dna, 2_000, &[0.3, 0.2, 0.2, 0.3]);
    let gap = GapRequirement::new(9, 12).unwrap();
    let a = mppm(&genome, gap, 0.0003, 4, MppConfig::default()).unwrap();
    let b = mppm(&genome, gap, 0.0003, 4, MppConfig::default()).unwrap();
    assert_eq!(a.frequent.len(), b.frequent.len());
    for (x, y) in a.frequent.iter().zip(&b.frequent) {
        assert_eq!(x.pattern, y.pattern);
        assert_eq!(x.support, y.support);
    }
    assert_eq!(a.stats.n_used, b.stats.n_used);
    assert_eq!(a.stats.em, b.stats.em);
}
