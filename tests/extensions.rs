//! Integration coverage of the extension modules through the facade
//! crate: every related-work comparator and engineering extension is
//! exercised against the reference miner on one shared input.

use perigap::core::asynchronous::{longest_valid_subsequence, mine_singletons, CycleTemplate};
use perigap::core::naive::support_dp;
use perigap::core::rigid::{rigid_mine, RigidConfig};
use perigap::prelude::*;
use perigap::seq::gen::iid::weighted;
use perigap::seq::gen::periodic::{plant_periodic, PeriodicMotif};
use perigap::seq::translate::{find_orfs, translate};
use perigap::store::{load_outcome, save_outcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn shared_input() -> (Sequence, GapRequirement, f64) {
    let mut rng = StdRng::seed_from_u64(31415);
    let mut seq = weighted(&mut rng, Alphabet::Dna, 1_500, &[0.3, 0.2, 0.2, 0.3]);
    let spec = PeriodicMotif {
        motif: vec![2, 0, 3, 1],
        gap_min: 4,
        gap_max: 6,
        occurrences: 90,
    };
    plant_periodic(&mut rng, &mut seq, &spec);
    (seq, GapRequirement::new(4, 6).unwrap(), 0.0005)
}

#[test]
fn parallel_equals_serial_on_shared_input() {
    let (seq, gap, rho) = shared_input();
    let serial = mpp(&seq, gap, rho, 12, MppConfig::default()).unwrap();
    let parallel = mpp_parallel(&seq, gap, rho, 12, MppConfig::default(), 4).unwrap();
    assert_eq!(serial.frequent.len(), parallel.frequent.len());
    for (a, b) in serial.frequent.iter().zip(&parallel.frequent) {
        assert_eq!(a.pattern, b.pattern);
        assert_eq!(a.support, b.support);
    }
}

#[test]
fn uniform_profile_equals_reference_on_shared_input() {
    let (seq, gap, rho) = shared_input();
    let reference = mpp(&seq, gap, rho, 10, MppConfig::default()).unwrap();
    let profile = GapProfile::uniform(gap, 14);
    let mined = mine_with_profile(&seq, &profile, rho, 10, 3).unwrap();
    assert_eq!(reference.frequent.len(), mined.frequent.len());
    for f in &reference.frequent {
        assert_eq!(mined.get(&f.pattern).unwrap().support, f.support);
    }
}

#[test]
fn rigid_baseline_splits_flexible_support() {
    let (seq, gap, _) = shared_input();
    let motif = Pattern::parse("GATC", &Alphabet::Dna).unwrap();
    let flexible = support_dp(&seq, gap, &motif);
    let rigid = rigid_mine(
        &seq,
        RigidConfig {
            density_l: 2,
            density_w: 7,
            min_support: 3,
            min_solids: 4,
            max_solids: 4,
        },
    )
    .unwrap();
    let best_layout = rigid
        .iter()
        .filter(|r| {
            let solids: Vec<u8> = r.pattern.slots().iter().flatten().copied().collect();
            solids == [2, 0, 3, 1]
        })
        .map(|r| r.support as u128)
        .max()
        .unwrap_or(0);
    assert!(
        flexible > best_layout,
        "flexible gaps pool ({flexible}) what rigid layouts split (best {best_layout})"
    );
    // Sanity: the sum over all layouts is at least the flexible count
    // is NOT generally true (layout combinations multiply), but each
    // layout's support is a lower bound contributor.
    assert!(
        best_layout > 0,
        "the planted motif has at least one rigid layout"
    );
}

#[test]
fn asynchronous_model_needs_contiguity_flexible_model_does_not() {
    // Periodic A's at *varying* spacing 5–7: a fixed-period template
    // cannot chain them, the flexible-gap miner counts them all.
    let mut codes = vec![1u8; 600];
    let mut pos = 3usize;
    let mut step = 0usize;
    while pos < 590 {
        codes[pos] = 0;
        pos += 6 + (step % 3) - 1; // steps 5, 6, 7, 5, 6, 7 …
        step += 1;
    }
    let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
    // Flexible-gap support of AAA with gap [4,6] (steps 5..7).
    let gap = GapRequirement::new(4, 6).unwrap();
    let aaa = Pattern::parse("AAA", &Alphabet::Dna).unwrap();
    let flexible = support_dp(&seq, gap, &aaa);
    assert!(
        flexible > 50,
        "flexible model sees the varying-period chain: {flexible}"
    );
    // Fixed-period template (p = 6) only catches stretches where the
    // spacing happens to be exactly 6.
    let template = CycleTemplate::singleton(6, 0, 0);
    let best = longest_valid_subsequence(&seq, &template, 2, 3)
        .map(|v| v.repetitions)
        .unwrap_or(0);
    assert!(
        best < 20,
        "fixed-period model breaks on varying spacing (best {best})"
    );
    // But the singleton miner still works on truly fixed-period data.
    let fixed = Sequence::dna(&"ATTTTT".repeat(40)).unwrap();
    let mined = mine_singletons(&fixed, 6, 3, 2, 10).unwrap();
    assert!(mined
        .iter()
        .any(|(t, v)| t.solid_count() == 1 && v.repetitions >= 39));
}

#[test]
fn translation_bridges_to_protein_mining() {
    // Build a coding region whose protein has a 7-residue periodicity,
    // then mine the protein side — the paper's suggested workflow for
    // its α-helix explanation.
    let unit_protein = "LKDAQGE"; // 7 residues
                                  // Reverse-translate with arbitrary codons.
    let codon_for = |aa: char| match aa {
        'L' => "CTG",
        'K' => "AAA",
        'D' => "GAT",
        'A' => "GCT",
        'Q' => "CAA",
        'G' => "GGT",
        'E' => "GAA",
        _ => unreachable!(),
    };
    let mut dna = String::from("ATG");
    for _ in 0..12 {
        for aa in unit_protein.chars() {
            dna.push_str(codon_for(aa));
        }
    }
    dna.push_str("TAA");
    let gene = Sequence::dna(&dna).unwrap();
    let orfs = find_orfs(&gene, 10);
    assert_eq!(orfs.len(), 1);
    let protein = translate(&gene, 0, true);
    assert_eq!(protein.len(), 1 + 12 * 7); // M + repeats
                                           // Mine the protein at the repeat period: gap [6,6] (7 residues apart).
    let gap = GapRequirement::new(6, 6).unwrap();
    let outcome = mppm(&protein, gap, 0.05, 2, MppConfig::default()).unwrap();
    assert!(
        outcome.longest_len() >= 5,
        "periodic residues should chain across repeats: longest {}",
        outcome.longest_len()
    );
}

#[test]
fn store_roundtrip_through_facade() {
    let (seq, gap, rho) = shared_input();
    let outcome = mppm(&seq, gap, rho, 3, MppConfig::default()).unwrap();
    let buf = save_outcome(Vec::new(), &outcome, gap, rho).unwrap();
    let loaded = load_outcome(&buf[..]).unwrap();
    assert_eq!(loaded.outcome.frequent.len(), outcome.frequent.len());
    // The reloaded outcome passes the independent audit.
    let problems = perigap::core::verify::verify_outcome(&seq, gap, rho, &loaded.outcome);
    assert!(problems.is_empty(), "{problems:?}");
}
