//! Differential property tests for corpus-scale sharded mining: the
//! mmap-backed, per-sequence shard fan-out (with and without a
//! checkpoint pause/resume in the middle) must agree bit-for-bit with
//! the in-process [`mine_collection`] reference across engines, PIL
//! representations, thread counts and kill points — plus typed-error
//! fault coverage for a truncated corpus file, a corrupt manifest, and
//! a checkpoint directory that belongs to a different corpus.

use perigap::core::corpus::{
    mine_corpus, CheckpointConfig, Corpus, CorpusMineConfig, ShardEngine, MANIFEST_FILE,
};
use perigap::core::mpp::MppConfig;
use perigap::prelude::*;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Fresh per-case scratch directory, removed on drop. Proptest runs
/// many cases per test so each gets a unique suffix.
struct Scratch(PathBuf);

static CASE: AtomicUsize = AtomicUsize::new(0);

impl Scratch {
    fn new(label: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "perigap-prop-corpus-{label}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Strategy: a named collection of 2–5 sequences over DNA or protein
/// (the two corpus alphabets), drawn from a 3-code sub-alphabet so
/// frequent patterns actually occur, with lengths straddling the
/// shortest-mineable boundary (some sequences too short to vote).
fn collection() -> impl Strategy<Value = Vec<(String, Sequence)>> {
    (any::<bool>(), 2usize..=5).prop_flat_map(|(protein, count)| {
        proptest::collection::vec(proptest::collection::vec(0u8..3, 4..90), count).prop_map(
            move |all| {
                all.into_iter()
                    .enumerate()
                    .map(|(i, codes)| {
                        let alphabet = if protein {
                            Alphabet::Protein
                        } else {
                            Alphabet::Dna
                        };
                        (
                            format!("seq-{i}"),
                            Sequence::from_codes(alphabet, codes).unwrap(),
                        )
                    })
                    .collect::<Vec<(String, Sequence)>>()
            },
        )
    })
}

/// Strategy: a gap requirement including the degenerate `N == M`.
fn gap_req() -> impl Strategy<Value = GapRequirement> {
    (0usize..3, 0usize..3).prop_map(|(n, w)| GapRequirement::new(n, n + w).unwrap())
}

fn config_grid(
    engine: ShardEngine,
    repr: PilRepr,
    threads: usize,
    min_sequences: usize,
    checkpoint: Option<CheckpointConfig>,
) -> CorpusMineConfig {
    CorpusMineConfig {
        n: 10,
        min_sequences,
        threads,
        engine,
        mpp: MppConfig {
            pil_repr: ReprPolicy::of(repr),
            ..MppConfig::default()
        },
        checkpoint,
    }
}

fn reference(
    seqs: &[(String, Sequence)],
    gap: GapRequirement,
    rho: f64,
    min_sequences: usize,
) -> CollectionOutcome {
    let bare: Vec<Sequence> = seqs.iter().map(|(_, s)| s.clone()).collect();
    mine_collection(&bare, gap, rho, min_sequences, 10, MppConfig::default()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sharded mmap mine agrees with `mine_collection` across the
    /// engine × PIL-representation × thread-count grid.
    #[test]
    fn corpus_agrees_with_multiseq(
        seqs in collection(),
        gap in gap_req(),
        rho in prop_oneof![Just(0.01), Just(0.05), Just(0.2)],
        min_sequences in 1usize..=3,
        engine in prop_oneof![Just(ShardEngine::Bfs), Just(ShardEngine::Dfs)],
        repr in prop_oneof![Just(PilRepr::Auto), Just(PilRepr::Sparse), Just(PilRepr::Dense)],
        threads in 1usize..=3,
    ) {
        let scratch = Scratch::new("agree");
        let path = scratch.path("c.pgco");
        Corpus::write(&path, &seqs).unwrap();
        let corpus = Arc::new(Corpus::open(&path).unwrap());
        let want = reference(&seqs, gap, rho, min_sequences);
        let config = config_grid(engine, repr, threads, min_sequences, None);
        let got = mine_corpus(&corpus, gap, rho, &config).unwrap();
        prop_assert_eq!(&got.outcome, &want);
        prop_assert_eq!(got.stats.shards, seqs.len());
        prop_assert_eq!(got.stats.restored_shards, 0);
    }

    /// Pausing after a random number of shards and resuming (possibly
    /// under a different engine-side thread count) still reproduces the
    /// reference bit-for-bit, and the resumed run restores rather than
    /// re-mines the completed shards.
    #[test]
    fn corpus_resume_after_kill_point_is_bit_identical(
        seqs in collection(),
        gap in gap_req(),
        rho in prop_oneof![Just(0.01), Just(0.1)],
        engine in prop_oneof![Just(ShardEngine::Bfs), Just(ShardEngine::Dfs)],
        kill_after in 0usize..=4,
        resume_threads in 1usize..=3,
    ) {
        let scratch = Scratch::new("resume");
        let path = scratch.path("c.pgco");
        Corpus::write(&path, &seqs).unwrap();
        let corpus = Arc::new(Corpus::open(&path).unwrap());
        let want = reference(&seqs, gap, rho, 1);

        let ckpt = scratch.path("ckpt");
        let mut fresh = CheckpointConfig::fresh(&ckpt);
        fresh.stop_after_shards = Some(kill_after.min(seqs.len()));
        // Serial first leg so the pause point is exact.
        let first = config_grid(engine, PilRepr::Auto, 1, 1, Some(fresh));
        let paused = mine_corpus(&corpus, gap, rho, &first);
        let restored_floor = match paused {
            Err(MineError::CorpusPaused { completed, total }) => {
                prop_assert_eq!(total, seqs.len());
                completed
            }
            Ok(full) => {
                // stop_after >= shard count: the run simply finishes.
                prop_assert_eq!(&full.outcome, &want);
                full.stats.mined_shards
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected: {other}"))),
        };

        let second = config_grid(
            engine,
            PilRepr::Auto,
            resume_threads,
            1,
            Some(CheckpointConfig::resume(&ckpt)),
        );
        let resumed = mine_corpus(&corpus, gap, rho, &second).unwrap();
        prop_assert_eq!(&resumed.outcome, &want);
        prop_assert!(resumed.stats.restored_shards >= restored_floor);
        prop_assert_eq!(
            resumed.stats.restored_shards + resumed.stats.mined_shards,
            seqs.len()
        );
    }
}

fn demo_corpus(scratch: &Scratch, name: &str) -> (PathBuf, Vec<(String, Sequence)>) {
    let seqs: Vec<(String, Sequence)> = (0..3)
        .map(|i| {
            (
                format!("s{i}"),
                Sequence::dna(&"ACGTT".repeat(20 + 5 * i)).unwrap(),
            )
        })
        .collect();
    let path = scratch.path(name);
    Corpus::write(&path, &seqs).unwrap();
    (path, seqs)
}

fn mine_at(path: &Path, checkpoint: Option<CheckpointConfig>) -> Result<(), MineError> {
    let corpus = Arc::new(Corpus::open(path)?);
    let gap = GapRequirement::new(1, 3).unwrap();
    let config = config_grid(ShardEngine::Bfs, PilRepr::Auto, 1, 1, checkpoint);
    mine_corpus(&corpus, gap, 0.005, &config).map(|_| ())
}

/// A corpus file cut short anywhere — header, table, payload or
/// trailer — opens as a typed [`MineError::CorpusIo`], never a panic
/// or a silent partial corpus.
#[test]
fn truncated_corpus_is_a_typed_error() {
    let scratch = Scratch::new("truncate");
    let (path, _) = demo_corpus(&scratch, "c.pgco");
    let bytes = std::fs::read(&path).unwrap();
    let cut = scratch.path("cut.pgco");
    for keep in (0..bytes.len()).step_by(13).chain([bytes.len() - 1]) {
        std::fs::write(&cut, &bytes[..keep]).unwrap();
        match Corpus::open(&cut) {
            Err(MineError::CorpusIo { .. }) => {}
            other => panic!("truncation at {keep} gave {other:?}"),
        }
    }
}

/// Every single-bit corruption of the manifest is caught by its
/// checksum (or framing) and surfaces as [`MineError::CheckpointIo`]
/// on the manifest pseudo-record.
#[test]
fn corrupt_manifest_is_a_typed_error() {
    let scratch = Scratch::new("manifest");
    let (path, _) = demo_corpus(&scratch, "c.pgco");
    let ckpt = scratch.path("ckpt");
    mine_at(&path, Some(CheckpointConfig::fresh(&ckpt))).unwrap();
    let manifest = ckpt.join(MANIFEST_FILE);
    let clean = std::fs::read(&manifest).unwrap();
    for byte in (0..clean.len()).step_by(3) {
        let mut bad = clean.clone();
        bad[byte] ^= 0x04;
        std::fs::write(&manifest, &bad).unwrap();
        match mine_at(&path, Some(CheckpointConfig::resume(&ckpt))) {
            Err(MineError::CheckpointIo { record, .. }) => {
                assert_eq!(record, u64::MAX, "manifest faults report the manifest");
            }
            other => panic!("flip at byte {byte} gave {other:?}"),
        }
    }
    // Restoring the pristine bytes restores the resume path.
    std::fs::write(&manifest, &clean).unwrap();
    mine_at(&path, Some(CheckpointConfig::resume(&ckpt))).unwrap();
}

/// Resuming against a checkpoint directory written for a *different*
/// corpus is refused with a [`MineError::CheckpointMismatch`] naming
/// the corpus hash — the shard indices would otherwise silently line
/// up with the wrong sequences.
#[test]
fn checkpoint_dir_from_another_corpus_is_refused() {
    let scratch = Scratch::new("mismatch");
    let (path_a, _) = demo_corpus(&scratch, "a.pgco");
    let other: Vec<(String, Sequence)> = (0..3)
        .map(|i| {
            (
                format!("t{i}"),
                Sequence::dna(&"AACGT".repeat(18 + 4 * i)).unwrap(),
            )
        })
        .collect();
    let path_b = scratch.path("b.pgco");
    Corpus::write(&path_b, &other).unwrap();

    let ckpt = scratch.path("ckpt");
    mine_at(&path_a, Some(CheckpointConfig::fresh(&ckpt))).unwrap();
    match mine_at(&path_b, Some(CheckpointConfig::resume(&ckpt))) {
        Err(MineError::CheckpointMismatch { field, .. }) => {
            assert_eq!(field, "corpus hash");
        }
        other => panic!("cross-corpus resume gave {other:?}"),
    }
}
