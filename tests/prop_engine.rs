//! Differential property tests: the packed-key arena engine vs the
//! seed reference implementation, across random sequences, gap
//! requirements (including the degenerate `N == M`) and alphabets
//! (dense-table DNA, sparse-key protein, and an odd-sized custom set).

use perigap::core::naive::support_dp;
use perigap::core::pil::Pil;
use perigap::core::reference::{build_all_reference, mpp_reference};
use perigap::prelude::*;
use proptest::prelude::*;

/// Strategy: an alphabet whose size exercises all three seeding paths —
/// 4 (dense, 2 bits/symbol), 20 (dense at level 3, sparse higher), and
/// a 3-letter custom alphabet (non-power-of-two bit width).
fn alphabet() -> impl Strategy<Value = Alphabet> {
    (0u8..3).prop_map(|which| match which {
        0 => Alphabet::Dna,
        1 => Alphabet::Protein,
        _ => Alphabet::custom(b"xyz").unwrap(),
    })
}

/// Strategy: codes valid for any of the alphabets above (< 3 always).
fn codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..3, 5..max_len)
}

/// Strategy: a gap requirement, biased to include `N == M`.
fn gap_req() -> impl Strategy<Value = (usize, usize)> {
    (0usize..4, 0usize..3).prop_map(|(n, w)| (n, n + w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_seed_matches_reference(
        (alpha, codes, (n, m)) in (alphabet(), codes(60), gap_req())
    ) {
        let seq = Sequence::from_codes(alpha, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        for level in 1..=4usize {
            let engine = Pil::build_all(&seq, gap, level);
            let reference = build_all_reference(&seq, gap, level);
            prop_assert_eq!(engine.len(), reference.len(), "level {}", level);
            for (pattern, pil) in &reference {
                prop_assert_eq!(engine.get(pattern), Some(pil), "level {}", level);
            }
        }
    }

    #[test]
    fn packed_seed_matches_dp_oracle(
        (alpha, codes, (n, m)) in (alphabet(), codes(40), gap_req())
    ) {
        let seq = Sequence::from_codes(alpha, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        for level in 1..=3usize {
            for (pattern, pil) in &Pil::build_all(&seq, gap, level) {
                prop_assert_eq!(pil.support(), support_dp(&seq, gap, pattern));
            }
        }
    }

    #[test]
    fn degenerate_equal_gap_agrees(
        (alpha, codes, n) in (alphabet(), codes(50), 0usize..5)
    ) {
        // N == M: exactly one admissible step, so PILs collapse to
        // single-count entries and the join window has width one.
        let seq = Sequence::from_codes(alpha, codes).unwrap();
        let gap = GapRequirement::new(n, n).unwrap();
        let engine = Pil::build_all(&seq, gap, 3);
        let reference = build_all_reference(&seq, gap, 3);
        prop_assert_eq!(engine.len(), reference.len());
        for (pattern, pil) in &reference {
            prop_assert_eq!(engine.get(pattern), Some(pil));
        }
    }

    #[test]
    fn mined_frequent_sets_agree(
        (alpha, codes, (n, m), rho_scale, threads) in
            (alphabet(), codes(60), gap_req(), 1usize..40, 1usize..5)
    ) {
        let seq = Sequence::from_codes(alpha, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        let rho = rho_scale as f64 * 1e-4;
        let config = MppConfig::default();
        let old = mpp_reference(&seq, gap, rho, 8, config, threads);
        let new = mpp_parallel(&seq, gap, rho, 8, config, threads);
        // Sequences too short for a level-3 pattern under this gap are
        // rejected; both engines must agree on that too.
        prop_assert_eq!(old.is_ok(), new.is_ok());
        let Ok(old) = old else { return Ok(()) };
        let new = new.unwrap();
        prop_assert_eq!(old.frequent.len(), new.frequent.len());
        for (a, b) in old.frequent.iter().zip(&new.frequent) {
            prop_assert_eq!(&a.pattern, &b.pattern);
            prop_assert_eq!(a.support, b.support);
        }
        let serial = mpp(&seq, gap, rho, 8, config).unwrap();
        prop_assert_eq!(serial.frequent.len(), new.frequent.len());
        for (a, b) in serial.frequent.iter().zip(&new.frequent) {
            prop_assert_eq!(&a.pattern, &b.pattern);
            prop_assert_eq!(a.support, b.support);
        }
    }

    #[test]
    fn dfs_engine_agrees_with_bfs_and_reference(
        (alpha, codes, (n, m), rho_scale, threads) in
            (alphabet(), codes(60), gap_req(), 1usize..40, 1usize..5)
    ) {
        let seq = Sequence::from_codes(alpha, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        let rho = rho_scale as f64 * 1e-4;
        let config = MppConfig::default();
        let bfs = mpp(&seq, gap, rho, 8, config);
        let dfs = mpp_dfs(&seq, gap, rho, 8, config, threads);
        prop_assert_eq!(bfs.is_ok(), dfs.is_ok());
        let Ok(bfs) = bfs else { return Ok(()) };
        let dfs = dfs.unwrap();
        // Frequent sets, supports, and every stats counter must be
        // engine-invariant — only durations and arena bytes may differ.
        prop_assert_eq!(bfs.frequent.len(), dfs.frequent.len());
        for (a, b) in bfs.frequent.iter().zip(&dfs.frequent) {
            prop_assert_eq!(&a.pattern, &b.pattern);
            prop_assert_eq!(a.support, b.support);
        }
        prop_assert_eq!(bfs.stats.n_used, dfs.stats.n_used);
        prop_assert_eq!(bfs.stats.support_saturated, dfs.stats.support_saturated);
        prop_assert_eq!(bfs.stats.levels.len(), dfs.stats.levels.len());
        for (a, b) in bfs.stats.levels.iter().zip(&dfs.stats.levels) {
            prop_assert_eq!(a.level, b.level);
            prop_assert_eq!(a.candidates, b.candidates, "level {}", a.level);
            prop_assert_eq!(a.frequent, b.frequent, "level {}", a.level);
            prop_assert_eq!(a.extended, b.extended, "level {}", a.level);
        }
        let reference = mpp_reference(&seq, gap, rho, 8, config, 1).unwrap();
        prop_assert_eq!(reference.frequent.len(), dfs.frequent.len());
        for (a, b) in reference.frequent.iter().zip(&dfs.frequent) {
            prop_assert_eq!(&a.pattern, &b.pattern);
            prop_assert_eq!(a.support, b.support);
        }
    }
}
