//! Differential property tests: the packed-key arena engine vs the
//! seed reference implementation, across random sequences, gap
//! requirements (including the degenerate `N == M`) and alphabets
//! (dense-table DNA, sparse-key protein, and an odd-sized custom set).

use perigap::core::adaptive::ReprCache;
use perigap::core::naive::support_dp;
use perigap::core::pil::{
    join_dense_into, join_multi_into, DensePil, JoinCounters, MultiJoinScratch, Pil,
};
use perigap::core::reference::{build_all_reference, mpp_reference};
use perigap::prelude::*;
use proptest::prelude::*;

/// Strategy: an alphabet whose size exercises all three seeding paths —
/// 4 (dense, 2 bits/symbol), 20 (dense at level 3, sparse higher), and
/// a 3-letter custom alphabet (non-power-of-two bit width).
fn alphabet() -> impl Strategy<Value = Alphabet> {
    (0u8..3).prop_map(|which| match which {
        0 => Alphabet::Dna,
        1 => Alphabet::Protein,
        _ => Alphabet::custom(b"xyz").unwrap(),
    })
}

/// Strategy: codes valid for any of the alphabets above (< 3 always).
fn codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..3, 5..max_len)
}

/// Strategy: a gap requirement, biased to include `N == M`.
fn gap_req() -> impl Strategy<Value = (usize, usize)> {
    (0usize..4, 0usize..3).prop_map(|(n, w)| (n, n + w))
}

/// Strategy: one PIL entry count — mostly small, sometimes huge enough
/// that a handful of entries overflow `u64` when summed (the corner
/// where `DensePil::build` must refuse and the saturating sparse walk
/// takes over).
fn entry_count() -> impl Strategy<Value = u64> {
    (0u8..6, 1u64..1_000).prop_map(|(which, small)| match which {
        4 => u64::MAX / 3,
        5 => u64::MAX,
        _ => small,
    })
}

/// Strategy: arbitrary sorted-unique PIL entries over a narrow offset
/// range (so dense and sparse regimes both occur), including empty.
fn pil_entries() -> impl Strategy<Value = Vec<(u32, u64)>> {
    collection::vec((0u32..300, entry_count()), 0..40).prop_map(|mut v| {
        v.sort_by_key(|&(x, _)| x);
        v.dedup_by_key(|e| e.0);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_seed_matches_reference(
        (alpha, codes, (n, m)) in (alphabet(), codes(60), gap_req())
    ) {
        let seq = Sequence::from_codes(alpha, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        for level in 1..=4usize {
            let engine = Pil::build_all(&seq, gap, level);
            let reference = build_all_reference(&seq, gap, level);
            prop_assert_eq!(engine.len(), reference.len(), "level {}", level);
            for (pattern, pil) in &reference {
                prop_assert_eq!(engine.get(pattern), Some(pil), "level {}", level);
            }
        }
    }

    #[test]
    fn packed_seed_matches_dp_oracle(
        (alpha, codes, (n, m)) in (alphabet(), codes(40), gap_req())
    ) {
        let seq = Sequence::from_codes(alpha, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        for level in 1..=3usize {
            for (pattern, pil) in &Pil::build_all(&seq, gap, level) {
                prop_assert_eq!(pil.support(), support_dp(&seq, gap, pattern));
            }
        }
    }

    #[test]
    fn degenerate_equal_gap_agrees(
        (alpha, codes, n) in (alphabet(), codes(50), 0usize..5)
    ) {
        // N == M: exactly one admissible step, so PILs collapse to
        // single-count entries and the join window has width one.
        let seq = Sequence::from_codes(alpha, codes).unwrap();
        let gap = GapRequirement::new(n, n).unwrap();
        let engine = Pil::build_all(&seq, gap, 3);
        let reference = build_all_reference(&seq, gap, 3);
        prop_assert_eq!(engine.len(), reference.len());
        for (pattern, pil) in &reference {
            prop_assert_eq!(engine.get(pattern), Some(pil));
        }
    }

    #[test]
    fn mined_frequent_sets_agree(
        (alpha, codes, (n, m), rho_scale, threads) in
            (alphabet(), codes(60), gap_req(), 1usize..40, 1usize..5)
    ) {
        let seq = Sequence::from_codes(alpha, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        let rho = rho_scale as f64 * 1e-4;
        let config = MppConfig::default();
        let old = mpp_reference(&seq, gap, rho, 8, config.clone(), threads);
        let new = mpp_parallel(&seq, gap, rho, 8, config.clone(), threads);
        // Sequences too short for a level-3 pattern under this gap are
        // rejected; both engines must agree on that too.
        prop_assert_eq!(old.is_ok(), new.is_ok());
        let Ok(old) = old else { return Ok(()) };
        let new = new.unwrap();
        prop_assert_eq!(old.frequent.len(), new.frequent.len());
        for (a, b) in old.frequent.iter().zip(&new.frequent) {
            prop_assert_eq!(&a.pattern, &b.pattern);
            prop_assert_eq!(a.support, b.support);
        }
        let serial = mpp(&seq, gap, rho, 8, config.clone()).unwrap();
        prop_assert_eq!(serial.frequent.len(), new.frequent.len());
        for (a, b) in serial.frequent.iter().zip(&new.frequent) {
            prop_assert_eq!(&a.pattern, &b.pattern);
            prop_assert_eq!(a.support, b.support);
        }
    }

    #[test]
    fn dense_join_agrees_with_sparse_reference(
        (a, b, (n, m)) in (pil_entries(), pil_entries(), gap_req())
    ) {
        let gap = GapRequirement::new(n, m).unwrap();
        let prefix = Pil::from_entries(a);
        let suffix = Pil::from_entries(b);
        let (sparse, sparse_sat) = Pil::join_checked(&prefix, &suffix, gap);
        // The public dense entry point (falls back to sparse when the
        // suffix total overflows u64) must be exactly equivalent,
        // saturation flag included.
        let (dense, dense_sat) = Pil::join_dense(&prefix, &suffix, gap);
        prop_assert_eq!(dense.entries(), sparse.entries());
        prop_assert_eq!(dense_sat, sparse_sat);
        // When the dense build is possible, the raw kernel agrees too —
        // and a buildable suffix can never saturate any window.
        if let Some(d) = DensePil::build(suffix.entries()) {
            let mut out = Vec::new();
            join_dense_into(prefix.entries(), &d, gap, &mut out, &mut JoinCounters::default());
            prop_assert_eq!(out.as_slice(), sparse.entries());
            prop_assert!(!sparse_sat);
        }
    }

    #[test]
    fn batched_and_cache_dispatched_joins_agree(
        (a, partners, (n, m), crossover) in (
            pil_entries(),
            collection::vec(pil_entries(), 1..6),
            gap_req(),
            (0u8..3).prop_map(|w| match w {
                0 => 0.0f64,
                1 => 0.25,
                _ => 1.0,
            }),
        )
    ) {
        let gap = GapRequirement::new(n, m).unwrap();
        let prefix = Pil::from_entries(a);
        let suffixes: Vec<Pil> = partners.into_iter().map(Pil::from_entries).collect();
        let expected: Vec<(Pil, bool)> = suffixes
            .iter()
            .map(|s| Pil::join_checked(&prefix, s, gap))
            .collect();

        // The batched multi-suffix walk (one pass over the prefix).
        let views: Vec<&[(u32, u64)]> = suffixes.iter().map(|s| s.entries()).collect();
        let mut outs: Vec<Vec<(u32, u64)>> = vec![Vec::new(); views.len()];
        let mut scratch = MultiJoinScratch::default();
        join_multi_into(
            prefix.entries(),
            &views,
            gap,
            &mut outs,
            &mut scratch,
            &mut JoinCounters::default(),
        );
        for (j, (pil, sat)) in expected.iter().enumerate() {
            prop_assert_eq!(outs[j].as_slice(), pil.entries(), "partner {}", j);
            prop_assert_eq!(scratch.saturated[j], *sat, "partner {}", j);
        }

        // The adaptive cache dispatch (what the engines run), across
        // crossover extremes: always-sparse, default, always-dense.
        let policy = ReprPolicy {
            crossover,
            ..ReprPolicy::default()
        };
        let mut cache = ReprCache::new(policy);
        cache.begin(suffixes.len());
        for (j, s) in suffixes.iter().enumerate() {
            let (pil, sat) = &expected[j];
            match cache.dense_for(j, s.entries()) {
                Some(d) => {
                    let mut out = Vec::new();
                    join_dense_into(prefix.entries(), d, gap, &mut out, &mut JoinCounters::default());
                    prop_assert_eq!(out.as_slice(), pil.entries(), "dense partner {}", j);
                    prop_assert!(!sat, "a dense-joinable partner cannot saturate");
                }
                None => {
                    let (again, sat_again) = Pil::join_checked(&prefix, s, gap);
                    prop_assert_eq!(again.entries(), pil.entries());
                    prop_assert_eq!(sat_again, *sat);
                }
            }
        }
    }

    #[test]
    fn mining_agrees_across_pil_repr(
        (alpha, codes, (n, m), rho_scale, mode) in (
            alphabet(),
            codes(60),
            gap_req(),
            1usize..40,
            (0u8..2).prop_map(|w| if w == 0 { PilRepr::Auto } else { PilRepr::Dense }),
        )
    ) {
        let seq = Sequence::from_codes(alpha, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        let rho = rho_scale as f64 * 1e-4;
        let sparse_config = MppConfig {
            pil_repr: ReprPolicy::of(PilRepr::Sparse),
            ..MppConfig::default()
        };
        let config = MppConfig {
            pil_repr: ReprPolicy::of(mode),
            ..MppConfig::default()
        };
        let base = mpp(&seq, gap, rho, 8, sparse_config);
        let run = mpp(&seq, gap, rho, 8, config.clone());
        prop_assert_eq!(base.is_ok(), run.is_ok());
        let Ok(base) = base else { return Ok(()) };
        let run = run.unwrap();
        prop_assert_eq!(base.frequent.len(), run.frequent.len());
        for (a, b) in base.frequent.iter().zip(&run.frequent) {
            prop_assert_eq!(&a.pattern, &b.pattern);
            prop_assert_eq!(a.support, b.support);
        }
        prop_assert_eq!(base.stats.support_saturated, run.stats.support_saturated);
        for (a, b) in base.stats.levels.iter().zip(&run.stats.levels) {
            prop_assert_eq!(a.candidates, b.candidates, "level {}", a.level);
            prop_assert_eq!(a.frequent, b.frequent, "level {}", a.level);
            prop_assert_eq!(a.extended, b.extended, "level {}", a.level);
        }
        let dfs = mpp_dfs(&seq, gap, rho, 8, config.clone(), 2).unwrap();
        prop_assert_eq!(base.frequent.len(), dfs.frequent.len());
        for (a, b) in base.frequent.iter().zip(&dfs.frequent) {
            prop_assert_eq!(&a.pattern, &b.pattern);
            prop_assert_eq!(a.support, b.support);
        }
    }

    #[test]
    fn dfs_engine_agrees_with_bfs_and_reference(
        (alpha, codes, (n, m), rho_scale, threads) in
            (alphabet(), codes(60), gap_req(), 1usize..40, 1usize..5)
    ) {
        let seq = Sequence::from_codes(alpha, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        let rho = rho_scale as f64 * 1e-4;
        let config = MppConfig::default();
        let bfs = mpp(&seq, gap, rho, 8, config.clone());
        let dfs = mpp_dfs(&seq, gap, rho, 8, config.clone(), threads);
        prop_assert_eq!(bfs.is_ok(), dfs.is_ok());
        let Ok(bfs) = bfs else { return Ok(()) };
        let dfs = dfs.unwrap();
        // Frequent sets, supports, and every stats counter must be
        // engine-invariant — only durations and arena bytes may differ.
        prop_assert_eq!(bfs.frequent.len(), dfs.frequent.len());
        for (a, b) in bfs.frequent.iter().zip(&dfs.frequent) {
            prop_assert_eq!(&a.pattern, &b.pattern);
            prop_assert_eq!(a.support, b.support);
        }
        prop_assert_eq!(bfs.stats.n_used, dfs.stats.n_used);
        prop_assert_eq!(bfs.stats.support_saturated, dfs.stats.support_saturated);
        prop_assert_eq!(bfs.stats.levels.len(), dfs.stats.levels.len());
        for (a, b) in bfs.stats.levels.iter().zip(&dfs.stats.levels) {
            prop_assert_eq!(a.level, b.level);
            prop_assert_eq!(a.candidates, b.candidates, "level {}", a.level);
            prop_assert_eq!(a.frequent, b.frequent, "level {}", a.level);
            prop_assert_eq!(a.extended, b.extended, "level {}", a.level);
        }
        let reference = mpp_reference(&seq, gap, rho, 8, config.clone(), 1).unwrap();
        prop_assert_eq!(reference.frequent.len(), dfs.frequent.len());
        for (a, b) in reference.frequent.iter().zip(&dfs.frequent) {
            prop_assert_eq!(&a.pattern, &b.pattern);
            prop_assert_eq!(a.support, b.support);
        }
    }
}

/// Everything observable except durations, arena bytes and the
/// physical diagnostics (spill and join counters) must be bit-identical
/// between two runs of the same mine — used for the spill and kernel
/// differentials alike.
fn assert_outcome_invariant(a: &MineOutcome, b: &MineOutcome, label: &str) {
    assert_eq!(a.frequent.len(), b.frequent.len(), "{label}");
    for (x, y) in a.frequent.iter().zip(&b.frequent) {
        assert_eq!(x.pattern, y.pattern, "{label}");
        assert_eq!(x.support, y.support, "{label}");
    }
    assert_eq!(a.stats.n_used, b.stats.n_used, "{label}");
    assert_eq!(a.stats.em, b.stats.em, "{label}");
    assert_eq!(
        a.stats.support_saturated, b.stats.support_saturated,
        "{label}"
    );
    assert_eq!(a.stats.levels.len(), b.stats.levels.len(), "{label}");
    for (x, y) in a.stats.levels.iter().zip(&b.stats.levels) {
        assert_eq!(x.level, y.level, "{label}");
        assert_eq!(x.candidates, y.candidates, "{label} level {}", x.level);
        assert_eq!(x.frequent, y.frequent, "{label} level {}", x.level);
        assert_eq!(x.extended, y.extended, "{label} level {}", x.level);
    }
}

// The kernel differential mines the same input up to seven times per
// case, so it gets its own smaller budget. Every (kernel × engine ×
// repr) combination must reproduce the scalar/sparse baseline
// bit-for-bit — patterns, supports, and all `MineStats` counters: the
// `--kernel` knob is pure performance. On hardware without AVX2 (or
// under `PERIGAP_FORCE_SCALAR`) Simd resolves to the scalar fallback
// and the test degenerates to scalar-vs-scalar, which is still the
// contract.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mining_agrees_across_kernels(
        (alpha, codes, (n, m), rho_scale, kernel, mode) in (
            alphabet(),
            codes(60),
            gap_req(),
            1usize..40,
            (0u8..3).prop_map(|w| match w {
                0 => Kernel::Scalar,
                1 => Kernel::Simd,
                _ => Kernel::Auto,
            }),
            (0u8..3).prop_map(|w| match w {
                0 => PilRepr::Sparse,
                1 => PilRepr::Dense,
                _ => PilRepr::Auto,
            }),
        )
    ) {
        use perigap::core::mppm::{mppm, mppm_dfs};
        let seq = Sequence::from_codes(alpha, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        let rho = rho_scale as f64 * 1e-4;
        let base_cfg = MppConfig {
            kernel: Kernel::Scalar,
            pil_repr: ReprPolicy::of(PilRepr::Sparse),
            ..MppConfig::default()
        };
        let cfg = MppConfig {
            kernel,
            pil_repr: ReprPolicy::of(mode),
            ..MppConfig::default()
        };
        let base = mpp(&seq, gap, rho, 8, base_cfg.clone());
        let bfs = mpp(&seq, gap, rho, 8, cfg.clone());
        prop_assert_eq!(base.is_ok(), bfs.is_ok());
        let Ok(base) = base else { return Ok(()) };
        assert_outcome_invariant(&base, &bfs.unwrap(), "bfs");
        let par = mpp_parallel(&seq, gap, rho, 8, cfg.clone(), 3).unwrap();
        assert_outcome_invariant(&base, &par, "parallel");
        let dfs = mpp_dfs(&seq, gap, rho, 8, cfg.clone(), 2).unwrap();
        assert_outcome_invariant(&base, &dfs, "dfs");
        let base_m = mppm(&seq, gap, rho, 4, base_cfg);
        let run_m = mppm(&seq, gap, rho, 4, cfg.clone());
        prop_assert_eq!(base_m.is_ok(), run_m.is_ok());
        if let Ok(base_m) = base_m {
            assert_outcome_invariant(&base_m, &run_m.unwrap(), "mppm");
            let dfs_m = mppm_dfs(&seq, gap, rho, 4, cfg, 2).unwrap();
            assert_outcome_invariant(&base_m, &dfs_m, "mppm dfs");
        }
    }
}

/// A pruned outcome must carry exactly `expect` — patterns, supports,
/// and bit-identical ratios — in exactly the expected order.
fn assert_pruned_equal(
    expect: &[FrequentPattern],
    got: &MineOutcome,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(expect.len(), got.frequent.len(), "{}", label);
    for (x, y) in expect.iter().zip(&got.frequent) {
        prop_assert_eq!(&x.pattern, &y.pattern, "{}", label);
        prop_assert_eq!(x.support, y.support, "{}", label);
        prop_assert_eq!(x.ratio.to_bits(), y.ratio.to_bits(), "{}", label);
    }
    Ok(())
}

// The pruning differential runs a dozen mines per case (top-k and
// targeted, through every engine, with and without a spill ceiling),
// so it gets a small case budget. Pruned mining is an output
// contract: whatever the engine, gap regime (rigid `W == 1`, where the
// rising floor prunes the search itself, or flexible `W > 1`, where
// only emission is gated), PIL repr, thread count, or memory ceiling,
// the outcome must be bit-identical to post-filtering the full mine.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn topk_and_targeted_pruning_match_post_filtering(
        (alpha, codes, (n, m), rho_scale, k, mode, mask_bits) in (
            alphabet(),
            codes(60),
            gap_req(), // biased toward N == M: both floor regimes occur
            1usize..40,
            1usize..12,
            (0u8..3).prop_map(|w| match w {
                0 => PilRepr::Sparse,
                1 => PilRepr::Dense,
                _ => PilRepr::Auto,
            }),
            1u8..8, // symbol mask over codes {0, 1, 2}; never empty
        )
    ) {
        use perigap::core::mppm::mppm;
        use perigap::core::spill::{MemSpillIo, SpillIo};
        use perigap::core::{select_top_k, PruneMode, TargetSpec};
        use std::sync::Arc;

        let alpha_size = alpha.size();
        let seq = Sequence::from_codes(alpha, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        let rho = rho_scale as f64 * 1e-4;
        let cfg = MppConfig {
            pil_repr: ReprPolicy::of(mode),
            ..MppConfig::default()
        };

        // Top-k: every engine must reproduce `select_top_k` over the
        // full mine — same rank order, same truncation, same ratios.
        let full = mpp(&seq, gap, rho, 8, cfg.clone());
        let topk_cfg = MppConfig {
            prune: PruneMode::top_k(k),
            ..cfg.clone()
        };
        let topk = mpp(&seq, gap, rho, 8, topk_cfg.clone());
        prop_assert_eq!(full.is_ok(), topk.is_ok());
        let Ok(full) = full else { return Ok(()) };
        let topk = topk.unwrap();
        prop_assert_eq!(topk.stats.top_k, Some(k));
        let expect_topk = select_top_k(&full.frequent, k);
        assert_pruned_equal(&expect_topk, &topk, "top-k bfs")?;
        let par = mpp_parallel(&seq, gap, rho, 8, topk_cfg.clone(), 3).unwrap();
        assert_pruned_equal(&expect_topk, &par, "top-k parallel")?;
        let dfs = mpp_dfs(&seq, gap, rho, 8, topk_cfg.clone(), 2).unwrap();
        assert_pruned_equal(&expect_topk, &dfs, "top-k dfs")?;

        // Under a memory ceiling the floor drops spilled components
        // outright instead of restoring them; the outcome must not
        // move.
        let spill_cfg = MppConfig {
            max_arena_bytes: Some(1 << 30),
            spill_watermark: 0.5,
            spill_io: Some(Arc::new(MemSpillIo::default()) as Arc<dyn SpillIo>),
            ..topk_cfg.clone()
        };
        let spilled = mpp_dfs(&seq, gap, rho, 8, spill_cfg, 2).unwrap();
        assert_pruned_equal(&expect_topk, &spilled, "top-k dfs spill")?;

        // Prefix target: emission-filtered only (the self-join needs
        // every window), canonical order preserved.
        let target_cfg = |spec: &TargetSpec| MppConfig {
            prune: PruneMode::targeted(spec.clone()),
            ..cfg.clone()
        };
        let prefix_codes: Vec<u8> = full
            .frequent
            .first()
            .map(|f| f.pattern.codes()[..f.pattern.len().min(2)].to_vec())
            .unwrap_or_else(|| vec![0]);
        let prefix = TargetSpec::prefix(prefix_codes);
        let expect_prefix: Vec<FrequentPattern> = full
            .frequent
            .iter()
            .filter(|f| prefix.admits_pattern(f.pattern.codes()))
            .cloned()
            .collect();
        let run = mpp(&seq, gap, rho, 8, target_cfg(&prefix)).unwrap();
        assert_pruned_equal(&expect_prefix, &run, "prefix bfs")?;
        let run = mpp_dfs(&seq, gap, rho, 8, target_cfg(&prefix), 2).unwrap();
        assert_pruned_equal(&expect_prefix, &run, "prefix dfs")?;

        // Symbol-set target: window-closed, so whole cones are cut —
        // yet the mined set must still equal masking the full mine.
        let allowed: Vec<u8> = (0u8..3).filter(|c| mask_bits >> c & 1 == 1).collect();
        let symbols = TargetSpec::symbols(&allowed, alpha_size);
        let expect_sym: Vec<FrequentPattern> = full
            .frequent
            .iter()
            .filter(|f| symbols.admits_pattern(f.pattern.codes()))
            .cloned()
            .collect();
        let run = mpp(&seq, gap, rho, 8, target_cfg(&symbols)).unwrap();
        assert_pruned_equal(&expect_sym, &run, "symbols bfs")?;
        let run = mpp_parallel(&seq, gap, rho, 8, target_cfg(&symbols), 3).unwrap();
        assert_pruned_equal(&expect_sym, &run, "symbols parallel")?;
        let run = mpp_dfs(&seq, gap, rho, 8, target_cfg(&symbols), 2).unwrap();
        assert_pruned_equal(&expect_sym, &run, "symbols dfs")?;

        // Combined: the floor only ever counts target-admitted
        // patterns, so target-then-top-k is the composition.
        let combined = MppConfig {
            prune: PruneMode {
                top_k: Some(k),
                target: Some(symbols.clone()),
            },
            ..cfg.clone()
        };
        let expect_combined = select_top_k(&expect_sym, k);
        let run = mpp(&seq, gap, rho, 8, combined).unwrap();
        assert_pruned_equal(&expect_combined, &run, "combined")?;

        // The multi-sequence-normalized engine honors the same
        // contract.
        let full_m = mppm(&seq, gap, rho, 4, cfg.clone());
        let topk_m = mppm(
            &seq,
            gap,
            rho,
            4,
            MppConfig {
                prune: PruneMode::top_k(k),
                ..cfg
            },
        );
        prop_assert_eq!(full_m.is_ok(), topk_m.is_ok());
        if let Ok(full_m) = full_m {
            let expect_m = select_top_k(&full_m.frequent, k);
            assert_pruned_equal(&expect_m, &topk_m.unwrap(), "top-k mppm")?;
        }
    }
}

// The spill differential runs three full mines per engine per case, so
// it gets its own smaller case budget.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn spilling_never_changes_the_mined_outcome(
        (alpha, codes, (n, m), rho_scale, mode, watermark) in (
            alphabet(),
            codes(60),
            gap_req(),
            1usize..40,
            (0u8..3).prop_map(|w| match w {
                0 => PilRepr::Sparse,
                1 => PilRepr::Dense,
                _ => PilRepr::Auto,
            }),
            (0u8..3).prop_map(|w| match w {
                0 => 0.0f64,
                1 => 0.5,
                _ => 1.0,
            }),
        )
    ) {
        use perigap::core::dfs::mpp_dfs_traced;
        use perigap::core::mppm::mppm_dfs;
        use perigap::core::spill::{MemSpillIo, SpillIo};
        use perigap::core::trace::MetricsObserver;
        use std::sync::Arc;

        let seq = Sequence::from_codes(alpha, codes).unwrap();
        let gap = GapRequirement::new(n, m).unwrap();
        let rho = rho_scale as f64 * 1e-4;
        let repr = ReprPolicy::of(mode);
        let unbounded_cfg = MppConfig {
            pil_repr: repr,
            ..MppConfig::default()
        };
        let spill_cfg = |cap: usize| MppConfig {
            pil_repr: repr,
            max_arena_bytes: Some(cap),
            spill_watermark: watermark,
            spill_io: Some(Arc::new(MemSpillIo::default()) as Arc<dyn SpillIo>),
            ..MppConfig::default()
        };

        for threads in [1usize, 2] {
            let free = mpp_dfs(&seq, gap, rho, 8, unbounded_cfg.clone(), threads);
            let spill = mpp_dfs(&seq, gap, rho, 8, spill_cfg(1 << 30), threads);
            prop_assert_eq!(free.is_ok(), spill.is_ok());
            if let Ok(free) = free {
                assert_outcome_invariant(&free, &spill.unwrap(), &format!("mpp {threads}t"));
            }

            let free_m = mppm_dfs(&seq, gap, rho, 4, unbounded_cfg.clone(), threads);
            let spill_m = mppm_dfs(&seq, gap, rho, 4, spill_cfg(1 << 30), threads);
            prop_assert_eq!(free_m.is_ok(), spill_m.is_ok());
            if let Ok(free_m) = free_m {
                assert_outcome_invariant(&free_m, &spill_m.unwrap(), &format!("mppm {threads}t"));
            }
        }

        // Tiny cap: single-threaded, capped at exactly the peak the
        // spilling run itself reports — it must still complete, with
        // the same outcome.
        let mut metrics = MetricsObserver::new();
        let traced = mpp_dfs_traced(&seq, gap, rho, 8, spill_cfg(1 << 30), 1, &mut metrics);
        if let Ok(traced) = traced {
            let peak = metrics.complete.as_ref().unwrap().peak_arena_bytes.max(1);
            let tiny = mpp_dfs(&seq, gap, rho, 8, spill_cfg(peak), 1).unwrap();
            assert_outcome_invariant(&traced, &tiny, "tiny cap");
        }
    }
}
