//! Fault injection for the spill-to-disk layer: whatever the backing
//! storage does — short writes, a full disk mid-record, torn reads,
//! flipped bits, or a panic inside a restore — the engine must either
//! return the correct pattern set or a typed error in bounded time.
//! It must never hang and never "succeed" with a wrong answer.
//!
//! Every injector wraps the real in-memory backend
//! ([`MemSpillIo`]) so the fault is the *only* difference from a
//! healthy run.

use perigap::core::spill::{MemSpillIo, SpillIo};
use perigap::prelude::*;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// The workload every test mines: `ATATAT…` under gap `[1,1]` splits
/// into two components at the seed level, so a zero watermark forces a
/// spill of (at least) two records followed by their restores.
fn mine_with(io: Arc<dyn SpillIo>, threads: usize) -> Result<MineOutcome, MineError> {
    let seq = Sequence::dna(&"AT".repeat(50)).unwrap();
    let gap = GapRequirement::new(1, 1).unwrap();
    let config = MppConfig {
        max_arena_bytes: Some(1 << 20),
        spill_watermark: 0.0,
        spill_io: Some(io),
        ..MppConfig::default()
    };
    perigap::core::dfs::mpp_dfs(&seq, gap, 0.4, 20, config, threads)
}

/// The healthy baseline the faulty runs are measured against.
fn healthy_outcome() -> MineOutcome {
    let out = mine_with(Arc::new(MemSpillIo::default()), 1).expect("healthy run mines");
    assert!(out.stats.spilled_records >= 2, "workload must spill");
    out
}

/// After any abort the engine sweeps the spill backend: no record may
/// survive an error exit. (The workload spills only a handful of
/// records; probing a fixed range past that is enough.)
fn assert_backend_empty(inner: &MemSpillIo, label: &str) {
    for record in 0..16u64 {
        assert!(
            inner.read(record).is_err(),
            "{label}: record {record} survived the abort sweep"
        );
    }
}

/// A faulty run may only ever fail with the typed spill error — and if
/// it somehow succeeds, the answer must be the correct one.
fn assert_fails_typed(result: Result<MineOutcome, MineError>, label: &str) {
    match result {
        Err(MineError::SpillIo { .. }) => {}
        Ok(out) => {
            assert_eq!(
                out.frequent,
                healthy_outcome().frequent,
                "{label}: a run that claims success must not lie"
            );
            panic!("{label}: the injected fault was never hit");
        }
        Err(other) => panic!("{label}: expected MineError::SpillIo, got {other:?}"),
    }
}

/// Drops the tail of every record on the way to storage.
#[derive(Debug, Default)]
struct ShortWriteIo {
    inner: MemSpillIo,
}

impl SpillIo for ShortWriteIo {
    fn write(&self, record: u64, bytes: &[u8]) -> io::Result<()> {
        let keep = bytes.len().saturating_sub(7);
        self.inner.write(record, &bytes[..keep])
    }
    fn read(&self, record: u64) -> io::Result<Vec<u8>> {
        self.inner.read(record)
    }
    fn remove(&self, record: u64) -> io::Result<()> {
        self.inner.remove(record)
    }
}

/// Accepts the first record, then the disk is full.
#[derive(Debug, Default)]
struct FullDiskIo {
    inner: MemSpillIo,
}

impl SpillIo for FullDiskIo {
    fn write(&self, record: u64, bytes: &[u8]) -> io::Result<()> {
        if record >= 1 {
            return Err(io::Error::other("ENOSPC: no space left on device"));
        }
        self.inner.write(record, bytes)
    }
    fn read(&self, record: u64) -> io::Result<Vec<u8>> {
        self.inner.read(record)
    }
    fn remove(&self, record: u64) -> io::Result<()> {
        self.inner.remove(record)
    }
}

/// Stores faithfully, returns only the first half on restore.
#[derive(Debug, Default)]
struct TornReadIo {
    inner: MemSpillIo,
}

impl SpillIo for TornReadIo {
    fn write(&self, record: u64, bytes: &[u8]) -> io::Result<()> {
        self.inner.write(record, bytes)
    }
    fn read(&self, record: u64) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.read(record)?;
        bytes.truncate(bytes.len() / 2);
        Ok(bytes)
    }
    fn remove(&self, record: u64) -> io::Result<()> {
        self.inner.remove(record)
    }
}

/// Stores faithfully, flips one payload bit on restore.
#[derive(Debug, Default)]
struct BitFlipIo {
    inner: MemSpillIo,
}

impl SpillIo for BitFlipIo {
    fn write(&self, record: u64, bytes: &[u8]) -> io::Result<()> {
        self.inner.write(record, bytes)
    }
    fn read(&self, record: u64) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.read(record)?;
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        Ok(bytes)
    }
    fn remove(&self, record: u64) -> io::Result<()> {
        self.inner.remove(record)
    }
}

#[test]
fn short_writes_are_caught_on_restore() {
    for threads in [1usize, 2] {
        let io = Arc::new(ShortWriteIo::default());
        let label = format!("short write, {threads} threads");
        assert_fails_typed(mine_with(Arc::clone(&io) as _, threads), &label);
        assert_backend_empty(&io.inner, &label);
    }
}

#[test]
fn full_disk_mid_spill_fails_typed_and_cleans_up() {
    let io = Arc::new(FullDiskIo::default());
    assert_fails_typed(mine_with(Arc::clone(&io) as _, 1), "full disk");
    // The record written before the disk filled up was removed again:
    // a failed spill leaves nothing behind.
    assert_backend_empty(&io.inner, "full disk");
}

#[test]
fn torn_reads_are_caught_on_restore() {
    for threads in [1usize, 2] {
        let io = Arc::new(TornReadIo::default());
        let label = format!("torn read, {threads} threads");
        assert_fails_typed(mine_with(Arc::clone(&io) as _, threads), &label);
        assert_backend_empty(&io.inner, &label);
    }
}

#[test]
fn flipped_bits_are_caught_on_restore() {
    for threads in [1usize, 2] {
        let io = Arc::new(BitFlipIo::default());
        let label = format!("bit flip, {threads} threads");
        assert_fails_typed(mine_with(Arc::clone(&io) as _, threads), &label);
        assert_backend_empty(&io.inner, &label);
    }
}

/// Stores and restores faithfully, but every removal fails as if the
/// directory had been made read-only mid-run.
#[derive(Debug, Default)]
struct StickyRemoveIo {
    inner: MemSpillIo,
}

impl SpillIo for StickyRemoveIo {
    fn write(&self, record: u64, bytes: &[u8]) -> io::Result<()> {
        self.inner.write(record, bytes)
    }
    fn read(&self, record: u64) -> io::Result<Vec<u8>> {
        self.inner.read(record)
    }
    fn remove(&self, _record: u64) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            "EACCES: spill dir went read-only",
        ))
    }
}

/// A backend that cannot delete its records must not fail the mine —
/// the run completes with the correct patterns, counts every failed
/// removal in `spill_cleanup_failures`, and emits one `spill-cleanup`
/// warning trace event per record.
#[test]
fn failed_cleanup_is_a_warning_not_an_error() {
    use perigap::core::trace::MetricsObserver;

    let seq = Sequence::dna(&"AT".repeat(50)).unwrap();
    let gap = GapRequirement::new(1, 1).unwrap();
    let config = MppConfig {
        max_arena_bytes: Some(1 << 20),
        spill_watermark: 0.0,
        spill_io: Some(Arc::new(StickyRemoveIo::default())),
        ..MppConfig::default()
    };
    let mut metrics = MetricsObserver::new();
    let out = perigap::core::dfs::mpp_dfs_traced(&seq, gap, 0.4, 20, config, 1, &mut metrics)
        .expect("cleanup failures must not abort the mine");
    assert_eq!(out.frequent, healthy_outcome().frequent);
    assert!(
        out.stats.spill_cleanup_failures >= 2,
        "every failed removal is counted, got {}",
        out.stats.spill_cleanup_failures
    );
    assert_eq!(
        metrics.warnings.len() as u64,
        out.stats.spill_cleanup_failures,
        "one warning per failed removal"
    );
    assert!(metrics.warnings.iter().all(|w| w.kind == "spill-cleanup"));
}

/// Panics inside [`SpillIo::read`], but only on pool worker threads
/// (named `pgmine-worker-<id>`); on the mining thread it first parks
/// long enough for a worker to wake up and claim the other record,
/// then restores normally.
#[derive(Debug, Default)]
struct PanicOnWorkerIo {
    inner: MemSpillIo,
}

impl SpillIo for PanicOnWorkerIo {
    fn write(&self, record: u64, bytes: &[u8]) -> io::Result<()> {
        self.inner.write(record, bytes)
    }
    fn read(&self, record: u64) -> io::Result<Vec<u8>> {
        let on_worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("pgmine-worker"));
        if on_worker {
            panic!("injected restore panic");
        }
        std::thread::sleep(Duration::from_millis(100));
        self.inner.read(record)
    }
    fn remove(&self, record: u64) -> io::Result<()> {
        self.inner.remove(record)
    }
}

/// A worker dying mid-restore must surface as [`MineError::WorkerFailed`]
/// through the pool's liveness fallback — in bounded time, never as a
/// hang waiting on the dead worker's result.
#[test]
fn panic_during_restore_drains_the_pool_instead_of_hanging() {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(mine_with(Arc::new(PanicOnWorkerIo::default()), 4));
    });
    let result = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("mine must finish in bounded time, not deadlock");
    match result {
        Err(MineError::WorkerFailed { message, .. }) => {
            assert!(message.contains("injected"), "unexpected message {message}");
        }
        Ok(_) => panic!("a worker died mid-restore; the run cannot have drained cleanly"),
        Err(other) => panic!("expected WorkerFailed, got {other:?}"),
    }
}
