//! Every worked example in the paper, verified end to end against the
//! public API. Each test cites the section it reproduces.

use perigap::core::em::kr_table;
use perigap::core::naive::{enumerate_matches, support_dp};
use perigap::core::pil::Pil;
use perigap::prelude::*;

fn pat(text: &str) -> Pattern {
    Pattern::parse(text, &Alphabet::Dna).unwrap()
}

#[test]
fn section3_support_of_ac_in_aagcc() {
    // "if S = AAGCC, P = AC, and gap requirement is [2,3] … sup(P) = 3"
    let s = Sequence::dna("AAGCC").unwrap();
    let gap = GapRequirement::new(2, 3).unwrap();
    assert_eq!(support_dp(&s, gap, &pat("AC")), 3);
    let offsets = enumerate_matches(&s, gap, &pat("AC"));
    assert_eq!(offsets, vec![vec![1, 4], vec![1, 5], vec![2, 5]]);
}

#[test]
fn section3_pattern_length_ignores_wildcards() {
    // "if P = A..T.C, then |P| = 3"
    assert_eq!(pat("ATC").len(), 3);
    let gap = GapRequirement::new(8, 10).unwrap();
    assert_eq!(
        pat("ATC").display_with_gaps(&Alphabet::Dna, gap),
        "Ag(8,10)Tg(8,10)C"
    );
}

#[test]
fn section4_table1_notation() {
    // minspan(l) = (l−1)N + l, maxspan(l) = (l−1)M + l,
    // l1 = ⌊(L+M)/(M+1)⌋, l2 = ⌊(L+N)/(N+1)⌋.
    let gap = GapRequirement::new(3, 4).unwrap();
    assert_eq!(gap.min_span(3), 9); // "a length-3 pattern spans at least 9"
    let gap = GapRequirement::new(9, 12).unwrap();
    assert_eq!(gap.l1(1000), 77);
    assert_eq!(gap.l2(1000), 100);
    assert_eq!(gap.flexibility(), 4);
}

#[test]
fn section41_n10_is_235_million() {
    // "The number of length-10 offset sequences N10 is about 235 million."
    let counts = OffsetCounts::new(1000, GapRequirement::new(9, 12).unwrap());
    let n10 = counts.n(10).to_u64().unwrap();
    assert_eq!(n10, 235_012_096);
    assert!((234_000_000..236_000_000).contains(&n10));
}

#[test]
fn section42_apriori_property_fails() {
    // "S = ACTTT … sup(P1 = AT) = 3 while sup(P2 = A) = 1"
    let s = Sequence::dna("ACTTT").unwrap();
    let gap = GapRequirement::new(1, 3).unwrap();
    assert_eq!(support_dp(&s, gap, &pat("AT")), 3);
    assert_eq!(support_dp(&s, gap, &pat("A")), 1);
}

#[test]
fn section42_table2_kr_values() {
    // "S = ACGTCCGT, the gap requirement is [1,2], and m = 2 …
    //  K = [2,1,2,1,0,0,0,0] … em = 2"
    let s = Sequence::dna("ACGTCCGT").unwrap();
    let gap = GapRequirement::new(1, 2).unwrap();
    let (krs, em) = kr_table(&s, gap, 2);
    assert_eq!(krs, vec![2, 1, 2, 1, 0, 0, 0, 0]);
    assert_eq!(em, 2);
}

#[test]
fn section51_pil_example() {
    // "if S = AACCGTT, P = ACT, [N,M] = [1,2], then PIL(P) = {(1,3),(2,2)}"
    let s = Sequence::dna("AACCGTT").unwrap();
    let gap = GapRequirement::new(1, 2).unwrap();
    let pils = Pil::build_all(&s, gap, 3);
    let pil = &pils[&pat("ACT")];
    assert_eq!(pil.entries(), &[(1, 3), (2, 2)]);
    assert_eq!(pil.support(), 5);
}

#[test]
fn section51_candidate_join() {
    // "P1 = ACG and P2 = CGT generate ACGT"
    assert_eq!(pat("ACG").join(&pat("CGT")), Some(pat("ACGT")));
}

#[test]
fn section7_class_arithmetic() {
    // "there are 4^8 = 65,536 possible length-8 patterns, among which
    //  2^8 = 256 contain only 'A's and 'T's, and 8×2×2^7 = 2,048 contain
    //  exactly one 'C' or 'G' … 63,232 … more than one"
    let (at, one, many) = perigap::analysis::composition::class_totals(8);
    assert_eq!((at, one, many), (256, 2_048, 63_232));
}

#[test]
fn section7_self_repeating_patterns() {
    // "we found periodic patterns that repeat themselves, such as
    //  ATATATATATA, GTAGTAGTAGT"
    assert!(pat("ATATATATATA").is_self_repeating());
    assert!(pat("GTAGTAGTAGT").is_self_repeating());
    // And the 16/17-G H. sapiens patterns are runs:
    assert!(Pattern::from_codes(vec![2; 17]).is_self_repeating());
}
