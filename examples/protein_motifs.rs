//! Mining periodic motifs from a protein sequence.
//!
//! The paper's motivating example for protein-scale periodicity is the
//! porcine ribonuclease inhibitor: alternating leucine-rich repeats of
//! 28/29 residues give the molecule its horseshoe shape. Here we build
//! a synthetic leucine-rich-repeat protein (a noisy tandem array of a
//! 28-residue unit) and mine it over the 20-letter amino-acid alphabet
//! with a gap requirement matching the repeat period.
//!
//! ```text
//! cargo run --release --example protein_motifs
//! ```

use perigap::prelude::*;
use perigap::seq::gen::mutate::{mutate, MutationConfig};
use perigap::seq::gen::tandem::tandem_repeat;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 28-residue leucine-rich repeat unit (L at the canonical
    // positions of the LxxLxLxxNxL consensus).
    let unit = Sequence::protein("LRELHLDGNKLTRIPAEVSNLTQMVKWD")?;
    // 12 copies with 5% substitution noise — like real LRR proteins,
    // the repeats are similar but not identical.
    let clean = tandem_repeat(&unit, 12, None);
    let mut rng = StdRng::seed_from_u64(2805);
    let (protein, summary) = mutate(&mut rng, &clean, MutationConfig::substitutions(0.05));
    println!(
        "synthetic LRR protein: {} residues, {} substitutions applied",
        protein.len(),
        summary.substitutions
    );

    // The repeat period is 28, so successive occurrences of a conserved
    // residue sit ≈ 27 wild-cards apart. A gap requirement [26, 28]
    // tolerates the indel-free jitter.
    let gap = GapRequirement::new(26, 28)?;
    let rho = 0.001;

    let outcome = mppm(&protein, gap, rho, /* m = */ 2, MppConfig::default())?;
    println!(
        "mined {} frequent periodic motifs (longest = {})\n",
        outcome.frequent.len(),
        outcome.longest_len()
    );

    // The leucine backbone should dominate: patterns of repeated L.
    let mut by_len: Vec<_> = outcome.frequent.iter().collect();
    by_len.sort_by_key(|f| std::cmp::Reverse(f.pattern.len()));
    println!("longest motifs (one character per 28-residue repeat):");
    for f in by_len.iter().take(10) {
        println!(
            "  {:<12} sup = {:<6} ratio = {:.4}",
            f.pattern.display(protein.alphabet()),
            f.support,
            f.ratio
        );
    }

    // The unit's hydrophobic core is L(4) H(5) L(6): with gap
    // flexibility ±1, chains can slide between those neighbouring
    // conserved offsets — the same tolerance the paper invokes for
    // indels within a period — so the long motifs are L/H words.
    let longest = outcome.longest_len();
    let long_total = outcome.count_of_length(longest);
    let long_core = outcome
        .of_length(longest)
        .filter(|f| {
            f.pattern
                .codes()
                .iter()
                .all(|&c| matches!(protein.alphabet().letter(c), b'L' | b'H'))
        })
        .count();
    println!(
        "\nevery conserved unit offset yields periodic motifs ({} in all); \
         the maximal ones (length {longest}) come {long_core}/{long_total} from the L/H core",
        outcome.frequent.len()
    );
    Ok(())
}
