//! Quickstart: mine periodic patterns with a gap requirement from a
//! small DNA sequence.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use perigap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example setting: a DNA sequence, a gap
    // requirement [N, M] between consecutive pattern characters, and a
    // support threshold rho.
    //
    // This toy sequence hides the periodic pattern A g(1,3) C g(1,3) G:
    // every "A..C.G"-shaped chain below is planted by construction.
    let seq = Sequence::dna(concat!(
        "ATTCAGTTACTCGGATCCAGTTACGCGATACCTGGTTAACCGG",
        "ATCAGGTACGCTGAATCCTGTAACGCGGTACCAGTTTACGCGA",
        "ATTCAGTTACTCGGATCCAGTTACGCGATACCTGGTTAACCGG",
    ))?;
    let gap = GapRequirement::new(1, 3)?;
    let rho = 0.002; // 0.2%

    // MPPm estimates the longest-pattern length automatically.
    let outcome = mppm(&seq, gap, rho, /* m = */ 4, MppConfig::default())?;

    println!(
        "mined {} frequent patterns (longest = {}, MPPm used n = {})",
        outcome.frequent.len(),
        outcome.longest_len(),
        outcome.stats.n_used
    );
    println!("\npattern            support  ratio");
    println!("-----------------  -------  ------");
    for f in outcome.frequent.iter().rev().take(15) {
        println!(
            "{:<17}  {:>7}  {:.4}",
            f.pattern.display_with_gaps(seq.alphabet(), gap),
            f.support,
            f.ratio
        );
    }

    // Every reported support can be independently re-checked against
    // the naive counter.
    let check = &outcome.frequent[outcome.frequent.len() - 1];
    let naive = perigap::core::naive::support_dp(&seq, gap, &check.pattern);
    assert_eq!(naive, check.support, "PIL and naive counts agree");
    println!(
        "\nverified sup({}) = {} against the naive reference counter",
        check.pattern.display(seq.alphabet()),
        naive
    );
    Ok(())
}
