//! The Section 7 case study in miniature: build synthetic bacterial
//! and eukaryote-like genomes, fragment them, mine each fragment with
//! MPPm, and compare the base composition of the frequent patterns.
//!
//! ```text
//! cargo run --release --example dna_case_study
//! ```

use perigap::analysis::casestudy::{run_case_study, CaseStudyConfig};
use perigap::analysis::composition::class_totals;
use perigap::analysis::report::TextTable;
use perigap::prelude::*;
use perigap::seq::gen::iid::weighted;
use perigap::seq::gen::periodic::{plant_periodic, PeriodicMotif};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a small genome: AT-rich background plus helical-period A/T
/// ladders; eukaryote-like genomes additionally get G-rich blocks.
fn genome(seed: u64, len: usize, g_rich: bool) -> Sequence {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = if g_rich {
        [0.28, 0.21, 0.23, 0.28]
    } else {
        [0.32, 0.18, 0.18, 0.32]
    };
    let mut seq = weighted(&mut rng, Alphabet::Dna, len, &weights);
    for _ in 0..(len / 400).max(2) {
        let motif: Vec<u8> = (0..12).map(|i| if i % 2 == 0 { 0 } else { 3 }).collect();
        let spec = PeriodicMotif {
            motif,
            gap_min: 10,
            gap_max: 12,
            occurrences: 1,
        };
        plant_periodic(&mut rng, &mut seq, &spec);
    }
    if g_rich {
        // One G-dominated block per ~2.5 kb — composition, not ladders,
        // is what makes G-run patterns frequent.
        for _ in 0..(len / 2500).max(1) {
            let block = weighted(&mut rng, Alphabet::Dna, 400, &[0.15, 0.15, 0.55, 0.15]);
            let start = rand::Rng::gen_range(&mut rng, 0..len - 400);
            let mut codes = seq.codes().to_vec();
            codes[start..start + 400].copy_from_slice(block.codes());
            seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        }
    }
    seq
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fragment width matters: the frequent/infrequent decision contrasts
    // a pattern class's mean support with a threshold ~1.7x above it,
    // and the relative variance of supports shrinks with fragment
    // length. The paper's 100 kb fragments make C/G-heavy patterns
    // reliably infrequent in bacteria; much below ~10 kb, composition
    // noise lets too many through.
    let config = CaseStudyConfig {
        fragment_width: 12_000,
        min_fragment: 6_000,
        gap: GapRequirement::new(10, 12)?,
        rho: 0.00006, // the paper's 0.006%
        m: 8,
        focal_length: 8,
    };
    let (at_total, one_total, many_total) = class_totals(8);
    println!("length-8 classes: {at_total} A/T-only, {one_total} one-C/G, {many_total} many-C/G\n");

    let genomes = [
        ("bacterium-1", genome(11, 36_000, false)),
        ("bacterium-2", genome(12, 36_000, false)),
        ("eukaryote-1", genome(21, 36_000, true)),
    ];

    let mut table = TextTable::new(&[
        "genome",
        "fragments",
        "mean A/T-only",
        "mean many-C/G",
        "ubiquitous A/T",
        "longest",
    ]);
    for (name, g) in &genomes {
        let report = run_case_study(name, g, &config)?;
        table.row(&[
            name.to_string(),
            report.fragments.len().to_string(),
            format!("{:.1}", report.mean_at_only()),
            format!("{:.1}", report.mean_many_cg()),
            report
                .ubiquitous()
                .iter()
                .filter(|p| {
                    use perigap::analysis::composition::{classify, CompositionClass};
                    classify(p) == CompositionClass::AtOnly
                })
                .count()
                .to_string(),
            report.longest().to_string(),
        ]);
        // Highlight G-runs, the eukaryote signature of the paper.
        let g_run = Pattern::parse("GGGGGGGG", &Alphabet::Dna)?;
        let has_g_run = report
            .fragments
            .iter()
            .any(|f| f.focal_patterns.contains(&g_run));
        if has_g_run {
            println!("note: {name} has fragments where GGGGGGGG is frequent");
        }
    }
    print!("\n{}", table.render());
    Ok(())
}
