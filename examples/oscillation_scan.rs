//! Choosing a gap requirement from the data: the base-pair oscillation
//! scan (the paper's introduction, Section 1).
//!
//! Before mining, compute the correlation statistic
//! `corr_ab(p) = n_ab(p)/(L−p) − pr(a)·pr(b)` across distances `p` to
//! find the dominant period, then mine with a gap requirement centred
//! on it — the workflow the paper motivates with the DNA helical turn.
//!
//! ```text
//! cargo run --release --example oscillation_scan
//! ```

use perigap::prelude::*;
use perigap::seq::gen::iid::weighted;
use perigap::seq::gen::periodic::{plant_periodic, PeriodicMotif};
use perigap::seq::oscillation::correlation_spectrum;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A genome with a hidden period-11 A/T signal.
    let mut rng = StdRng::seed_from_u64(1999);
    let mut seq = weighted(&mut rng, Alphabet::Dna, 12_000, &[0.3, 0.2, 0.2, 0.3]);
    for _ in 0..40 {
        let spec = PeriodicMotif {
            motif: vec![0; 12],
            gap_min: 10,
            gap_max: 10,
            occurrences: 1,
        };
        plant_periodic(&mut rng, &mut seq, &spec);
    }

    // Step 1: scan A→A correlations over distances 2..30.
    let spectrum = correlation_spectrum(&seq, 0, 0, 2, 30);
    println!("A→A oscillation spectrum:");
    for (i, v) in spectrum.values.iter().enumerate() {
        let p = spectrum.min_distance + i;
        let bar = "#".repeat(((v.max(0.0)) * 2000.0) as usize);
        println!("  p = {p:>2}  {v:>8.5}  {bar}");
    }
    let (peak, value) = spectrum.peak().expect("non-empty spectrum");
    println!("\npeak at distance {peak} (corr = {value:.5})");

    // Step 2: mine with a gap requirement centred on the peak
    // (distance p means p−1 wild-cards between the characters).
    let gap = GapRequirement::new(peak - 2, peak)?;
    let outcome = mppm(&seq, gap, 0.000_05, 4, MppConfig::default())?;
    println!(
        "\nmining with gap {gap}: {} frequent patterns, longest = {}",
        outcome.frequent.len(),
        outcome.longest_len()
    );
    for f in outcome.frequent.iter().rev().take(5) {
        println!(
            "  {:<14} sup = {:<8} ratio = {:.5}",
            f.pattern.display(seq.alphabet()),
            f.support,
            f.ratio
        );
    }
    Ok(())
}
