//! A production-shaped pipeline: mine, persist, reload, audit, and
//! contrast with the rigid-wildcard (TEIRESIAS-style) baseline.
//!
//! ```text
//! cargo run --release --example pipeline_persistence
//! ```

use perigap::core::rigid::{rigid_mine, RigidConfig};
use perigap::core::verify::verify_outcome;
use perigap::prelude::*;
use perigap::seq::gen::iid::weighted;
use perigap::seq::gen::periodic::{plant_periodic, PeriodicMotif};
use perigap::store::{load_outcome, load_sequence, save_outcome, save_sequence};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build an input with a planted flexible-gap motif: C A T at
    //    gaps that *vary* between 5 and 7 per occurrence.
    let mut rng = StdRng::seed_from_u64(7777);
    let mut genome = weighted(&mut rng, Alphabet::Dna, 4_000, &[0.3, 0.2, 0.2, 0.3]);
    let spec = PeriodicMotif {
        motif: vec![1, 0, 3],
        gap_min: 5,
        gap_max: 7,
        occurrences: 150,
    };
    plant_periodic(&mut rng, &mut genome, &spec);

    // 2. Persist the sequence (2-bit packed on disk).
    let dir = std::env::temp_dir();
    let seq_path = dir.join("perigap-example.seq.pgst");
    save_sequence(std::fs::File::create(&seq_path)?, &genome)?;
    let loaded_seq = load_sequence(std::fs::File::open(&seq_path)?)?;
    assert_eq!(loaded_seq, genome);
    let file_bytes = std::fs::metadata(&seq_path)?.len();
    println!(
        "sequence: {} bases persisted as {} bytes (2-bit packed + header + checksum)",
        genome.len(),
        file_bytes
    );

    // 3. Mine with flexible gaps and persist the outcome.
    let gap = GapRequirement::new(5, 7)?;
    let rho = 0.0003;
    let outcome = mppm(&loaded_seq, gap, rho, 4, MppConfig::default())?;
    let out_path = dir.join("perigap-example.out.pgst");
    save_outcome(std::fs::File::create(&out_path)?, &outcome, gap, rho)?;
    let reloaded = load_outcome(std::fs::File::open(&out_path)?)?;
    println!(
        "mined {} patterns (longest {}), persisted and reloaded losslessly",
        reloaded.outcome.frequent.len(),
        reloaded.outcome.longest_len()
    );

    // 4. Audit the reloaded outcome against the sequence from scratch.
    let problems = verify_outcome(&loaded_seq, reloaded.gap, reloaded.rho, &reloaded.outcome);
    assert!(problems.is_empty(), "audit found {problems:?}");
    println!("independent audit (naive recount + threshold recheck): clean");

    // 5. Contrast with the rigid-wildcard baseline: rigid patterns pin
    //    each wild-card run to one width, so a motif planted with
    //    *variable* gaps splits its support across C.....A, C......A, …
    //    while the flexible-gap miner pools it.
    let cat = Pattern::parse("CAT", &Alphabet::Dna)?;
    let flexible_sup = outcome.get(&cat).map(|f| f.support).unwrap_or(0);
    let rigid = rigid_mine(
        &loaded_seq,
        RigidConfig {
            density_l: 2,
            density_w: 8,
            min_support: 5,
            min_solids: 3,
            max_solids: 3,
        },
    )?;
    let best_rigid = rigid
        .iter()
        .filter(|r| {
            let solids: Vec<u8> = r.pattern.slots().iter().flatten().copied().collect();
            solids == [1, 0, 3]
        })
        .map(|r| r.support)
        .max()
        .unwrap_or(0);
    println!(
        "planted C·A·T motif: flexible-gap support {flexible_sup} vs best single rigid layout {best_rigid}"
    );
    assert!(
        flexible_sup as usize > best_rigid,
        "flexible gaps must pool what rigid wild-cards split"
    );

    std::fs::remove_file(&seq_path).ok();
    std::fs::remove_file(&out_path).ok();
    Ok(())
}
