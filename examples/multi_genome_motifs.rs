//! Cross-genome motif discovery with the multi-sequence extension,
//! plus a demonstration of why the paper's whole-sequence model beats
//! the windowed model of the related work.
//!
//! ```text
//! cargo run --release --example multi_genome_motifs
//! ```

use perigap::core::multiseq::mine_collection;
use perigap::core::windowed::{cross_window_loss, windowed_mine};
use perigap::prelude::*;
use perigap::seq::gen::iid::weighted;
use perigap::seq::gen::periodic::{plant_periodic, PeriodicMotif};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four "strains" sharing a conserved periodic motif (GACT at helical
    // spacing), each on its own random background.
    let shared_motif = vec![2u8, 0, 1, 3]; // G A C T
    let mut strains = Vec::new();
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let mut genome = weighted(&mut rng, Alphabet::Dna, 3_000, &[0.3, 0.2, 0.2, 0.3]);
        let spec = PeriodicMotif {
            motif: shared_motif.clone(),
            gap_min: 9,
            gap_max: 11,
            occurrences: 120,
        };
        plant_periodic(&mut rng, &mut genome, &spec);
        strains.push(genome);
    }
    let gap = GapRequirement::new(9, 11)?;
    let rho = 0.0002;

    // Patterns frequent in EVERY strain.
    let conserved = mine_collection(&strains, gap, rho, 4, 12, MppConfig::default())?;
    println!(
        "{} patterns are frequent in all 4 strains (longest = {}):",
        conserved.patterns.len(),
        conserved.longest_len()
    );
    let mut by_len: Vec<_> = conserved.patterns.iter().collect();
    by_len.sort_by_key(|p| std::cmp::Reverse(p.pattern.len()));
    for cp in by_len.iter().take(8) {
        println!(
            "  {:<8} supports per strain: {:?}",
            cp.pattern.display(&Alphabet::Dna),
            cp.supports
        );
    }
    let gact = Pattern::parse("GACT", &Alphabet::Dna)?;
    assert!(
        conserved.get(&gact).is_some(),
        "the planted GACT motif must be conserved across strains"
    );
    println!("\nplanted motif GACT recovered across all strains ✓");

    // The windowed-model contrast (related work, Section 2). With gap
    // [9,11], a length-4 pattern spans up to 4 + 3·11 = 37 characters
    // and a length-5 pattern at least 45 — so 40-base windows can
    // barely hold length-4 occurrences and can *never* hold longer
    // ones. The whole-sequence model has no such ceiling: "patterns
    // that span multiple windows cannot be discovered" is exactly what
    // the paper's ratio model fixes.
    let reference = mppm(&strains[0], gap, rho, 4, MppConfig::default())?;
    let window = 40;
    let windowed = windowed_mine(
        &strains[0],
        gap,
        window,
        2,
        MppConfig {
            max_level: Some(reference.longest_len().max(3)),
            ..MppConfig::default()
        },
    )?;
    let lost = cross_window_loss(&reference, &windowed);
    let lost_long = lost.iter().filter(|p| p.len() >= 5).count();
    let long_total = reference.frequent.iter().filter(|f| f.len() >= 5).count();
    println!(
        "\nwhole-sequence model: {} frequent patterns (longest {});",
        reference.frequent.len(),
        reference.longest_len()
    );
    println!(
        "windowed model ({} {window}-base windows): {} patterns visible, {} of the reference set lost",
        windowed.windows,
        windowed.patterns.len(),
        lost.len()
    );
    println!(
        "all {lost_long}/{long_total} reference patterns of length ≥ 5 are structurally \
         invisible to the windowed model (their minimum span exceeds the window)"
    );
    assert_eq!(lost_long, long_total);
    Ok(())
}
