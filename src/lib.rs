//! # perigap
//!
//! Facade crate for the *perigap* workspace — a Rust reproduction of
//! **"Mining Periodic Patterns with Gap Requirement from Sequences"**
//! (Minghua Zhang, Ben Kao, David W. Cheung, Kevin Y. Yip;
//! SIGMOD 2005).
//!
//! Re-exports the member crates under stable paths:
//!
//! * [`math`] — big integers, exact rationals, log-space floats;
//! * [`seq`] — alphabets, sequences, FASTA, synthetic generators;
//! * [`core`] — the mining algorithms (MPP, MPPm, baselines);
//! * [`analysis`] — case-study composition analysis and null models;
//! * [`store`] — versioned binary persistence with checksums;
//! * [`serve`] — the `pgmine serve` pattern-store daemon.
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `crates/bench/src/bin/repro.rs` for the paper-reproduction harness.

#![warn(missing_docs)]

pub use perigap_analysis as analysis;
pub use perigap_core as core;
pub use perigap_math as math;
pub use perigap_seq as seq;
pub use perigap_serve as serve;
pub use perigap_store as store;

/// Convenience prelude with the types almost every user needs.
pub mod prelude {
    pub use perigap_analysis::{CaseStudyConfig, GenomeReport};
    pub use perigap_core::adaptive::adaptive_mpp;
    pub use perigap_core::dfs::mpp_dfs;
    pub use perigap_core::mpp::{mpp, MppConfig};
    pub use perigap_core::mppm::{mppm, mppm_dfs};
    pub use perigap_core::multiseq::{mine_collection, CollectionOutcome};
    pub use perigap_core::parallel::mpp_parallel;
    pub use perigap_core::profile::{mine_with_profile, GapProfile};
    pub use perigap_core::rigid::{rigid_mine, RigidConfig, RigidPattern};
    pub use perigap_core::windowed::windowed_mine;
    pub use perigap_core::{
        FrequentPattern, GapRequirement, Kernel, MineError, MineOutcome, OffsetCounts, Pattern,
        Pil, PilRepr, ReprPolicy,
    };
    pub use perigap_seq::{Alphabet, Sequence};
}
