//! A small LRU cache of rendered response bodies for hot query/param
//! pairs.
//!
//! The daemon's answers are pure functions of the immutable index (plus
//! the mining source for the on-demand kinds), so a repeated query can
//! be answered from the previous rendering. The cache stores the
//! response *tail* — everything after the `{"ok": true` head — because
//! the head embeds the caller's `id` echo token, which must be
//! re-applied per request. Only `"ok": true` answers are stored; error
//! responses are cheap to recompute and would otherwise pin garbage
//! keys. `stats` (daemon counters change under it) and `shutdown` are
//! never cached.
//!
//! Eviction is least-recently-used over a small bounded list; with the
//! default capacity a linear scan beats any map overhead. Hit and miss
//! totals are process-wide atomics so the `stats` query and the
//! observer layer ([`perigap_core::trace::QueryStats`]) can report
//! them without taking the list lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default number of rendered responses a daemon keeps.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// A cached answer: the rendered response tail plus the row count the
/// observer should record.
#[derive(Clone, Debug)]
pub(crate) struct CachedAnswer {
    /// Response text after the `{"ok": true[, "id": …]` head.
    pub tail: String,
    /// Result rows the response carries.
    pub results: usize,
}

/// A bounded LRU cache of rendered response tails.
#[derive(Debug)]
pub struct ResponseCache {
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    /// LRU order: front is the coldest entry, back the hottest.
    entries: Mutex<Vec<(String, CachedAnswer)>>,
}

impl ResponseCache {
    /// A cache holding at most `cap` rendered responses. A zero `cap`
    /// disables storage but still counts every lookup as a miss.
    pub fn new(cap: usize) -> ResponseCache {
        ResponseCache {
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Total lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that had to recompute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Look up `key`, counting a hit or a miss and refreshing the
    /// entry's recency on a hit.
    pub(crate) fn lookup(&self, key: &str) -> Option<CachedAnswer> {
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match entries.iter().position(|(k, _)| k == key) {
            Some(pos) => {
                let entry = entries.remove(pos);
                let answer = entry.1.clone();
                entries.push(entry);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(answer)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store (or refresh) `key`, evicting the coldest entry at
    /// capacity.
    pub(crate) fn insert(&self, key: String, answer: CachedAnswer) {
        if self.cap == 0 {
            return;
        }
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(pos) = entries.iter().position(|(k, _)| k == &key) {
            entries.remove(pos);
        } else if entries.len() >= self.cap {
            entries.remove(0);
        }
        entries.push((key, answer));
    }
}

impl Default for ResponseCache {
    fn default() -> ResponseCache {
        ResponseCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(tail: &str) -> CachedAnswer {
        CachedAnswer {
            tail: tail.to_string(),
            results: 1,
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = ResponseCache::new(4);
        assert!(cache.lookup("a").is_none());
        cache.insert("a".to_string(), answer("x"));
        assert_eq!(cache.lookup("a").unwrap().tail, "x");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let cache = ResponseCache::new(2);
        cache.insert("a".to_string(), answer("1"));
        cache.insert("b".to_string(), answer("2"));
        // Touch `a` so `b` is now the coldest entry.
        assert!(cache.lookup("a").is_some());
        cache.insert("c".to_string(), answer("3"));
        assert!(cache.lookup("b").is_none(), "coldest entry evicted");
        assert!(cache.lookup("a").is_some());
        assert!(cache.lookup("c").is_some());
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let cache = ResponseCache::new(2);
        cache.insert("a".to_string(), answer("old"));
        cache.insert("a".to_string(), answer("new"));
        cache.insert("b".to_string(), answer("2"));
        assert_eq!(cache.lookup("a").unwrap().tail, "new");
        assert!(cache.lookup("b").is_some());
    }

    #[test]
    fn zero_capacity_stores_nothing_but_counts() {
        let cache = ResponseCache::new(0);
        cache.insert("a".to_string(), answer("x"));
        assert!(cache.lookup("a").is_none());
        assert_eq!(cache.misses(), 1);
    }
}
