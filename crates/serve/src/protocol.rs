//! The line-delimited JSON query protocol.
//!
//! One request per line, one response per line. Every request is a JSON
//! object with a `"q"` field naming the query kind; every response is a
//! JSON object whose first field is `"ok"`. An optional `"id"` (string
//! or integer) is echoed back verbatim so pipelining clients can match
//! responses to requests.
//!
//! Request kinds:
//!
//! | `q` | fields | answer |
//! |---|---|---|
//! | `support`  | `pattern` (text) | exact support of one pattern |
//! | `topk`     | `k` | the `k` highest-support patterns |
//! | `prefix`   | `prefix` (text), `limit`? | patterns starting with a prefix |
//! | `overlap`  | `a`, `b` (1-based offsets), `limit`? | patterns with an occurrence overlapping `[a, b]` |
//! | `stats`    | — | index and daemon counters |
//! | `shutdown` | — | acknowledge, then stop the daemon |
//!
//! Malformed input never kills a connection: the daemon answers
//! `{"ok": false, "error": "..."}` and keeps reading.

use perigap_core::trace::{escape_json, Json};
use perigap_core::Pattern;
use perigap_store::{IndexEntry, PatternIndex};

/// Row cap applied when a `prefix`/`overlap` request carries no
/// `limit`. The `total` field always reports the uncapped match count.
pub const DEFAULT_LIMIT: usize = 100;

/// Hard cap on one request line; longer input is a protocol error.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A parsed request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Exact support of one pattern.
    Support {
        /// Pattern text under the index alphabet.
        pattern: String,
    },
    /// The `k` highest-support patterns.
    TopK {
        /// How many rows.
        k: usize,
    },
    /// Patterns whose text starts with `prefix`.
    Prefix {
        /// Prefix text under the index alphabet.
        prefix: String,
        /// Row cap.
        limit: usize,
    },
    /// Patterns with an occurrence overlapping `[a, b]` (1-based).
    Overlap {
        /// Range start.
        a: u32,
        /// Range end.
        b: u32,
        /// Row cap.
        limit: usize,
    },
    /// Index and daemon counters.
    Stats,
    /// Stop the daemon.
    Shutdown,
}

/// A request plus its optional `id` echo token (kept as the raw JSON
/// rendering, so strings and integers round-trip without a value type).
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Pre-rendered JSON token to echo, when the request carried one.
    pub id: Option<String>,
    /// The query itself.
    pub request: Request,
}

/// What serving one line produced — the response to write back plus
/// what the observer should record about it.
#[derive(Clone, Debug)]
pub struct Served {
    /// The response line (no trailing newline).
    pub response: String,
    /// Query kind for metrics (`invalid` when the line didn't parse).
    pub kind: &'static str,
    /// Whether the response is an `"ok": true` one.
    pub ok: bool,
    /// Result rows carried by the response.
    pub results: usize,
    /// True when the request asked the daemon to stop.
    pub shutdown: bool,
}

fn field_usize(obj: &Json, key: &str) -> Result<Option<usize>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Envelope, String> {
    if line.len() > MAX_LINE_BYTES {
        return Err(format!("request line exceeds {MAX_LINE_BYTES} bytes"));
    }
    let obj = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let id = match obj.get("id") {
        None => None,
        Some(Json::Int(v)) => Some(v.to_string()),
        Some(Json::Str(s)) => Some(format!("\"{}\"", escape_json(s))),
        Some(_) => return Err("field \"id\" must be a string or integer".to_string()),
    };
    let q = obj
        .get("q")
        .and_then(Json::as_str)
        .ok_or("missing field \"q\" naming the query kind")?;
    let text_field = |key: &str| -> Result<String, String> {
        obj.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("query {q:?} needs a string field {key:?}"))
    };
    let request = match q {
        "support" => Request::Support {
            pattern: text_field("pattern")?,
        },
        "topk" => Request::TopK {
            k: field_usize(&obj, "k")?.ok_or("query \"topk\" needs an integer field \"k\"")?,
        },
        "prefix" => Request::Prefix {
            prefix: text_field("prefix")?,
            limit: field_usize(&obj, "limit")?.unwrap_or(DEFAULT_LIMIT),
        },
        "overlap" => {
            let bound = |key: &str| -> Result<u32, String> {
                let v = field_usize(&obj, key)?
                    .ok_or_else(|| format!("query \"overlap\" needs an integer field {key:?}"))?;
                u32::try_from(v).map_err(|_| format!("field {key:?} is out of range"))
            };
            let (a, b) = (bound("a")?, bound("b")?);
            if a == 0 || b < a {
                return Err("overlap range must satisfy 1 <= a <= b".to_string());
            }
            Request::Overlap {
                a,
                b,
                limit: field_usize(&obj, "limit")?.unwrap_or(DEFAULT_LIMIT),
            }
        }
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown query kind {other:?}")),
    };
    Ok(Envelope { id, request })
}

fn response_head(ok: bool, id: &Option<String>) -> String {
    match id {
        Some(token) => format!("{{\"ok\": {ok}, \"id\": {token}"),
        None => format!("{{\"ok\": {ok}"),
    }
}

fn error_response(id: &Option<String>, message: &str) -> String {
    format!(
        "{}, \"error\": \"{}\"}}",
        response_head(false, id),
        escape_json(message)
    )
}

/// A bare `{"ok": false, ...}` line for transport-level failures that
/// never reach a parsed request (oversized lines, closed pipes).
pub fn error_line(message: &str) -> String {
    error_response(&None, message)
}

fn entry_json(e: &IndexEntry, index: &PatternIndex) -> String {
    format!(
        "{{\"pattern\": \"{}\", \"support\": {}, \"ratio\": {}}}",
        escape_json(&e.display(index.alphabet())),
        e.support,
        json_f64(e.ratio)
    )
}

/// Render a finite float as a JSON number (`NaN`/`inf` cannot occur in
/// supports or thresholds, but clamp to `null` rather than emit invalid
/// JSON if they ever did).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn rows_response(
    id: &Option<String>,
    rows: &[&IndexEntry],
    total: usize,
    index: &PatternIndex,
) -> String {
    let rendered: Vec<String> = rows.iter().map(|e| entry_json(e, index)).collect();
    format!(
        "{}, \"total\": {total}, \"patterns\": [{}]}}",
        response_head(true, id),
        rendered.join(", ")
    )
}

/// Serve one request line against the index. `backend` and `queries`
/// feed the `stats` response; `queries` should count requests served so
/// far on this daemon.
pub fn serve_line(index: &PatternIndex, backend: &str, queries: u64, line: &str) -> Served {
    let envelope = match parse_request(line) {
        Ok(envelope) => envelope,
        Err(message) => {
            return Served {
                response: error_response(&None, &message),
                kind: "invalid",
                ok: false,
                results: 0,
                shutdown: false,
            }
        }
    };
    let id = &envelope.id;
    let (kind, outcome) = match &envelope.request {
        Request::Support { pattern } => {
            ("support", match Pattern::parse(pattern, index.alphabet()) {
                Err(e) => Err(format!("bad pattern {pattern:?}: {e}")),
                Ok(p) => match index.support(p.codes()) {
                    Some(e) => Ok((
                        format!(
                            "{}, \"found\": true, \"pattern\": \"{}\", \"support\": {}, \"ratio\": {}}}",
                            response_head(true, id),
                            escape_json(pattern),
                            e.support,
                            json_f64(e.ratio)
                        ),
                        1,
                    )),
                    None => Ok((
                        format!(
                            "{}, \"found\": false, \"pattern\": \"{}\"}}",
                            response_head(true, id),
                            escape_json(pattern)
                        ),
                        0,
                    )),
                },
            })
        }
        Request::TopK { k } => {
            let rows: Vec<&IndexEntry> = index.top_k(*k).collect();
            let n = rows.len();
            ("topk", Ok((rows_response(id, &rows, n, index), n)))
        }
        Request::Prefix { prefix, limit } => {
            // An empty prefix matches everything; otherwise it must
            // parse under the index alphabet.
            let codes = if prefix.is_empty() {
                Ok(Vec::new())
            } else {
                Pattern::parse(prefix, index.alphabet())
                    .map(|p| p.codes().to_vec())
                    .map_err(|e| format!("bad prefix {prefix:?}: {e}"))
            };
            ("prefix", codes.map(|codes| {
                let (rows, total) = index.prefix(&codes, *limit);
                let n = rows.len();
                (rows_response(id, &rows, total, index), n)
            }))
        }
        Request::Overlap { a, b, limit } => {
            ("overlap", match index.overlap(*a, *b, *limit) {
                None => Err(
                    "overlap queries unavailable: the index was loaded without the subject \
                     sequence (serve a mine, or pass the sequence alongside the store file)"
                        .to_string(),
                ),
                Some((rows, total)) => {
                    let n = rows.len();
                    Ok((rows_response(id, &rows, total, index), n))
                }
            })
        }
        Request::Stats => {
            let gap = index.gap();
            ("stats", Ok((
                format!(
                    "{}, \"patterns\": {}, \"gap_min\": {}, \"gap_max\": {}, \"rho\": {}, \
                     \"n_used\": {}, \"occurrences\": {}, \"queries\": {}, \"backend\": \"{}\"}}",
                    response_head(true, id),
                    index.len(),
                    gap.min(),
                    gap.max(),
                    json_f64(index.rho()),
                    index.n_used(),
                    index.has_occurrences(),
                    queries,
                    escape_json(backend)
                ),
                1,
            )))
        }
        Request::Shutdown => (
            "shutdown",
            Ok((
                format!("{}, \"stopping\": true}}", response_head(true, id)),
                0,
            )),
        ),
    };
    match outcome {
        Ok((response, results)) => Served {
            response,
            kind,
            ok: true,
            results,
            shutdown: matches!(envelope.request, Request::Shutdown),
        },
        Err(message) => Served {
            response: error_response(id, &message),
            kind,
            ok: false,
            results: 0,
            shutdown: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_core::mpp::{mpp, MppConfig};
    use perigap_core::GapRequirement;
    use perigap_seq::{Alphabet, Sequence};
    use perigap_store::LoadedOutcome;

    fn index(with_seq: bool) -> PatternIndex {
        let seq = Sequence::dna(&"ACGT".repeat(25)).unwrap();
        let gap = GapRequirement::new(0, 2).unwrap();
        let outcome = mpp(&seq, gap, 0.001, 8, MppConfig::default()).unwrap();
        assert!(!outcome.frequent.is_empty());
        let loaded = LoadedOutcome {
            outcome,
            gap,
            rho: 0.001,
        };
        PatternIndex::build(&loaded, Alphabet::Dna, with_seq.then_some(&seq))
    }

    #[test]
    fn requests_parse_and_ids_echo() {
        let env = parse_request(r#"{"q": "topk", "k": 3, "id": 7}"#).unwrap();
        assert_eq!(env.id.as_deref(), Some("7"));
        assert_eq!(env.request, Request::TopK { k: 3 });

        let env = parse_request(r#"{"q": "prefix", "prefix": "AC", "id": "x"}"#).unwrap();
        assert_eq!(env.id.as_deref(), Some("\"x\""));
        assert_eq!(
            env.request,
            Request::Prefix {
                prefix: "AC".to_string(),
                limit: DEFAULT_LIMIT
            }
        );

        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"q": "overlap", "a": 0, "b": 4}"#).is_err());
        assert!(parse_request(r#"{"q": "overlap", "a": 9, "b": 4}"#).is_err());
        assert!(parse_request(r#"{"q": "nope"}"#).is_err());
        assert!(parse_request(r#"{"k": 3}"#).is_err());
    }

    #[test]
    fn responses_are_valid_json_and_carry_results() {
        let idx = index(true);
        for (line, want_ok) in [
            (r#"{"q": "support", "pattern": "A"}"#, true),
            (r#"{"q": "support", "pattern": "zz"}"#, false),
            (r#"{"q": "topk", "k": 4}"#, true),
            (r#"{"q": "prefix", "prefix": "AC"}"#, true),
            (r#"{"q": "prefix", "prefix": ""}"#, true),
            (r#"{"q": "overlap", "a": 1, "b": 20}"#, true),
            (r#"{"q": "stats"}"#, true),
            (r#"{"q": "shutdown"}"#, true),
            ("garbage", false),
        ] {
            let served = serve_line(&idx, "memory:test", 0, line);
            let parsed = Json::parse(&served.response)
                .unwrap_or_else(|e| panic!("invalid response for {line}: {e}"));
            assert_eq!(
                parsed.get("ok").and_then(Json::as_bool),
                Some(want_ok),
                "{line} -> {}",
                served.response
            );
            assert_eq!(served.ok, want_ok);
        }
        let stopping = serve_line(&idx, "memory:test", 0, r#"{"q": "shutdown"}"#);
        assert!(stopping.shutdown);
    }

    #[test]
    fn overlap_without_occurrences_is_a_typed_refusal() {
        let idx = index(false);
        let served = serve_line(&idx, "file:x", 0, r#"{"q": "overlap", "a": 1, "b": 5}"#);
        assert!(!served.ok);
        assert!(served.response.contains("unavailable"));
        assert_eq!(served.kind, "overlap");
    }

    #[test]
    fn oversized_line_is_rejected_before_parsing() {
        let line = format!(
            "{{\"q\": \"support\", \"pattern\": \"{}\"}}",
            "A".repeat(MAX_LINE_BYTES)
        );
        let served = serve_line(&index(false), "b", 0, &line);
        assert!(!served.ok);
        assert!(served.response.contains("exceeds"));
    }
}
