//! The line-delimited JSON query protocol.
//!
//! One request per line, one response per line. Every request is a JSON
//! object with a `"q"` field naming the query kind; every response is a
//! JSON object whose first field is `"ok"`. An optional `"id"` (string
//! or integer) is echoed back verbatim so pipelining clients can match
//! responses to requests.
//!
//! A line whose first byte is `[` is a **batch**: a JSON array of
//! request objects, answered with a JSON array of response objects in
//! the same order, each carrying its own `id` echo. A malformed element
//! yields an error object in its slot without failing the rest.
//!
//! Request kinds:
//!
//! | `q` | fields | answer |
//! |---|---|---|
//! | `support`  | `pattern` (text) | exact support of one pattern |
//! | `topk`     | `k` | the `k` highest-support patterns |
//! | `prefix`   | `prefix` (text), `limit`? | patterns starting with a prefix |
//! | `overlap`  | `a`, `b` (1-based offsets), `limit`? | patterns with an occurrence overlapping `[a, b]` |
//! | `mine_topk` | `k` | mine the sequence on demand under a rising top-k support floor |
//! | `mine_target` | `target` (text), `limit`? | mine on demand restricted to a pattern prefix |
//! | `stats`    | — | index and daemon counters |
//! | `shutdown` | — | acknowledge, then stop the daemon |
//!
//! The `mine_*` kinds re-run the engine against the subject sequence
//! with the index's gap/threshold parameters, so they answer even when
//! the served store holds a differently-filtered set; they require the
//! daemon to have been started with the sequence (like `overlap`) and
//! refuse with a typed error otherwise.
//!
//! Malformed input never kills a connection: the daemon answers
//! `{"ok": false, "error": "..."}` and keeps reading.

use crate::cache::{CachedAnswer, ResponseCache};
use perigap_core::mpp::{mpp, MppConfig};
use perigap_core::trace::{escape_json, Json};
use perigap_core::{FrequentPattern, Pattern, PruneMode, TargetSpec};
use perigap_seq::Sequence;
use perigap_store::{IndexEntry, PatternIndex};

/// Row cap applied when a `prefix`/`overlap`/`mine_target` request
/// carries no `limit`. The `total` field always reports the uncapped
/// match count.
pub const DEFAULT_LIMIT: usize = 100;

/// Hard cap on one request line; longer input is a protocol error.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A parsed request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Exact support of one pattern.
    Support {
        /// Pattern text under the index alphabet.
        pattern: String,
    },
    /// The `k` highest-support patterns.
    TopK {
        /// How many rows.
        k: usize,
    },
    /// Patterns whose text starts with `prefix`.
    Prefix {
        /// Prefix text under the index alphabet.
        prefix: String,
        /// Row cap.
        limit: usize,
    },
    /// Patterns with an occurrence overlapping `[a, b]` (1-based).
    Overlap {
        /// Range start.
        a: u32,
        /// Range end.
        b: u32,
        /// Row cap.
        limit: usize,
    },
    /// Mine the subject sequence on demand under a top-k support floor.
    MineTopK {
        /// How many best-supported patterns to keep.
        k: usize,
    },
    /// Mine the subject sequence on demand, restricted to patterns
    /// starting with a prefix.
    MineTarget {
        /// Prefix text under the index alphabet.
        target: String,
        /// Row cap on the response (the mine itself is uncapped).
        limit: usize,
    },
    /// Index and daemon counters.
    Stats,
    /// Stop the daemon.
    Shutdown,
}

/// A request plus its optional `id` echo token (kept as the raw JSON
/// rendering, so strings and integers round-trip without a value type).
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Pre-rendered JSON token to echo, when the request carried one.
    pub id: Option<String>,
    /// The query itself.
    pub request: Request,
}

/// What serving one request produced — the response to write back plus
/// what the observer should record about it.
#[derive(Clone, Debug)]
pub struct Served {
    /// The response line (no trailing newline).
    pub response: String,
    /// Query kind for metrics (`invalid` when the line didn't parse).
    pub kind: &'static str,
    /// Whether the response is an `"ok": true` one.
    pub ok: bool,
    /// Result rows carried by the response.
    pub results: usize,
    /// True when the request asked the daemon to stop.
    pub shutdown: bool,
    /// `Some(true)` when answered from the response cache, `Some(false)`
    /// when a cacheable request missed, `None` when the request kind is
    /// uncacheable or no cache was configured.
    pub cache: Option<bool>,
}

/// Everything `serve_request_line` answers from. The plain
/// [`serve_line`] entry point wraps an index alone; the daemon supplies
/// the subject sequence (enabling the `mine_*` kinds) and a response
/// cache on top.
pub struct ServeContext<'a> {
    /// The immutable pattern index.
    pub index: &'a PatternIndex,
    /// Backend label reported by `stats`.
    pub backend: &'a str,
    /// Requests served so far, reported by `stats`.
    pub queries: u64,
    /// The subject sequence, when the daemon holds it; `None` refuses
    /// the `mine_*` kinds with a typed error.
    pub source: Option<&'a Sequence>,
    /// Rendered-response cache, when the daemon keeps one.
    pub cache: Option<&'a ResponseCache>,
}

/// What one input line produced: a single answer, or a batch of
/// answers to be joined into one array response line.
pub enum LineOutcome {
    /// The line held one request object.
    Single(Served),
    /// The line held a JSON array of request objects; one [`Served`]
    /// per element, in order. Join with [`batch_response`].
    Batch(Vec<Served>),
}

fn field_usize(obj: &Json, key: &str) -> Result<Option<usize>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Envelope, String> {
    if line.len() > MAX_LINE_BYTES {
        return Err(format!("request line exceeds {MAX_LINE_BYTES} bytes"));
    }
    let obj = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    parse_envelope(&obj)
}

/// Parse one request object (already decoded from JSON). Batch elements
/// and single lines share this path.
pub fn parse_envelope(obj: &Json) -> Result<Envelope, String> {
    let id = match obj.get("id") {
        None => None,
        Some(Json::Int(v)) => Some(v.to_string()),
        Some(Json::Str(s)) => Some(format!("\"{}\"", escape_json(s))),
        Some(_) => return Err("field \"id\" must be a string or integer".to_string()),
    };
    let q = obj
        .get("q")
        .and_then(Json::as_str)
        .ok_or("missing field \"q\" naming the query kind")?;
    let text_field = |key: &str| -> Result<String, String> {
        obj.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("query {q:?} needs a string field {key:?}"))
    };
    let request = match q {
        "support" => Request::Support {
            pattern: text_field("pattern")?,
        },
        "topk" => Request::TopK {
            k: field_usize(obj, "k")?.ok_or("query \"topk\" needs an integer field \"k\"")?,
        },
        "prefix" => Request::Prefix {
            prefix: text_field("prefix")?,
            limit: field_usize(obj, "limit")?.unwrap_or(DEFAULT_LIMIT),
        },
        "overlap" => {
            let bound = |key: &str| -> Result<u32, String> {
                let v = field_usize(obj, key)?
                    .ok_or_else(|| format!("query \"overlap\" needs an integer field {key:?}"))?;
                u32::try_from(v).map_err(|_| format!("field {key:?} is out of range"))
            };
            let (a, b) = (bound("a")?, bound("b")?);
            if a == 0 || b < a {
                return Err("overlap range must satisfy 1 <= a <= b".to_string());
            }
            Request::Overlap {
                a,
                b,
                limit: field_usize(obj, "limit")?.unwrap_or(DEFAULT_LIMIT),
            }
        }
        "mine_topk" => {
            let k =
                field_usize(obj, "k")?.ok_or("query \"mine_topk\" needs an integer field \"k\"")?;
            if k == 0 {
                return Err("query \"mine_topk\" needs k >= 1".to_string());
            }
            Request::MineTopK { k }
        }
        "mine_target" => {
            let target = text_field("target")?;
            if target.is_empty() {
                return Err("query \"mine_target\" needs a non-empty \"target\"".to_string());
            }
            Request::MineTarget {
                target,
                limit: field_usize(obj, "limit")?.unwrap_or(DEFAULT_LIMIT),
            }
        }
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown query kind {other:?}")),
    };
    Ok(Envelope { id, request })
}

fn response_head(ok: bool, id: &Option<String>) -> String {
    match id {
        Some(token) => format!("{{\"ok\": {ok}, \"id\": {token}"),
        None => format!("{{\"ok\": {ok}"),
    }
}

fn error_response(id: &Option<String>, message: &str) -> String {
    format!(
        "{}, \"error\": \"{}\"}}",
        response_head(false, id),
        escape_json(message)
    )
}

/// A bare `{"ok": false, ...}` line for transport-level failures that
/// never reach a parsed request (oversized lines, closed pipes).
pub fn error_line(message: &str) -> String {
    error_response(&None, message)
}

fn entry_json(e: &IndexEntry, index: &PatternIndex) -> String {
    format!(
        "{{\"pattern\": \"{}\", \"support\": {}, \"ratio\": {}}}",
        escape_json(&e.display(index.alphabet())),
        e.support,
        json_f64(e.ratio)
    )
}

fn mined_json(f: &FrequentPattern, index: &PatternIndex) -> String {
    format!(
        "{{\"pattern\": \"{}\", \"support\": {}, \"ratio\": {}}}",
        escape_json(&f.pattern.display(index.alphabet())),
        f.support,
        json_f64(f.ratio)
    )
}

/// Render a finite float as a JSON number (`NaN`/`inf` cannot occur in
/// supports or thresholds, but clamp to `null` rather than emit invalid
/// JSON if they ever did).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn rows_tail(rows: &[&IndexEntry], total: usize, index: &PatternIndex) -> String {
    let rendered: Vec<String> = rows.iter().map(|e| entry_json(e, index)).collect();
    format!(
        ", \"total\": {total}, \"patterns\": [{}]}}",
        rendered.join(", ")
    )
}

/// The metrics kind label for a request.
fn kind_of(request: &Request) -> &'static str {
    match request {
        Request::Support { .. } => "support",
        Request::TopK { .. } => "topk",
        Request::Prefix { .. } => "prefix",
        Request::Overlap { .. } => "overlap",
        Request::MineTopK { .. } => "mine_topk",
        Request::MineTarget { .. } => "mine_target",
        Request::Stats => "stats",
        Request::Shutdown => "shutdown",
    }
}

/// The cache key for a request, `None` for uncacheable kinds. `stats`
/// answers from live daemon counters and `shutdown` has a side effect,
/// so only the pure index/mine lookups are keyed.
fn cache_key(request: &Request) -> Option<String> {
    match request {
        Request::Support { pattern } => Some(format!("support\u{0}{pattern}")),
        Request::TopK { k } => Some(format!("topk\u{0}{k}")),
        Request::Prefix { prefix, limit } => Some(format!("prefix\u{0}{prefix}\u{0}{limit}")),
        Request::Overlap { a, b, limit } => Some(format!("overlap\u{0}{a}\u{0}{b}\u{0}{limit}")),
        Request::MineTopK { k } => Some(format!("mine_topk\u{0}{k}")),
        Request::MineTarget { target, limit } => {
            Some(format!("mine_target\u{0}{target}\u{0}{limit}"))
        }
        Request::Stats | Request::Shutdown => None,
    }
}

/// Answer a request with the response tail (everything after the
/// `{"ok": true` head) and the row count, or a typed error message.
fn answer(ctx: &ServeContext<'_>, request: &Request) -> Result<(String, usize), String> {
    let index = ctx.index;
    match request {
        Request::Support { pattern } => match Pattern::parse(pattern, index.alphabet()) {
            Err(e) => Err(format!("bad pattern {pattern:?}: {e}")),
            Ok(p) => match index.support(p.codes()) {
                Some(e) => Ok((
                    format!(
                        ", \"found\": true, \"pattern\": \"{}\", \"support\": {}, \"ratio\": {}}}",
                        escape_json(pattern),
                        e.support,
                        json_f64(e.ratio)
                    ),
                    1,
                )),
                None => Ok((
                    format!(
                        ", \"found\": false, \"pattern\": \"{}\"}}",
                        escape_json(pattern)
                    ),
                    0,
                )),
            },
        },
        Request::TopK { k } => {
            let rows: Vec<&IndexEntry> = index.top_k(*k).collect();
            let n = rows.len();
            Ok((rows_tail(&rows, n, index), n))
        }
        Request::Prefix { prefix, limit } => {
            // An empty prefix matches everything; otherwise it must
            // parse under the index alphabet.
            let codes = if prefix.is_empty() {
                Vec::new()
            } else {
                Pattern::parse(prefix, index.alphabet())
                    .map(|p| p.codes().to_vec())
                    .map_err(|e| format!("bad prefix {prefix:?}: {e}"))?
            };
            let (rows, total) = index.prefix(&codes, *limit);
            let n = rows.len();
            Ok((rows_tail(&rows, total, index), n))
        }
        Request::Overlap { a, b, limit } => match index.overlap(*a, *b, *limit) {
            None => Err(
                "overlap queries unavailable: the index was loaded without the subject \
                 sequence (serve a mine, or pass the sequence alongside the store file)"
                    .to_string(),
            ),
            Some((rows, total)) => {
                let n = rows.len();
                Ok((rows_tail(&rows, total, index), n))
            }
        },
        Request::MineTopK { k } => {
            let seq = mine_source(ctx)?;
            let config = MppConfig {
                prune: PruneMode::top_k(*k),
                ..MppConfig::default()
            };
            let outcome = mpp(seq, index.gap(), index.rho(), index.n_used(), config)
                .map_err(|e| format!("mine failed: {e}"))?;
            let rendered: Vec<String> = outcome
                .frequent
                .iter()
                .map(|f| mined_json(f, index))
                .collect();
            let n = rendered.len();
            Ok((
                format!(
                    ", \"floor_raises\": {}, \"pruned_by_floor\": {}, \"total\": {n}, \
                     \"patterns\": [{}]}}",
                    outcome.stats.floor_raises,
                    outcome.stats.pruned_by_floor,
                    rendered.join(", ")
                ),
                n,
            ))
        }
        Request::MineTarget { target, limit } => {
            let seq = mine_source(ctx)?;
            let prefix = Pattern::parse(target, index.alphabet())
                .map_err(|e| format!("bad target {target:?}: {e}"))?;
            let config = MppConfig {
                prune: PruneMode::targeted(TargetSpec::Prefix(prefix.codes().to_vec())),
                ..MppConfig::default()
            };
            let outcome = mpp(seq, index.gap(), index.rho(), index.n_used(), config)
                .map_err(|e| format!("mine failed: {e}"))?;
            let total = outcome.frequent.len();
            let rendered: Vec<String> = outcome
                .frequent
                .iter()
                .take(*limit)
                .map(|f| mined_json(f, index))
                .collect();
            let n = rendered.len();
            Ok((
                format!(
                    ", \"pruned_by_target\": {}, \"total\": {total}, \"patterns\": [{}]}}",
                    outcome.stats.pruned_by_target,
                    rendered.join(", ")
                ),
                n,
            ))
        }
        Request::Stats => {
            let gap = index.gap();
            let cache = match ctx.cache {
                Some(cache) => format!(
                    ", \"cache_hits\": {}, \"cache_misses\": {}",
                    cache.hits(),
                    cache.misses()
                ),
                None => String::new(),
            };
            Ok((
                format!(
                    ", \"patterns\": {}, \"gap_min\": {}, \"gap_max\": {}, \"rho\": {}, \
                     \"n_used\": {}, \"occurrences\": {}, \"queries\": {}{cache}, \
                     \"backend\": \"{}\"}}",
                    index.len(),
                    gap.min(),
                    gap.max(),
                    json_f64(index.rho()),
                    index.n_used(),
                    index.has_occurrences(),
                    ctx.queries,
                    escape_json(ctx.backend)
                ),
                1,
            ))
        }
        Request::Shutdown => Ok((", \"stopping\": true}".to_string(), 0)),
    }
}

fn mine_source<'a>(ctx: &ServeContext<'a>) -> Result<&'a Sequence, String> {
    ctx.source.ok_or_else(|| {
        "mine queries unavailable: the daemon was started without the subject sequence \
         (serve a mine, or pass the sequence alongside the store file)"
            .to_string()
    })
}

/// Serve one parsed request, consulting the context's cache when the
/// kind is cacheable.
pub fn serve_envelope(ctx: &ServeContext<'_>, envelope: Envelope) -> Served {
    let kind = kind_of(&envelope.request);
    let id = &envelope.id;
    let key = match ctx.cache {
        Some(_) => cache_key(&envelope.request),
        None => None,
    };
    if let (Some(cache), Some(key)) = (ctx.cache, key.as_deref()) {
        if let Some(hit) = cache.lookup(key) {
            return Served {
                response: format!("{}{}", response_head(true, id), hit.tail),
                kind,
                ok: true,
                results: hit.results,
                shutdown: false,
                cache: Some(true),
            };
        }
    }
    let cacheable = key.is_some();
    match answer(ctx, &envelope.request) {
        Ok((tail, results)) => {
            if let (Some(cache), Some(key)) = (ctx.cache, key) {
                cache.insert(
                    key,
                    CachedAnswer {
                        tail: tail.clone(),
                        results,
                    },
                );
            }
            Served {
                response: format!("{}{}", response_head(true, id), tail),
                kind,
                ok: true,
                results,
                shutdown: matches!(envelope.request, Request::Shutdown),
                cache: cacheable.then_some(false),
            }
        }
        Err(message) => Served {
            response: error_response(id, &message),
            kind,
            ok: false,
            results: 0,
            shutdown: false,
            cache: cacheable.then_some(false),
        },
    }
}

fn invalid(message: &str) -> Served {
    Served {
        response: error_response(&None, message),
        kind: "invalid",
        ok: false,
        results: 0,
        shutdown: false,
        cache: None,
    }
}

fn serve_single(ctx: &ServeContext<'_>, line: &str) -> Served {
    match parse_request(line) {
        Ok(envelope) => serve_envelope(ctx, envelope),
        Err(message) => invalid(&message),
    }
}

/// Serve one input line against a full context: a `[`-prefixed line is
/// a batch (one [`Served`] per element), anything else a single
/// request.
pub fn serve_request_line(ctx: &ServeContext<'_>, line: &str) -> LineOutcome {
    if line.trim_start().starts_with('[') {
        LineOutcome::Batch(serve_batch(ctx, line))
    } else {
        LineOutcome::Single(serve_single(ctx, line))
    }
}

fn serve_batch(ctx: &ServeContext<'_>, line: &str) -> Vec<Served> {
    if line.len() > MAX_LINE_BYTES {
        return vec![invalid(&format!(
            "request line exceeds {MAX_LINE_BYTES} bytes"
        ))];
    }
    let items = match Json::parse(line) {
        Err(e) => return vec![invalid(&format!("bad JSON: {e}"))],
        Ok(value) => match value {
            Json::Arr(items) => items,
            _ => return vec![invalid("batch line must be a JSON array")],
        },
    };
    if items.is_empty() {
        return vec![invalid("batch must contain at least one request")];
    }
    items
        .iter()
        .map(|item| match parse_envelope(item) {
            Ok(envelope) => serve_envelope(ctx, envelope),
            Err(message) => invalid(&message),
        })
        .collect()
}

/// Join per-element answers into the one-line array response a batch
/// request is answered with.
pub fn batch_response(served: &[Served]) -> String {
    let rows: Vec<&str> = served.iter().map(|s| s.response.as_str()).collect();
    format!("[{}]", rows.join(", "))
}

/// Serve one request line against the index alone. `backend` and
/// `queries` feed the `stats` response; `queries` should count requests
/// served so far on this daemon. This entry point has no mining source
/// and no cache — the daemon's connection handler uses
/// [`serve_request_line`] with a full [`ServeContext`] instead.
pub fn serve_line(index: &PatternIndex, backend: &str, queries: u64, line: &str) -> Served {
    let ctx = ServeContext {
        index,
        backend,
        queries,
        source: None,
        cache: None,
    };
    serve_single(&ctx, line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_core::mpp::{mpp, MppConfig};
    use perigap_core::{select_top_k, GapRequirement};
    use perigap_seq::{Alphabet, Sequence};
    use perigap_store::LoadedOutcome;

    fn subject() -> (Sequence, GapRequirement, f64, usize) {
        let seq = Sequence::dna(&"ACGT".repeat(25)).unwrap();
        let gap = GapRequirement::new(0, 2).unwrap();
        (seq, gap, 0.001, 8)
    }

    fn index(with_seq: bool) -> PatternIndex {
        let (seq, gap, rho, n) = subject();
        let outcome = mpp(&seq, gap, rho, n, MppConfig::default()).unwrap();
        assert!(!outcome.frequent.is_empty());
        let loaded = LoadedOutcome { outcome, gap, rho };
        PatternIndex::build(&loaded, Alphabet::Dna, with_seq.then_some(&seq))
    }

    fn full_ctx<'a>(
        idx: &'a PatternIndex,
        seq: &'a Sequence,
        cache: &'a ResponseCache,
    ) -> ServeContext<'a> {
        ServeContext {
            index: idx,
            backend: "memory:test",
            queries: 0,
            source: Some(seq),
            cache: Some(cache),
        }
    }

    fn single(outcome: LineOutcome) -> Served {
        match outcome {
            LineOutcome::Single(served) => served,
            LineOutcome::Batch(_) => panic!("expected a single response"),
        }
    }

    #[test]
    fn requests_parse_and_ids_echo() {
        let env = parse_request(r#"{"q": "topk", "k": 3, "id": 7}"#).unwrap();
        assert_eq!(env.id.as_deref(), Some("7"));
        assert_eq!(env.request, Request::TopK { k: 3 });

        let env = parse_request(r#"{"q": "prefix", "prefix": "AC", "id": "x"}"#).unwrap();
        assert_eq!(env.id.as_deref(), Some("\"x\""));
        assert_eq!(
            env.request,
            Request::Prefix {
                prefix: "AC".to_string(),
                limit: DEFAULT_LIMIT
            }
        );

        let env = parse_request(r#"{"q": "mine_topk", "k": 5}"#).unwrap();
        assert_eq!(env.request, Request::MineTopK { k: 5 });
        let env = parse_request(r#"{"q": "mine_target", "target": "AC"}"#).unwrap();
        assert_eq!(
            env.request,
            Request::MineTarget {
                target: "AC".to_string(),
                limit: DEFAULT_LIMIT
            }
        );

        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"q": "overlap", "a": 0, "b": 4}"#).is_err());
        assert!(parse_request(r#"{"q": "overlap", "a": 9, "b": 4}"#).is_err());
        assert!(parse_request(r#"{"q": "nope"}"#).is_err());
        assert!(parse_request(r#"{"k": 3}"#).is_err());
        assert!(parse_request(r#"{"q": "mine_topk", "k": 0}"#).is_err());
        assert!(parse_request(r#"{"q": "mine_target", "target": ""}"#).is_err());
    }

    #[test]
    fn responses_are_valid_json_and_carry_results() {
        let idx = index(true);
        for (line, want_ok) in [
            (r#"{"q": "support", "pattern": "A"}"#, true),
            (r#"{"q": "support", "pattern": "zz"}"#, false),
            (r#"{"q": "topk", "k": 4}"#, true),
            (r#"{"q": "prefix", "prefix": "AC"}"#, true),
            (r#"{"q": "prefix", "prefix": ""}"#, true),
            (r#"{"q": "overlap", "a": 1, "b": 20}"#, true),
            (r#"{"q": "stats"}"#, true),
            (r#"{"q": "shutdown"}"#, true),
            ("garbage", false),
        ] {
            let served = serve_line(&idx, "memory:test", 0, line);
            let parsed = Json::parse(&served.response)
                .unwrap_or_else(|e| panic!("invalid response for {line}: {e}"));
            assert_eq!(
                parsed.get("ok").and_then(Json::as_bool),
                Some(want_ok),
                "{line} -> {}",
                served.response
            );
            assert_eq!(served.ok, want_ok);
            assert_eq!(served.cache, None, "plain serve_line has no cache");
        }
        let stopping = serve_line(&idx, "memory:test", 0, r#"{"q": "shutdown"}"#);
        assert!(stopping.shutdown);
    }

    #[test]
    fn overlap_without_occurrences_is_a_typed_refusal() {
        let idx = index(false);
        let served = serve_line(&idx, "file:x", 0, r#"{"q": "overlap", "a": 1, "b": 5}"#);
        assert!(!served.ok);
        assert!(served.response.contains("unavailable"));
        assert_eq!(served.kind, "overlap");
    }

    #[test]
    fn oversized_line_is_rejected_before_parsing() {
        let line = format!(
            "{{\"q\": \"support\", \"pattern\": \"{}\"}}",
            "A".repeat(MAX_LINE_BYTES)
        );
        let served = serve_line(&index(false), "b", 0, &line);
        assert!(!served.ok);
        assert!(served.response.contains("exceeds"));
    }

    #[test]
    fn cache_hits_repeat_responses_byte_for_byte() {
        let (seq, _, _, _) = subject();
        let idx = index(true);
        let cache = ResponseCache::new(8);
        let ctx = full_ctx(&idx, &seq, &cache);
        let line = r#"{"q": "topk", "k": 3}"#;
        let first = single(serve_request_line(&ctx, line));
        assert_eq!(first.cache, Some(false));
        let second = single(serve_request_line(&ctx, line));
        assert_eq!(second.cache, Some(true));
        assert_eq!(second.response, first.response);
        assert_eq!(second.results, first.results);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // The cached body matches the uncached rendering exactly.
        let plain = serve_line(&idx, "memory:test", 0, line);
        assert_eq!(second.response, plain.response);
        // A different id re-heads the same cached tail.
        let with_id = single(serve_request_line(
            &ctx,
            r#"{"q": "topk", "k": 3, "id": 9}"#,
        ));
        assert_eq!(with_id.cache, Some(true));
        assert!(with_id.response.starts_with("{\"ok\": true, \"id\": 9,"));
        // stats is never cached and reports the counters.
        let stats = single(serve_request_line(&ctx, r#"{"q": "stats"}"#));
        assert_eq!(stats.cache, None);
        assert!(stats.response.contains("\"cache_hits\": 2"));
        assert!(stats.response.contains("\"cache_misses\": 1"));
    }

    #[test]
    fn batch_lines_answer_in_order_with_ids() {
        let (seq, _, _, _) = subject();
        let idx = index(true);
        let cache = ResponseCache::new(8);
        let ctx = full_ctx(&idx, &seq, &cache);
        let line = r#"[{"q": "topk", "k": 2, "id": 1}, {"q": "nope", "id": 2}, {"q": "support", "pattern": "A", "id": "s"}]"#;
        let served = match serve_request_line(&ctx, line) {
            LineOutcome::Batch(served) => served,
            LineOutcome::Single(_) => panic!("expected a batch"),
        };
        assert_eq!(served.len(), 3);
        assert_eq!(
            served.iter().map(|s| s.ok).collect::<Vec<_>>(),
            [true, false, true]
        );
        assert_eq!(served[0].kind, "topk");
        assert_eq!(served[1].kind, "invalid");
        assert_eq!(served[2].kind, "support");
        assert!(served[0].response.contains("\"id\": 1"));
        assert!(served[2].response.contains("\"id\": \"s\""));
        let joined = batch_response(&served);
        let parsed = Json::parse(&joined).expect("batch response is valid JSON");
        let rows = parsed.as_arr().expect("array response");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(rows[1].get("ok").and_then(Json::as_bool), Some(false));
        // Degenerate batches answer a single error element.
        for bad in ["[]", "[1, 2]", "[{...broken"] {
            let served = match serve_request_line(&ctx, bad) {
                LineOutcome::Batch(served) => served,
                LineOutcome::Single(_) => panic!("expected a batch for {bad}"),
            };
            assert!(!served.is_empty());
            assert!(served.iter().all(|s| !s.ok), "{bad}");
        }
    }

    #[test]
    fn mine_topk_matches_the_indexed_ranking() {
        let (seq, gap, rho, n) = subject();
        let idx = index(true);
        let cache = ResponseCache::new(8);
        let ctx = full_ctx(&idx, &seq, &cache);
        let full = mpp(&seq, gap, rho, n, MppConfig::default()).unwrap();
        for k in [1usize, 3, full.frequent.len() + 5] {
            let line = format!("{{\"q\": \"mine_topk\", \"k\": {k}}}");
            let served = single(serve_request_line(&ctx, &line));
            assert!(served.ok, "{}", served.response);
            let parsed = Json::parse(&served.response).unwrap();
            let got: Vec<String> = parsed
                .get("patterns")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|p| p.get("pattern").and_then(Json::as_str).unwrap().to_string())
                .collect();
            let want: Vec<String> = select_top_k(&full.frequent, k)
                .iter()
                .map(|f| f.pattern.display(&Alphabet::Dna))
                .collect();
            assert_eq!(got, want, "mine_topk k={k}");
        }
    }

    #[test]
    fn mine_target_matches_post_filtering_and_refuses_without_source() {
        let (seq, gap, rho, n) = subject();
        let idx = index(true);
        let cache = ResponseCache::new(8);
        let ctx = full_ctx(&idx, &seq, &cache);
        let full = mpp(&seq, gap, rho, n, MppConfig::default()).unwrap();
        let line = r#"{"q": "mine_target", "target": "AC", "limit": 1000000}"#;
        let served = single(serve_request_line(&ctx, line));
        assert!(served.ok, "{}", served.response);
        let parsed = Json::parse(&served.response).unwrap();
        let got: Vec<String> = parsed
            .get("patterns")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|p| p.get("pattern").and_then(Json::as_str).unwrap().to_string())
            .collect();
        let want_codes = Pattern::parse("AC", &Alphabet::Dna).unwrap();
        let mut want: Vec<_> = full
            .frequent
            .iter()
            .filter(|f| f.pattern.codes().starts_with(want_codes.codes()))
            .collect();
        want.sort_by(|a, b| (a.len(), a.pattern.codes()).cmp(&(b.len(), b.pattern.codes())));
        let want: Vec<String> = want
            .iter()
            .map(|f| f.pattern.display(&Alphabet::Dna))
            .collect();
        assert_eq!(got, want);
        assert_eq!(
            parsed.get("total").and_then(Json::as_usize),
            Some(want.len())
        );

        // Without the subject sequence the kinds refuse with a typed
        // error, both through the plain entry point and a bare context.
        let served = serve_line(&idx, "b", 0, r#"{"q": "mine_topk", "k": 2}"#);
        assert!(!served.ok);
        assert!(served.response.contains("unavailable"));
        assert_eq!(served.kind, "mine_topk");
    }
}
