//! The TCP daemon: accept loop, per-connection handlers, graceful
//! shutdown.
//!
//! The listener runs non-blocking and polls a shared stop flag, so a
//! SIGINT (or a `shutdown` request from any client) stops the accept
//! loop, lets in-flight connections finish their current line, and
//! joins every handler before [`ServerHandle::shutdown`] returns the
//! observer with its per-query counters.

use crate::cache::ResponseCache;
use crate::protocol::{self, LineOutcome, ServeContext, MAX_LINE_BYTES};
use perigap_core::trace::{MineObserver, QueryEvent, WarningEvent};
use perigap_seq::Sequence;
use perigap_store::PatternIndex;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the accept loop sleeps between polls when idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Per-connection read timeout; each timeout rechecks the stop flag.
const READ_POLL: Duration = Duration::from_millis(50);

struct Shared<O: MineObserver> {
    index: Arc<PatternIndex>,
    backend: String,
    /// Subject sequence for the on-demand `mine_*` query kinds; absent
    /// when the daemon serves a store file without the sequence.
    source: Option<Sequence>,
    cache: ResponseCache,
    observer: Mutex<O>,
    stop: AtomicBool,
    queries: AtomicU64,
}

/// A running daemon. Dropping the handle without calling
/// [`ServerHandle::shutdown`] stops the server but discards the
/// observer.
pub struct ServerHandle<O: MineObserver + Send + 'static> {
    addr: SocketAddr,
    shared: Arc<Shared<O>>,
    thread: Option<JoinHandle<()>>,
}

impl<O: MineObserver + Send + 'static> ServerHandle<O> {
    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the daemon to stop without waiting for it. Safe to call from
    /// any thread; also flipped by a client `shutdown` request.
    pub fn request_stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// True once the daemon has been asked to stop.
    pub fn stop_requested(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Total requests served so far (including invalid ones).
    pub fn queries_served(&self) -> u64 {
        self.shared.queries.load(Ordering::Relaxed)
    }

    /// Stop the daemon, join every connection, and hand back the
    /// observer with its accumulated per-query counters.
    pub fn shutdown(mut self) -> O {
        self.request_stop();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        let mut shared = Arc::clone(&self.shared);
        drop(self);
        // Every handler is joined by now, but a thread's Arc clone is
        // released a hair after `is_finished()` flips; spin out the gap.
        loop {
            match Arc::try_unwrap(shared) {
                Ok(inner) => {
                    return inner
                        .observer
                        .into_inner()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                }
                Err(again) => {
                    shared = again;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
}

impl<O: MineObserver + Send + 'static> Drop for ServerHandle<O> {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0`) and serve `index` until shutdown.
/// Every served request flows through `observer` as a
/// [`QueryEvent`]; connection-level trouble (a client gone mid-line, a
/// socket error) is a [`WarningEvent`], never a crash.
pub fn serve<O, A>(
    index: Arc<PatternIndex>,
    backend: String,
    addr: A,
    observer: O,
) -> io::Result<ServerHandle<O>>
where
    O: MineObserver + Send + 'static,
    A: ToSocketAddrs,
{
    serve_with(index, backend, None, addr, observer)
}

/// [`serve`], plus the subject sequence. When `source` is given the
/// daemon answers the on-demand `mine_topk`/`mine_target` query kinds
/// by re-running the engine against it; without it those kinds refuse
/// with a typed error (like `overlap` on a sequence-less index).
pub fn serve_with<O, A>(
    index: Arc<PatternIndex>,
    backend: String,
    source: Option<Sequence>,
    addr: A,
    observer: O,
) -> io::Result<ServerHandle<O>>
where
    O: MineObserver + Send + 'static,
    A: ToSocketAddrs,
{
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        index,
        backend,
        source,
        cache: ResponseCache::default(),
        observer: Mutex::new(observer),
        stop: AtomicBool::new(false),
        queries: AtomicU64::new(0),
    });
    let accept_shared = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("pgmine-serve-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(ServerHandle {
        addr,
        shared,
        thread: Some(thread),
    })
}

fn accept_loop<O: MineObserver + Send + 'static>(listener: TcpListener, shared: Arc<Shared<O>>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("pgmine-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, conn_shared));
                match handle {
                    Ok(h) => handlers.push(h),
                    Err(e) => warn(
                        &shared,
                        "serve-spawn",
                        &format!("cannot spawn handler: {e}"),
                    ),
                }
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                warn(&shared, "serve-accept", &format!("accept failed: {e}"));
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn warn<O: MineObserver>(shared: &Shared<O>, kind: &str, message: &str) {
    let mut observer = shared
        .observer
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    observer.on_warning(&WarningEvent {
        kind: kind.to_string(),
        message: message.to_string(),
    });
}

fn handle_connection<O: MineObserver>(stream: TcpStream, shared: Arc<Shared<O>>) {
    // One-line request/response traffic stalls ~40 ms per roundtrip
    // under Nagle + delayed ACK; flush responses immediately.
    let _ = stream.set_nodelay(true);
    if let Err(e) = stream.set_read_timeout(Some(READ_POLL)) {
        warn(
            &shared,
            "serve-conn",
            &format!("cannot set read timeout: {e}"),
        );
        return;
    }
    let mut stream = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue
            }
            Err(e) => {
                warn(&shared, "serve-conn", &format!("read failed: {e}"));
                return;
            }
        };
        pending.extend_from_slice(&chunk[..n]);
        // A line that grows past the protocol cap with no newline in
        // sight can only be garbage; answer once and drop the client.
        if pending.len() > MAX_LINE_BYTES && !pending.contains(&b'\n') {
            let response =
                protocol::error_line(&format!("request line exceeds {MAX_LINE_BYTES} bytes"));
            let _ = writeln!(stream, "{response}");
            warn(
                &shared,
                "serve-conn",
                "request line exceeded the protocol cap",
            );
            return;
        }
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = pending.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes[..pos]);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if !serve_one(&mut stream, &shared, line) {
                return;
            }
        }
    }
}

/// Serve one request line (single or batch); false when the connection
/// should close.
fn serve_one<O: MineObserver>(stream: &mut TcpStream, shared: &Shared<O>, line: &str) -> bool {
    let started = Instant::now();
    let queries = shared.queries.fetch_add(1, Ordering::Relaxed);
    let ctx = ServeContext {
        index: &shared.index,
        backend: &shared.backend,
        queries,
        source: shared.source.as_ref(),
        cache: Some(&shared.cache),
    };
    let (response, served) = match protocol::serve_request_line(&ctx, line) {
        LineOutcome::Single(served) => (served.response.clone(), vec![served]),
        LineOutcome::Batch(served) => {
            // The line already counted once; count the extra elements
            // so `stats` and `queries_served` track requests answered.
            if served.len() > 1 {
                shared
                    .queries
                    .fetch_add(served.len() as u64 - 1, Ordering::Relaxed);
            }
            (protocol::batch_response(&served), served)
        }
    };
    let write_result = writeln!(stream, "{response}").and_then(|_| stream.flush());
    observe(shared, &served, started.elapsed());
    if let Err(e) = write_result {
        warn(shared, "serve-conn", &format!("write failed: {e}"));
        return false;
    }
    if served.iter().any(|s| s.shutdown) {
        shared.stop.store(true, Ordering::SeqCst);
        return false;
    }
    true
}

/// Record one [`QueryEvent`] per answered request. Batch elements share
/// the line's wall-clock latency — they are served sequentially and the
/// client sees one round-trip.
fn observe<O: MineObserver>(shared: &Shared<O>, served: &[protocol::Served], latency: Duration) {
    let mut observer = shared
        .observer
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    for s in served {
        observer.on_query(&QueryEvent {
            kind: s.kind.to_string(),
            ok: s.ok,
            results: s.results,
            latency,
            cache: s.cache,
        });
    }
}
