//! `pgmine serve`: a pattern-store daemon over mined outcomes.
//!
//! A mined pattern set — fresh from the engine or loaded back from a
//! PGST store file through a [`perigap_store::Backend`] — is indexed
//! once ([`perigap_store::PatternIndex`]) and served to concurrent
//! clients over a line-delimited JSON protocol on a TCP socket:
//!
//! ```text
//! -> {"q": "support", "pattern": "ACG"}
//! <- {"ok": true, "found": true, "pattern": "ACG", "support": 42, "ratio": 0.013}
//! ```
//!
//! [`protocol`] defines the wire format, [`server`] the daemon, and
//! [`client`] a small blocking client. Every served request is a
//! [`perigap_core::trace::QueryEvent`] through the observer the daemon
//! was started with, so latency counters land in the same metrics
//! sinks the miner uses.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::ResponseCache;
pub use client::Client;
pub use protocol::{
    batch_response, parse_request, serve_line, serve_request_line, Envelope, LineOutcome, Request,
    ServeContext, Served, DEFAULT_LIMIT,
};
pub use server::{serve, serve_with, ServerHandle};

use std::sync::atomic::{AtomicBool, Ordering};

static SIGINT_FLAG: AtomicBool = AtomicBool::new(false);

/// Install a SIGINT handler that flips a process-wide flag, and return
/// the flag. The handler only stores an atomic (async-signal-safe);
/// callers poll the flag and stop their server. Installing twice is
/// harmless. Unix only; on other targets the flag simply never flips.
pub fn install_sigint_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_sigint(_signum: i32) {
            SIGINT_FLAG.store(true, Ordering::SeqCst);
        }
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
    &SIGINT_FLAG
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_core::mpp::{mpp, MppConfig};
    use perigap_core::trace::{Json, MetricsObserver};
    use perigap_core::GapRequirement;
    use perigap_seq::{Alphabet, Sequence};
    use perigap_store::{LoadedOutcome, PatternIndex};
    use std::sync::Arc;
    use std::time::Duration;

    fn served_index() -> Arc<PatternIndex> {
        let seq = Sequence::dna(&"ACGT".repeat(25)).unwrap();
        let gap = GapRequirement::new(0, 2).unwrap();
        let outcome = mpp(&seq, gap, 0.001, 8, MppConfig::default()).unwrap();
        assert!(!outcome.frequent.is_empty());
        let loaded = LoadedOutcome {
            outcome,
            gap,
            rho: 0.001,
        };
        Arc::new(PatternIndex::build(&loaded, Alphabet::Dna, Some(&seq)))
    }

    #[test]
    fn daemon_answers_every_query_kind_and_counts_them() {
        let index = served_index();
        let handle = serve(
            Arc::clone(&index),
            "memory:test".to_string(),
            "127.0.0.1:0",
            MetricsObserver::new(),
        )
        .unwrap();
        let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();

        for line in [
            r#"{"q": "support", "pattern": "ACG"}"#,
            r#"{"q": "topk", "k": 3}"#,
            r#"{"q": "prefix", "prefix": "AC"}"#,
            r#"{"q": "overlap", "a": 1, "b": 12}"#,
            r#"{"q": "stats"}"#,
        ] {
            let response = client.roundtrip(line).unwrap();
            let parsed = Json::parse(&response).unwrap();
            assert_eq!(
                parsed.get("ok").and_then(Json::as_bool),
                Some(true),
                "{line} -> {response}"
            );
        }
        // Garbage gets an error response, not a dropped connection.
        let response = client.roundtrip("not json at all").unwrap();
        assert!(response.contains("\"ok\": false"));

        let metrics = handle.shutdown();
        let total: u64 = metrics.queries.values().map(|s| s.count).sum();
        assert_eq!(total, 6);
        assert_eq!(metrics.queries["invalid"].errors, 1);
        assert_eq!(metrics.queries["support"].count, 1);
    }

    #[test]
    fn batch_lines_and_cache_flow_through_the_daemon() {
        let seq = Sequence::dna(&"ACGT".repeat(25)).unwrap();
        let gap = GapRequirement::new(0, 2).unwrap();
        let outcome = mpp(&seq, gap, 0.001, 8, MppConfig::default()).unwrap();
        let loaded = LoadedOutcome {
            outcome,
            gap,
            rho: 0.001,
        };
        let index = Arc::new(PatternIndex::build(&loaded, Alphabet::Dna, Some(&seq)));
        let handle = serve_with(
            Arc::clone(&index),
            "memory:test".to_string(),
            Some(seq),
            "127.0.0.1:0",
            MetricsObserver::new(),
        )
        .unwrap();
        let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();

        // A batch line answers with an array in request order, ids
        // echoed per element.
        let batch = r#"[{"q": "topk", "k": 2, "id": 1}, {"q": "mine_topk", "k": 3, "id": 2}, {"q": "nope", "id": 3}]"#;
        let response = client.roundtrip(batch).unwrap();
        let parsed = Json::parse(&response).unwrap();
        let rows = parsed.as_arr().expect("array response");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get("id").and_then(Json::as_usize), Some(1));
        assert_eq!(rows[1].get("id").and_then(Json::as_usize), Some(2));
        assert_eq!(rows[0].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(rows[1].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(rows[2].get("ok").and_then(Json::as_bool), Some(false));
        // mine_topk ranks like the index (same parameters, same rank
        // order).
        let want: Vec<String> = index.top_k(3).map(|e| e.display(&Alphabet::Dna)).collect();
        let got: Vec<&str> = rows[1]
            .get("patterns")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|p| p.get("pattern").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(got, want);

        // Repeats hit the response cache; stats reports the counters.
        let first = client.roundtrip(r#"{"q": "topk", "k": 2}"#).unwrap();
        assert_eq!(first, rows_without_id(&rows[0]));
        let stats = client.roundtrip(r#"{"q": "stats"}"#).unwrap();
        let stats = Json::parse(&stats).unwrap();
        let hits = stats.get("cache_hits").and_then(Json::as_u128).unwrap();
        let misses = stats.get("cache_misses").and_then(Json::as_u128).unwrap();
        assert_eq!(hits, 1, "repeated topk answered from cache");
        assert!(misses >= 2);
        // Every batch element and the two singles were counted.
        assert_eq!(handle.queries_served(), 5);

        let metrics = handle.shutdown();
        assert_eq!(metrics.queries["topk"].count, 2);
        assert_eq!(metrics.queries["topk"].cache_hits, 1);
        assert_eq!(metrics.queries["topk"].cache_misses, 1);
        assert_eq!(metrics.queries["mine_topk"].count, 1);
        assert_eq!(metrics.queries["invalid"].errors, 1);
    }

    /// Re-render a parsed `topk` response without its `id` field, in
    /// the daemon's own field order, for comparing a batch element
    /// against a later single-line answer.
    fn rows_without_id(row: &Json) -> String {
        let total = row.get("total").and_then(Json::as_usize).unwrap();
        let patterns: Vec<String> = row
            .get("patterns")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|p| {
                format!(
                    "{{\"pattern\": \"{}\", \"support\": {}, \"ratio\": {}}}",
                    p.get("pattern").and_then(Json::as_str).unwrap(),
                    p.get("support").and_then(Json::as_u128).unwrap(),
                    p.get("ratio").and_then(Json::as_f64).unwrap()
                )
            })
            .collect();
        format!(
            "{{\"ok\": true, \"total\": {total}, \"patterns\": [{}]}}",
            patterns.join(", ")
        )
    }

    #[test]
    fn shutdown_request_stops_the_daemon() {
        let handle = serve(
            served_index(),
            "memory:test".to_string(),
            "127.0.0.1:0",
            MetricsObserver::new(),
        )
        .unwrap();
        let addr = handle.addr();
        let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
        let response = client.roundtrip(r#"{"q": "shutdown", "id": 9}"#).unwrap();
        assert!(response.contains("\"stopping\": true"));
        assert!(response.contains("\"id\": 9"));
        // The accept loop winds down; the handle observes the stop.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !handle.stop_requested() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(handle.stop_requested());
        handle.shutdown();
    }

    #[test]
    fn sixteen_concurrent_clients_are_served() {
        let index = served_index();
        let expect_top: Vec<String> = index.top_k(5).map(|e| e.display(&Alphabet::Dna)).collect();
        let handle = serve(
            index,
            "memory:test".to_string(),
            "127.0.0.1:0",
            MetricsObserver::new(),
        )
        .unwrap();
        let addr = handle.addr();
        let workers: Vec<_> = (0..16)
            .map(|w| {
                let expect = expect_top.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr, Duration::from_secs(30)).unwrap();
                    for i in 0..25 {
                        let response = client
                            .roundtrip(&format!(
                                "{{\"q\": \"topk\", \"k\": 5, \"id\": {}}}",
                                w * 100 + i
                            ))
                            .unwrap();
                        let parsed = Json::parse(&response).unwrap();
                        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
                        assert_eq!(
                            parsed.get("id").and_then(Json::as_usize),
                            Some(w * 100 + i),
                            "pipelined responses must match their requests"
                        );
                        let got: Vec<&str> = parsed
                            .get("patterns")
                            .and_then(Json::as_arr)
                            .unwrap()
                            .iter()
                            .map(|p| p.get("pattern").and_then(Json::as_str).unwrap())
                            .collect();
                        assert_eq!(got, expect, "every client sees the same ranking");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("client worker must not panic");
        }
        let metrics = handle.shutdown();
        assert_eq!(metrics.queries["topk"].count, 16 * 25);
        assert_eq!(metrics.queries["topk"].errors, 0);
    }
}
