//! `pgmine serve`: a pattern-store daemon over mined outcomes.
//!
//! A mined pattern set — fresh from the engine or loaded back from a
//! PGST store file through a [`perigap_store::Backend`] — is indexed
//! once ([`perigap_store::PatternIndex`]) and served to concurrent
//! clients over a line-delimited JSON protocol on a TCP socket:
//!
//! ```text
//! -> {"q": "support", "pattern": "ACG"}
//! <- {"ok": true, "found": true, "pattern": "ACG", "support": 42, "ratio": 0.013}
//! ```
//!
//! [`protocol`] defines the wire format, [`server`] the daemon, and
//! [`client`] a small blocking client. Every served request is a
//! [`perigap_core::trace::QueryEvent`] through the observer the daemon
//! was started with, so latency counters land in the same metrics
//! sinks the miner uses.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::{parse_request, serve_line, Envelope, Request, Served, DEFAULT_LIMIT};
pub use server::{serve, ServerHandle};

use std::sync::atomic::{AtomicBool, Ordering};

static SIGINT_FLAG: AtomicBool = AtomicBool::new(false);

/// Install a SIGINT handler that flips a process-wide flag, and return
/// the flag. The handler only stores an atomic (async-signal-safe);
/// callers poll the flag and stop their server. Installing twice is
/// harmless. Unix only; on other targets the flag simply never flips.
pub fn install_sigint_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_sigint(_signum: i32) {
            SIGINT_FLAG.store(true, Ordering::SeqCst);
        }
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
    &SIGINT_FLAG
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_core::mpp::{mpp, MppConfig};
    use perigap_core::trace::{Json, MetricsObserver};
    use perigap_core::GapRequirement;
    use perigap_seq::{Alphabet, Sequence};
    use perigap_store::{LoadedOutcome, PatternIndex};
    use std::sync::Arc;
    use std::time::Duration;

    fn served_index() -> Arc<PatternIndex> {
        let seq = Sequence::dna(&"ACGT".repeat(25)).unwrap();
        let gap = GapRequirement::new(0, 2).unwrap();
        let outcome = mpp(&seq, gap, 0.001, 8, MppConfig::default()).unwrap();
        assert!(!outcome.frequent.is_empty());
        let loaded = LoadedOutcome {
            outcome,
            gap,
            rho: 0.001,
        };
        Arc::new(PatternIndex::build(&loaded, Alphabet::Dna, Some(&seq)))
    }

    #[test]
    fn daemon_answers_every_query_kind_and_counts_them() {
        let index = served_index();
        let handle = serve(
            Arc::clone(&index),
            "memory:test".to_string(),
            "127.0.0.1:0",
            MetricsObserver::new(),
        )
        .unwrap();
        let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();

        for line in [
            r#"{"q": "support", "pattern": "ACG"}"#,
            r#"{"q": "topk", "k": 3}"#,
            r#"{"q": "prefix", "prefix": "AC"}"#,
            r#"{"q": "overlap", "a": 1, "b": 12}"#,
            r#"{"q": "stats"}"#,
        ] {
            let response = client.roundtrip(line).unwrap();
            let parsed = Json::parse(&response).unwrap();
            assert_eq!(
                parsed.get("ok").and_then(Json::as_bool),
                Some(true),
                "{line} -> {response}"
            );
        }
        // Garbage gets an error response, not a dropped connection.
        let response = client.roundtrip("not json at all").unwrap();
        assert!(response.contains("\"ok\": false"));

        let metrics = handle.shutdown();
        let total: u64 = metrics.queries.values().map(|s| s.count).sum();
        assert_eq!(total, 6);
        assert_eq!(metrics.queries["invalid"].errors, 1);
        assert_eq!(metrics.queries["support"].count, 1);
    }

    #[test]
    fn shutdown_request_stops_the_daemon() {
        let handle = serve(
            served_index(),
            "memory:test".to_string(),
            "127.0.0.1:0",
            MetricsObserver::new(),
        )
        .unwrap();
        let addr = handle.addr();
        let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
        let response = client.roundtrip(r#"{"q": "shutdown", "id": 9}"#).unwrap();
        assert!(response.contains("\"stopping\": true"));
        assert!(response.contains("\"id\": 9"));
        // The accept loop winds down; the handle observes the stop.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !handle.stop_requested() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(handle.stop_requested());
        handle.shutdown();
    }

    #[test]
    fn sixteen_concurrent_clients_are_served() {
        let index = served_index();
        let expect_top: Vec<String> = index.top_k(5).map(|e| e.display(&Alphabet::Dna)).collect();
        let handle = serve(
            index,
            "memory:test".to_string(),
            "127.0.0.1:0",
            MetricsObserver::new(),
        )
        .unwrap();
        let addr = handle.addr();
        let workers: Vec<_> = (0..16)
            .map(|w| {
                let expect = expect_top.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr, Duration::from_secs(30)).unwrap();
                    for i in 0..25 {
                        let response = client
                            .roundtrip(&format!(
                                "{{\"q\": \"topk\", \"k\": 5, \"id\": {}}}",
                                w * 100 + i
                            ))
                            .unwrap();
                        let parsed = Json::parse(&response).unwrap();
                        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
                        assert_eq!(
                            parsed.get("id").and_then(Json::as_usize),
                            Some(w * 100 + i),
                            "pipelined responses must match their requests"
                        );
                        let got: Vec<&str> = parsed
                            .get("patterns")
                            .and_then(Json::as_arr)
                            .unwrap()
                            .iter()
                            .map(|p| p.get("pattern").and_then(Json::as_str).unwrap())
                            .collect();
                        assert_eq!(got, expect, "every client sees the same ranking");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("client worker must not panic");
        }
        let metrics = handle.shutdown();
        assert_eq!(metrics.queries["topk"].count, 16 * 25);
        assert_eq!(metrics.queries["topk"].errors, 0);
    }
}
