//! A minimal blocking client for the serve protocol, used by the CLI
//! `pgmine query` command, the bench harness, and the tests.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a pattern-store daemon.
pub struct Client {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl Client {
    /// Connect, with a response deadline applied to every round-trip.
    pub fn connect<A: ToSocketAddrs>(addr: A, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            pending: Vec::new(),
        })
    }

    /// Send one request line, wait for its response line.
    pub fn roundtrip(&mut self, request: &str) -> io::Result<String> {
        writeln!(self.stream, "{}", request.trim_end_matches('\n'))?;
        self.stream.flush()?;
        self.read_line()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.pending.drain(..=pos).collect();
                return Ok(String::from_utf8_lossy(&line[..pos]).into_owned());
            }
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "daemon closed the connection before answering",
                    ))
                }
                n => self.pending.extend_from_slice(&chunk[..n]),
            }
        }
    }
}
