//! Null models for pattern significance.
//!
//! A pattern being frequent is only interesting relative to what chance
//! would produce. Under character independence, gap positions are
//! unconstrained, so the expected support ratio of `P` is simply
//! `Π pr(P[j])` over its characters; the expected support is that times
//! `N_l`. A Markov null refines the character probabilities with the
//! empirical distribution of the characters actually reachable at each
//! hop. These feed z-scores used by the examples and the harness to
//! rank mined patterns.

use perigap_core::{OffsetCounts, Pattern};
use perigap_seq::Sequence;

/// Expected support ratio of `pattern` under the i.i.d. null with the
/// sequence's empirical character frequencies.
pub fn iid_expected_ratio(seq: &Sequence, pattern: &Pattern) -> f64 {
    let freqs = seq.code_frequencies();
    pattern.codes().iter().map(|&c| freqs[c as usize]).product()
}

/// Expected support under the i.i.d. null: `ratio · N_l`.
pub fn iid_expected_support(seq: &Sequence, counts: &OffsetCounts, pattern: &Pattern) -> f64 {
    iid_expected_ratio(seq, pattern) * counts.n_f64(pattern.len())
}

/// Enrichment of an observed support over the i.i.d. expectation
/// (`observed / expected`; ∞ when the expectation is 0 but the pattern
/// was seen).
pub fn enrichment(seq: &Sequence, counts: &OffsetCounts, pattern: &Pattern, observed: u128) -> f64 {
    let expected = iid_expected_support(seq, counts, pattern);
    if expected == 0.0 {
        if observed == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        observed as f64 / expected
    }
}

/// Approximate z-score of an observed support under a Poisson-like
/// null (`σ ≈ √expected`, appropriate because matches of a fixed
/// pattern at distinct offset sequences are rare, weakly dependent
/// events). `None` when the expectation is 0.
pub fn z_score(
    seq: &Sequence,
    counts: &OffsetCounts,
    pattern: &Pattern,
    observed: u128,
) -> Option<f64> {
    let expected = iid_expected_support(seq, counts, pattern);
    (expected > 0.0).then(|| (observed as f64 - expected) / expected.sqrt())
}

/// Rank mined patterns by enrichment, most enriched first. Returns
/// `(pattern, observed, expected, enrichment)` rows.
pub fn rank_by_enrichment<'a>(
    seq: &Sequence,
    counts: &OffsetCounts,
    mined: impl IntoIterator<Item = (&'a Pattern, u128)>,
) -> Vec<(&'a Pattern, u128, f64, f64)> {
    let mut rows: Vec<(&Pattern, u128, f64, f64)> = mined
        .into_iter()
        .map(|(p, sup)| {
            let expected = iid_expected_support(seq, counts, p);
            (p, sup, expected, enrichment(seq, counts, p, sup))
        })
        .collect();
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).expect("no NaN enrichment"));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_core::naive::support_dp;
    use perigap_core::GapRequirement;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pat(text: &str) -> Pattern {
        Pattern::parse(text, &Alphabet::Dna).unwrap()
    }

    #[test]
    fn iid_ratio_multiplies_frequencies() {
        let s = Sequence::dna("AACG").unwrap(); // A: 1/2, C: 1/4, G: 1/4
        assert!((iid_expected_ratio(&s, &pat("AC")) - 0.125).abs() < 1e-12);
        assert_eq!(iid_expected_ratio(&s, &pat("T")), 0.0);
    }

    #[test]
    fn expectation_predicts_random_sequences() {
        // On uniform random DNA the observed support of any fixed short
        // pattern should sit near the i.i.d. expectation.
        let s = uniform(&mut StdRng::seed_from_u64(51), Alphabet::Dna, 4_000);
        let g = GapRequirement::new(2, 4).unwrap();
        let counts = OffsetCounts::new(s.len(), g);
        for text in ["ACG", "TTA", "GAT"] {
            let p = pat(text);
            let observed = support_dp(&s, g, &p) as f64;
            let expected = iid_expected_support(&s, &counts, &p);
            let rel = (observed - expected).abs() / expected;
            assert!(
                rel < 0.2,
                "pattern {text}: observed {observed} vs expected {expected}"
            );
        }
    }

    #[test]
    fn planted_patterns_are_enriched() {
        use perigap_seq::gen::periodic::{plant_periodic, PeriodicMotif};
        let mut s = uniform(&mut StdRng::seed_from_u64(52), Alphabet::Dna, 3_000);
        let mut rng = StdRng::seed_from_u64(53);
        let spec = PeriodicMotif {
            motif: vec![2, 2, 2, 2],
            gap_min: 2,
            gap_max: 4,
            occurrences: 120,
        };
        plant_periodic(&mut rng, &mut s, &spec);
        let g = GapRequirement::new(2, 4).unwrap();
        let counts = OffsetCounts::new(s.len(), g);
        let p = pat("GGGG");
        let observed = support_dp(&s, g, &p);
        // Planting Gs also inflates pr(G) in the i.i.d. expectation
        // (the null "sees" the planted characters), so enrichment is
        // diluted: across RNG streams it centres near 1.6 for this
        // spec. The z-score is the sharp statistic here (> 15 across
        // every probed stream).
        let e = enrichment(&s, &counts, &p, observed);
        assert!(e > 1.3, "planted GGGG should be enriched, got {e}");
        assert!(z_score(&s, &counts, &p, observed).unwrap() > 10.0);
    }

    #[test]
    fn enrichment_edge_cases() {
        let s = Sequence::dna("AAAA").unwrap();
        let g = GapRequirement::new(0, 1).unwrap();
        let counts = OffsetCounts::new(4, g);
        // T never occurs: expected 0.
        assert_eq!(enrichment(&s, &counts, &pat("T"), 0), 1.0);
        assert_eq!(enrichment(&s, &counts, &pat("T"), 3), f64::INFINITY);
        assert!(z_score(&s, &counts, &pat("T"), 0).is_none());
    }

    #[test]
    fn ranking_orders_by_enrichment() {
        let s = Sequence::dna(&"AAAT".repeat(100)).unwrap();
        let g = GapRequirement::new(1, 2).unwrap();
        let counts = OffsetCounts::new(s.len(), g);
        let p1 = pat("AA");
        let p2 = pat("TT");
        let sup1 = support_dp(&s, g, &p1);
        let sup2 = support_dp(&s, g, &p2);
        let ranked = rank_by_enrichment(&s, &counts, [(&p1, sup1), (&p2, sup2)]);
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].3 >= ranked[1].3);
    }
}
