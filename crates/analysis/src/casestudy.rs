//! The Section 7 case-study pipeline: fragment a genome, mine every
//! fragment, and aggregate compositional statistics across fragments
//! and across genomes.

use crate::composition::{breakdown, classify, CompositionClass};
use perigap_core::mpp::MppConfig;
use perigap_core::mppm::mppm;
use perigap_core::result::MineOutcome;
use perigap_core::{GapRequirement, MineError, Pattern};
use perigap_seq::fragment::fragments;
use perigap_seq::Sequence;
use std::collections::HashMap;

/// Parameters of a case-study run (the paper: 100 kb fragments, gap
/// [10, 12], ρs = 0.006%, focal pattern length 8).
#[derive(Clone, Debug)]
pub struct CaseStudyConfig {
    /// Fragment width in bases.
    pub fragment_width: usize,
    /// Minimum final-fragment width (shorter tails are skipped).
    pub min_fragment: usize,
    /// Gap requirement for mining.
    pub gap: GapRequirement,
    /// Support threshold.
    pub rho: f64,
    /// MPPm window parameter.
    pub m: usize,
    /// The pattern length whose composition is tabulated.
    pub focal_length: usize,
}

impl CaseStudyConfig {
    /// The paper's settings scaled by `scale` (1.0 = 100 kb fragments).
    pub fn paper_scaled(scale: f64) -> CaseStudyConfig {
        let width = ((100_000.0 * scale) as usize).max(500);
        CaseStudyConfig {
            fragment_width: width,
            min_fragment: width / 2,
            gap: GapRequirement::new(10, 12).expect("static gap is valid"),
            rho: 0.00006,
            m: 8,
            focal_length: 8,
        }
    }
}

/// Per-fragment mining summary.
#[derive(Clone, Debug)]
pub struct FragmentReport {
    /// Fragment index within its genome.
    pub index: usize,
    /// Length of the longest frequent pattern in the fragment.
    pub longest: usize,
    /// Frequent focal-length patterns that are A/T-only.
    pub at_only: usize,
    /// Frequent focal-length patterns with exactly one C or G.
    pub one_cg: usize,
    /// Frequent focal-length patterns with more than one C or G.
    pub many_cg: usize,
    /// Every frequent focal-length pattern.
    pub focal_patterns: Vec<Pattern>,
}

/// Whole-genome case-study result.
#[derive(Clone, Debug)]
pub struct GenomeReport {
    /// Label supplied by the caller (species name).
    pub name: String,
    /// Per-fragment summaries.
    pub fragments: Vec<FragmentReport>,
}

impl GenomeReport {
    /// Average count of frequent focal-length A/T-only patterns per
    /// fragment (the paper reports ≈ 250 of 256 for bacteria).
    pub fn mean_at_only(&self) -> f64 {
        if self.fragments.is_empty() {
            return 0.0;
        }
        self.fragments.iter().map(|f| f.at_only as f64).sum::<f64>() / self.fragments.len() as f64
    }

    /// Average count of frequent focal-length patterns with more than
    /// one C/G (the paper reports ≈ 3.9 for bacteria).
    pub fn mean_many_cg(&self) -> f64 {
        if self.fragments.is_empty() {
            return 0.0;
        }
        self.fragments.iter().map(|f| f.many_cg as f64).sum::<f64>() / self.fragments.len() as f64
    }

    /// Patterns frequent in *every* fragment ("some of these patterns
    /// were even frequent in every fragment examined").
    pub fn ubiquitous(&self) -> Vec<Pattern> {
        let mut counts: HashMap<Pattern, usize> = HashMap::new();
        for frag in &self.fragments {
            for p in &frag.focal_patterns {
                *counts.entry(p.clone()).or_insert(0) += 1;
            }
        }
        let total = self.fragments.len();
        let mut out: Vec<Pattern> = counts
            .into_iter()
            .filter(|&(_, c)| c == total && total > 0)
            .map(|(p, _)| p)
            .collect();
        out.sort_by(|a, b| a.codes().cmp(b.codes()));
        out
    }

    /// The longest frequent pattern length over all fragments.
    pub fn longest(&self) -> usize {
        self.fragments.iter().map(|f| f.longest).max().unwrap_or(0)
    }
}

/// Mine every fragment of `genome` with MPPm and summarize.
pub fn run_case_study(
    name: &str,
    genome: &Sequence,
    config: &CaseStudyConfig,
) -> Result<GenomeReport, MineError> {
    let frags = fragments(genome, config.fragment_width, config.min_fragment);
    let mut reports = Vec::with_capacity(frags.len());
    for frag in &frags {
        let outcome = mppm(
            &frag.sequence,
            config.gap,
            config.rho,
            config.m,
            MppConfig::default(),
        )?;
        reports.push(summarize_fragment(
            frag.index,
            &outcome,
            config.focal_length,
        ));
    }
    Ok(GenomeReport {
        name: name.to_string(),
        fragments: reports,
    })
}

/// Build a [`FragmentReport`] from one fragment's mining outcome.
pub fn summarize_fragment(index: usize, outcome: &MineOutcome, focal: usize) -> FragmentReport {
    let b = breakdown(outcome, focal);
    FragmentReport {
        index,
        longest: outcome.longest_len(),
        at_only: b.at_only,
        one_cg: b.one_cg,
        many_cg: b.many_cg,
        focal_patterns: outcome
            .of_length(focal)
            .map(|f| f.pattern.clone())
            .collect(),
    }
}

/// Patterns frequent somewhere in `a` but nowhere in `b` — the
/// cross-species comparison behind "the nucleotides involved in the
/// periodic patterns in bacteria and eukaryotes are quite different".
pub fn exclusive_patterns(a: &GenomeReport, b: &GenomeReport) -> Vec<Pattern> {
    let in_b: std::collections::HashSet<&Pattern> = b
        .fragments
        .iter()
        .flat_map(|f| f.focal_patterns.iter())
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for frag in &a.fragments {
        for p in &frag.focal_patterns {
            if !in_b.contains(p) && seen.insert(p.clone()) {
                out.push(p.clone());
            }
        }
    }
    out.sort_by(|x, y| x.codes().cmp(y.codes()));
    out
}

/// Fraction of a genome report's focal patterns that are C/G-heavy —
/// used to contrast eukaryote-like and bacteria-like inputs.
pub fn cg_heavy_fraction(report: &GenomeReport) -> f64 {
    let mut total = 0usize;
    let mut heavy = 0usize;
    for frag in &report.fragments {
        for p in &frag.focal_patterns {
            total += 1;
            if classify(p) == CompositionClass::ManyCg {
                heavy += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        heavy as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_core::result::{FrequentPattern, MineStats};
    use perigap_seq::Alphabet;

    fn pat(text: &str) -> Pattern {
        Pattern::parse(text, &Alphabet::Dna).unwrap()
    }

    fn outcome(patterns: &[&str]) -> MineOutcome {
        MineOutcome {
            frequent: patterns
                .iter()
                .map(|t| FrequentPattern {
                    pattern: pat(t),
                    support: 5,
                    ratio: 0.2,
                })
                .collect(),
            stats: MineStats::default(),
        }
    }

    fn report(name: &str, fragment_patterns: &[&[&str]]) -> GenomeReport {
        GenomeReport {
            name: name.into(),
            fragments: fragment_patterns
                .iter()
                .enumerate()
                .map(|(i, pats)| summarize_fragment(i, &outcome(pats), 8))
                .collect(),
        }
    }

    #[test]
    fn fragment_summary_counts_classes() {
        let o = outcome(&["ATATATAT", "AATTAATT", "ATCATATA", "GCGCGCGC", "ATA"]);
        let r = summarize_fragment(0, &o, 8);
        assert_eq!(r.at_only, 2);
        assert_eq!(r.one_cg, 1);
        assert_eq!(r.many_cg, 1);
        assert_eq!(r.longest, 8);
        assert_eq!(r.focal_patterns.len(), 4);
    }

    #[test]
    fn genome_means() {
        let r = report(
            "toy",
            &[
                &["ATATATAT", "TTTTTTTT"],
                &["ATATATAT"],
                &["GCGCGCGC", "ATATATAT"],
            ],
        );
        assert!((r.mean_at_only() - (2.0 + 1.0 + 1.0) / 3.0).abs() < 1e-12);
        assert!((r.mean_many_cg() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.longest(), 8);
    }

    #[test]
    fn ubiquitous_requires_every_fragment() {
        let r = report(
            "toy",
            &[
                &["ATATATAT", "TTTTTTTT"],
                &["ATATATAT"],
                &["ATATATAT", "GCGCGCGC"],
            ],
        );
        let ubi = r.ubiquitous();
        assert_eq!(ubi, vec![pat("ATATATAT")]);
        let empty = report("none", &[]);
        assert!(empty.ubiquitous().is_empty());
    }

    #[test]
    fn exclusive_patterns_compare_reports() {
        let bacteria = report("b", &[&["ATATATAT", "TTTTTTTT"]]);
        let eukaryote = report("e", &[&["ATATATAT", "GGGGGGGG"]]);
        let only_euk = exclusive_patterns(&eukaryote, &bacteria);
        assert_eq!(only_euk, vec![pat("GGGGGGGG")]);
        let only_bac = exclusive_patterns(&bacteria, &eukaryote);
        assert_eq!(only_bac, vec![pat("TTTTTTTT")]);
    }

    #[test]
    fn cg_heavy_fraction_counts() {
        let r = report("toy", &[&["ATATATAT", "GGGGGGGG", "GCGCGCGC", "ATTTTTTA"]]);
        assert!((cg_heavy_fraction(&r) - 0.5).abs() < 1e-12);
        assert_eq!(cg_heavy_fraction(&report("none", &[])), 0.0);
    }

    #[test]
    fn end_to_end_small_genome() {
        // A tiny AT-periodic genome: the case study should find AT-only
        // focal patterns dominating.
        use perigap_seq::gen::iid::weighted;
        use perigap_seq::gen::periodic::{plant_periodic, PeriodicMotif};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let mut genome = weighted(&mut rng, Alphabet::Dna, 2_400, &[0.35, 0.15, 0.15, 0.35]);
        for motif in [vec![0u8; 5], vec![3u8; 5], vec![0, 3, 0, 3, 0]] {
            let spec = PeriodicMotif {
                motif,
                gap_min: 1,
                gap_max: 3,
                occurrences: 60,
            };
            plant_periodic(&mut rng, &mut genome, &spec);
        }
        let config = CaseStudyConfig {
            fragment_width: 800,
            min_fragment: 400,
            gap: GapRequirement::new(1, 3).unwrap(),
            rho: 0.001,
            m: 3,
            focal_length: 4,
        };
        let report = run_case_study("toy", &genome, &config).unwrap();
        assert_eq!(report.fragments.len(), 3);
        assert!(report.longest() >= 4, "longest = {}", report.longest());
        // The paper's claim is per-class: the *fraction* of A/T-only
        // patterns that are frequent exceeds the fraction of C/G-heavy
        // ones (the classes have very different sizes).
        let (at_total, _, cg_total) = crate::composition::class_totals(4);
        let at_frac = report.mean_at_only() / at_total as f64;
        let cg_frac = report.mean_many_cg() / cg_total as f64;
        assert!(
            at_frac > cg_frac,
            "A/T class should be denser in frequent patterns: {at_frac} vs {cg_frac}"
        );
    }
}
