//! Plain-text table rendering for the case study and the `repro`
//! harness — fixed-width columns, right-aligned numbers, no external
//! dependencies.

/// A simple column-aligned text table builder.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable items.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let rendered: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&rendered)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns: headers left-aligned, cells
    /// right-aligned (numeric tables read best that way).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        for (c, h) in self.header.iter().enumerate() {
            if c > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{h:<width$}", width = widths[c]));
        }
        out.push('\n');
        for (c, _) in self.header.iter().enumerate() {
            if c > 0 {
                out.push_str("  ");
            }
            out.push_str(&"-".repeat(widths[c]));
        }
        out.push('\n');
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
            out.push('\n');
        }
        out
    }
}

/// Format a duration in seconds with millisecond resolution — the unit
/// of every timing figure in the paper.
pub fn seconds(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["level", "candidates"]);
        t.row_display(&[3, 64]).row_display(&[4, 65536]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("level"));
        assert!(lines[1].starts_with("-----"));
        // Right-aligned numbers end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].ends_with("65536"));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn wrong_arity_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(&["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(seconds(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(seconds(std::time::Duration::ZERO), "0.000");
    }
}
