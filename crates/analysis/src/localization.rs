//! Positional localization of pattern occurrences.
//!
//! The case study distinguishes patterns that are "ubiquitous in the
//! genomes, not restricting to any specific regions" from ones whose
//! support concentrates in a few loci (like the planted G-runs in one
//! fragment of H. sapiens). This module quantifies that: bin the first
//! offsets of a pattern's matches, compare against the uniform
//! expectation, and summarize with a dispersion score.

use perigap_core::pil::Pil;
use perigap_core::{GapRequirement, Pattern};
use perigap_seq::Sequence;

/// Positional occupancy of one pattern's matches.
#[derive(Clone, Debug)]
pub struct Localization {
    /// Number of bins the sequence was divided into.
    pub bins: usize,
    /// Matching offset-sequence count per bin (by first offset).
    pub counts: Vec<u128>,
    /// Total support.
    pub support: u128,
}

impl Localization {
    /// The index of the densest bin and its share of the support
    /// (`None` when the pattern never matches).
    pub fn hottest_bin(&self) -> Option<(usize, f64)> {
        if self.support == 0 {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, &c)| (i, c as f64 / self.support as f64))
    }

    /// A chi-square-style dispersion statistic against the uniform
    /// expectation: `Σ (observed − expected)² / expected`, normalized
    /// by the bin count. Near 0 for ubiquitous patterns; large for
    /// locus-concentrated ones.
    pub fn dispersion(&self) -> f64 {
        if self.support == 0 || self.bins == 0 {
            return 0.0;
        }
        let expected = self.support as f64 / self.bins as f64;
        self.counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum::<f64>()
            / self.bins as f64
    }

    /// True when one bin holds more than `share` of the support.
    pub fn is_localized(&self, share: f64) -> bool {
        self.hottest_bin().is_some_and(|(_, s)| s > share)
    }
}

/// Compute the localization of `pattern` in `seq` with `bins` bins.
///
/// # Panics
/// Panics if `bins == 0`.
pub fn localize(
    seq: &Sequence,
    gap: GapRequirement,
    pattern: &Pattern,
    bins: usize,
) -> Localization {
    assert!(bins > 0, "need at least one bin");
    // Build the pattern's PIL by chaining joins over its per-character
    // level-1 lists (exact, no mining needed).
    let pil = pattern_pil(seq, gap, pattern);
    let mut counts = vec![0u128; bins];
    let bin_width = (seq.len().max(1)).div_ceil(bins);
    for &(offset, count) in pil.entries() {
        let bin = ((offset as usize - 1) / bin_width).min(bins - 1);
        counts[bin] = counts[bin].saturating_add(count as u128);
    }
    Localization {
        bins,
        counts,
        support: pil.support(),
    }
}

/// `PIL(P)` computed directly by right-to-left joins of single-character
/// lists — `O(|P| · L)`, no candidate generation.
pub fn pattern_pil(seq: &Sequence, gap: GapRequirement, pattern: &Pattern) -> Pil {
    if pattern.is_empty() {
        return Pil::new();
    }
    let codes = pattern.codes();
    let mut acc = Pil::build_level1(seq, codes[codes.len() - 1]);
    for &code in codes[..codes.len() - 1].iter().rev() {
        let head = Pil::build_level1(seq, code);
        acc = Pil::join(&head, &acc, gap);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_core::naive::support_dp;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pat(text: &str) -> Pattern {
        Pattern::parse(text, &Alphabet::Dna).unwrap()
    }

    #[test]
    fn pattern_pil_matches_dp() {
        let seq = uniform(&mut StdRng::seed_from_u64(91), Alphabet::Dna, 300);
        let gap = GapRequirement::new(1, 3).unwrap();
        for text in ["A", "AC", "ACGT", "TTAA", "GGG"] {
            assert_eq!(
                pattern_pil(&seq, gap, &pat(text)).support(),
                support_dp(&seq, gap, &pat(text)),
                "pattern {text}"
            );
        }
    }

    #[test]
    fn uniform_pattern_has_low_dispersion() {
        let seq = uniform(&mut StdRng::seed_from_u64(92), Alphabet::Dna, 8_000);
        let gap = GapRequirement::new(1, 2).unwrap();
        let loc = localize(&seq, gap, &pat("ACG"), 10);
        assert!(loc.support > 0);
        assert!(loc.dispersion() < 30.0, "dispersion {}", loc.dispersion());
        assert!(!loc.is_localized(0.5));
        // Counts spread over every bin.
        assert!(loc.counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn planted_block_is_detected_as_localized() {
        // G-rich block confined to the last tenth of the sequence.
        let mut codes = vec![0u8; 5_000];
        for c in codes.iter_mut().skip(4_500) {
            *c = 2;
        }
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let gap = GapRequirement::new(1, 2).unwrap();
        let loc = localize(&seq, gap, &pat("GGG"), 10);
        let (bin, share) = loc.hottest_bin().unwrap();
        assert_eq!(bin, 9);
        assert!(share > 0.95);
        assert!(loc.is_localized(0.5));
        assert!(loc.dispersion() > 100.0);
    }

    #[test]
    fn zero_support_pattern() {
        let seq = Sequence::dna(&"A".repeat(100)).unwrap();
        let gap = GapRequirement::new(1, 2).unwrap();
        let loc = localize(&seq, gap, &pat("GGG"), 5);
        assert_eq!(loc.support, 0);
        assert!(loc.hottest_bin().is_none());
        assert_eq!(loc.dispersion(), 0.0);
        assert!(!loc.is_localized(0.1));
    }

    #[test]
    fn bin_assignment_covers_all_offsets() {
        let seq = uniform(&mut StdRng::seed_from_u64(93), Alphabet::Dna, 997);
        let gap = GapRequirement::new(0, 1).unwrap();
        let loc = localize(&seq, gap, &pat("A"), 7);
        let total: u128 = loc.counts.iter().sum();
        assert_eq!(total, loc.support);
    }
}
