//! Tab-separated export of mining results.
//!
//! Mined pattern sets feed downstream toolchains (R, pandas,
//! spreadsheets); TSV is the lingua franca and needs no dependencies.
//! Columns are stable and documented here so scripts can rely on them.

use perigap_core::result::{MineOutcome, MineStats};
use perigap_core::GapRequirement;
use perigap_seq::Alphabet;
use std::fmt::Write as _;

/// Render an outcome as TSV with the header
/// `pattern  length  support  ratio  gapped_form`.
pub fn outcome_to_tsv(outcome: &MineOutcome, alphabet: &Alphabet, gap: GapRequirement) -> String {
    let mut out = String::from("pattern\tlength\tsupport\tratio\tgapped_form\n");
    for f in &outcome.frequent {
        writeln!(
            out,
            "{}\t{}\t{}\t{:.9}\t{}",
            f.pattern.display(alphabet),
            f.len(),
            f.support,
            f.ratio,
            f.pattern.display_with_gaps(alphabet, gap)
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Render per-level run statistics as TSV with the header
/// `level  candidates  frequent  extended  millis`.
pub fn stats_to_tsv(stats: &MineStats) -> String {
    let mut out = String::from("level\tcandidates\tfrequent\textended\tmillis\n");
    for l in &stats.levels {
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{:.3}",
            l.level,
            l.candidates,
            l.frequent,
            l.extended,
            l.elapsed.as_secs_f64() * 1_000.0
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Parse a TSV produced by [`outcome_to_tsv`] back into
/// `(pattern_text, support, ratio)` rows — round-trip support for
/// pipelines that post-process and re-ingest results.
pub fn parse_outcome_tsv(text: &str) -> Result<Vec<(String, u128, f64)>, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty TSV")?;
    if !header.starts_with("pattern\t") {
        return Err(format!("unexpected header {header:?}"));
    }
    let mut out = Vec::new();
    for (idx, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 4 {
            return Err(format!(
                "row {}: expected ≥4 fields, got {}",
                idx + 2,
                fields.len()
            ));
        }
        let support: u128 = fields[2]
            .parse()
            .map_err(|e| format!("row {}: bad support: {e}", idx + 2))?;
        let ratio: f64 = fields[3]
            .parse()
            .map_err(|e| format!("row {}: bad ratio: {e}", idx + 2))?;
        out.push((fields[0].to_string(), support, ratio));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_core::mpp::MppConfig;
    use perigap_core::mppm::mppm;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Sequence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mined() -> (Sequence, GapRequirement, MineOutcome) {
        let seq = uniform(&mut StdRng::seed_from_u64(71), Alphabet::Dna, 150);
        let gap = GapRequirement::new(1, 2).unwrap();
        let outcome = mppm(&seq, gap, 0.002, 3, MppConfig::default()).unwrap();
        (seq, gap, outcome)
    }

    #[test]
    fn tsv_has_one_row_per_pattern() {
        let (seq, gap, outcome) = mined();
        let tsv = outcome_to_tsv(&outcome, seq.alphabet(), gap);
        assert_eq!(tsv.lines().count(), outcome.frequent.len() + 1);
        assert!(tsv.starts_with("pattern\tlength\tsupport\tratio\tgapped_form\n"));
        assert!(tsv.contains("g(1,2)"), "gapped form rendered");
    }

    #[test]
    fn tsv_roundtrip() {
        let (seq, gap, outcome) = mined();
        let tsv = outcome_to_tsv(&outcome, seq.alphabet(), gap);
        let rows = parse_outcome_tsv(&tsv).unwrap();
        assert_eq!(rows.len(), outcome.frequent.len());
        for (row, f) in rows.iter().zip(&outcome.frequent) {
            assert_eq!(row.0, f.pattern.display(seq.alphabet()));
            assert_eq!(row.1, f.support);
            assert!((row.2 - f.ratio).abs() < 1e-9);
        }
    }

    #[test]
    fn stats_tsv_lists_levels() {
        let (_, _, outcome) = mined();
        let tsv = stats_to_tsv(&outcome.stats);
        assert_eq!(tsv.lines().count(), outcome.stats.levels.len() + 1);
        assert!(
            tsv.lines().nth(1).unwrap().starts_with('3'),
            "first level is 3"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_outcome_tsv("").is_err());
        assert!(parse_outcome_tsv("wrong\theader\n").is_err());
        assert!(
            parse_outcome_tsv("pattern\tlength\tsupport\tratio\nACG\t3\tnot-a-number\t0.5\n")
                .is_err()
        );
        assert!(parse_outcome_tsv("pattern\tlength\tsupport\tratio\nACG\t3\n").is_err());
    }
}
