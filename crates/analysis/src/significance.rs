//! Empirical significance by permutation: how many frequent patterns
//! would a *shuffled* sequence produce?
//!
//! The i.i.d. null of [`crate::nullmodel`] is analytic but assumes
//! independence; the permutation null is assumption-free — shuffling
//! destroys all positional structure (periodicity included) while
//! preserving composition exactly. Comparing the real mining outcome
//! against `k` shuffles turns "we found 28,751 frequent patterns" into
//! "…of which a composition-matched random sequence explains N".

use perigap_core::mpp::MppConfig;
use perigap_core::mppm::mppm;
use perigap_core::result::MineOutcome;
use perigap_core::{GapRequirement, MineError};
use perigap_seq::{Alphabet, Sequence};
use rand::seq::SliceRandom;
use rand::Rng;

/// Fisher–Yates shuffle of a sequence's characters: identical
/// composition, no positional structure.
pub fn shuffle_sequence<R: Rng + ?Sized>(rng: &mut R, seq: &Sequence) -> Sequence {
    let mut codes = seq.codes().to_vec();
    codes.shuffle(rng);
    Sequence::from_codes(seq.alphabet().clone(), codes).expect("codes unchanged")
}

/// Result of a permutation study.
#[derive(Clone, Debug)]
pub struct PermutationReport {
    /// Frequent patterns in the real sequence.
    pub observed: usize,
    /// Longest frequent pattern in the real sequence.
    pub observed_longest: usize,
    /// Frequent-pattern counts in each shuffle.
    pub null_counts: Vec<usize>,
    /// Longest frequent length in each shuffle.
    pub null_longest: Vec<usize>,
}

impl PermutationReport {
    /// Mean frequent-pattern count under the null.
    pub fn null_mean(&self) -> f64 {
        if self.null_counts.is_empty() {
            return 0.0;
        }
        self.null_counts.iter().sum::<usize>() as f64 / self.null_counts.len() as f64
    }

    /// Fraction of shuffles with at least as many frequent patterns as
    /// observed — an empirical p-value for the count statistic (with
    /// the +1 correction so it is never exactly 0).
    pub fn p_value_count(&self) -> f64 {
        let k = self.null_counts.len();
        let ge = self
            .null_counts
            .iter()
            .filter(|&&c| c >= self.observed)
            .count();
        (ge + 1) as f64 / (k + 1) as f64
    }

    /// Empirical p-value for the longest-pattern statistic.
    pub fn p_value_longest(&self) -> f64 {
        let k = self.null_longest.len();
        let ge = self
            .null_longest
            .iter()
            .filter(|&&l| l >= self.observed_longest)
            .count();
        (ge + 1) as f64 / (k + 1) as f64
    }
}

/// Mine `seq` and `shuffles` composition-matched permutations of it
/// with identical parameters, and report the comparison.
pub fn permutation_study<R: Rng + ?Sized>(
    rng: &mut R,
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    m: usize,
    shuffles: usize,
) -> Result<PermutationReport, MineError> {
    let config = MppConfig::default();
    let real = mppm(seq, gap, rho, m, config.clone())?;
    let mut null_counts = Vec::with_capacity(shuffles);
    let mut null_longest = Vec::with_capacity(shuffles);
    for _ in 0..shuffles {
        let shuffled = shuffle_sequence(rng, seq);
        let outcome: MineOutcome = mppm(&shuffled, gap, rho, m, config.clone())?;
        null_counts.push(outcome.frequent.len());
        null_longest.push(outcome.longest_len());
    }
    Ok(PermutationReport {
        observed: real.frequent.len(),
        observed_longest: real.longest_len(),
        null_counts,
        null_longest,
    })
}

/// Convenience check that a shuffle really preserves composition
/// (used by tests and debug assertions in callers).
pub fn same_composition(a: &Sequence, b: &Sequence) -> bool {
    a.alphabet() == b.alphabet() && {
        let _ = Alphabet::Dna; // alphabet-agnostic: compare count vectors
        a.code_counts() == b.code_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_seq::gen::iid::weighted;
    use perigap_seq::gen::periodic::{plant_periodic, PeriodicMotif};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shuffle_preserves_composition() {
        let seq = Sequence::dna(&"AACGT".repeat(40)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let shuffled = shuffle_sequence(&mut rng, &seq);
        assert!(same_composition(&seq, &shuffled));
        assert_ne!(
            shuffled, seq,
            "a 200-char shuffle virtually never fixes every position"
        );
    }

    #[test]
    fn planted_periodicity_is_significant() {
        let mut rng = StdRng::seed_from_u64(20);
        let mut seq = weighted(&mut rng, Alphabet::Dna, 1_200, &[0.3, 0.2, 0.2, 0.3]);
        let spec = PeriodicMotif {
            motif: vec![0; 8],
            gap_min: 5,
            gap_max: 7,
            occurrences: 60,
        };
        plant_periodic(&mut rng, &mut seq, &spec);
        let gap = GapRequirement::new(5, 7).unwrap();
        let report = permutation_study(&mut rng, &seq, gap, 0.0005, 3, 8).unwrap();
        // The planted structure must beat every shuffle on the
        // longest-pattern statistic.
        assert!(
            report.observed_longest > report.null_longest.iter().copied().max().unwrap(),
            "observed longest {} vs null {:?}",
            report.observed_longest,
            report.null_longest
        );
        assert!(report.p_value_longest() < 0.2);
        // The raw frequent-pattern count is a much blunter statistic —
        // shuffles keep the composition, so short-pattern counts drown
        // most of the planted signal — but the planted run should still
        // nudge it above the null mean.
        assert!(report.null_mean() < report.observed as f64);
    }

    #[test]
    fn p_values_are_calibrated_on_null_data() {
        // When the "real" sequence is itself structureless, p-values
        // must not be extreme.
        let mut rng = StdRng::seed_from_u64(3);
        let seq = weighted(&mut rng, Alphabet::Dna, 800, &[0.25; 4]);
        let gap = GapRequirement::new(2, 4).unwrap();
        let report = permutation_study(&mut rng, &seq, gap, 0.001, 3, 9).unwrap();
        assert!(
            report.p_value_count() > 0.05,
            "p = {}",
            report.p_value_count()
        );
    }

    #[test]
    fn empty_shuffle_set() {
        let mut rng = StdRng::seed_from_u64(4);
        let seq = Sequence::dna(&"ACGT".repeat(30)).unwrap();
        let gap = GapRequirement::new(1, 2).unwrap();
        let report = permutation_study(&mut rng, &seq, gap, 0.01, 2, 0).unwrap();
        assert_eq!(report.null_counts.len(), 0);
        assert_eq!(report.null_mean(), 0.0);
        // With no shuffles, the +1-corrected p-value is 1.
        assert_eq!(report.p_value_count(), 1.0);
    }
}
