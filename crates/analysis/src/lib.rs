//! # perigap-analysis
//!
//! Case-study tooling for the *perigap* workspace, reproducing the
//! analyses of Section 7 of "Mining Periodic Patterns with Gap
//! Requirement from Sequences" (SIGMOD 2005):
//!
//! * [`composition`] — A/T vs C/G classification of mined DNA patterns
//!   and the paper's 256 / 2,048 / 63,232 accounting of length-8
//!   pattern classes;
//! * [`casestudy`] — the fragment-and-mine pipeline with per-genome
//!   aggregation (mean A/T-only counts, ubiquitous patterns,
//!   cross-species exclusives);
//! * [`nullmodel`] — i.i.d. expectations, enrichment and z-scores for
//!   ranking mined patterns against chance;
//! * [`report`] — dependency-free text tables for the harness output;
//! * [`export`] — TSV output for downstream toolchains.

#![warn(missing_docs)]

pub mod casestudy;
pub mod composition;
pub mod export;
pub mod localization;
pub mod nullmodel;
pub mod report;
pub mod significance;

pub use casestudy::{run_case_study, CaseStudyConfig, GenomeReport};
pub use composition::{breakdown, classify, CompositionClass};
