//! Base-composition classification of DNA patterns.
//!
//! Section 7's headline result is compositional: "the bases 'A' and 'T'
//! constitute much more to the periodic patterns than 'C' and 'G'".
//! This module classifies patterns by their C/G content and reproduces
//! the paper's accounting of the 4^8 = 65,536 length-8 patterns:
//! 2^8 = 256 are A/T-only, 8·2·2^7 = 2,048 have exactly one C or G, and
//! 63,232 have more than one.

use perigap_core::result::MineOutcome;
use perigap_core::Pattern;

/// DNA codes (A=0, C=1, G=2, T=3) that count as "strong" (C/G) bases.
fn is_cg(code: u8) -> bool {
    code == 1 || code == 2
}

/// The composition class of one DNA pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CompositionClass {
    /// Only A and T characters.
    AtOnly,
    /// Exactly one C or G character.
    OneCg,
    /// Two or more C/G characters.
    ManyCg,
}

/// Classify a DNA pattern.
pub fn classify(pattern: &Pattern) -> CompositionClass {
    match pattern.codes().iter().filter(|&&c| is_cg(c)).count() {
        0 => CompositionClass::AtOnly,
        1 => CompositionClass::OneCg,
        _ => CompositionClass::ManyCg,
    }
}

/// Number of C/G characters in a pattern.
pub fn cg_count(pattern: &Pattern) -> usize {
    pattern.codes().iter().filter(|&&c| is_cg(c)).count()
}

/// How many length-`l` DNA patterns fall in each class, analytically —
/// the denominators of the paper's Section 7 ratios.
pub fn class_totals(l: u32) -> (u128, u128, u128) {
    let all = 4u128.pow(l);
    let at_only = 2u128.pow(l);
    // Choose the C/G position (l ways), its letter (2 ways), and A/T
    // letters everywhere else.
    let one_cg = if l == 0 {
        0
    } else {
        2 * l as u128 * 2u128.pow(l - 1)
    };
    (at_only, one_cg, all - at_only - one_cg)
}

/// Composition breakdown of one mined outcome, restricted to patterns
/// of length `l`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompositionBreakdown {
    /// Frequent A/T-only patterns of the target length.
    pub at_only: usize,
    /// Frequent patterns with exactly one C or G.
    pub one_cg: usize,
    /// Frequent patterns with two or more C/G.
    pub many_cg: usize,
}

impl CompositionBreakdown {
    /// Total frequent patterns of the target length.
    pub fn total(&self) -> usize {
        self.at_only + self.one_cg + self.many_cg
    }
}

/// Count frequent patterns of length `l` in each composition class.
pub fn breakdown(outcome: &MineOutcome, l: usize) -> CompositionBreakdown {
    let mut out = CompositionBreakdown::default();
    for f in outcome.of_length(l) {
        match classify(&f.pattern) {
            CompositionClass::AtOnly => out.at_only += 1,
            CompositionClass::OneCg => out.one_cg += 1,
            CompositionClass::ManyCg => out.many_cg += 1,
        }
    }
    out
}

/// The self-repeating frequent patterns of an outcome (the case study's
/// `ATATATATATA` / `GTAGTAGTAGT` observations), longest first.
pub fn self_repeating(outcome: &MineOutcome) -> Vec<&Pattern> {
    let mut out: Vec<&Pattern> = outcome
        .frequent
        .iter()
        .map(|f| &f.pattern)
        .filter(|p| p.is_self_repeating())
        .collect();
    out.sort_by_key(|p| std::cmp::Reverse(p.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_core::result::{FrequentPattern, MineStats};
    use perigap_seq::Alphabet;

    fn pat(text: &str) -> Pattern {
        Pattern::parse(text, &Alphabet::Dna).unwrap()
    }

    fn outcome(patterns: &[&str]) -> MineOutcome {
        MineOutcome {
            frequent: patterns
                .iter()
                .map(|t| FrequentPattern {
                    pattern: pat(t),
                    support: 1,
                    ratio: 1.0,
                })
                .collect(),
            stats: MineStats::default(),
        }
    }

    #[test]
    fn classification() {
        assert_eq!(classify(&pat("ATTA")), CompositionClass::AtOnly);
        assert_eq!(classify(&pat("ATCA")), CompositionClass::OneCg);
        assert_eq!(classify(&pat("ATGA")), CompositionClass::OneCg);
        assert_eq!(classify(&pat("GTCA")), CompositionClass::ManyCg);
        assert_eq!(classify(&pat("GGGG")), CompositionClass::ManyCg);
        assert_eq!(cg_count(&pat("GGCATT")), 3);
    }

    #[test]
    fn paper_length8_totals() {
        // Section 7's arithmetic, verbatim.
        let (at, one, many) = class_totals(8);
        assert_eq!(at, 256);
        assert_eq!(one, 2_048);
        assert_eq!(many, 63_232);
        assert_eq!(at + one + many, 65_536);
    }

    #[test]
    fn totals_sum_for_all_lengths() {
        for l in 1..=12 {
            let (at, one, many) = class_totals(l);
            assert_eq!(at + one + many, 4u128.pow(l), "length {l}");
        }
    }

    #[test]
    fn breakdown_counts_by_length() {
        let o = outcome(&["ATATATAT", "TTTTTTTT", "ATCATATA", "GGGGGGGG", "ATT"]);
        let b = breakdown(&o, 8);
        assert_eq!(b.at_only, 2);
        assert_eq!(b.one_cg, 1);
        assert_eq!(b.many_cg, 1);
        assert_eq!(b.total(), 4); // the length-3 pattern is excluded
        assert_eq!(breakdown(&o, 5).total(), 0);
    }

    #[test]
    fn self_repeating_extraction() {
        let o = outcome(&["ATATATATATA", "GTAGTAGTAGT", "ACGTACGA", "GGGG"]);
        let reps = self_repeating(&o);
        assert_eq!(reps.len(), 3);
        // Longest first.
        assert!(reps[0].len() >= reps[1].len());
    }
}
