//! The `pgmine` subcommands: `mine`, `pack`, `scan`, `stats`.

use crate::args::{parse_gap, parse_rho, ArgError, Args};
use perigap_analysis::report::TextTable;
use perigap_core::adaptive::adaptive_mpp;
use perigap_core::corpus::{mine_corpus, CheckpointConfig, Corpus, CorpusMineConfig, ShardEngine};
use perigap_core::dfs::mpp_dfs_traced;
use perigap_core::enumerate::enumerate;
use perigap_core::mpp::{mpp_traced, MppConfig};
use perigap_core::mppm::{mppm_dfs_traced, mppm_traced};
use perigap_core::multiseq::{mine_collection, CollectionOutcome};
use perigap_core::parallel::mpp_parallel_traced;
use perigap_core::trace::{validate_trace, JsonlObserver, MetricsObserver};
use perigap_core::verify::verify_outcome;
use perigap_core::{
    GapRequirement, Kernel, MineError, MineOutcome, Pattern, PilRepr, PruneMode, ReprPolicy,
    TargetSpec,
};
use perigap_seq::fasta::read_fasta;
use perigap_seq::oscillation::correlation_spectrum;
use perigap_seq::stats::{gc_content, shannon_entropy};
use perigap_seq::{Alphabet, Sequence};
use std::io::BufRead;

/// Usage text shown by `pgmine help`.
pub const USAGE: &str = "\
pgmine — mine periodic patterns with gap requirements from sequences

USAGE:
  pgmine mine  --input <fasta> --gap <N:M> --rho <frac|pct%>
               [--algorithm mppm|mpp|adaptive|enumerate] [--n <len>]
               [--profile <N:M,N:M,...>  per-step gaps; overrides --gap]
               [--m <window>] [--record <id>] [--alphabet dna|protein]
               [--top <k>] [--max-level <l>]
               [--top-k <k>  keep only the k best-supported patterns;
                a rigid gap (N:N) also prunes the search itself]
               [--target <pattern>  mine only patterns starting with
                this prefix; join cones stay intact, emission filters]
               [--engine bfs|dfs  mpp/mppm; dfs = depth-first subtrees]
               [--threads <k>  mpp, or mppm with --engine dfs]
               [--max-arena-bytes <bytes>  abort if live arenas exceed]
               [--spill-dir <dir>  --engine dfs: spill cold subtrees to
                disk instead of aborting at the ceiling]
               [--spill-watermark <frac>  spill once live arenas reach
                frac * ceiling (default 0.5)]
               [--pil-repr auto|sparse|dense  per-list PIL join layout;
                output-identical, performance only]
               [--kernel auto|scalar|simd  join/seed kernels; simd needs
                AVX2 and falls back to scalar; output-identical]
               [--closed  keep only closed patterns: drop any pattern a
                one-longer frequent extension matches at equal support]
               [--format table|tsv] [--save <path.pgst>] [--verify]
               [--trace <path.jsonl>  mpp/mppm only] [--metrics]
  pgmine pack  --input <fasta> --output <corpus.pgco>
               [--alphabet dna|protein]   pack every FASTA record into
               one mmap-ready corpus file (2-bit DNA / 5-bit protein)
  pgmine mine  --corpus <corpus.pgco> --gap <N:M> --rho <frac|pct%>
               mine the whole corpus, one shard per sequence
               [--n <len>] [--min-sequences <k>  frequent in ≥ k shards]
               [--threads <k>  shards fan out on a work-stealing pool]
               [--engine bfs|dfs  per-shard engine]
               [--max-arena-bytes <bytes>] [--spill-dir <dir>]
               [--checkpoint-dir <dir>  persist each finished shard]
               [--resume  continue from a checkpoint manifest]
               [--stop-after-shards <n>  pause after n checkpoints]
               [--unsharded  reference path: decode all and run the
                collection miner in one process; rows are identical]
               [--closed] [--format table|tsv] [--metrics] [--top <k>]
  pgmine scan  --input <fasta> --pair <XY> [--min <d>] [--max <d>]
               [--record <id>]
  pgmine stats --input <fasta>
  pgmine show  --input <pgst>     inspect a persisted outcome
  pgmine serve --store <pgst> [--input <fasta>  enables overlap queries]
               [--addr <host:port>  default 127.0.0.1:0]
               [--port-file <path>  write the bound address on startup]
               [--trace <path.jsonl>] [--metrics]
  pgmine serve --input <fasta> --gap <N:M> --rho <frac|pct%>  mine, then
               serve (overlap queries available)
               [--algorithm mppm|mpp] [--n <len>] [--m <window>]
  pgmine query --addr <host:port> --json <request>
               [--timeout-ms <ms>  default 10000]
               a JSON array batches requests; served daemons also answer
               mine_topk/mine_target query kinds on demand
  pgmine trace-check --input <trace.jsonl>   validate a --trace file
  pgmine help

EXAMPLES:
  pgmine mine --input genome.fa --gap 9:12 --rho 0.003% --algorithm mppm --m 10
  pgmine mine --input genome.fa --gap 1:3 --rho 0.5% --trace run.jsonl --metrics
  pgmine mine --input genome.fa --gap 7 --rho 0.5% --algorithm mpp --top-k 100
  pgmine mine --input genome.fa --gap 1:3 --rho 0.5% --target ACG
  pgmine pack --input genomes.fa --output genomes.pgco
  pgmine mine --corpus genomes.pgco --gap 1:3 --rho 0.5% --threads 8 \\
              --min-sequences 2 --checkpoint-dir ckpt
  pgmine mine --corpus genomes.pgco --gap 1:3 --rho 0.5% --threads 8 \\
              --min-sequences 2 --checkpoint-dir ckpt --resume
  pgmine scan --input genome.fa --pair AA --max 30
  pgmine serve --input genome.fa --gap 1:3 --rho 0.5% --addr 127.0.0.1:7071
  pgmine query --addr 127.0.0.1:7071 --json '{\"q\": \"topk\", \"k\": 10}'
";

/// Run a full command line (without the binary name). Returns the
/// rendered output.
pub fn run(raw: impl IntoIterator<Item = String>) -> Result<String, ArgError> {
    let args = Args::parse(
        raw,
        &[
            "input",
            "gap",
            "rho",
            "algorithm",
            "n",
            "m",
            "record",
            "alphabet",
            "top",
            "pair",
            "min",
            "max",
            "max-level",
            "format",
            "profile",
            "save",
            "threads",
            "trace",
            "engine",
            "max-arena-bytes",
            "spill-dir",
            "spill-watermark",
            "pil-repr",
            "kernel",
            "store",
            "addr",
            "port-file",
            "json",
            "timeout-ms",
            "top-k",
            "target",
            "output",
            "corpus",
            "min-sequences",
            "checkpoint-dir",
            "stop-after-shards",
        ],
        &["verify", "metrics", "resume", "closed", "unsharded"],
    )?;
    match args.positional().first().map(String::as_str) {
        Some("mine") => mine_command(&args),
        Some("pack") => pack_command(&args),
        Some("scan") => scan_command(&args),
        Some("stats") => stats_command(&args),
        Some("show") => show_command(&args),
        Some("serve") => serve_command(&args),
        Some("query") => query_command(&args),
        Some("trace-check") => trace_check_command(&args),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(ArgError(format!(
            "unknown command {other:?}; try `pgmine help`"
        ))),
    }
}

fn load_sequence(args: &Args) -> Result<Sequence, ArgError> {
    let path = args.require("input")?;
    let alphabet = match args.get("alphabet").unwrap_or("dna") {
        "dna" => Alphabet::Dna,
        "protein" => Alphabet::Protein,
        other => return Err(ArgError(format!("unknown alphabet {other:?}"))),
    };
    let file =
        std::fs::File::open(path).map_err(|e| ArgError(format!("cannot open {path:?}: {e}")))?;
    let reader = std::io::BufReader::new(file);
    load_from_reader(reader, &alphabet, args.get("record"))
}

fn load_from_reader<R: BufRead>(
    reader: R,
    alphabet: &Alphabet,
    record_id: Option<&str>,
) -> Result<Sequence, ArgError> {
    let records = read_fasta(reader, alphabet).map_err(|e| ArgError(e.to_string()))?;
    match record_id {
        Some(id) => records
            .into_iter()
            .find(|r| r.id == id)
            .map(|r| r.sequence)
            .ok_or_else(|| ArgError(format!("no FASTA record with id {id:?}"))),
        None => records
            .into_iter()
            .next()
            .map(|r| r.sequence)
            .ok_or_else(|| ArgError("FASTA file has no records".into())),
    }
}

fn mine_command(args: &Args) -> Result<String, ArgError> {
    if args.get("corpus").is_some() {
        return mine_corpus_command(args);
    }
    for key in ["min-sequences", "checkpoint-dir", "stop-after-shards"] {
        if args.get(key).is_some() {
            return Err(ArgError(format!("--{key} applies to --corpus mining only")));
        }
    }
    for flag in ["resume", "unsharded"] {
        if args.flag(flag) {
            return Err(ArgError(format!(
                "--{flag} applies to --corpus mining only"
            )));
        }
    }
    let seq = load_sequence(args)?;
    let rho = parse_rho(args.require("rho")?)?;

    // Per-step gap profile mode (the generalized pattern form).
    if let Some(spec) = args.get("profile") {
        return mine_with_profile_command(args, &seq, rho, spec);
    }

    let (lo, hi) = parse_gap(args.require("gap")?)?;
    let gap = GapRequirement::new(lo, hi).map_err(|e| ArgError(e.to_string()))?;
    let algorithm = args.get("algorithm").unwrap_or("mppm");
    let m: usize = args.parse_or("m", 4)?;
    let top: usize = args.parse_or("top", 25)?;
    // The enumeration baseline explores sigma^l candidates per level and
    // must be depth-capped to terminate on repetitive inputs.
    let default_cap = if algorithm == "enumerate" {
        Some(10)
    } else {
        None
    };
    let max_level: Option<usize> = match args.get("max-level") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| ArgError(format!("bad --max-level {raw:?}")))?,
        ),
        None => default_cap,
    };
    let max_arena_bytes: Option<usize> = match args.get("max-arena-bytes") {
        Some(raw) => {
            let v: usize = raw
                .parse()
                .map_err(|_| ArgError(format!("bad --max-arena-bytes {raw:?}")))?;
            if v == 0 {
                return Err(ArgError(
                    "--max-arena-bytes must be at least 1: a zero ceiling would \
                     abort before the seed level allocates anything"
                        .into(),
                ));
            }
            Some(v)
        }
        None => None,
    };
    let pil_repr = match args.get("pil-repr") {
        Some(raw) => ReprPolicy::of(raw.parse::<PilRepr>().map_err(ArgError)?),
        None => ReprPolicy::default(),
    };
    let kernel = match args.get("kernel") {
        Some(raw) => raw.parse::<Kernel>().map_err(ArgError)?,
        None => Kernel::default(),
    };
    let top_k: Option<usize> = match args.get("top-k") {
        Some(raw) => {
            let v: usize = raw
                .parse()
                .map_err(|_| ArgError(format!("bad --top-k {raw:?}")))?;
            if v == 0 {
                return Err(ArgError(
                    "--top-k must be at least 1: a zero budget keeps no patterns".into(),
                ));
            }
            Some(v)
        }
        None => None,
    };
    let target: Option<TargetSpec> = match args.get("target") {
        Some(text) => {
            let prefix = Pattern::parse(text, seq.alphabet())
                .map_err(|e| ArgError(format!("bad --target {text:?}: {e}")))?;
            if prefix.codes().is_empty() {
                return Err(ArgError(
                    "--target needs at least one symbol; an empty prefix admits everything".into(),
                ));
            }
            Some(TargetSpec::Prefix(prefix.codes().to_vec()))
        }
        None => None,
    };
    if (top_k.is_some() || target.is_some()) && !matches!(algorithm, "mpp" | "mppm") {
        return Err(ArgError(format!(
            "--top-k/--target apply to --algorithm mpp or mppm only (got {algorithm:?})"
        )));
    }
    let closed = args.flag("closed");
    if closed && (top_k.is_some() || target.is_some()) {
        return Err(ArgError(
            "--closed needs the full frequent set to probe extensions; it does \
             not compose with --top-k or --target"
                .into(),
        ));
    }
    let spill_dir = args.get("spill-dir").map(std::path::PathBuf::from);
    let spill_watermark: f64 = match args.get("spill-watermark") {
        Some(raw) => {
            let v: f64 = raw
                .parse()
                .map_err(|_| ArgError(format!("bad --spill-watermark {raw:?}")))?;
            if !(v > 0.0 && v <= 1.0) {
                return Err(ArgError(format!(
                    "--spill-watermark must be in (0.0, 1.0] (got {raw}); a zero or \
                     negative watermark would spill every handoff unconditionally"
                )));
            }
            v
        }
        None => MppConfig::default().spill_watermark,
    };

    let engine = args.get("engine").unwrap_or("bfs");
    if !matches!(engine, "bfs" | "dfs") {
        return Err(ArgError(format!("unknown engine {engine:?} (bfs|dfs)")));
    }
    if (args.get("engine").is_some() || max_arena_bytes.is_some())
        && !matches!(algorithm, "mpp" | "mppm")
    {
        return Err(ArgError(format!(
            "--engine/--max-arena-bytes apply to --algorithm mpp or mppm only (got {algorithm:?})"
        )));
    }
    if args.get("spill-watermark").is_some() && spill_dir.is_none() {
        return Err(ArgError(
            "--spill-watermark needs --spill-dir to have any effect".into(),
        ));
    }
    if spill_dir.is_some() {
        if max_arena_bytes.is_none() {
            return Err(ArgError(
                "--spill-dir needs --max-arena-bytes: without a ceiling there \
                 is nothing to spill under"
                    .into(),
            ));
        }
        if engine != "dfs" {
            return Err(ArgError(
                "--spill-dir applies to --engine dfs only: the BFS engines \
                 abort at the ceiling"
                    .into(),
            ));
        }
    }
    let config = MppConfig {
        max_level,
        max_arena_bytes,
        pil_repr,
        kernel,
        spill_dir,
        spill_watermark,
        prune: PruneMode {
            top_k,
            target: target.clone(),
        },
        ..MppConfig::default()
    };

    let threads: usize = args.parse_or("threads", 1)?;
    if threads == 0 {
        return Err(ArgError("--threads must be at least 1".into()));
    }
    if threads > 1 && !(algorithm == "mpp" || (algorithm == "mppm" && engine == "dfs")) {
        return Err(ArgError(format!(
            "--threads applies to --algorithm mpp, or mppm with --engine dfs \
             (got {algorithm:?} on engine {engine:?})"
        )));
    }

    let trace_path = args.get("trace");
    let want_metrics = args.flag("metrics");
    if (trace_path.is_some() || want_metrics) && !matches!(algorithm, "mpp" | "mppm") {
        return Err(ArgError(format!(
            "--trace/--metrics apply to --algorithm mpp or mppm only (got {algorithm:?})"
        )));
    }
    if want_metrics && args.get("format") == Some("tsv") {
        return Err(ArgError(
            "--metrics would corrupt --format tsv output; drop one of them".into(),
        ));
    }
    let jsonl = match trace_path {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| ArgError(format!("cannot create {path:?}: {e}")))?;
            Some(JsonlObserver::new(std::io::BufWriter::new(file)))
        }
        None => None,
    };
    // Composed sink: either half may be absent; absent halves are
    // no-ops (see `perigap_core::trace`).
    let mut observer = (jsonl, want_metrics.then(MetricsObserver::new));

    let mined: Result<MineOutcome, _> = match algorithm {
        "mppm" => {
            if engine == "dfs" {
                mppm_dfs_traced(&seq, gap, rho, m, config, threads, &mut observer)
            } else {
                mppm_traced(&seq, gap, rho, m, config, &mut observer)
            }
        }
        "mpp" => {
            let n: usize = args.parse_or("n", gap.l1(seq.len()))?;
            if engine == "dfs" {
                mpp_dfs_traced(&seq, gap, rho, n, config, threads, &mut observer)
            } else if threads > 1 {
                mpp_parallel_traced(&seq, gap, rho, n, config, threads, &mut observer)
            } else {
                mpp_traced(&seq, gap, rho, n, config, &mut observer)
            }
        }
        "adaptive" => {
            let n: usize = args.parse_or("n", 10)?;
            adaptive_mpp(&seq, gap, rho, n, config).map(|a| a.outcome)
        }
        "enumerate" => enumerate(&seq, gap, rho, config, 100_000_000),
        other => return Err(ArgError(format!("unknown algorithm {other:?}"))),
    };

    // Flush the trace before surfacing a mining error: an aborted run's
    // trace (terminal `abort` line) is exactly what post-mortems need.
    let (jsonl, metrics) = observer;
    if let Some(sink) = jsonl {
        sink.finish()
            .map_err(|e| ArgError(format!("trace write failed: {e}")))?;
    }
    let outcome = mined.map_err(|e| ArgError(e.to_string()))?;
    // The closed filter is an output mode: everything downstream
    // (save, tsv, table, verify) sees only the closed subset.
    let (outcome, closed_dropped) = if closed {
        let kept = outcome.closed_frequent();
        let dropped = outcome.frequent.len() - kept.len();
        (
            MineOutcome {
                frequent: kept,
                stats: outcome.stats,
            },
            Some(dropped),
        )
    } else {
        (outcome, None)
    };

    if let Some(path) = args.get("save") {
        let file = std::fs::File::create(path)
            .map_err(|e| ArgError(format!("cannot create {path:?}: {e}")))?;
        perigap_store::save_outcome(file, &outcome, gap, rho)
            .map_err(|e| ArgError(e.to_string()))?;
    }
    if args.get("format") == Some("tsv") {
        return Ok(perigap_analysis::export::outcome_to_tsv(
            &outcome,
            seq.alphabet(),
            gap,
        ));
    }
    let mut out = String::new();
    out.push_str(&format!(
        "sequence: {} chars over {:?}; gap {}; rho {:.6}%\n",
        seq.len(),
        seq.alphabet(),
        gap,
        rho * 100.0
    ));
    out.push_str(&format!(
        "{} frequent patterns; longest = {}\n",
        outcome.frequent.len(),
        outcome.longest_len()
    ));
    if let Some(dropped) = closed_dropped {
        out.push_str(&format!(
            "closed: dropped {dropped} patterns absorbed by an equal-support extension\n"
        ));
    }
    if let Some(k) = top_k {
        out.push_str(&format!(
            "top-k {k}: floor raises {}, pruned by floor {}\n",
            outcome.stats.floor_raises, outcome.stats.pruned_by_floor
        ));
    }
    if target.is_some() {
        out.push_str(&format!(
            "target {}: pruned by target {}\n",
            args.get("target").unwrap_or("?"),
            outcome.stats.pruned_by_target
        ));
    }
    out.push('\n');
    let mut table = TextTable::new(&["pattern", "len", "support", "ratio"]);
    let mut rows: Vec<_> = outcome.frequent.iter().collect();
    // A top-k outcome is already in rank order (support desc, len,
    // codes) — print it that way; full mines keep the longest-first
    // digest view.
    if top_k.is_none() {
        rows.sort_by(|a, b| {
            b.len()
                .cmp(&a.len())
                .then(b.support.cmp(&a.support))
                .then(a.pattern.codes().cmp(b.pattern.codes()))
        });
    }
    for f in rows.iter().take(top) {
        table.row(&[
            f.pattern.display(seq.alphabet()),
            f.len().to_string(),
            f.support.to_string(),
            format!("{:.6}", f.ratio),
        ]);
    }
    out.push_str(&table.render());
    if outcome.frequent.len() > top {
        out.push_str(&format!(
            "… {} more (raise --top)\n",
            outcome.frequent.len() - top
        ));
    }

    if args.flag("verify") {
        let problems = verify_outcome(&seq, gap, rho, &outcome);
        if problems.is_empty() {
            out.push_str("\nverify: all supports, thresholds and ratios check out\n");
        } else {
            out.push_str(&format!(
                "\nverify: {} DISCREPANCIES: {problems:?}\n",
                problems.len()
            ));
        }
    }
    if let Some(metrics) = metrics {
        out.push('\n');
        out.push_str(&metrics.render());
    }
    if outcome.stats.support_saturated {
        out.push_str(
            "\nwarning: a support counter saturated at u64::MAX; reported supports are lower bounds\n",
        );
    }
    Ok(out)
}

/// Validate a `--trace` JSONL file against the schema (see
/// `perigap_core::trace`): every line parses, level events are strictly
/// increasing, and the summary totals match the level events.
fn trace_check_command(args: &Args) -> Result<String, ArgError> {
    let path = args.require("input")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read {path:?}: {e}")))?;
    let report =
        validate_trace(&text).map_err(|e| ArgError(format!("invalid trace {path:?}: {e}")))?;
    Ok(format!(
        "trace OK: {} lines, {} level events, {} frequent patterns, {} candidates\n",
        report.lines, report.level_events, report.frequent, report.total_candidates
    ))
}

fn mine_with_profile_command(
    args: &Args,
    seq: &Sequence,
    rho: f64,
    spec: &str,
) -> Result<String, ArgError> {
    use perigap_core::profile::{mine_with_profile, GapProfile};
    if args.get("top-k").is_some() || args.get("target").is_some() || args.flag("closed") {
        return Err(ArgError(
            "--top-k/--target/--closed do not apply to --profile mining".into(),
        ));
    }
    let steps = spec
        .split(',')
        .map(|part| {
            let (lo, hi) = parse_gap(part.trim())?;
            GapRequirement::new(lo, hi).map_err(|e| ArgError(e.to_string()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let profile = GapProfile::new(steps).map_err(|e| ArgError(e.to_string()))?;
    let n: usize = args.parse_or("n", profile.max_pattern_len())?;
    let top: usize = args.parse_or("top", 25)?;
    let outcome =
        mine_with_profile(seq, &profile, rho, n, 3).map_err(|e| ArgError(e.to_string()))?;
    let mut out = format!(
        "sequence: {} chars; profile {:?}; rho {:.6}%\n{} frequent patterns; longest = {}\n\n",
        seq.len(),
        spec,
        rho * 100.0,
        outcome.frequent.len(),
        outcome.longest_len()
    );
    let mut table = TextTable::new(&["pattern", "len", "support", "ratio"]);
    for f in outcome.frequent.iter().rev().take(top) {
        table.row(&[
            f.pattern.display(seq.alphabet()),
            f.len().to_string(),
            f.support.to_string(),
            format!("{:.6}", f.ratio),
        ]);
    }
    out.push_str(&table.render());
    Ok(out)
}

/// `pgmine pack`: read every FASTA record and write one mmap-ready
/// packed corpus file.
fn pack_command(args: &Args) -> Result<String, ArgError> {
    let input = args.require("input")?;
    let output = args.require("output")?;
    let alphabet = match args.get("alphabet").unwrap_or("dna") {
        "dna" => Alphabet::Dna,
        "protein" => Alphabet::Protein,
        other => return Err(ArgError(format!("unknown alphabet {other:?}"))),
    };
    let file =
        std::fs::File::open(input).map_err(|e| ArgError(format!("cannot open {input:?}: {e}")))?;
    let records = read_fasta(std::io::BufReader::new(file), &alphabet)
        .map_err(|e| ArgError(e.to_string()))?;
    if records.is_empty() {
        return Err(ArgError(format!("{input:?} has no FASTA records")));
    }
    let seqs: Vec<(String, Sequence)> = records.into_iter().map(|r| (r.id, r.sequence)).collect();
    let hash =
        Corpus::write(std::path::Path::new(output), &seqs).map_err(|e| ArgError(e.to_string()))?;
    let symbols: usize = seqs.iter().map(|(_, s)| s.len()).sum();
    let bytes = std::fs::metadata(output)
        .map(|m| m.len())
        .unwrap_or_default();
    Ok(format!(
        "packed {} sequences ({} symbols) into {output}: {bytes} bytes, hash {hash:#018x}\n",
        seqs.len(),
        symbols
    ))
}

/// `pgmine mine --corpus`: sharded corpus mining with optional
/// checkpoint/resume, or the `--unsharded` reference path through the
/// in-process collection miner. Both print identical rows.
fn mine_corpus_command(args: &Args) -> Result<String, ArgError> {
    if args.get("input").is_some() {
        return Err(ArgError(
            "--corpus and --input are exclusive: a corpus mine reads the packed file".into(),
        ));
    }
    for key in [
        "algorithm",
        "m",
        "profile",
        "top-k",
        "target",
        "save",
        "trace",
    ] {
        if args.get(key).is_some() {
            return Err(ArgError(format!(
                "--{key} does not apply to --corpus mining"
            )));
        }
    }
    let rho = parse_rho(args.require("rho")?)?;
    let (lo, hi) = parse_gap(args.require("gap")?)?;
    let gap = GapRequirement::new(lo, hi).map_err(|e| ArgError(e.to_string()))?;
    let n: usize = args.parse_or("n", 10)?;
    let min_sequences: usize = args.parse_or("min-sequences", 1)?;
    let threads: usize = args.parse_or("threads", 1)?;
    if threads == 0 {
        return Err(ArgError("--threads must be at least 1".into()));
    }
    let engine = match args.get("engine").unwrap_or("bfs") {
        "bfs" => ShardEngine::Bfs,
        "dfs" => ShardEngine::Dfs,
        other => return Err(ArgError(format!("unknown engine {other:?} (bfs|dfs)"))),
    };
    let max_arena_bytes: Option<usize> = match args.get("max-arena-bytes") {
        Some(raw) => {
            let v: usize = raw
                .parse()
                .map_err(|_| ArgError(format!("bad --max-arena-bytes {raw:?}")))?;
            if v == 0 {
                return Err(ArgError("--max-arena-bytes must be at least 1".into()));
            }
            Some(v)
        }
        None => None,
    };
    let spill_dir = args.get("spill-dir").map(std::path::PathBuf::from);
    if spill_dir.is_some() {
        if max_arena_bytes.is_none() {
            return Err(ArgError(
                "--spill-dir needs --max-arena-bytes: without a ceiling there \
                 is nothing to spill under"
                    .into(),
            ));
        }
        if engine != ShardEngine::Dfs {
            return Err(ArgError(
                "--spill-dir applies to --engine dfs only: the BFS engine \
                 aborts at the ceiling"
                    .into(),
            ));
        }
    }
    let checkpoint_dir = args.get("checkpoint-dir").map(std::path::PathBuf::from);
    if args.flag("resume") && checkpoint_dir.is_none() {
        return Err(ArgError(
            "--resume needs --checkpoint-dir to know where the manifest lives".into(),
        ));
    }
    let stop_after_shards: Option<usize> = match args.get("stop-after-shards") {
        Some(raw) => {
            if checkpoint_dir.is_none() {
                return Err(ArgError(
                    "--stop-after-shards needs --checkpoint-dir: a pause without \
                     checkpoints would just lose work"
                        .into(),
                ));
            }
            Some(
                raw.parse()
                    .map_err(|_| ArgError(format!("bad --stop-after-shards {raw:?}")))?,
            )
        }
        None => None,
    };
    let unsharded = args.flag("unsharded");
    if unsharded && (checkpoint_dir.is_some() || args.flag("resume")) {
        return Err(ArgError(
            "--unsharded is the one-process reference path; it does not checkpoint".into(),
        ));
    }
    let closed = args.flag("closed");
    let want_metrics = args.flag("metrics");
    if want_metrics && args.get("format") == Some("tsv") {
        return Err(ArgError(
            "--metrics would corrupt --format tsv output; drop one of them".into(),
        ));
    }

    let path = std::path::Path::new(args.get("corpus").expect("dispatch checked"));
    let corpus = Corpus::open(path).map_err(|e| ArgError(e.to_string()))?;
    let alphabet = corpus.alphabet().clone();
    let mpp_config = MppConfig {
        max_arena_bytes,
        spill_dir,
        ..MppConfig::default()
    };

    let (outcome, stats) = if unsharded {
        let seqs = (0..corpus.len())
            .map(|j| corpus.sequence(j))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| ArgError(e.to_string()))?;
        let outcome = mine_collection(&seqs, gap, rho, min_sequences, n, mpp_config)
            .map_err(|e| ArgError(e.to_string()))?;
        (outcome, None)
    } else {
        let corpus = std::sync::Arc::new(corpus);
        let config = CorpusMineConfig {
            n,
            min_sequences,
            threads,
            engine,
            mpp: mpp_config,
            checkpoint: checkpoint_dir.map(|dir| CheckpointConfig {
                dir,
                resume: args.flag("resume"),
                stop_after_shards,
            }),
        };
        match mine_corpus(&corpus, gap, rho, &config) {
            Ok(out) => (out.outcome, Some(out.stats)),
            // A requested pause is a successful exit, not a failure:
            // the checkpoints are durable and --resume picks them up.
            Err(MineError::CorpusPaused { completed, total }) => {
                return Ok(format!(
                    "corpus mine paused after {completed} of {total} shards; \
                     rerun with --resume to finish\n"
                ))
            }
            Err(e) => return Err(ArgError(e.to_string())),
        }
    };

    render_collection(
        &outcome,
        &alphabet,
        gap,
        rho,
        closed,
        args.parse_or("top", 25)?,
        args.get("format") == Some("tsv"),
        want_metrics.then_some(stats).flatten(),
    )
}

/// Render a collection outcome — shared by the sharded and
/// `--unsharded` corpus paths so their rows are byte-identical.
#[allow(clippy::too_many_arguments)]
fn render_collection(
    outcome: &CollectionOutcome,
    alphabet: &Alphabet,
    gap: GapRequirement,
    rho: f64,
    closed: bool,
    top: usize,
    tsv: bool,
    stats: Option<perigap_core::CorpusStats>,
) -> Result<String, ArgError> {
    let total = outcome.patterns.len();
    let rows = if closed {
        outcome.closed_patterns()
    } else {
        outcome.patterns.clone()
    };
    if tsv {
        let mut out = String::from("pattern\tlength\tsequences\ttotal_support\n");
        for p in &rows {
            let support: u128 = p.supports.iter().sum();
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\n",
                p.pattern.display(alphabet),
                p.pattern.len(),
                p.frequent_in.len(),
                support
            ));
        }
        return Ok(out);
    }
    let mut out = format!(
        "corpus mine: gap {gap}; rho {:.6}%; {total} collection-frequent patterns\n",
        rho * 100.0
    );
    if closed {
        out.push_str(&format!(
            "closed: dropped {} patterns absorbed by an equal-support extension\n",
            total - rows.len()
        ));
    }
    if let Some(stats) = &stats {
        out.push_str(&format!(
            "shards: {} total, {} mined, {} restored; longest {} symbols\n",
            stats.shards, stats.mined_shards, stats.restored_shards, stats.longest_shard
        ));
        if stats.checkpoint_records > 0 {
            out.push_str(&format!(
                "checkpoints: {} records, {} bytes\n",
                stats.checkpoint_records, stats.checkpoint_bytes
            ));
        }
        out.push_str(&format!("corpus hash: {:#018x}\n", stats.corpus_hash));
    }
    out.push('\n');
    let mut table = TextTable::new(&["pattern", "len", "seqs", "total support"]);
    let mut view: Vec<_> = rows.iter().collect();
    view.sort_by(|a, b| {
        b.pattern
            .len()
            .cmp(&a.pattern.len())
            .then(b.frequent_in.len().cmp(&a.frequent_in.len()))
            .then(a.pattern.codes().cmp(b.pattern.codes()))
    });
    for p in view.iter().take(top) {
        let support: u128 = p.supports.iter().sum();
        table.row(&[
            p.pattern.display(alphabet),
            p.pattern.len().to_string(),
            p.frequent_in.len().to_string(),
            support.to_string(),
        ]);
    }
    out.push_str(&table.render());
    if rows.len() > top {
        out.push_str(&format!("… {} more (raise --top)\n", rows.len() - top));
    }
    Ok(out)
}

fn scan_command(args: &Args) -> Result<String, ArgError> {
    let seq = load_sequence(args)?;
    let pair = args.require("pair")?;
    let bytes = pair.as_bytes();
    if bytes.len() != 2 {
        return Err(ArgError(format!(
            "--pair needs two characters, got {pair:?}"
        )));
    }
    let a = seq
        .alphabet()
        .code(bytes[0])
        .ok_or_else(|| ArgError(format!("{:?} not in alphabet", bytes[0] as char)))?;
    let b = seq
        .alphabet()
        .code(bytes[1])
        .ok_or_else(|| ArgError(format!("{:?} not in alphabet", bytes[1] as char)))?;
    let min: usize = args.parse_or("min", 2)?;
    let max: usize = args.parse_or("max", 30.min(seq.len().saturating_sub(1)))?;
    if min < 1 || min > max || max >= seq.len() {
        return Err(ArgError(format!("bad distance range [{min}, {max}]")));
    }
    let spectrum = correlation_spectrum(&seq, a, b, min, max);
    let mut out = format!("{pair} correlation spectrum over distances {min}..={max}\n\n");
    let mut table = TextTable::new(&["distance", "corr", ""]);
    for (i, v) in spectrum.values.iter().enumerate() {
        let bar = "#".repeat((v.max(0.0) * 2_000.0) as usize);
        table.row(&[
            (spectrum.min_distance + i).to_string(),
            format!("{v:+.5}"),
            bar,
        ]);
    }
    out.push_str(&table.render());
    if let Some((peak, value)) = spectrum.peak() {
        out.push_str(&format!(
            "\npeak at distance {peak} (corr {value:+.5}); suggested gap requirement [{}, {}]\n",
            peak.saturating_sub(2),
            peak
        ));
    }
    Ok(out)
}

fn show_command(args: &Args) -> Result<String, ArgError> {
    let path = args.require("input")?;
    let top: usize = args.parse_or("top", 25)?;
    let file =
        std::fs::File::open(path).map_err(|e| ArgError(format!("cannot open {path:?}: {e}")))?;
    let loaded = perigap_store::load_outcome(file).map_err(|e| ArgError(e.to_string()))?;
    let mut out = format!(
        "persisted outcome: gap {}, rho {:.6}%, n = {}, {} patterns (longest {})\n\n",
        loaded.gap,
        loaded.rho * 100.0,
        loaded.outcome.stats.n_used,
        loaded.outcome.frequent.len(),
        loaded.outcome.longest_len()
    );
    let alphabet = Alphabet::Dna; // codes render as DNA; raw codes shown too
    let mut table = TextTable::new(&["pattern", "len", "support", "ratio"]);
    for f in loaded.outcome.frequent.iter().rev().take(top) {
        table.row(&[
            f.pattern.display(&alphabet),
            f.len().to_string(),
            f.support.to_string(),
            format!("{:.6}", f.ratio),
        ]);
    }
    out.push_str(&table.render());
    Ok(out)
}

/// Stand up the pattern-store daemon: load a PGST file (or mine the
/// input in-process), index it, and serve queries until SIGINT or a
/// client `shutdown` request.
fn serve_command(args: &Args) -> Result<String, ArgError> {
    use perigap_store::{Backend, PatternIndex};

    let addr = args.get("addr").unwrap_or("127.0.0.1:0");
    let (index, backend_desc, source) = match args.get("store") {
        Some(path) => {
            for flag in ["gap", "rho", "algorithm", "n", "m"] {
                if args.get(flag).is_some() {
                    return Err(ArgError(format!(
                        "--{flag} comes from the store file; drop it when serving --store"
                    )));
                }
            }
            let backend = Backend::pgst_file(path);
            let loaded = backend.load().map_err(|e| ArgError(e.to_string()))?;
            // With the subject sequence alongside, occurrence summaries
            // are recomputed and overlap queries become available.
            let seq = match args.get("input") {
                Some(_) => Some(load_sequence(args)?),
                None => None,
            };
            let alphabet = seq
                .as_ref()
                .map(|s| s.alphabet().clone())
                .unwrap_or(Alphabet::Dna);
            let index = PatternIndex::build(&loaded, alphabet, seq.as_ref());
            (index, backend.describe(), seq)
        }
        None => {
            let seq = load_sequence(args)?;
            let rho = parse_rho(args.require("rho")?)?;
            let (lo, hi) = parse_gap(args.require("gap")?)?;
            let gap = GapRequirement::new(lo, hi).map_err(|e| ArgError(e.to_string()))?;
            let algorithm = args.get("algorithm").unwrap_or("mppm");
            let outcome = match algorithm {
                "mppm" => {
                    let m: usize = args.parse_or("m", 4)?;
                    perigap_core::mppm::mppm(&seq, gap, rho, m, MppConfig::default())
                }
                "mpp" => {
                    let n: usize = args.parse_or("n", gap.l1(seq.len()))?;
                    perigap_core::mpp::mpp(&seq, gap, rho, n, MppConfig::default())
                }
                other => {
                    return Err(ArgError(format!(
                        "serve mines with --algorithm mppm or mpp (got {other:?})"
                    )))
                }
            }
            .map_err(|e| ArgError(e.to_string()))?;
            let backend = Backend::memory(outcome, gap, rho);
            let loaded = backend.load().map_err(|e| ArgError(e.to_string()))?;
            let index = PatternIndex::build(&loaded, seq.alphabet().clone(), Some(&seq));
            (index, backend.describe(), Some(seq))
        }
    };
    let patterns = index.len();

    let jsonl = match args.get("trace") {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| ArgError(format!("cannot create {path:?}: {e}")))?;
            Some(JsonlObserver::new(std::io::BufWriter::new(file)))
        }
        None => None,
    };
    let observer = (jsonl, args.flag("metrics").then(MetricsObserver::new));

    // With the subject sequence in hand the daemon also answers the
    // on-demand mine_topk/mine_target query kinds.
    let handle = perigap_serve::serve_with(
        std::sync::Arc::new(index),
        backend_desc.clone(),
        source,
        addr,
        observer,
    )
    .map_err(|e| ArgError(format!("cannot bind {addr:?}: {e}")))?;
    if let Some(path) = args.get("port-file") {
        std::fs::write(path, handle.addr().to_string())
            .map_err(|e| ArgError(format!("cannot write port file {path:?}: {e}")))?;
    }
    // Block until SIGINT (ctrl-c) or a client shutdown request.
    let sigint = perigap_serve::install_sigint_flag();
    while !sigint.load(std::sync::atomic::Ordering::SeqCst) && !handle.stop_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let queries = handle.queries_served();
    let bound = handle.addr();
    let (jsonl, metrics) = handle.shutdown();
    if let Some(sink) = jsonl {
        sink.finish()
            .map_err(|e| ArgError(format!("trace write failed: {e}")))?;
    }
    let mut out = format!(
        "served {queries} queries over {patterns} patterns on {bound} (backend {backend_desc})\n"
    );
    if let Some(metrics) = metrics {
        out.push('\n');
        out.push_str(&metrics.render());
    }
    Ok(out)
}

/// One-shot client: send a single protocol request line to a running
/// daemon and print the response line.
fn query_command(args: &Args) -> Result<String, ArgError> {
    let addr = args.require("addr")?;
    let line = args.require("json")?;
    let timeout_ms: u64 = args.parse_or("timeout-ms", 10_000)?;
    if timeout_ms == 0 {
        return Err(ArgError("--timeout-ms must be at least 1".into()));
    }
    let mut client =
        perigap_serve::Client::connect(addr, std::time::Duration::from_millis(timeout_ms))
            .map_err(|e| ArgError(format!("cannot connect to {addr:?}: {e}")))?;
    let response = client
        .roundtrip(line)
        .map_err(|e| ArgError(format!("query failed: {e}")))?;
    Ok(format!("{response}\n"))
}

fn stats_command(args: &Args) -> Result<String, ArgError> {
    let seq = load_sequence(args)?;
    let mut out = format!("length: {}\n", seq.len());
    let freqs = seq.code_frequencies();
    for (code, f) in freqs.iter().enumerate() {
        out.push_str(&format!(
            "P({}) = {f:.4}\n",
            seq.alphabet().letter(code as u8) as char
        ));
    }
    if seq.alphabet().size() == 4 {
        out.push_str(&format!("GC content: {:.4}\n", gc_content(&seq)));
    }
    out.push_str(&format!(
        "Shannon entropy: {:.4} bits\n",
        shannon_entropy(&seq)
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fasta_file(content: &str) -> tempfile::TempPath {
        tempfile::write(content)
    }

    /// Minimal temp-file helper (std only).
    mod tempfile {
        pub struct TempPath(pub std::path::PathBuf);
        impl TempPath {
            pub fn as_str(&self) -> &str {
                self.0.to_str().expect("utf-8 temp path")
            }
        }
        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
        pub fn write(content: &str) -> TempPath {
            let mut path = std::env::temp_dir();
            let unique = format!(
                "pgmine-test-{}-{:?}.fa",
                std::process::id(),
                std::time::Instant::now()
            )
            .replace(['{', '}', ' ', ':', '.'], "-");
            path.push(unique);
            std::fs::write(&path, content).expect("write temp fasta");
            TempPath(path)
        }
    }

    fn run_words(words: &[String]) -> Result<String, ArgError> {
        run(words.iter().cloned())
    }

    #[test]
    fn help_by_default() {
        let out = run_words(&[]).unwrap();
        assert!(out.contains("USAGE"));
        let out = run_words(&["help".into()]).unwrap();
        assert!(out.contains("pgmine mine"));
    }

    #[test]
    fn unknown_command_fails() {
        assert!(run_words(&["frobnicate".into()]).is_err());
    }

    #[test]
    fn mine_end_to_end() {
        let body = "ACGTT".repeat(60);
        let f = fasta_file(&format!(">frag test\n{body}\n"));
        let out = run_words(&[
            "mine".into(),
            "--input".into(),
            f.as_str().into(),
            "--gap".into(),
            "1:3".into(),
            "--rho".into(),
            "0.5%".into(),
            "--verify".into(),
        ])
        .unwrap();
        assert!(out.contains("frequent patterns"), "output: {out}");
        assert!(out.contains("check out"), "verification should pass: {out}");
    }

    #[test]
    fn mine_with_each_algorithm() {
        let body = "ACGTT".repeat(40);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        for algo in ["mppm", "mpp", "adaptive", "enumerate"] {
            let out = run_words(&[
                "mine".into(),
                "--input".into(),
                f.as_str().into(),
                "--gap".into(),
                "1:2".into(),
                "--rho".into(),
                "1%".into(),
                "--algorithm".into(),
                algo.into(),
            ])
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert!(out.contains("frequent patterns"), "{algo}: {out}");
        }
    }

    #[test]
    fn mine_with_threads() {
        let body = "ACGTT".repeat(60);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let base = |extra: &[&str]| {
            let mut words: Vec<String> = vec![
                "mine".into(),
                "--input".into(),
                f.as_str().into(),
                "--gap".into(),
                "1:3".into(),
                "--rho".into(),
                "0.5%".into(),
            ];
            words.extend(extra.iter().map(|s| s.to_string()));
            words
        };
        let serial = run_words(&base(&["--algorithm", "mpp"])).unwrap();
        let parallel = run_words(&base(&["--algorithm", "mpp", "--threads", "4"])).unwrap();
        assert_eq!(serial, parallel, "threaded mining must match serial output");
        assert!(run_words(&base(&["--algorithm", "mpp", "--threads", "0"])).is_err());
        assert!(run_words(&base(&["--algorithm", "mppm", "--threads", "4"])).is_err());
    }

    #[test]
    fn mine_with_dfs_engine() {
        let body = "ACGTT".repeat(60);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let base = |extra: &[&str]| {
            let mut words: Vec<String> = vec![
                "mine".into(),
                "--input".into(),
                f.as_str().into(),
                "--gap".into(),
                "1:3".into(),
                "--rho".into(),
                "0.5%".into(),
            ];
            words.extend(extra.iter().map(|s| s.to_string()));
            words
        };
        let bfs = run_words(&base(&["--algorithm", "mpp"])).unwrap();
        let dfs = run_words(&base(&["--algorithm", "mpp", "--engine", "dfs"])).unwrap();
        assert_eq!(bfs, dfs, "engines must report identical tables");
        let dfs4 = run_words(&base(&[
            "--algorithm",
            "mpp",
            "--engine",
            "dfs",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(bfs, dfs4);
        // mppm accepts --threads only on the dfs engine.
        let mppm_bfs = run_words(&base(&["--algorithm", "mppm"])).unwrap();
        let mppm_dfs = run_words(&base(&[
            "--algorithm",
            "mppm",
            "--engine",
            "dfs",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(mppm_bfs, mppm_dfs);
        assert!(run_words(&base(&["--algorithm", "mppm", "--threads", "4"])).is_err());
        assert!(run_words(&base(&["--algorithm", "mpp", "--engine", "zigzag"])).is_err());
        assert!(run_words(&base(&["--algorithm", "enumerate", "--engine", "dfs"])).is_err());
    }

    #[test]
    fn mine_with_pil_repr_is_output_identical() {
        let body = "ACGTT".repeat(60);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let base = |extra: &[&str]| {
            let mut words: Vec<String> = vec![
                "mine".into(),
                "--input".into(),
                f.as_str().into(),
                "--gap".into(),
                "1:3".into(),
                "--rho".into(),
                "0.5%".into(),
            ];
            words.extend(extra.iter().map(|s| s.to_string()));
            words
        };
        for algo_args in [
            &["--algorithm", "mpp"][..],
            &["--algorithm", "mpp", "--engine", "dfs"],
            &["--algorithm", "mppm"],
        ] {
            let reference = run_words(&base(algo_args)).unwrap();
            for mode in ["auto", "sparse", "dense"] {
                let mut extra = algo_args.to_vec();
                extra.extend(["--pil-repr", mode]);
                let out = run_words(&base(&extra)).unwrap_or_else(|e| panic!("{mode}: {e}"));
                assert_eq!(out, reference, "--pil-repr {mode} changed the output");
            }
        }
        // The histogram surfaces through --metrics.
        let out = run_words(&base(&[
            "--algorithm",
            "mpp",
            "--pil-repr",
            "dense",
            "--metrics",
        ]))
        .unwrap();
        assert!(out.contains("pil repr (dense):"), "{out}");
        let err = run_words(&base(&["--pil-repr", "bitmap"])).unwrap_err();
        assert!(err.to_string().contains("auto|sparse|dense"), "{err}");
    }

    #[test]
    fn mine_with_kernel_is_output_identical() {
        let body = "ACGTT".repeat(60);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let base = |extra: &[&str]| {
            let mut words: Vec<String> = vec![
                "mine".into(),
                "--input".into(),
                f.as_str().into(),
                "--gap".into(),
                "1:3".into(),
                "--rho".into(),
                "0.5%".into(),
            ];
            words.extend(extra.iter().map(|s| s.to_string()));
            words
        };
        for algo_args in [
            &["--algorithm", "mpp"][..],
            &["--algorithm", "mpp", "--engine", "dfs"],
            &["--algorithm", "mppm"],
        ] {
            let reference = run_words(&base(algo_args)).unwrap();
            for mode in ["auto", "scalar", "simd"] {
                let mut extra = algo_args.to_vec();
                extra.extend(["--kernel", mode]);
                let out = run_words(&base(&extra)).unwrap_or_else(|e| panic!("{mode}: {e}"));
                assert_eq!(out, reference, "--kernel {mode} changed the output");
            }
        }
        // The resolved kernel lands in the trace summary line.
        let mut trace_path = std::env::temp_dir();
        trace_path.push(format!("pgmine-kernel-{}.jsonl", std::process::id()));
        let trace_str = trace_path.to_str().unwrap().to_string();
        run_words(&base(&[
            "--algorithm",
            "mpp",
            "--kernel",
            "scalar",
            "--trace",
            &trace_str,
        ]))
        .unwrap();
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"kernel\": \"scalar\""), "{trace}");
        std::fs::remove_file(&trace_path).ok();
        let err = run_words(&base(&["--kernel", "neon"])).unwrap_err();
        assert!(err.to_string().contains("auto|scalar|simd"), "{err}");
    }

    #[test]
    fn mine_arena_ceiling_aborts_but_writes_trace() {
        let body = "ACGTT".repeat(60);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let mut trace_path = std::env::temp_dir();
        trace_path.push(format!("pgmine-abort-{}.jsonl", std::process::id()));
        let trace_str = trace_path.to_str().unwrap().to_string();
        let err = run_words(&[
            "mine".into(),
            "--input".into(),
            f.as_str().into(),
            "--gap".into(),
            "1:3".into(),
            "--rho".into(),
            "0.5%".into(),
            "--algorithm".into(),
            "mpp".into(),
            "--engine".into(),
            "dfs".into(),
            "--max-arena-bytes".into(),
            "16".into(),
            "--trace".into(),
            trace_str.clone(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("ceiling"), "{err}");
        // The abort-terminated trace must still land on disk and validate.
        let checked =
            run_words(&["trace-check".into(), "--input".into(), trace_str.clone()]).unwrap();
        assert!(checked.contains("trace OK"), "{checked}");
        std::fs::remove_file(&trace_path).ok();
        // Flags are rejected on engines that cannot honor them.
        assert!(run_words(&[
            "mine".into(),
            "--input".into(),
            f.as_str().into(),
            "--gap".into(),
            "1:3".into(),
            "--rho".into(),
            "0.5%".into(),
            "--algorithm".into(),
            "adaptive".into(),
            "--max-arena-bytes".into(),
            "16".into(),
        ])
        .is_err());
    }

    #[test]
    fn mine_spill_flags_mine_identically_and_trace_the_spill() {
        // AT-repeat with gap [1,1] splits into two components at the
        // seed level, so a zero watermark forces a spill + restores.
        let body = "AT".repeat(50);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let base = |extra: &[&str]| {
            let mut words: Vec<String> = vec![
                "mine".into(),
                "--input".into(),
                f.as_str().into(),
                "--gap".into(),
                "1:1".into(),
                "--rho".into(),
                "40%".into(),
                "--algorithm".into(),
                "mpp".into(),
                "--n".into(),
                "20".into(),
                "--engine".into(),
                "dfs".into(),
            ];
            words.extend(extra.iter().map(|s| s.to_string()));
            words
        };
        let unbounded = run_words(&base(&[])).unwrap();

        let mut spill_dir = std::env::temp_dir();
        spill_dir.push(format!("pgmine-spill-{}", std::process::id()));
        let mut trace_path = std::env::temp_dir();
        trace_path.push(format!("pgmine-spill-{}.jsonl", std::process::id()));
        let trace_str = trace_path.to_str().unwrap().to_string();
        let spilled = run_words(&base(&[
            "--max-arena-bytes",
            "1048576",
            "--spill-dir",
            spill_dir.to_str().unwrap(),
            "--spill-watermark",
            "0.000001",
            "--trace",
            &trace_str,
        ]))
        .unwrap();
        assert_eq!(spilled, unbounded, "spilling must not change the output");

        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"event\": \"spill\""), "{trace}");
        assert!(trace.contains("\"event\": \"restore\""), "{trace}");
        let checked =
            run_words(&["trace-check".into(), "--input".into(), trace_str.clone()]).unwrap();
        assert!(checked.contains("trace OK"), "{checked}");
        // Restored records are deleted from the spill dir on the way out.
        let leftovers = std::fs::read_dir(&spill_dir)
            .map(|d| d.count())
            .unwrap_or(0);
        assert_eq!(leftovers, 0, "restored spill files must be removed");
        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_dir_all(&spill_dir).ok();

        // Gating: each spill flag demands the context it needs.
        let err = run_words(&base(&["--spill-dir", "/tmp/x"])).unwrap_err();
        assert!(err.to_string().contains("--max-arena-bytes"), "{err}");
        let err = run_words(&base(&["--spill-watermark", "0.5"])).unwrap_err();
        assert!(err.to_string().contains("--spill-dir"), "{err}");
        let err = run_words(&base(&[
            "--max-arena-bytes",
            "1048576",
            "--spill-dir",
            "/tmp/x",
            "--spill-watermark",
            "1.5",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("(0.0, 1.0]"), "{err}");
        let mut bfs_words = base(&["--max-arena-bytes", "1048576", "--spill-dir", "/tmp/x"]);
        let engine_at = bfs_words.iter().position(|w| w == "dfs").unwrap();
        bfs_words[engine_at] = "bfs".into();
        let err = run_words(&bfs_words).unwrap_err();
        assert!(err.to_string().contains("dfs"), "{err}");
    }

    /// Each resource flag rejects its degenerate value with a message
    /// naming the flag, instead of silently misbehaving (`--threads 0`
    /// deadlocked-by-construction, `--spill-watermark 0` spilled every
    /// handoff, `--max-arena-bytes 0` aborted before mining anything).
    #[test]
    fn degenerate_resource_flags_are_rejected() {
        let body = "ACGTT".repeat(40);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let base = |extra: &[&str]| {
            let mut words: Vec<String> = vec![
                "mine".into(),
                "--input".into(),
                f.as_str().into(),
                "--gap".into(),
                "1:3".into(),
                "--rho".into(),
                "0.5%".into(),
                "--algorithm".into(),
                "mpp".into(),
                "--engine".into(),
                "dfs".into(),
            ];
            words.extend(extra.iter().map(|s| s.to_string()));
            words
        };

        let err = run_words(&base(&["--threads", "0"])).unwrap_err();
        assert!(err.to_string().contains("--threads"), "{err}");

        let err = run_words(&base(&["--max-arena-bytes", "0"])).unwrap_err();
        assert!(err.to_string().contains("--max-arena-bytes"), "{err}");

        for bad in ["0", "0.0", "-0.5"] {
            let err = run_words(&base(&[
                "--max-arena-bytes",
                "1048576",
                "--spill-dir",
                "/tmp/x",
                &format!("--spill-watermark={bad}"),
            ]))
            .unwrap_err();
            assert!(
                err.to_string().contains("--spill-watermark")
                    && err.to_string().contains("(0.0, 1.0]"),
                "watermark {bad}: {err}"
            );
        }
        // The boundary that stays legal: spill exactly at the ceiling.
        let valid = run_words(&base(&[
            "--max-arena-bytes",
            "1048576",
            "--spill-dir",
            std::env::temp_dir()
                .join(format!("pgmine-wm1-{}", std::process::id()))
                .to_str()
                .unwrap(),
            "--spill-watermark",
            "1.0",
        ]));
        assert!(valid.is_ok(), "{valid:?}");
    }

    #[test]
    fn mine_top_k_prints_rank_order_and_matches_post_filtering() {
        let body = "ACGTT".repeat(60);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let base = |extra: &[&str]| {
            let mut words: Vec<String> = vec![
                "mine".into(),
                "--input".into(),
                f.as_str().into(),
                "--gap".into(),
                "1:3".into(),
                "--rho".into(),
                "0.5%".into(),
                "--algorithm".into(),
                "mpp".into(),
                "--format".into(),
                "tsv".into(),
            ];
            words.extend(extra.iter().map(|s| s.to_string()));
            words
        };
        // Oracle: rank-sort the full mine's TSV rows and truncate.
        let full = run_words(&base(&[])).unwrap();
        let mut rows = perigap_analysis::export::parse_outcome_tsv(&full).unwrap();
        rows.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(a.0.len().cmp(&b.0.len()))
                .then(a.0.cmp(&b.0))
        });
        for k in [1usize, 5, rows.len() + 10] {
            for engine_args in [&[][..], &["--engine", "dfs", "--threads", "2"]] {
                let mut extra = vec!["--top-k".to_string(), k.to_string()];
                extra.extend(engine_args.iter().map(|s| s.to_string()));
                let extra: Vec<&str> = extra.iter().map(String::as_str).collect();
                let got = run_words(&base(&extra)).unwrap();
                let got_rows = perigap_analysis::export::parse_outcome_tsv(&got).unwrap();
                let want: Vec<_> = rows.iter().take(k).cloned().collect();
                assert_eq!(got_rows, want, "k={k} engine={engine_args:?}");
            }
        }
        // The table view prints top-k rows in rank order and reports
        // the floor counters; --metrics adds the pruning line.
        let mut words = base(&["--top-k", "3", "--metrics"]);
        let tsv_at = words.iter().position(|w| w == "tsv").unwrap();
        words.remove(tsv_at);
        words.remove(tsv_at - 1); // drop --format tsv: metrics forbids it
        let out = run_words(&words).unwrap();
        assert!(out.contains("top-k 3: floor raises"), "{out}");
        assert!(out.contains("pruning: top_k 3"), "{out}");
    }

    #[test]
    fn mine_target_filters_and_counts_prunes() {
        let body = "ACGTT".repeat(60);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let base = |extra: &[&str]| {
            let mut words: Vec<String> = vec![
                "mine".into(),
                "--input".into(),
                f.as_str().into(),
                "--gap".into(),
                "1:3".into(),
                "--rho".into(),
                "0.5%".into(),
                "--algorithm".into(),
                "mpp".into(),
                "--format".into(),
                "tsv".into(),
            ];
            words.extend(extra.iter().map(|s| s.to_string()));
            words
        };
        let full = run_words(&base(&[])).unwrap();
        let rows = perigap_analysis::export::parse_outcome_tsv(&full).unwrap();
        let got = run_words(&base(&["--target", "AG"])).unwrap();
        let got_rows = perigap_analysis::export::parse_outcome_tsv(&got).unwrap();
        let want: Vec<_> = rows
            .iter()
            .filter(|r| r.0.starts_with("AG"))
            .cloned()
            .collect();
        assert!(!want.is_empty(), "workload must mine AG-prefixed patterns");
        assert_eq!(got_rows, want, "targeted mine must equal post-filtering");
        // The table view names the target and its prune counter.
        let mut words = base(&["--target", "AG"]);
        let tsv_at = words.iter().position(|w| w == "tsv").unwrap();
        words.remove(tsv_at);
        words.remove(tsv_at - 1);
        let out = run_words(&words).unwrap();
        assert!(out.contains("target AG: pruned by target"), "{out}");
    }

    #[test]
    fn top_k_and_target_flags_validate_their_input() {
        let body = "ACGTT".repeat(40);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let base = |extra: &[&str]| {
            let mut words: Vec<String> = vec![
                "mine".into(),
                "--input".into(),
                f.as_str().into(),
                "--gap".into(),
                "1:3".into(),
                "--rho".into(),
                "0.5%".into(),
            ];
            words.extend(extra.iter().map(|s| s.to_string()));
            words
        };
        let err = run_words(&base(&["--top-k", "0"])).unwrap_err();
        assert!(err.to_string().contains("--top-k"), "{err}");
        let err = run_words(&base(&["--top-k", "x"])).unwrap_err();
        assert!(err.to_string().contains("--top-k"), "{err}");
        // Z is not a DNA symbol; the error names the flag and the text.
        let err = run_words(&base(&["--target", "AZ"])).unwrap_err();
        assert!(err.to_string().contains("--target"), "{err}");
        assert!(err.to_string().contains("AZ"), "{err}");
        let err = run_words(&base(&["--target", ""])).unwrap_err();
        assert!(err.to_string().contains("--target"), "{err}");
        // Pruning modes only thread through the mpp/mppm engines.
        let err = run_words(&base(&["--algorithm", "enumerate", "--top-k", "5"])).unwrap_err();
        assert!(err.to_string().contains("mpp or mppm"), "{err}");
        let err = run_words(&base(&["--profile", "1:2,2:3", "--target", "AC"])).unwrap_err();
        assert!(err.to_string().contains("--profile"), "{err}");
    }

    #[test]
    fn serve_daemon_end_to_end() {
        let body = "ACGT".repeat(50);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let mut port_file = std::env::temp_dir();
        port_file.push(format!("pgmine-serve-port-{}.txt", std::process::id()));
        let port_str = port_file.to_str().unwrap().to_string();
        let words: Vec<String> = vec![
            "serve".into(),
            "--input".into(),
            f.as_str().into(),
            "--gap".into(),
            "0:2".into(),
            "--rho".into(),
            "0.1%".into(),
            "--algorithm".into(),
            "mpp".into(),
            "--n".into(),
            "8".into(),
            "--addr".into(),
            "127.0.0.1:0".into(),
            "--port-file".into(),
            port_str.clone(),
            "--metrics".into(),
        ];
        let daemon = std::thread::spawn(move || run_words(&words));

        // Wait for the daemon to publish its bound address.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if !text.is_empty() {
                    break text;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never wrote its port file"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let query = |json: &str| {
            run_words(&[
                "query".into(),
                "--addr".into(),
                addr.clone(),
                "--json".into(),
                json.into(),
            ])
            .unwrap()
        };
        let support = query(r#"{"q": "support", "pattern": "ACG"}"#);
        assert!(support.contains("\"ok\": true"), "{support}");
        let topk = query(r#"{"q": "topk", "k": 3}"#);
        assert!(topk.contains("\"patterns\": ["), "{topk}");
        let prefix = query(r#"{"q": "prefix", "prefix": "AC"}"#);
        assert!(prefix.contains("\"total\":"), "{prefix}");
        // Mine-then-serve keeps the sequence, so overlap works.
        let overlap = query(r#"{"q": "overlap", "a": 1, "b": 30}"#);
        assert!(overlap.contains("\"ok\": true"), "{overlap}");
        let stopping = query(r#"{"q": "shutdown"}"#);
        assert!(stopping.contains("\"stopping\": true"), "{stopping}");

        let summary = daemon.join().unwrap().unwrap();
        assert!(summary.contains("served 5 queries"), "{summary}");
        assert!(summary.contains("query support:"), "{summary}");
        assert!(summary.contains("query overlap:"), "{summary}");
        std::fs::remove_file(&port_file).ok();
    }

    #[test]
    fn serve_flag_gating() {
        let err = run_words(&[
            "serve".into(),
            "--store".into(),
            "/tmp/whatever.pgst".into(),
            "--gap".into(),
            "1:2".into(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("store file"), "{err}");
        let err = run_words(&["query".into(), "--addr".into(), "127.0.0.1:1".into()]).unwrap_err();
        assert!(err.to_string().contains("--json"), "{err}");
    }

    #[test]
    fn mine_with_trace_and_metrics() {
        let body = "ACGTT".repeat(60);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let mut trace_path = std::env::temp_dir();
        trace_path.push(format!("pgmine-trace-{}.jsonl", std::process::id()));
        let trace_str = trace_path.to_str().unwrap().to_string();
        let base = |extra: &[&str]| {
            let mut words: Vec<String> = vec![
                "mine".into(),
                "--input".into(),
                f.as_str().into(),
                "--gap".into(),
                "1:3".into(),
                "--rho".into(),
                "0.5%".into(),
            ];
            words.extend(extra.iter().map(|s| s.to_string()));
            words
        };
        for algo_args in [
            &["--algorithm", "mppm"][..],
            &["--algorithm", "mpp"],
            &["--algorithm", "mpp", "--threads", "2"],
        ] {
            let mut extra = algo_args.to_vec();
            extra.extend(["--trace", &trace_str, "--metrics"]);
            let out = run_words(&base(&extra)).unwrap_or_else(|e| panic!("{algo_args:?}: {e}"));
            assert!(out.contains("mining metrics"), "{out}");
            assert!(out.contains("level | candidates"), "{out}");
            let checked =
                run_words(&["trace-check".into(), "--input".into(), trace_str.clone()]).unwrap();
            assert!(checked.contains("trace OK"), "{checked}");
        }
        std::fs::remove_file(&trace_path).ok();
        // Observers only attach to mpp/mppm.
        assert!(run_words(&base(&["--algorithm", "enumerate", "--metrics"])).is_err());
        assert!(run_words(&base(&["--algorithm", "adaptive", "--trace", &trace_str])).is_err());
        // Metrics would corrupt machine-readable TSV.
        assert!(run_words(&base(&["--metrics", "--format", "tsv"])).is_err());
        // A non-trace file fails validation loudly.
        assert!(run_words(&["trace-check".into(), "--input".into(), f.as_str().into()]).is_err());
    }

    #[test]
    fn record_selection() {
        let f = fasta_file(">a\nAAAA\n>b\nACGTACGTACGTACGT\n");
        let out = run_words(&[
            "stats".into(),
            "--input".into(),
            f.as_str().into(),
            "--record".into(),
            "b".into(),
        ])
        .unwrap();
        assert!(out.contains("length: 16"), "{out}");
        assert!(run_words(&[
            "stats".into(),
            "--input".into(),
            f.as_str().into(),
            "--record".into(),
            "zzz".into(),
        ])
        .is_err());
    }

    #[test]
    fn scan_reports_peak() {
        let body = "ACGT".repeat(200);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let out = run_words(&[
            "scan".into(),
            "--input".into(),
            f.as_str().into(),
            "--pair".into(),
            "AA".into(),
            "--max".into(),
            "12".into(),
        ])
        .unwrap();
        assert!(out.contains("peak at distance"), "{out}");
        assert!(out.contains("suggested gap requirement"), "{out}");
    }

    #[test]
    fn stats_reports_composition() {
        let f = fasta_file(">x\nGGCC\n");
        let out = run_words(&["stats".into(), "--input".into(), f.as_str().into()]).unwrap();
        assert!(out.contains("GC content: 1.0000"), "{out}");
    }

    #[test]
    fn mine_with_profile_flag() {
        let body = "ACGTT".repeat(40);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let out = run_words(&[
            "mine".into(),
            "--input".into(),
            f.as_str().into(),
            "--rho".into(),
            "0.5%".into(),
            "--profile".into(),
            "1:2,2:3,1:1".into(),
        ])
        .unwrap();
        assert!(out.contains("frequent patterns"), "{out}");
        assert!(out.contains("profile"), "{out}");
        // Bad profile component fails loudly.
        assert!(run_words(&[
            "mine".into(),
            "--input".into(),
            f.as_str().into(),
            "--rho".into(),
            "0.5%".into(),
            "--profile".into(),
            "1:x".into(),
        ])
        .is_err());
    }

    #[test]
    fn mine_save_and_show_roundtrip() {
        let body = "ACGTT".repeat(40);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let mut out_path = std::env::temp_dir();
        out_path.push(format!("pgmine-save-{}.pgst", std::process::id()));
        let out_str = out_path.to_str().unwrap().to_string();
        let mined = run_words(&[
            "mine".into(),
            "--input".into(),
            f.as_str().into(),
            "--gap".into(),
            "1:2".into(),
            "--rho".into(),
            "1%".into(),
            "--save".into(),
            out_str.clone(),
        ])
        .unwrap();
        assert!(mined.contains("frequent patterns"));
        let shown = run_words(&["show".into(), "--input".into(), out_str.clone()]).unwrap();
        assert!(shown.contains("persisted outcome"), "{shown}");
        assert!(shown.contains("gap [1, 2]"), "{shown}");
        std::fs::remove_file(&out_path).ok();
        // Showing a non-store file fails loudly.
        assert!(run_words(&["show".into(), "--input".into(), f.as_str().into()]).is_err());
    }

    #[test]
    fn mine_tsv_format() {
        let body = "ACGTT".repeat(40);
        let f = fasta_file(&format!(">frag\n{body}\n"));
        let out = run_words(&[
            "mine".into(),
            "--input".into(),
            f.as_str().into(),
            "--gap".into(),
            "1:2".into(),
            "--rho".into(),
            "1%".into(),
            "--format".into(),
            "tsv".into(),
        ])
        .unwrap();
        assert!(out.starts_with("pattern\tlength\tsupport\tratio"), "{out}");
        let rows = perigap_analysis::export::parse_outcome_tsv(&out).unwrap();
        assert!(!rows.is_empty());
    }

    #[test]
    fn bad_pair_and_range_fail() {
        let f = fasta_file(">x\nACGTACGTAC\n");
        let base = vec!["scan".to_string(), "--input".into(), f.as_str().to_string()];
        let mut a = base.clone();
        a.extend(["--pair".into(), "AXY".into()]);
        assert!(run_words(&a).is_err());
        let mut b = base.clone();
        b.extend(["--pair".into(), "AN".into()]);
        assert!(run_words(&b).is_err());
        let mut c = base;
        c.extend([
            "--pair".into(),
            "AA".into(),
            "--min".into(),
            "9".into(),
            "--max".into(),
            "5".into(),
        ]);
        assert!(run_words(&c).is_err());
    }

    /// Temp directory with recursive cleanup — checkpoint dirs hold
    /// several files, so the single-file TempPath is not enough.
    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(label: &str) -> Self {
            let mut path = std::env::temp_dir();
            path.push(format!(
                "pgmine-cli-{label}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }
        fn join(&self, name: &str) -> String {
            self.0.join(name).to_str().expect("utf-8").to_string()
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn pack_demo_corpus(dir: &TempDir) -> String {
        let fasta = format!(
            ">s0\n{}\n>s1\n{}\n>s2\n{}\n",
            "ACGTT".repeat(30),
            "ACGTT".repeat(40),
            "ACGTT".repeat(50)
        );
        let f = fasta_file(&fasta);
        let corpus = dir.join("demo.pgco");
        let out = run_words(&[
            "pack".into(),
            "--input".into(),
            f.as_str().into(),
            "--output".into(),
            corpus.clone(),
        ])
        .unwrap();
        assert!(out.contains("packed 3 sequences"), "{out}");
        assert!(out.contains("hash 0x"), "{out}");
        corpus
    }

    fn corpus_mine_words(corpus: &str, extra: &[&str]) -> Vec<String> {
        let mut words: Vec<String> = vec![
            "mine".into(),
            "--corpus".into(),
            corpus.into(),
            "--gap".into(),
            "1:3".into(),
            "--rho".into(),
            "0.5%".into(),
            "--min-sequences".into(),
            "2".into(),
        ];
        words.extend(extra.iter().map(|s| s.to_string()));
        words
    }

    #[test]
    fn pack_rejects_bad_inputs() {
        let dir = TempDir::new("pack-bad");
        let empty = fasta_file("");
        assert!(run_words(&[
            "pack".into(),
            "--input".into(),
            empty.as_str().into(),
            "--output".into(),
            dir.join("x.pgco"),
        ])
        .is_err());
        let f = fasta_file(">s\nACGT\n");
        assert!(run_words(&[
            "pack".into(),
            "--input".into(),
            f.as_str().into(),
            "--output".into(),
            dir.join("x.pgco"),
            "--alphabet".into(),
            "klingon".into(),
        ])
        .is_err());
        assert!(run_words(&["pack".into(), "--input".into(), f.as_str().into()]).is_err());
    }

    #[test]
    fn corpus_mine_end_to_end_matches_unsharded() {
        let dir = TempDir::new("corpus-e2e");
        let corpus = pack_demo_corpus(&dir);
        let sharded = run_words(&corpus_mine_words(&corpus, &[])).unwrap();
        assert!(sharded.contains("collection-frequent"), "{sharded}");
        let threaded = run_words(&corpus_mine_words(&corpus, &["--threads", "3"])).unwrap();
        let unsharded = run_words(&corpus_mine_words(&corpus, &["--unsharded"])).unwrap();
        assert_eq!(sharded, threaded, "thread count must not change output");
        assert_eq!(
            sharded, unsharded,
            "sharded and reference paths must render identical rows"
        );
        let tsv = run_words(&corpus_mine_words(&corpus, &["--format", "tsv"])).unwrap();
        assert!(
            tsv.starts_with("pattern\tlength\tsequences\ttotal_support"),
            "{tsv}"
        );
    }

    #[test]
    fn corpus_pause_and_resume_through_cli() {
        let dir = TempDir::new("corpus-resume");
        let corpus = pack_demo_corpus(&dir);
        let ckpt = dir.join("ckpt");
        let cold = run_words(&corpus_mine_words(&corpus, &[])).unwrap();
        let paused = run_words(&corpus_mine_words(
            &corpus,
            &["--checkpoint-dir", &ckpt, "--stop-after-shards", "1"],
        ))
        .unwrap();
        assert!(paused.contains("paused after 1 of 3 shards"), "{paused}");
        assert!(paused.contains("--resume"), "{paused}");
        let resumed = run_words(&corpus_mine_words(
            &corpus,
            &["--checkpoint-dir", &ckpt, "--resume"],
        ))
        .unwrap();
        assert_eq!(cold, resumed, "resumed mine must render the cold rows");
        let metrics = run_words(&corpus_mine_words(
            &corpus,
            &["--checkpoint-dir", &ckpt, "--resume", "--metrics"],
        ))
        .unwrap();
        assert!(metrics.contains("3 restored"), "{metrics}");
        assert!(metrics.contains("corpus hash: 0x"), "{metrics}");
    }

    #[test]
    fn corpus_closed_mode_reports_drops() {
        let dir = TempDir::new("corpus-closed");
        let corpus = pack_demo_corpus(&dir);
        let open = run_words(&corpus_mine_words(&corpus, &[])).unwrap();
        let closed = run_words(&corpus_mine_words(&corpus, &["--closed"])).unwrap();
        assert!(
            closed.contains("absorbed by an equal-support extension"),
            "{closed}"
        );
        let count = |s: &str| {
            s.lines()
                .find(|l| l.contains("collection-frequent"))
                .map(|l| l.to_string())
        };
        assert_eq!(
            count(&open),
            count(&closed),
            "closed filters rows, not the mined total"
        );
    }

    #[test]
    fn corpus_flag_gating() {
        let dir = TempDir::new("corpus-gate");
        let corpus = pack_demo_corpus(&dir);
        let cases: &[&[&str]] = &[
            &["--resume"],
            &["--stop-after-shards", "1"],
            &["--checkpoint-dir", "/tmp/x", "--unsharded"],
            &["--top-k", "3"],
            &["--algorithm", "mpp"],
            &["--engine", "zigzag"],
            &["--threads", "0"],
            &["--spill-dir", "/tmp/x"],
            &["--max-arena-bytes", "4096", "--spill-dir", "/tmp/x"],
        ];
        for extra in cases {
            assert!(
                run_words(&corpus_mine_words(&corpus, extra)).is_err(),
                "expected rejection for {extra:?}"
            );
        }
        // Corpus-only options are rejected on the single-sequence path.
        let f = fasta_file(&format!(">s\n{}\n", "ACGTT".repeat(30)));
        for extra in [
            vec!["--min-sequences", "2"],
            vec!["--unsharded"],
            vec!["--resume"],
            vec!["--checkpoint-dir", "/tmp/x"],
        ] {
            let mut words: Vec<String> = vec![
                "mine".into(),
                "--input".into(),
                f.as_str().into(),
                "--gap".into(),
                "1:3".into(),
                "--rho".into(),
                "0.5%".into(),
            ];
            words.extend(extra.iter().map(|s| s.to_string()));
            assert!(
                run_words(&words).is_err(),
                "expected rejection for {extra:?}"
            );
        }
        // --corpus and --input are exclusive.
        let mut both = corpus_mine_words(&corpus, &[]);
        both.extend(["--input".into(), f.as_str().to_string()]);
        assert!(run_words(&both).is_err());
    }
}
