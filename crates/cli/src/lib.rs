//! # perigap-cli
//!
//! The `pgmine` command-line tool: mine periodic patterns with gap
//! requirements from FASTA inputs, scan base-pair oscillation spectra
//! to pick a gap requirement, and report sequence statistics.
//!
//! The command logic lives in [`commands::run`] (pure: arguments in,
//! rendered text out) so it is fully testable without spawning
//! processes; `src/main.rs` is a thin shim.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
