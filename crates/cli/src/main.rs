//! Thin binary shim around [`perigap_cli::commands::run`].

fn main() {
    match perigap_cli::commands::run(std::env::args().skip(1)) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("pgmine: {e}");
            eprintln!("try `pgmine help`");
            std::process::exit(2);
        }
    }
}
