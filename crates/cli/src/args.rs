//! Dependency-free command-line argument parsing for `pgmine`.
//!
//! Supports `--key value`, `--key=value` and bare flags; unknown keys
//! are errors so typos fail loudly.

use std::collections::HashMap;

/// Parsed arguments: positional words plus `--key value` options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// An argument-parsing error with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw arguments. `value_keys` are options that consume a
    /// value; `flag_keys` are bare booleans. Anything else starting
    /// with `--` is rejected.
    pub fn parse(
        raw: impl IntoIterator<Item = String>,
        value_keys: &[&str],
        flag_keys: &[&str],
    ) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(rest) = arg.strip_prefix("--") {
                let (key, inline_value) = match rest.split_once('=') {
                    Some((k, v)) => (k.to_string(), Some(v.to_string())),
                    None => (rest.to_string(), None),
                };
                if flag_keys.contains(&key.as_str()) {
                    if inline_value.is_some() {
                        return Err(ArgError(format!("--{key} takes no value")));
                    }
                    out.flags.push(key);
                } else if value_keys.contains(&key.as_str()) {
                    let value = match inline_value {
                        Some(v) => v,
                        None => iter
                            .next()
                            .ok_or_else(|| ArgError(format!("--{key} needs a value")))?,
                    };
                    if out.options.insert(key.clone(), value).is_some() {
                        return Err(ArgError(format!("--{key} given twice")));
                    }
                } else {
                    return Err(ArgError(format!("unknown option --{key}")));
                }
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// An option's raw value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A required option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("--{key} is required")))
    }

    /// Parse an option as `T`, with a default when absent.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| ArgError(format!("--{key} {raw:?}: {e}"))),
        }
    }
}

/// Parse a gap requirement written as `N:M` (e.g. `9:12`) or a single
/// `N` (rigid gap).
pub fn parse_gap(raw: &str) -> Result<(usize, usize), ArgError> {
    let parse_part = |p: &str| {
        p.parse::<usize>()
            .map_err(|_| ArgError(format!("bad gap component {p:?} in {raw:?}")))
    };
    match raw.split_once(':') {
        Some((lo, hi)) => Ok((parse_part(lo)?, parse_part(hi)?)),
        None => {
            let v = parse_part(raw)?;
            Ok((v, v))
        }
    }
}

/// Parse a support threshold written as a fraction (`0.00003`) or a
/// percentage (`0.003%`).
pub fn parse_rho(raw: &str) -> Result<f64, ArgError> {
    let (text, scale) = match raw.strip_suffix('%') {
        Some(t) => (t, 0.01),
        None => (raw, 1.0),
    };
    let v: f64 = text
        .parse()
        .map_err(|_| ArgError(format!("bad threshold {raw:?}")))?;
    let rho = v * scale;
    if !(rho > 0.0 && rho <= 1.0) {
        return Err(ArgError(format!("threshold {raw:?} must be in (0, 100%]")));
    }
    Ok(rho)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Result<Args, ArgError> {
        Args::parse(
            words.iter().map(|s| s.to_string()),
            &["gap", "rho", "n"],
            &["verify", "quick"],
        )
    }

    #[test]
    fn parses_positional_options_and_flags() {
        let a = args(&["mine", "--gap", "9:12", "--rho=0.003%", "--verify"]).unwrap();
        assert_eq!(a.positional(), &["mine".to_string()]);
        assert_eq!(a.get("gap"), Some("9:12"));
        assert_eq!(a.get("rho"), Some("0.003%"));
        assert!(a.flag("verify"));
        assert!(!a.flag("quick"));
    }

    #[test]
    fn rejects_unknown_and_duplicate_options() {
        assert!(args(&["--bogus", "1"]).is_err());
        assert!(args(&["--gap", "1:2", "--gap", "3:4"]).is_err());
        assert!(args(&["--gap"]).is_err());
        assert!(args(&["--verify=yes"]).is_err());
    }

    #[test]
    fn parse_or_defaults_and_converts() {
        let a = args(&["--n", "13"]).unwrap();
        assert_eq!(a.parse_or("n", 0usize).unwrap(), 13);
        assert_eq!(a.parse_or("missing-key-is-default", 7usize).unwrap_or(7), 7);
        let bad = args(&["--n", "x"]).unwrap();
        assert!(bad.parse_or("n", 0usize).is_err());
    }

    #[test]
    fn gap_formats() {
        assert_eq!(parse_gap("9:12").unwrap(), (9, 12));
        assert_eq!(parse_gap("7").unwrap(), (7, 7));
        assert!(parse_gap("a:b").is_err());
        assert!(parse_gap("").is_err());
    }

    #[test]
    fn rho_formats() {
        assert!((parse_rho("0.003%").unwrap() - 0.00003).abs() < 1e-12);
        assert!((parse_rho("0.5").unwrap() - 0.5).abs() < 1e-12);
        assert!(parse_rho("0").is_err());
        assert!(parse_rho("150%").is_err());
        assert!(parse_rho("abc").is_err());
    }
}
