//! A minimal arbitrary-precision unsigned integer.
//!
//! The pattern-counting formulas of the paper produce values like
//! `N_l = Θ(L · W^(l-1))`: with `W = 4` and `l = l1 = 77` (the paper's
//! worst-case MPP configuration) this is on the order of `4^76 ≈ 5.7e45`,
//! far beyond `u128`. Rather than pulling in an external bignum crate we
//! implement the handful of operations the counting code needs: addition,
//! subtraction, multiplication, small division, exponentiation, exact
//! comparison, bit manipulation (for binary GCD) and lossy conversion to
//! `f64` / natural logarithm (for the pruning-threshold fast path).
//!
//! Representation: little-endian base-2^64 limbs, normalized so the most
//! significant limb is non-zero (zero is the empty limb vector).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Sub, SubAssign};

/// Arbitrary-precision unsigned integer (little-endian base-2^64 limbs).
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is even (0 is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Construct from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigUint {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// Lossy conversion to `u64`; returns `None` if the value does not fit.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Lossy conversion to `u128`; returns `None` if the value does not fit.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// In-place addition.
    pub fn add_assign_ref(&mut self, rhs: &BigUint) {
        let mut carry = 0u64;
        for i in 0..rhs.limbs.len().max(self.limbs.len()) {
            if i >= self.limbs.len() {
                self.limbs.push(0);
            }
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(r);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// In-place subtraction; panics if `rhs > self`.
    pub fn sub_assign_ref(&mut self, rhs: &BigUint) {
        assert!(
            *self >= *rhs,
            "BigUint subtraction underflow: {self} - {rhs}"
        );
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(r);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub fn checked_sub(&self, rhs: &BigUint) -> Option<BigUint> {
        if *self < *rhs {
            None
        } else {
            let mut out = self.clone();
            out.sub_assign_ref(rhs);
            Some(out)
        }
    }

    /// Multiplication by a machine word, in place.
    pub fn mul_assign_u64(&mut self, rhs: u64) {
        if rhs == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u128;
        for limb in &mut self.limbs {
            let prod = *limb as u128 * rhs as u128 + carry;
            *limb = prod as u64;
            carry = prod >> 64;
        }
        if carry != 0 {
            self.limbs.push(carry as u64);
        }
    }

    /// Schoolbook multiplication. Counting workloads multiply numbers of a
    /// few dozen limbs at most, so the quadratic algorithm is the right
    /// tool (Karatsuba's constant overhead would not pay off).
    pub fn mul_ref(&self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        acc
    }

    /// Division by a machine word; returns `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `divisor == 0`.
    pub fn div_rem_u64(&self, divisor: u64) -> (BigUint, u64) {
        assert!(divisor != 0, "division by zero");
        let mut quot = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            quot[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        let mut q = BigUint { limbs: quot };
        q.normalize();
        (q, rem as u64)
    }

    /// Right-shift by one bit, in place.
    pub fn shr1_assign(&mut self) {
        let mut carry = 0u64;
        for limb in self.limbs.iter_mut().rev() {
            let new_carry = *limb & 1;
            *limb = (*limb >> 1) | (carry << 63);
            carry = new_carry;
        }
        self.normalize();
    }

    /// Left-shift by `bits` bits.
    pub fn shl_bits(&self, bits: u64) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Number of trailing zero bits; `None` for the value 0.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u64 * 64 + l.trailing_zeros() as u64);
            }
        }
        None
    }

    /// Greatest common divisor (binary/Stein algorithm — needs only
    /// shifts and subtraction, which keeps this type free of full
    /// multi-word division).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        let za = a.trailing_zeros().expect("a is non-zero");
        let zb = b.trailing_zeros().expect("b is non-zero");
        let shift = za.min(zb);
        // Strip all factors of two, remembering the common ones.
        for _ in 0..za {
            a.shr1_assign();
        }
        for _ in 0..zb {
            b.shr1_assign();
        }
        loop {
            // Invariant: a and b are both odd.
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b.sub_assign_ref(&a);
            if b.is_zero() {
                return a.shl_bits(shift);
            }
            let z = b.trailing_zeros().expect("b is non-zero");
            for _ in 0..z {
                b.shr1_assign();
            }
        }
    }

    /// Lossy conversion to `f64`. Values above `f64::MAX` become
    /// `f64::INFINITY`.
    pub fn to_f64(&self) -> f64 {
        match self.limbs.len() {
            0 => 0.0,
            1 => self.limbs[0] as f64,
            2 => self.to_u128().expect("two limbs fit in u128") as f64,
            n => {
                // Take the top 128 bits as the mantissa source and scale.
                let hi = self.limbs[n - 1] as u128;
                let mid = self.limbs[n - 2] as u128;
                let top = (hi << 64) | mid;
                let exp = (n as i32 - 2) * 64;
                (top as f64) * 2f64.powi(exp)
            }
        }
    }

    /// Decompose as `(mant, exp)` with the value equal to `mant · 2^exp`
    /// and `mant` holding the top (up to) 128 bits exactly. Unlike
    /// [`BigUint::to_f64`] this never overflows, so callers can form
    /// ratios of huge values without losing precision.
    pub fn to_f64_parts(&self) -> (f64, i64) {
        match self.limbs.len() {
            0 => (0.0, 0),
            1 => (self.limbs[0] as f64, 0),
            2 => (self.to_u128().expect("two limbs fit in u128") as f64, 0),
            n => {
                let hi = self.limbs[n - 1] as u128;
                let mid = self.limbs[n - 2] as u128;
                let top = (hi << 64) | mid;
                (top as f64, (n as i64 - 2) * 64)
            }
        }
    }

    /// Natural logarithm as `f64`. Accurate to f64 precision even for
    /// values whose `to_f64` would overflow.
    ///
    /// # Panics
    /// Panics if the value is 0.
    pub fn ln(&self) -> f64 {
        assert!(!self.is_zero(), "ln(0) is undefined");
        let n = self.limbs.len();
        if n <= 2 {
            return (self.to_u128().expect("fits") as f64).ln();
        }
        let hi = self.limbs[n - 1] as u128;
        let mid = self.limbs[n - 2] as u128;
        let top = (hi << 64) | mid;
        let exp = (n as f64 - 2.0) * 64.0;
        (top as f64).ln() + exp * std::f64::consts::LN_2
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_u128(v)
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        self.add_assign_ref(rhs);
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.sub_assign_ref(rhs);
        out
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        self.sub_assign_ref(rhs);
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = self.mul_ref(rhs);
    }
}

/// Error returned when parsing a decimal string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    /// The offending character, if any (empty input otherwise).
    pub bad_char: Option<char>,
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bad_char {
            Some(c) => write!(f, "invalid digit {c:?} in BigUint literal"),
            None => f.write_str("empty BigUint literal"),
        }
    }
}

impl std::error::Error for ParseBigUintError {}

impl std::str::FromStr for BigUint {
    type Err = ParseBigUintError;

    /// Parse a decimal literal; `_` separators are permitted
    /// (`"235_012_096"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut any = false;
        let mut acc = BigUint::zero();
        for ch in s.chars() {
            if ch == '_' {
                continue;
            }
            let digit = ch
                .to_digit(10)
                .ok_or(ParseBigUintError { bad_char: Some(ch) })?;
            acc.mul_assign_u64(10);
            acc.add_assign_ref(&BigUint::from_u64(digit as u64));
            any = true;
        }
        if !any {
            return Err(ParseBigUintError { bad_char: None });
        }
        Ok(acc)
    }
}

impl std::iter::Sum for BigUint {
    fn sum<I: Iterator<Item = BigUint>>(iter: I) -> BigUint {
        let mut acc = BigUint::zero();
        for v in iter {
            acc.add_assign_ref(&v);
        }
        acc
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel off base-10^19 chunks (the largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks
            .pop()
            .expect("non-zero has at least one chunk")
            .to_string();
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().to_u64(), Some(0));
        assert_eq!(BigUint::one().to_u64(), Some(1));
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
    }

    #[test]
    fn add_with_carry() {
        let a = big(u128::MAX);
        let one = BigUint::one();
        let sum = &a + &one;
        assert_eq!(sum.to_string(), "340282366920938463463374607431768211456");
        assert_eq!(sum.bit_len(), 129);
    }

    #[test]
    fn sub_basic_and_underflow() {
        let a = big(1 << 70);
        let b = big((1 << 70) - 12345);
        assert_eq!((&a - &b).to_u64(), Some(12345));
        assert!(b.checked_sub(&a).is_none());
        assert_eq!(a.checked_sub(&a).unwrap(), BigUint::zero());
    }

    #[test]
    fn mul_matches_u128() {
        let a = 123_456_789_012_345u128;
        let b = 987_654_321_098u128;
        assert_eq!(big(a).mul_ref(&big(b)).to_u128(), Some(a * b));
    }

    #[test]
    fn mul_u64_inplace() {
        let mut a = big(u128::MAX / 7);
        a.mul_assign_u64(7);
        assert_eq!(a.to_u128(), Some((u128::MAX / 7) * 7));
        let mut z = big(123);
        z.mul_assign_u64(0);
        assert!(z.is_zero());
    }

    #[test]
    fn pow_small() {
        assert_eq!(big(2).pow(10).to_u64(), Some(1024));
        assert_eq!(big(4).pow(0).to_u64(), Some(1));
        assert_eq!(big(0).pow(5), BigUint::zero());
        assert_eq!(big(10).pow(19).to_string(), "10000000000000000000");
    }

    #[test]
    fn pow_large_bit_len() {
        // 4^76 has exactly 153 bits (2^152).
        assert_eq!(big(4).pow(76).bit_len(), 153);
    }

    #[test]
    fn div_rem_small() {
        let a = big(10).pow(30);
        let (q, r) = a.div_rem_u64(7);
        assert_eq!(r, 10u128.pow(15).pow(2).rem_euclid(7) as u64 % 7);
        let mut back = q;
        back.mul_assign_u64(7);
        back.add_assign_ref(&BigUint::from_u64(r));
        assert_eq!(back, big(10).pow(30));
    }

    #[test]
    fn display_round_trips_u128() {
        let v = 340282366920938463463374607431768211455u128;
        assert_eq!(big(v).to_string(), v.to_string());
        assert_eq!(big(0).to_string(), "0");
        assert_eq!(big(19).to_string(), "19");
    }

    #[test]
    fn ordering() {
        assert!(big(5) < big(6));
        assert!(big(u128::MAX) > big(u128::MAX - 1));
        assert!(big(2).pow(200) > big(2).pow(199));
        assert_eq!(big(42).cmp(&big(42)), Ordering::Equal);
    }

    #[test]
    fn to_f64_small_and_large() {
        assert_eq!(big(0).to_f64(), 0.0);
        assert_eq!(big(12345).to_f64(), 12345.0);
        let v = big(2).pow(200);
        let expected = 2f64.powi(200);
        assert!((v.to_f64() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn ln_large() {
        let v = big(4).pow(76);
        let expected = 76.0 * 4f64.ln();
        assert!((v.ln() - expected).abs() < 1e-9);
        assert!((big(1).ln() - 0.0).abs() < 1e-15);
    }

    #[test]
    fn from_str_decimal() {
        let v: BigUint = "235012096".parse().unwrap();
        assert_eq!(v.to_u64(), Some(235_012_096));
        let v: BigUint = "235_012_096".parse().unwrap();
        assert_eq!(v.to_u64(), Some(235_012_096));
        let v: BigUint = "0".parse().unwrap();
        assert!(v.is_zero());
        // Round-trip a 50-digit number through Display.
        let big = BigUint::from_u64(7).pow(60);
        let back: BigUint = big.to_string().parse().unwrap();
        assert_eq!(back, big);
        assert!("".parse::<BigUint>().is_err());
        assert!("12a4".parse::<BigUint>().is_err());
        assert!("-5".parse::<BigUint>().is_err());
    }

    #[test]
    fn sum_iterator() {
        let total: BigUint = (1..=100u64).map(BigUint::from_u64).sum();
        assert_eq!(total.to_u64(), Some(5050));
        let empty: BigUint = std::iter::empty().sum();
        assert!(empty.is_zero());
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(big(12).gcd(&big(18)).to_u64(), Some(6));
        assert_eq!(big(0).gcd(&big(5)).to_u64(), Some(5));
        assert_eq!(big(5).gcd(&big(0)).to_u64(), Some(5));
        assert_eq!(big(17).gcd(&big(13)).to_u64(), Some(1));
        let a = big(2).pow(100).mul_ref(&big(3).pow(5));
        let b = big(2).pow(90).mul_ref(&big(3).pow(7));
        assert_eq!(a.gcd(&b), big(2).pow(90).mul_ref(&big(3).pow(5)));
    }

    #[test]
    fn shifts() {
        assert_eq!(big(1).shl_bits(130).bit_len(), 131);
        let mut v = big(1).shl_bits(130);
        v.shr1_assign();
        assert_eq!(v.bit_len(), 130);
        assert_eq!(big(6).trailing_zeros(), Some(1));
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(big(1).shl_bits(64).trailing_zeros(), Some(64));
    }
}
