//! Exact combinatorial counting helpers used by the null models and by
//! the `N_l` cross-checks.

use crate::biguint::BigUint;

/// `n!` as an exact big integer.
pub fn factorial(n: u32) -> BigUint {
    let mut acc = BigUint::one();
    for k in 2..=n.max(1) {
        acc.mul_assign_u64(k as u64);
    }
    acc
}

/// Binomial coefficient `C(n, k)` computed by the multiplicative formula
/// (each intermediate division is exact).
pub fn binomial(n: u64, k: u64) -> BigUint {
    if k > n {
        return BigUint::zero();
    }
    let k = k.min(n - k);
    let mut acc = BigUint::one();
    for i in 0..k {
        acc.mul_assign_u64(n - i);
        let (q, r) = acc.div_rem_u64(i + 1);
        debug_assert_eq!(r, 0, "binomial partial products divide exactly");
        acc = q;
    }
    acc
}

/// `base^exp` as an exact big integer.
pub fn power(base: u64, exp: u32) -> BigUint {
    BigUint::from_u64(base).pow(exp)
}

/// Number of character strings of length `l` over an alphabet of size
/// `sigma` — the candidate count of the enumeration baseline at level `l`
/// (the "Enumeration Algorithm" column of Table 3).
pub fn strings_of_length(sigma: u64, l: u32) -> BigUint {
    power(sigma, l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_small() {
        assert_eq!(factorial(0).to_u64(), Some(1));
        assert_eq!(factorial(1).to_u64(), Some(1));
        assert_eq!(factorial(5).to_u64(), Some(120));
        assert_eq!(factorial(20).to_u64(), Some(2_432_902_008_176_640_000));
    }

    #[test]
    fn factorial_large_has_expected_digits() {
        // 100! has 158 decimal digits.
        assert_eq!(factorial(100).to_string().len(), 158);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2).to_u64(), Some(10));
        assert_eq!(binomial(10, 0).to_u64(), Some(1));
        assert_eq!(binomial(10, 10).to_u64(), Some(1));
        assert_eq!(binomial(10, 11), BigUint::zero());
        assert_eq!(binomial(52, 5).to_u64(), Some(2_598_960));
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..20u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn pascal_identity() {
        for n in 1..25u64 {
            for k in 1..n {
                let lhs = binomial(n, k);
                let rhs = &binomial(n - 1, k - 1) + &binomial(n - 1, k);
                assert_eq!(lhs, rhs, "C({n},{k})");
            }
        }
    }

    #[test]
    fn table3_enumeration_counts() {
        // Paper Table 3: the enumeration baseline counts 4^i candidates
        // per level over the DNA alphabet.
        assert_eq!(strings_of_length(4, 3).to_u64(), Some(64));
        assert_eq!(strings_of_length(4, 8).to_u64(), Some(65_536));
        assert_eq!(strings_of_length(4, 13).to_u64(), Some(67_108_864));
    }
}
