//! # perigap-math
//!
//! Numeric substrate for the *perigap* workspace — the Rust reproduction
//! of "Mining Periodic Patterns with Gap Requirement from Sequences"
//! (Zhang, Kao, Cheung, Yip; SIGMOD 2005).
//!
//! The paper's offset-sequence counts `N_l` grow as `Θ(L · W^(l-1))` and
//! overflow every machine integer for realistic parameters, while its
//! pruning thresholds are ratios of such counts. This crate provides the
//! numeric machinery required to handle both exactly and quickly:
//!
//! * [`BigUint`] — arbitrary-precision unsigned integers (exact counts),
//! * [`BigRatio`] — exact rationals (threshold comparisons that must not
//!   flip with floating-point rounding),
//! * [`LogNum`] — log-space floats (the fast path for λ-style ratios),
//! * [`combinatorics`] — factorials / binomials / powers for null models,
//! * [`stats`] — streaming descriptive statistics for the harness.

#![warn(missing_docs)]

pub mod biguint;
pub mod combinatorics;
pub mod logspace;
pub mod rational;
pub mod stats;

pub use biguint::BigUint;
pub use logspace::LogNum;
pub use rational::BigRatio;
