//! Streaming and batch descriptive statistics.
//!
//! Used by the benchmark harness (timing series) and by the analysis
//! crate (support distributions, null-model z-scores).

/// Single-pass mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// z-score of `x` under the accumulated distribution; `None` if the
    /// standard deviation is zero.
    pub fn z_score(&self, x: f64) -> Option<f64> {
        let sd = self.std_dev();
        (sd > 0.0).then(|| (x - self.mean) / sd)
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile of a slice by linear interpolation between closest ranks.
/// `q` is in `[0, 1]`. Returns `None` on an empty slice.
///
/// The input need not be sorted; a sorted copy is made internally.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!(
        (0.0..=1.0).contains(&q),
        "percentile q must be in [0,1], got {q}"
    );
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median convenience wrapper around [`percentile`].
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_formulas() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.variance(), 0.0);
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.z_score(43.0).is_none());
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn z_scores() {
        let mut s = RunningStats::new();
        for &x in &[1.0, 2.0, 3.0, 4.0, 5.0] {
            s.push(x);
        }
        let z = s.z_score(3.0).unwrap();
        assert!(z.abs() < 1e-12);
        assert!(s.z_score(5.0).unwrap() > 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert_eq!(median(&v), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
        // Unsorted input is handled.
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
    }
}
