//! Log-space floating-point arithmetic.
//!
//! The pruning thresholds of the paper are ratios of astronomically large
//! counts (`λ(l,d) = N_l / (N_(l-d) · W^d)` with `N_l = Θ(W^l)`), so we
//! carry them as natural logarithms. `LogNum` is a thin newtype over the
//! log-value with the arithmetic that is exact in log space (multiply,
//! divide, power) plus a stable log-sum-exp addition.

use std::cmp::Ordering;
use std::fmt;

/// A non-negative real number stored as its natural logarithm.
///
/// Zero is represented by `ln = -inf`, which behaves correctly under all
/// provided operations.
#[derive(Clone, Copy, PartialEq)]
pub struct LogNum {
    ln: f64,
}

impl LogNum {
    /// The number 0 (log value −∞).
    pub fn zero() -> Self {
        LogNum {
            ln: f64::NEG_INFINITY,
        }
    }

    /// The number 1 (log value 0).
    pub fn one() -> Self {
        LogNum { ln: 0.0 }
    }

    /// Wrap a raw natural-log value.
    pub fn from_ln(ln: f64) -> Self {
        LogNum { ln }
    }

    /// Convert from a plain `f64`.
    ///
    /// # Panics
    /// Panics on negative or NaN input.
    pub fn from_f64(v: f64) -> Self {
        assert!(v >= 0.0, "LogNum represents non-negative reals, got {v}");
        LogNum { ln: v.ln() }
    }

    /// The raw natural-log value.
    pub fn ln(self) -> f64 {
        self.ln
    }

    /// Convert back to a plain `f64` (may overflow to `inf`).
    pub fn to_f64(self) -> f64 {
        self.ln.exp()
    }

    /// True iff the represented number is 0.
    pub fn is_zero(self) -> bool {
        self.ln == f64::NEG_INFINITY
    }

    /// Multiplication (log-space addition).
    #[allow(clippy::should_implement_trait)] // deliberate: panics/identities differ from std ops
    pub fn mul(self, rhs: LogNum) -> LogNum {
        LogNum {
            ln: self.ln + rhs.ln,
        }
    }

    /// Division (log-space subtraction).
    ///
    /// # Panics
    /// Panics when dividing by zero.
    #[allow(clippy::should_implement_trait)] // deliberate: panics/identities differ from std ops
    pub fn div(self, rhs: LogNum) -> LogNum {
        assert!(!rhs.is_zero(), "LogNum division by zero");
        LogNum {
            ln: self.ln - rhs.ln,
        }
    }

    /// Integer power.
    pub fn powi(self, exp: i32) -> LogNum {
        LogNum {
            ln: self.ln * exp as f64,
        }
    }

    /// Stable addition via log-sum-exp.
    #[allow(clippy::should_implement_trait)] // deliberate: panics/identities differ from std ops
    pub fn add(self, rhs: LogNum) -> LogNum {
        if self.is_zero() {
            return rhs;
        }
        if rhs.is_zero() {
            return self;
        }
        let (hi, lo) = if self.ln >= rhs.ln {
            (self.ln, rhs.ln)
        } else {
            (rhs.ln, self.ln)
        };
        LogNum {
            ln: hi + (lo - hi).exp().ln_1p(),
        }
    }
}

impl PartialOrd for LogNum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.ln.partial_cmp(&other.ln)
    }
}

impl fmt::Debug for LogNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogNum(e^{})", self.ln)
    }
}

impl fmt::Display for LogNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ln.abs() < 500.0 {
            write!(f, "{}", self.to_f64())
        } else {
            // Express as a power of ten beyond f64 range.
            let log10 = self.ln / std::f64::consts::LN_10;
            let exp = log10.floor();
            let mant = 10f64.powf(log10 - exp);
            write!(f, "{mant:.6}e{exp}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_elements() {
        let x = LogNum::from_f64(3.5);
        assert!((x.mul(LogNum::one()).to_f64() - 3.5).abs() < 1e-12);
        assert!(x.mul(LogNum::zero()).is_zero());
        assert!((x.add(LogNum::zero()).to_f64() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn mul_div_roundtrip() {
        let a = LogNum::from_f64(1234.5);
        let b = LogNum::from_f64(0.0078);
        let back = a.mul(b).div(b).to_f64();
        assert!((back - 1234.5).abs() < 1e-9);
    }

    #[test]
    fn add_matches_plain() {
        let a = LogNum::from_f64(2.0);
        let b = LogNum::from_f64(5.0);
        assert!((a.add(b).to_f64() - 7.0).abs() < 1e-12);
        // Order independence.
        assert!((b.add(a).to_f64() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn powi_huge_values() {
        // 4^76 does fit in f64, 4^10000 does not; LogNum handles both.
        let w = LogNum::from_f64(4.0);
        assert!((w.powi(76).ln() - 76.0 * 4f64.ln()).abs() < 1e-9);
        let huge = w.powi(10_000);
        assert!(huge.ln().is_finite());
        assert!(huge > w.powi(9_999));
    }

    #[test]
    fn ordering_and_display() {
        assert!(LogNum::from_f64(2.0) < LogNum::from_f64(3.0));
        assert!(LogNum::zero() < LogNum::from_f64(1e-300));
        let s = LogNum::from_ln(5000.0).to_string();
        assert!(s.contains('e'), "huge value renders in sci notation: {s}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_input_panics() {
        let _ = LogNum::from_f64(-1.0);
    }
}
