//! Exact non-negative rational numbers over [`BigUint`].
//!
//! Frequency thresholds arrive as `f64` values (e.g. `ρs = 0.003% =
//! 0.00003`) but the frequent/infrequent decision `sup(P) ≥ ρs · N_l`
//! must be made exactly: `N_l` can exceed `f64` precision and a support
//! count sitting right on the threshold must not flip with rounding.
//! `BigRatio` converts the `f64` threshold to its exact binary rational
//! and compares by cross-multiplication.

use crate::biguint::BigUint;
use std::cmp::Ordering;
use std::fmt;

/// An exact non-negative rational number `num / den` (`den > 0`),
/// kept in lowest terms.
#[derive(Clone, PartialEq, Eq)]
pub struct BigRatio {
    num: BigUint,
    den: BigUint,
}

impl BigRatio {
    /// The value 0.
    pub fn zero() -> Self {
        BigRatio {
            num: BigUint::zero(),
            den: BigUint::one(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigRatio {
            num: BigUint::one(),
            den: BigUint::one(),
        }
    }

    /// Construct `num / den` and reduce to lowest terms.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn new(num: BigUint, den: BigUint) -> Self {
        assert!(!den.is_zero(), "BigRatio denominator must be non-zero");
        let mut r = BigRatio { num, den };
        r.reduce();
        r
    }

    /// Construct from machine integers.
    pub fn from_u64s(num: u64, den: u64) -> Self {
        Self::new(BigUint::from_u64(num), BigUint::from_u64(den))
    }

    /// Construct the integer `v`.
    pub fn from_integer(v: BigUint) -> Self {
        BigRatio {
            num: v,
            den: BigUint::one(),
        }
    }

    /// Exact conversion from a finite non-negative `f64`.
    ///
    /// Every finite `f64` is a dyadic rational `mant · 2^exp`; we decode
    /// the IEEE-754 representation directly so the conversion is exact.
    ///
    /// # Panics
    /// Panics on negative, NaN or infinite input.
    pub fn from_f64_exact(v: f64) -> Self {
        assert!(
            v.is_finite() && v >= 0.0,
            "need a finite non-negative f64, got {v}"
        );
        if v == 0.0 {
            return Self::zero();
        }
        let bits = v.to_bits();
        let raw_exp = ((bits >> 52) & 0x7ff) as i64;
        let raw_mant = bits & ((1u64 << 52) - 1);
        let (mant, exp) = if raw_exp == 0 {
            // Subnormal: value = mant · 2^(-1074)
            (raw_mant, -1074i64)
        } else {
            // Normal: value = (2^52 + mant) · 2^(exp - 1075)
            (raw_mant | (1u64 << 52), raw_exp - 1075)
        };
        let m = BigUint::from_u64(mant);
        if exp >= 0 {
            BigRatio::new(m.shl_bits(exp as u64), BigUint::one())
        } else {
            BigRatio::new(m, BigUint::one().shl_bits((-exp) as u64))
        }
    }

    fn reduce(&mut self) {
        if self.num.is_zero() {
            self.den = BigUint::one();
            return;
        }
        let g = self.num.gcd(&self.den);
        if g != BigUint::one() {
            self.num = exact_div(&self.num, &g);
            self.den = exact_div(&self.den, &g);
        }
    }

    /// Numerator (lowest terms).
    pub fn numer(&self) -> &BigUint {
        &self.num
    }

    /// Denominator (lowest terms).
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Exact multiplication.
    pub fn mul(&self, rhs: &BigRatio) -> BigRatio {
        BigRatio::new(self.num.mul_ref(&rhs.num), self.den.mul_ref(&rhs.den))
    }

    /// Exact division.
    ///
    /// # Panics
    /// Panics when dividing by zero.
    pub fn div(&self, rhs: &BigRatio) -> BigRatio {
        assert!(!rhs.is_zero(), "BigRatio division by zero");
        BigRatio::new(self.num.mul_ref(&rhs.den), self.den.mul_ref(&rhs.num))
    }

    /// Exact addition.
    pub fn add(&self, rhs: &BigRatio) -> BigRatio {
        let num = &self.num.mul_ref(&rhs.den) + &rhs.num.mul_ref(&self.den);
        BigRatio::new(num, self.den.mul_ref(&rhs.den))
    }

    /// Compare `self` with the integer `v` exactly: returns the ordering of
    /// `self` relative to `v`.
    pub fn cmp_integer(&self, v: &BigUint) -> Ordering {
        self.num.cmp(&v.mul_ref(&self.den))
    }

    /// Decide `count ≥ self · total` exactly — the frequent-pattern test
    /// with `self = ρs`, `count = sup(P)`, `total = N_l`.
    pub fn le_scaled(&self, count: &BigUint, total: &BigUint) -> bool {
        // count ≥ (num/den)·total  ⇔  count·den ≥ num·total
        count.mul_ref(&self.den) >= self.num.mul_ref(total)
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        if self.num.is_zero() {
            return 0.0;
        }
        let (nm, ne) = self.num.to_f64_parts();
        let (dm, de) = self.den.to_f64_parts();
        let shift = ne - de;
        if let Ok(shift) = i32::try_from(shift) {
            (nm / dm) * 2f64.powi(shift)
        } else if shift > 0 {
            f64::INFINITY
        } else {
            0.0
        }
    }
}

/// Division known to be exact (divisor divides dividend).
///
/// We only have word division on `BigUint`; exact multi-word division is
/// done by repeated word division of the divisor when it fits, otherwise
/// by binary long division via shifts and subtraction.
fn exact_div(dividend: &BigUint, divisor: &BigUint) -> BigUint {
    if let Some(small) = divisor.to_u64() {
        let (q, r) = dividend.div_rem_u64(small);
        debug_assert_eq!(r, 0, "exact_div called with non-divisor");
        return q;
    }
    // Binary long division: subtract shifted divisors from high to low.
    let mut rem = dividend.clone();
    let mut quot = BigUint::zero();
    let shift_max = dividend.bit_len().saturating_sub(divisor.bit_len());
    for s in (0..=shift_max).rev() {
        let d = divisor.shl_bits(s);
        if let Some(next) = rem.checked_sub(&d) {
            rem = next;
            quot.add_assign_ref(&BigUint::one().shl_bits(s));
        }
    }
    debug_assert!(rem.is_zero(), "exact_div called with non-divisor");
    quot
}

impl PartialOrd for BigRatio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRatio {
    fn cmp(&self, other: &Self) -> Ordering {
        self.num
            .mul_ref(&other.den)
            .cmp(&other.num.mul_ref(&self.den))
    }
}

impl fmt::Display for BigRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Debug for BigRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRatio({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio(n: u64, d: u64) -> BigRatio {
        BigRatio::from_u64s(n, d)
    }

    #[test]
    fn reduces_to_lowest_terms() {
        let r = ratio(6, 8);
        assert_eq!(r.numer().to_u64(), Some(3));
        assert_eq!(r.denom().to_u64(), Some(4));
        assert_eq!(ratio(0, 5), BigRatio::zero());
    }

    #[test]
    fn arithmetic() {
        let a = ratio(1, 3);
        let b = ratio(1, 6);
        assert_eq!(a.add(&b), ratio(1, 2));
        assert_eq!(a.mul(&b), ratio(1, 18));
        assert_eq!(a.div(&b), ratio(2, 1));
    }

    #[test]
    fn ordering_cross_multiplies() {
        assert!(ratio(1, 3) < ratio(1, 2));
        assert!(ratio(2, 4) == ratio(1, 2));
        assert!(ratio(7, 8) > ratio(6, 7));
    }

    #[test]
    fn f64_conversion_is_exact_for_dyadics() {
        let r = BigRatio::from_f64_exact(0.375);
        assert_eq!(r, ratio(3, 8));
        let r = BigRatio::from_f64_exact(5.0);
        assert_eq!(r, ratio(5, 1));
        let r = BigRatio::from_f64_exact(0.0);
        assert!(r.is_zero());
    }

    #[test]
    fn f64_conversion_round_trips() {
        for &v in &[0.00003f64, 0.0015e-2, 1.5e-5, 123.456, 1e-300] {
            let r = BigRatio::from_f64_exact(v);
            assert_eq!(r.to_f64(), v, "round trip of {v}");
        }
    }

    #[test]
    fn threshold_test_le_scaled() {
        // rho = 1/4; N = 100 → threshold is 25.
        let rho = ratio(1, 4);
        let total = BigUint::from_u64(100);
        assert!(rho.le_scaled(&BigUint::from_u64(25), &total));
        assert!(rho.le_scaled(&BigUint::from_u64(26), &total));
        assert!(!rho.le_scaled(&BigUint::from_u64(24), &total));
    }

    #[test]
    fn threshold_exact_on_huge_totals() {
        // total = 4^80, rho = 1/4^40 → threshold exactly 4^40.
        let rho = BigRatio::new(BigUint::one(), BigUint::from_u64(4).pow(40));
        let total = BigUint::from_u64(4).pow(80);
        let thr = BigUint::from_u64(4).pow(40);
        assert!(rho.le_scaled(&thr, &total));
        assert!(!rho.le_scaled(&thr.checked_sub(&BigUint::one()).unwrap(), &total));
    }

    #[test]
    fn exact_div_multiword() {
        let a = BigUint::from_u64(7).pow(50);
        let b = BigUint::from_u64(7).pow(20);
        assert_eq!(super::exact_div(&a, &b), BigUint::from_u64(7).pow(30));
    }

    #[test]
    fn cmp_integer() {
        assert_eq!(
            ratio(9, 2).cmp_integer(&BigUint::from_u64(4)),
            Ordering::Greater
        );
        assert_eq!(
            ratio(8, 2).cmp_integer(&BigUint::from_u64(4)),
            Ordering::Equal
        );
        assert_eq!(
            ratio(7, 2).cmp_integer(&BigUint::from_u64(4)),
            Ordering::Less
        );
    }
}
