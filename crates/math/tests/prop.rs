//! Property-based tests for the numeric substrate: every operation is
//! checked against `u128` arithmetic on the range where both are defined,
//! and against algebraic laws beyond it.

use perigap_math::{BigRatio, BigUint, LogNum};
use proptest::prelude::*;

fn big(v: u128) -> BigUint {
    BigUint::from_u128(v)
}

proptest! {
    #[test]
    fn add_matches_u128(a in 0u128..=u128::MAX / 2, b in 0u128..=u128::MAX / 2) {
        prop_assert_eq!((&big(a) + &big(b)).to_u128(), Some(a + b));
    }

    #[test]
    fn sub_matches_u128(a: u128, b: u128) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!((&big(hi) - &big(lo)).to_u128(), Some(hi - lo));
        if hi != lo {
            prop_assert!(big(lo).checked_sub(&big(hi)).is_none());
        }
    }

    #[test]
    fn mul_matches_u128(a in 0u128..=u64::MAX as u128, b in 0u128..=u64::MAX as u128) {
        prop_assert_eq!(big(a).mul_ref(&big(b)).to_u128(), Some(a * b));
    }

    #[test]
    fn mul_commutes_and_associates(a: u64, b: u64, c: u64) {
        let (a, b, c) = (big(a as u128), big(b as u128), big(c as u128));
        prop_assert_eq!(a.mul_ref(&b), b.mul_ref(&a));
        prop_assert_eq!(a.mul_ref(&b).mul_ref(&c), a.mul_ref(&b.mul_ref(&c)));
    }

    #[test]
    fn distributive_law(a: u64, b: u64, c: u64) {
        let (ab, bb, cb) = (big(a as u128), big(b as u128), big(c as u128));
        let lhs = ab.mul_ref(&(&bb + &cb));
        let rhs = &ab.mul_ref(&bb) + &ab.mul_ref(&cb);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn div_rem_reconstructs(a: u128, d in 1u64..=u64::MAX) {
        let (q, r) = big(a).div_rem_u64(d);
        prop_assert!(r < d);
        let mut back = q;
        back.mul_assign_u64(d);
        back.add_assign_ref(&BigUint::from_u64(r));
        prop_assert_eq!(back, big(a));
    }

    #[test]
    fn display_matches_u128(a: u128) {
        prop_assert_eq!(big(a).to_string(), a.to_string());
    }

    #[test]
    fn ordering_matches_u128(a: u128, b: u128) {
        prop_assert_eq!(big(a).cmp(&big(b)), a.cmp(&b));
    }

    #[test]
    fn pow_matches_checked(base in 0u64..=100, exp in 0u32..=20) {
        if let Some(expected) = (base as u128).checked_pow(exp) {
            prop_assert_eq!(big(base as u128).pow(exp).to_u128(), Some(expected));
        }
    }

    #[test]
    fn gcd_properties(a in 1u64..=1_000_000, b in 1u64..=1_000_000) {
        fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        let g = big(a as u128).gcd(&big(b as u128));
        prop_assert_eq!(g.to_u64(), Some(gcd_u64(a, b)));
    }

    #[test]
    fn shift_roundtrip(a in 1u128..=u128::MAX >> 1, bits in 0u64..=200) {
        let shifted = big(a).shl_bits(bits);
        prop_assert_eq!(shifted.bit_len(), big(a).bit_len() + bits);
        let mut back = shifted;
        for _ in 0..bits {
            back.shr1_assign();
        }
        prop_assert_eq!(back, big(a));
    }

    #[test]
    fn to_f64_relative_error(a in 1u128..=u128::MAX) {
        let approx = big(a).to_f64();
        let exact = a as f64;
        prop_assert!((approx - exact).abs() <= exact * 1e-12);
    }

    #[test]
    fn ln_matches_f64(a in 1u128..=u128::MAX) {
        prop_assert!((big(a).ln() - (a as f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn ratio_ordering_matches_f64(n1 in 1u64..10_000, d1 in 1u64..10_000,
                                  n2 in 1u64..10_000, d2 in 1u64..10_000) {
        let r1 = BigRatio::from_u64s(n1, d1);
        let r2 = BigRatio::from_u64s(n2, d2);
        // Cross-multiplication in u128 is exact here.
        let lhs = n1 as u128 * d2 as u128;
        let rhs = n2 as u128 * d1 as u128;
        prop_assert_eq!(r1.cmp(&r2), lhs.cmp(&rhs));
    }

    #[test]
    fn ratio_f64_exact_roundtrip(v in 0.0f64..1e9) {
        let r = BigRatio::from_f64_exact(v);
        prop_assert_eq!(r.to_f64(), v);
    }

    #[test]
    fn ratio_threshold_matches_integer_math(count in 0u64..1000, total in 1u64..1000,
                                            num in 0u64..100, den in 1u64..100) {
        let rho = BigRatio::from_u64s(num, den);
        let expected = count as u128 * den as u128 >= num as u128 * total as u128;
        prop_assert_eq!(
            rho.le_scaled(&BigUint::from_u64(count), &BigUint::from_u64(total)),
            expected
        );
    }

    #[test]
    fn lognum_mul_matches_f64(a in 1e-10f64..1e10, b in 1e-10f64..1e10) {
        let prod = LogNum::from_f64(a).mul(LogNum::from_f64(b)).to_f64();
        prop_assert!((prod - a * b).abs() <= (a * b) * 1e-9);
    }

    #[test]
    fn lognum_add_matches_f64(a in 1e-5f64..1e5, b in 1e-5f64..1e5) {
        let sum = LogNum::from_f64(a).add(LogNum::from_f64(b)).to_f64();
        prop_assert!((sum - (a + b)).abs() <= (a + b) * 1e-9);
    }
}
