//! Property-based tests for the sequence substrate.

use perigap_seq::fasta::{format_fasta, parse_fasta, FastaRecord};
use perigap_seq::gen::markov::MarkovModel;
use perigap_seq::gen::mutate::{mutate, MutationConfig};
use perigap_seq::oscillation::pair_count_at_distance;
use perigap_seq::stats::{dinucleotide_counts, kmer_counts, shannon_entropy};
use perigap_seq::{Alphabet, PackedDna, Sequence};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dna_codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, 1..max_len)
}

proptest! {
    #[test]
    fn sequence_text_roundtrip(codes in dna_codes(200)) {
        let seq = Sequence::from_codes(Alphabet::Dna, codes.clone()).unwrap();
        let back = Sequence::dna(&seq.to_text()).unwrap();
        prop_assert_eq!(back.codes(), &codes[..]);
    }

    #[test]
    fn packed_dna_roundtrip(codes in dna_codes(300)) {
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let packed = PackedDna::from_sequence(&seq);
        prop_assert_eq!(packed.len(), seq.len());
        prop_assert_eq!(packed.to_sequence(), seq.clone());
        // Footprint is a quarter (rounded up).
        prop_assert_eq!(packed.payload_bytes(), seq.len().div_ceil(4));
    }

    #[test]
    fn packed_set_get(codes in dna_codes(100), idx_frac in 0.0f64..1.0, new_code in 0u8..4) {
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let mut packed = PackedDna::from_sequence(&seq);
        let idx = ((seq.len() - 1) as f64 * idx_frac) as usize;
        packed.set(idx, new_code);
        prop_assert_eq!(packed.get(idx), new_code);
        // Everything else untouched.
        for i in 0..seq.len() {
            if i != idx {
                prop_assert_eq!(packed.get(i), seq.codes()[i]);
            }
        }
    }

    #[test]
    fn fasta_roundtrip(codes in dna_codes(250), width in 1usize..90) {
        let rec = FastaRecord {
            id: "prop".into(),
            description: None,
            sequence: Sequence::from_codes(Alphabet::Dna, codes).unwrap(),
        };
        let text = format_fasta(std::slice::from_ref(&rec), width);
        let parsed = parse_fasta(&text, &Alphabet::Dna).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0], &rec);
    }

    #[test]
    fn frequencies_sum_to_one(codes in dna_codes(200)) {
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let sum: f64 = seq.code_frequencies().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let entropy = shannon_entropy(&seq);
        prop_assert!((0.0..=2.0 + 1e-12).contains(&entropy));
    }

    #[test]
    fn kmer_counts_total(codes in dna_codes(200), k in 1usize..6) {
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let counts = kmer_counts(&seq, k);
        let total: u64 = counts.values().sum();
        let expected = seq.len().saturating_sub(k - 1) as u64;
        prop_assert_eq!(total, expected);
    }

    #[test]
    fn dinucleotide_counts_match_pair_distance_one(codes in dna_codes(150)) {
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let table = dinucleotide_counts(&seq);
        for a in 0..4u8 {
            for b in 0..4u8 {
                prop_assert_eq!(
                    table[a as usize][b as usize],
                    pair_count_at_distance(&seq, a, b, 1)
                );
            }
        }
    }

    #[test]
    fn mutation_length_accounting(codes in dna_codes(300), seed: u64) {
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = MutationConfig { substitution: 0.05, insertion: 0.05, deletion: 0.05 };
        let (out, summary) = mutate(&mut rng, &seq, cfg);
        prop_assert_eq!(
            out.len() as i64,
            seq.len() as i64 + summary.insertions as i64 - summary.deletions as i64
        );
    }

    #[test]
    fn markov_rows_are_distributions(codes in dna_codes(400), order in 0usize..3) {
        prop_assume!(codes.len() > order);
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let model = MarkovModel::fit(&seq, order);
        // Check a few contexts sum to 1.
        let contexts: Vec<Vec<u8>> = match order {
            0 => vec![vec![]],
            1 => (0..4).map(|a| vec![a]).collect(),
            _ => (0..4).flat_map(|a| (0..4).map(move |b| vec![a, b])).collect(),
        };
        for ctx in contexts {
            let total: f64 = (0..4).map(|n| model.probability(&ctx, n)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn markov_sampling_stays_in_alphabet(seed: u64, len in 0usize..200) {
        let training = Sequence::dna(&"ACGT".repeat(30)).unwrap();
        let model = MarkovModel::fit(&training, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = model.sample(&mut rng, len);
        prop_assert_eq!(sample.len(), len);
        prop_assert!(sample.codes().iter().all(|&c| c < 4));
    }
}
