//! Genetic-code translation: DNA → protein, reading frames, ORF
//! scanning.
//!
//! The paper's second explanation for the 10–11 bp periodicity is
//! proteomic: "the alternation of hydrophobic and hydrophilic amino
//! acids in α-helices leads to a periodicity of about 3.5 amino acids
//! …, which corresponds to 10–11 bases in DNA sequences", and it
//! suggests "to actually look for some proteins with a corresponding
//! coding DNA sequence that exhibits the mined periodic patterns".
//! This module provides the DNA↔protein bridge for that workflow:
//! translate the mined region in all frames and mine the protein side
//! with a ~3.5-residue gap requirement.

use crate::alphabet::Alphabet;
use crate::sequence::Sequence;

/// A translated codon: an amino acid or a stop signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Codon {
    /// One of the 20 standard amino acids, as a one-letter code.
    AminoAcid(u8),
    /// A stop codon (TAA, TAG, TGA).
    Stop,
}

/// Translate one codon (three DNA codes, A=0 C=1 G=2 T=3) under the
/// standard genetic code.
pub fn translate_codon(codon: [u8; 3]) -> Codon {
    // The standard code, indexed by base-4 value of the codon with
    // the T=3 / U ordering of this crate (A=0, C=1, G=2, T=3).
    const TABLE: [u8; 64] = {
        let mut t = [0u8; 64];
        // Build from (first, second, third) triples. b'*' marks stop.
        // Rows follow the standard codon table.
        let entries: [(&[u8; 3], u8); 64] = [
            (b"AAA", b'K'),
            (b"AAC", b'N'),
            (b"AAG", b'K'),
            (b"AAT", b'N'),
            (b"ACA", b'T'),
            (b"ACC", b'T'),
            (b"ACG", b'T'),
            (b"ACT", b'T'),
            (b"AGA", b'R'),
            (b"AGC", b'S'),
            (b"AGG", b'R'),
            (b"AGT", b'S'),
            (b"ATA", b'I'),
            (b"ATC", b'I'),
            (b"ATG", b'M'),
            (b"ATT", b'I'),
            (b"CAA", b'Q'),
            (b"CAC", b'H'),
            (b"CAG", b'Q'),
            (b"CAT", b'H'),
            (b"CCA", b'P'),
            (b"CCC", b'P'),
            (b"CCG", b'P'),
            (b"CCT", b'P'),
            (b"CGA", b'R'),
            (b"CGC", b'R'),
            (b"CGG", b'R'),
            (b"CGT", b'R'),
            (b"CTA", b'L'),
            (b"CTC", b'L'),
            (b"CTG", b'L'),
            (b"CTT", b'L'),
            (b"GAA", b'E'),
            (b"GAC", b'D'),
            (b"GAG", b'E'),
            (b"GAT", b'D'),
            (b"GCA", b'A'),
            (b"GCC", b'A'),
            (b"GCG", b'A'),
            (b"GCT", b'A'),
            (b"GGA", b'G'),
            (b"GGC", b'G'),
            (b"GGG", b'G'),
            (b"GGT", b'G'),
            (b"GTA", b'V'),
            (b"GTC", b'V'),
            (b"GTG", b'V'),
            (b"GTT", b'V'),
            (b"TAA", b'*'),
            (b"TAC", b'Y'),
            (b"TAG", b'*'),
            (b"TAT", b'Y'),
            (b"TCA", b'S'),
            (b"TCC", b'S'),
            (b"TCG", b'S'),
            (b"TCT", b'S'),
            (b"TGA", b'*'),
            (b"TGC", b'C'),
            (b"TGG", b'W'),
            (b"TGT", b'C'),
            (b"TTA", b'L'),
            (b"TTC", b'F'),
            (b"TTG", b'L'),
            (b"TTT", b'F'),
        ];
        const fn code(ch: u8) -> usize {
            match ch {
                b'A' => 0,
                b'C' => 1,
                b'G' => 2,
                _ => 3, // T
            }
        }
        let mut i = 0;
        while i < 64 {
            let (text, aa) = entries[i];
            let idx = code(text[0]) * 16 + code(text[1]) * 4 + code(text[2]);
            t[idx] = aa;
            i += 1;
        }
        t
    };
    let idx = codon[0] as usize * 16 + codon[1] as usize * 4 + codon[2] as usize;
    match TABLE[idx] {
        b'*' => Codon::Stop,
        aa => Codon::AminoAcid(aa),
    }
}

/// Translate a DNA sequence in reading frame `frame` (0, 1 or 2).
/// Translation stops at the first stop codon when `stop_at_stop` is
/// set; otherwise stop codons are skipped (useful for composition
/// scans over non-coding DNA).
///
/// # Panics
/// Panics if the input is not DNA or `frame > 2`.
pub fn translate(seq: &Sequence, frame: usize, stop_at_stop: bool) -> Sequence {
    assert!(
        *seq.alphabet() == Alphabet::Dna,
        "translation needs DNA input"
    );
    assert!(frame <= 2, "reading frame must be 0, 1 or 2");
    let codes = seq.codes();
    let mut protein = Vec::with_capacity(codes.len() / 3);
    let mut i = frame;
    while i + 3 <= codes.len() {
        match translate_codon([codes[i], codes[i + 1], codes[i + 2]]) {
            Codon::AminoAcid(aa) => {
                let code = Alphabet::Protein
                    .code(aa)
                    .expect("standard code emits standard amino acids");
                protein.push(code);
            }
            Codon::Stop => {
                if stop_at_stop {
                    break;
                }
            }
        }
        i += 3;
    }
    Sequence::from_codes(Alphabet::Protein, protein).expect("codes validated per residue")
}

/// An open reading frame: ATG…stop, on the forward strand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Orf {
    /// 0-based start of the ATG.
    pub start: usize,
    /// 0-based position one past the stop codon.
    pub end: usize,
    /// Reading frame (0, 1, 2).
    pub frame: usize,
}

impl Orf {
    /// Length in codons, excluding the stop.
    pub fn codons(&self) -> usize {
        (self.end - self.start) / 3 - 1
    }
}

/// Find every forward-strand ORF of at least `min_codons` coding
/// codons (ATG through stop, stop required).
pub fn find_orfs(seq: &Sequence, min_codons: usize) -> Vec<Orf> {
    assert!(*seq.alphabet() == Alphabet::Dna, "ORF scan needs DNA input");
    let codes = seq.codes();
    let mut out = Vec::new();
    for frame in 0..3usize {
        let mut i = frame;
        while i + 3 <= codes.len() {
            // ATG = codes 0, 3, 2.
            if codes[i] == 0 && codes[i + 1] == 3 && codes[i + 2] == 2 {
                // Scan for an in-frame stop.
                let mut j = i + 3;
                let mut found = None;
                while j + 3 <= codes.len() {
                    if translate_codon([codes[j], codes[j + 1], codes[j + 2]]) == Codon::Stop {
                        found = Some(j + 3);
                        break;
                    }
                    j += 3;
                }
                if let Some(end) = found {
                    let orf = Orf {
                        start: i,
                        end,
                        frame,
                    };
                    if orf.codons() >= min_codons {
                        out.push(orf);
                    }
                    i = end;
                    continue;
                }
            }
            i += 3;
        }
    }
    out.sort_by_key(|o| (o.start, o.end));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(text: &str) -> Sequence {
        Sequence::dna(text).unwrap()
    }

    #[test]
    fn canonical_codons() {
        // ATG → M, TGG → W, TTT → F, and the three stops.
        assert_eq!(translate_codon([0, 3, 2]), Codon::AminoAcid(b'M'));
        assert_eq!(translate_codon([3, 2, 2]), Codon::AminoAcid(b'W'));
        assert_eq!(translate_codon([3, 3, 3]), Codon::AminoAcid(b'F'));
        for stop in ["TAA", "TAG", "TGA"] {
            let s = dna(stop);
            let c = [s.codes()[0], s.codes()[1], s.codes()[2]];
            assert_eq!(translate_codon(c), Codon::Stop, "{stop}");
        }
    }

    #[test]
    fn every_codon_translates_to_valid_residue_or_stop() {
        let mut aa_count = 0;
        let mut stop_count = 0;
        for a in 0..4u8 {
            for b in 0..4u8 {
                for c in 0..4u8 {
                    match translate_codon([a, b, c]) {
                        Codon::AminoAcid(aa) => {
                            assert!(
                                Alphabet::Protein.code(aa).is_some(),
                                "residue {}",
                                aa as char
                            );
                            aa_count += 1;
                        }
                        Codon::Stop => stop_count += 1,
                    }
                }
            }
        }
        assert_eq!(aa_count, 61);
        assert_eq!(stop_count, 3);
    }

    #[test]
    fn translates_a_known_gene_fragment() {
        // ATG AAA TGG GTT TAA → M K W V (stop).
        let s = dna("ATGAAATGGGTTTAA");
        let p = translate(&s, 0, true);
        assert_eq!(p.to_text(), "MKWV");
        // Without stopping, translation continues past the stop.
        let s = dna("ATGTAAATG");
        let p = translate(&s, 0, false);
        assert_eq!(p.to_text(), "MM");
    }

    #[test]
    fn reading_frames_shift() {
        // Frame 1 of XATGAAA reads ATG AAA.
        let s = dna("CATGAAATGA");
        assert_eq!(translate(&s, 1, true).to_text(), "MK");
        assert_eq!(translate(&s, 0, true).to_text(), "HEM");
        // Short tails are dropped.
        assert_eq!(translate(&dna("AC"), 0, true).len(), 0);
    }

    #[test]
    fn orf_scanning() {
        //           0123456789...
        let s = dna("CCATGAAATGGTAACC"); // ATG AAA TGG TAA at offset 2, frame 2
        let orfs = find_orfs(&s, 1);
        assert_eq!(orfs.len(), 1);
        let orf = &orfs[0];
        assert_eq!(orf.start, 2);
        assert_eq!(orf.end, 14);
        assert_eq!(orf.frame, 2);
        assert_eq!(orf.codons(), 3);
        // min_codons filters.
        assert!(find_orfs(&s, 4).is_empty());
        // No stop → no ORF.
        assert!(find_orfs(&dna("ATGAAAAAA"), 1).is_empty());
    }

    #[test]
    fn orfs_in_multiple_frames() {
        // Two ORFs in different frames.
        let s = dna("ATGTGGTAGCATGAAATAAC");
        let orfs = find_orfs(&s, 1);
        assert!(orfs.len() >= 2, "found {orfs:?}");
        assert!(orfs.iter().any(|o| o.frame == 0));
        assert!(orfs.iter().any(|o| o.frame != 0));
    }
}
