//! Synthetic sequence generators.
//!
//! The paper's experiments run on NCBI downloads (the human fragment
//! AX829174 and several whole genomes) that are unavailable offline.
//! These generators produce deterministic (seeded) substitutes that
//! preserve the statistical properties the experiments exercise:
//! base composition, short-range Markov structure, and planted periodic
//! motifs at helical-turn periods (the signal the miner looks for).
//!
//! All generators take `&mut impl Rng` so callers control determinism.

pub mod iid;
pub mod markov;
pub mod mutate;
pub mod periodic;
pub mod tandem;

pub use iid::{uniform, weighted};
pub use markov::MarkovModel;
pub use mutate::{mutate, MutationConfig};
pub use periodic::{plant_periodic, PeriodicMotif};
pub use tandem::tandem_repeat;
