//! Order-k Markov chain models over an alphabet: fitting from a
//! sequence and sampling new sequences.
//!
//! Real genomes are far from i.i.d. — dinucleotide statistics matter for
//! which short patterns are frequent. An order-2 model fitted to (or
//! hand-specified to resemble) genomic statistics is the background for
//! the synthetic AX829174 substitute.

use crate::alphabet::Alphabet;
use crate::sequence::Sequence;
use rand::Rng;

/// An order-`k` Markov model: `P(next | last k characters)`.
#[derive(Clone, Debug)]
pub struct MarkovModel {
    alphabet: Alphabet,
    order: usize,
    /// Row-major transition table: `sigma^order` rows of `sigma`
    /// cumulative probabilities each.
    cumulative: Vec<f64>,
}

impl MarkovModel {
    /// Fit an order-`k` model from a training sequence with add-one
    /// (Laplace) smoothing so every transition stays possible.
    ///
    /// # Panics
    /// Panics if `order == 0` is fine (gives an i.i.d. model) but the
    /// training sequence must be longer than `order`.
    pub fn fit(training: &Sequence, order: usize) -> MarkovModel {
        assert!(
            training.len() > order,
            "training sequence (len {}) must be longer than the order ({order})",
            training.len()
        );
        let sigma = training.alphabet().size();
        let contexts = sigma.pow(order as u32);
        let mut counts = vec![1.0f64; contexts * sigma]; // Laplace prior

        let codes = training.codes();
        for window in codes.windows(order + 1) {
            let ctx = context_index(&window[..order], sigma);
            counts[ctx * sigma + window[order] as usize] += 1.0;
        }

        Self::from_rows(training.alphabet().clone(), order, counts)
    }

    /// Build from explicit transition weights: `rows` holds
    /// `sigma^order · sigma` non-negative weights, row-major by context.
    ///
    /// # Panics
    /// Panics on a wrong-sized table or a row with no positive weight.
    pub fn from_rows(alphabet: Alphabet, order: usize, rows: Vec<f64>) -> MarkovModel {
        let sigma = alphabet.size();
        let contexts = sigma.pow(order as u32);
        assert_eq!(
            rows.len(),
            contexts * sigma,
            "transition table must have sigma^order × sigma entries"
        );
        let mut cumulative = rows;
        for ctx in 0..contexts {
            let row = &mut cumulative[ctx * sigma..(ctx + 1) * sigma];
            let total: f64 = row.iter().sum();
            assert!(
                total > 0.0 && total.is_finite(),
                "context {ctx} has no positive transition weight"
            );
            let mut acc = 0.0;
            for w in row.iter_mut() {
                acc += *w / total;
                *w = acc;
            }
            row[sigma - 1] = 1.0;
        }
        MarkovModel {
            alphabet,
            order,
            cumulative,
        }
    }

    /// The model's alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The model order `k`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Transition probability `P(next | context)`; `context` must have
    /// exactly `order` codes.
    pub fn probability(&self, context: &[u8], next: u8) -> f64 {
        assert_eq!(
            context.len(),
            self.order,
            "context must have order-many codes"
        );
        let sigma = self.alphabet.size();
        let row = context_index(context, sigma) * sigma;
        let hi = self.cumulative[row + next as usize];
        let lo = if next == 0 {
            0.0
        } else {
            self.cumulative[row + next as usize - 1]
        };
        hi - lo
    }

    /// Sample a sequence of `len` characters. The initial `order`-long
    /// context is drawn uniformly.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, len: usize) -> Sequence {
        let sigma = self.alphabet.size() as u8;
        let mut codes: Vec<u8> = Vec::with_capacity(len);
        for _ in 0..self.order.min(len) {
            codes.push(rng.gen_range(0..sigma));
        }
        while codes.len() < len {
            let ctx = &codes[codes.len() - self.order..];
            let row = context_index(ctx, sigma as usize) * sigma as usize;
            let u: f64 = rng.gen();
            let next = self.cumulative[row..row + sigma as usize]
                .iter()
                .position(|&c| u < c)
                .unwrap_or(sigma as usize - 1) as u8;
            codes.push(next);
        }
        Sequence::from_codes(self.alphabet.clone(), codes).expect("codes are in range")
    }
}

/// Mixed-radix index of a context (most significant first).
fn context_index(context: &[u8], sigma: usize) -> usize {
    context
        .iter()
        .fold(0usize, |acc, &c| acc * sigma + c as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn context_index_is_mixed_radix() {
        assert_eq!(context_index(&[0, 0], 4), 0);
        assert_eq!(context_index(&[0, 1], 4), 1);
        assert_eq!(context_index(&[1, 0], 4), 4);
        assert_eq!(context_index(&[3, 3], 4), 15);
        assert_eq!(context_index(&[], 4), 0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let training = crate::gen::iid::uniform(&mut rng, Alphabet::Dna, 2_000);
        let model = MarkovModel::fit(&training, 2);
        for a in 0..4u8 {
            for b in 0..4u8 {
                let total: f64 = (0..4u8).map(|n| model.probability(&[a, b], n)).sum();
                assert!(
                    (total - 1.0).abs() < 1e-12,
                    "context [{a},{b}] sums to {total}"
                );
            }
        }
    }

    #[test]
    fn fit_recovers_strong_bias() {
        // Training data where C always follows A.
        let text = "AC".repeat(500);
        let training = Sequence::dna(&text).unwrap();
        let model = MarkovModel::fit(&training, 1);
        assert!(model.probability(&[0], 1) > 0.95, "P(C|A) should dominate");
        assert!(model.probability(&[1], 0) > 0.95, "P(A|C) should dominate");
    }

    #[test]
    fn sample_reflects_model() {
        let text = "AC".repeat(1000);
        let training = Sequence::dna(&text).unwrap();
        let model = MarkovModel::fit(&training, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let s = model.sample(&mut rng, 5_000);
        assert_eq!(s.len(), 5_000);
        let f = s.code_frequencies();
        // Should be nearly all A and C.
        assert!(f[0] + f[1] > 0.95, "got frequencies {f:?}");
    }

    #[test]
    fn order_zero_is_iid() {
        let training = Sequence::dna(&"AAAT".repeat(250)).unwrap();
        let model = MarkovModel::fit(&training, 0);
        // P(A) ≈ 3/4 with smoothing.
        let p_a = model.probability(&[], 0);
        assert!((p_a - 0.75).abs() < 0.05, "P(A) = {p_a}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let training = Sequence::dna(&"ACGT".repeat(100)).unwrap();
        let model = MarkovModel::fit(&training, 1);
        let a = model.sample(&mut StdRng::seed_from_u64(9), 200);
        let b = model.sample(&mut StdRng::seed_from_u64(9), 200);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "longer than the order")]
    fn fit_requires_enough_data() {
        let training = Sequence::dna("AC").unwrap();
        let _ = MarkovModel::fit(&training, 2);
    }

    #[test]
    fn from_rows_validates_shape() {
        let rows = vec![1.0; 4 * 4];
        let m = MarkovModel::from_rows(Alphabet::Dna, 1, rows);
        assert_eq!(m.order(), 1);
        assert!((m.probability(&[2], 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sigma^order")]
    fn from_rows_wrong_size_panics() {
        let _ = MarkovModel::from_rows(Alphabet::Dna, 1, vec![1.0; 8]);
    }
}
