//! Tandem-repeat generation.
//!
//! Tandem repeats (`s_i s_(i+1) … = s_(i+p) s_(i+p+1) …`) are the first
//! class of periodic structure the paper surveys; the case study finds
//! self-repeating mined patterns such as `ATATATATATA` and `GTAGTAGTAGT`
//! in C. elegans. This generator produces repeat arrays for planting and
//! for exercising the miner on repeat-dense inputs.

use crate::sequence::Sequence;
use rand::Rng;

/// Concatenate `copies` copies of `unit`, truncated to `total_len` if
/// given (`None` keeps every full copy).
///
/// # Panics
/// Panics if `unit` is empty or `copies` is zero.
pub fn tandem_repeat(unit: &Sequence, copies: usize, total_len: Option<usize>) -> Sequence {
    assert!(!unit.is_empty(), "repeat unit must be non-empty");
    assert!(copies > 0, "need at least one copy");
    let full_len = unit.len() * copies;
    let target = total_len.unwrap_or(full_len).min(full_len);
    let mut codes = Vec::with_capacity(target);
    'outer: for _ in 0..copies {
        for &c in unit.codes() {
            if codes.len() == target {
                break 'outer;
            }
            codes.push(c);
        }
    }
    Sequence::from_codes(unit.alphabet().clone(), codes).expect("unit codes are valid")
}

/// Write a tandem array of `unit` into `background` starting at `start`
/// (0-based), with each copied character independently substituted by a
/// random other character with probability `error_rate` — modelling the
/// imperfect repeats ("a phase shift is found in one of the repeats")
/// the paper describes.
///
/// Returns the number of substituted characters.
///
/// # Panics
/// Panics if the array does not fit, alphabets differ, or
/// `error_rate ∉ [0, 1]`.
pub fn plant_tandem<R: Rng + ?Sized>(
    rng: &mut R,
    background: &mut Sequence,
    unit: &Sequence,
    copies: usize,
    start: usize,
    error_rate: f64,
) -> usize {
    assert!(
        background.alphabet() == unit.alphabet(),
        "unit and background must share an alphabet"
    );
    assert!(
        (0.0..=1.0).contains(&error_rate),
        "error_rate must be in [0,1]"
    );
    let array = tandem_repeat(unit, copies, None);
    assert!(
        start + array.len() <= background.len(),
        "tandem array of {} chars at {start} exceeds background length {}",
        array.len(),
        background.len()
    );
    let sigma = background.alphabet().size() as u8;
    let mut codes = background.codes().to_vec();
    let mut errors = 0;
    for (i, &c) in array.codes().iter().enumerate() {
        let written = if rng.gen::<f64>() < error_rate {
            errors += 1;
            // Substitute with a uniformly random *different* character.
            let mut alt = rng.gen_range(0..sigma.saturating_sub(1).max(1));
            if alt >= c {
                alt = (alt + 1) % sigma;
            }
            alt
        } else {
            c
        };
        codes[start + i] = written;
    }
    *background =
        Sequence::from_codes(background.alphabet().clone(), codes).expect("codes stay valid");
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::gen::iid::uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn repeats_unit() {
        let unit = Sequence::dna("GTA").unwrap();
        let arr = tandem_repeat(&unit, 4, None);
        assert_eq!(arr.to_text(), "GTAGTAGTAGTA");
    }

    #[test]
    fn truncates_to_total_len() {
        let unit = Sequence::dna("AT").unwrap();
        let arr = tandem_repeat(&unit, 10, Some(5));
        assert_eq!(arr.to_text(), "ATATA");
        // Requesting more than available keeps every full copy.
        let arr = tandem_repeat(&unit, 2, Some(100));
        assert_eq!(arr.to_text(), "ATAT");
    }

    #[test]
    fn plant_exact_when_error_free() {
        let mut bg = uniform(&mut StdRng::seed_from_u64(1), Alphabet::Dna, 100);
        let unit = Sequence::dna("ACG").unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let errors = plant_tandem(&mut rng, &mut bg, &unit, 5, 10, 0.0);
        assert_eq!(errors, 0);
        assert_eq!(bg.slice(10..25).to_text(), "ACGACGACGACGACG");
    }

    #[test]
    fn plant_with_errors_substitutes_some() {
        let mut bg = uniform(&mut StdRng::seed_from_u64(3), Alphabet::Dna, 400);
        let unit = Sequence::dna("ACGT").unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let errors = plant_tandem(&mut rng, &mut bg, &unit, 50, 0, 0.25);
        assert!(
            errors > 20 && errors < 80,
            "errors = {errors}, expected ≈ 50"
        );
        // Every substituted position holds a *different* character, so the
        // mismatch count against the clean array equals the error count.
        let clean = tandem_repeat(&unit, 50, None);
        let mismatches = bg
            .codes()
            .iter()
            .take(200)
            .zip(clean.codes())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(mismatches, errors);
    }

    #[test]
    #[should_panic(expected = "exceeds background")]
    fn plant_out_of_bounds_panics() {
        let mut bg = uniform(&mut StdRng::seed_from_u64(5), Alphabet::Dna, 10);
        let unit = Sequence::dna("ACGT").unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let _ = plant_tandem(&mut rng, &mut bg, &unit, 3, 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_unit_panics() {
        let unit = Sequence::dna("").unwrap();
        let _ = tandem_repeat(&unit, 3, None);
    }
}
