//! Point-mutation and indel noise.
//!
//! The paper motivates flexible gaps as a way to "tolerate some
//! variations in the sequences, such as the insertion or deletion of a
//! nucleotide within a period". This module applies exactly those
//! variations to synthetic inputs so tests and benchmarks can verify
//! that gap flexibility absorbs them.

use crate::sequence::Sequence;
use rand::Rng;

/// Per-character mutation probabilities. The three events are mutually
/// exclusive per position and checked in the order substitution →
/// insertion → deletion.
#[derive(Clone, Copy, Debug)]
pub struct MutationConfig {
    /// Probability a character is replaced by a random different one.
    pub substitution: f64,
    /// Probability a random character is inserted before this one.
    pub insertion: f64,
    /// Probability this character is deleted.
    pub deletion: f64,
}

impl MutationConfig {
    /// Substitution-only noise.
    pub fn substitutions(rate: f64) -> Self {
        MutationConfig {
            substitution: rate,
            insertion: 0.0,
            deletion: 0.0,
        }
    }

    /// Indel-only noise (equal insertion and deletion rates).
    pub fn indels(rate: f64) -> Self {
        MutationConfig {
            substitution: 0.0,
            insertion: rate,
            deletion: rate,
        }
    }

    fn validate(&self) {
        for (name, p) in [
            ("substitution", self.substitution),
            ("insertion", self.insertion),
            ("deletion", self.deletion),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} rate must be in [0,1], got {p}"
            );
        }
        assert!(
            self.substitution + self.insertion + self.deletion <= 1.0,
            "combined mutation probability exceeds 1"
        );
    }
}

/// Counts of applied mutation events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MutationSummary {
    /// Characters substituted.
    pub substitutions: usize,
    /// Characters inserted.
    pub insertions: usize,
    /// Characters deleted.
    pub deletions: usize,
}

/// Apply mutation noise to a sequence, returning the mutated copy and a
/// summary of applied events.
pub fn mutate<R: Rng + ?Sized>(
    rng: &mut R,
    input: &Sequence,
    config: MutationConfig,
) -> (Sequence, MutationSummary) {
    config.validate();
    let sigma = input.alphabet().size() as u8;
    let mut out = Vec::with_capacity(input.len() + input.len() / 16);
    let mut summary = MutationSummary::default();

    for &c in input.codes() {
        let u: f64 = rng.gen();
        if u < config.substitution {
            summary.substitutions += 1;
            let mut alt = rng.gen_range(0..sigma.saturating_sub(1).max(1));
            if alt >= c {
                alt = (alt + 1) % sigma;
            }
            out.push(alt);
        } else if u < config.substitution + config.insertion {
            summary.insertions += 1;
            out.push(rng.gen_range(0..sigma));
            out.push(c);
        } else if u < config.substitution + config.insertion + config.deletion {
            summary.deletions += 1;
        } else {
            out.push(c);
        }
    }
    let seq = Sequence::from_codes(input.alphabet().clone(), out).expect("codes stay valid");
    (seq, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::gen::iid::uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn input(len: usize) -> Sequence {
        uniform(&mut StdRng::seed_from_u64(11), Alphabet::Dna, len)
    }

    #[test]
    fn zero_rates_are_identity() {
        let s = input(500);
        let mut rng = StdRng::seed_from_u64(1);
        let (out, summary) = mutate(&mut rng, &s, MutationConfig::substitutions(0.0));
        assert_eq!(out, s);
        assert_eq!(summary, MutationSummary::default());
    }

    #[test]
    fn substitutions_change_characters_not_length() {
        let s = input(2_000);
        let mut rng = StdRng::seed_from_u64(2);
        let (out, summary) = mutate(&mut rng, &s, MutationConfig::substitutions(0.1));
        assert_eq!(out.len(), s.len());
        let diffs = s
            .codes()
            .iter()
            .zip(out.codes())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, summary.substitutions);
        assert!(summary.substitutions > 100 && summary.substitutions < 300);
    }

    #[test]
    fn insertions_grow_and_deletions_shrink() {
        let s = input(2_000);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = MutationConfig {
            substitution: 0.0,
            insertion: 0.05,
            deletion: 0.0,
        };
        let (out, summary) = mutate(&mut rng, &s, cfg);
        assert_eq!(out.len(), s.len() + summary.insertions);

        let cfg = MutationConfig {
            substitution: 0.0,
            insertion: 0.0,
            deletion: 0.05,
        };
        let (out, summary) = mutate(&mut rng, &s, cfg);
        assert_eq!(out.len(), s.len() - summary.deletions);
    }

    #[test]
    fn combined_rates_balance() {
        let s = input(5_000);
        let mut rng = StdRng::seed_from_u64(4);
        let (out, summary) = mutate(&mut rng, &s, MutationConfig::indels(0.02));
        assert_eq!(
            out.len() as i64,
            s.len() as i64 + summary.insertions as i64 - summary.deletions as i64
        );
    }

    #[test]
    #[should_panic(expected = "exceeds 1")]
    fn over_unit_total_panics() {
        let s = input(10);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = MutationConfig {
            substitution: 0.5,
            insertion: 0.4,
            deletion: 0.2,
        };
        let _ = mutate(&mut rng, &s, cfg);
    }
}
