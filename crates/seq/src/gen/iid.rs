//! Independent, identically distributed character generators.

use crate::alphabet::Alphabet;
use crate::sequence::Sequence;
use rand::Rng;

/// A sequence of `len` characters drawn uniformly from the alphabet.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, alphabet: Alphabet, len: usize) -> Sequence {
    let size = alphabet.size() as u8;
    let codes = (0..len).map(|_| rng.gen_range(0..size)).collect();
    Sequence::from_codes(alphabet, codes).expect("generated codes are in range")
}

/// A sequence of `len` characters drawn independently with the given
/// per-code weights (need not be normalized).
///
/// # Panics
/// Panics if `weights.len() != alphabet.size()`, if any weight is
/// negative or non-finite, or if all weights are zero.
pub fn weighted<R: Rng + ?Sized>(
    rng: &mut R,
    alphabet: Alphabet,
    len: usize,
    weights: &[f64],
) -> Sequence {
    assert_eq!(
        weights.len(),
        alphabet.size(),
        "need one weight per alphabet character"
    );
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "at least one weight must be positive");

    // Cumulative distribution for inverse-transform sampling.
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w / total;
        cumulative.push(acc);
    }
    *cumulative.last_mut().expect("non-empty alphabet") = 1.0;

    let codes = (0..len)
        .map(|_| {
            let u: f64 = rng.gen();
            cumulative
                .iter()
                .position(|&c| u < c)
                .unwrap_or(weights.len() - 1) as u8
        })
        .collect();
    Sequence::from_codes(alphabet, codes).expect("generated codes are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_has_right_length_and_alphabet() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = uniform(&mut rng, Alphabet::Dna, 1000);
        assert_eq!(s.len(), 1000);
        assert!(s.codes().iter().all(|&c| c < 4));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = uniform(&mut StdRng::seed_from_u64(7), Alphabet::Dna, 100);
        let b = uniform(&mut StdRng::seed_from_u64(7), Alphabet::Dna, 100);
        assert_eq!(a, b);
        let c = uniform(&mut StdRng::seed_from_u64(8), Alphabet::Dna, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_composition_is_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = uniform(&mut rng, Alphabet::Dna, 40_000);
        for f in s.code_frequencies() {
            assert!((f - 0.25).abs() < 0.02, "frequency {f} far from 0.25");
        }
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        // Heavily AT-biased, like the bacterial genomes in the case study.
        let s = weighted(&mut rng, Alphabet::Dna, 40_000, &[0.4, 0.1, 0.1, 0.4]);
        let f = s.code_frequencies();
        assert!((f[0] - 0.4).abs() < 0.02);
        assert!((f[1] - 0.1).abs() < 0.02);
        assert!((f[3] - 0.4).abs() < 0.02);
    }

    #[test]
    fn weighted_zero_weight_never_drawn() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = weighted(&mut rng, Alphabet::Dna, 5_000, &[1.0, 0.0, 0.0, 1.0]);
        let counts = s.code_counts();
        assert_eq!(counts[1], 0);
        assert_eq!(counts[2], 0);
    }

    #[test]
    #[should_panic(expected = "one weight per alphabet")]
    fn weighted_wrong_arity_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = weighted(&mut rng, Alphabet::Dna, 10, &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_all_zero_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = weighted(&mut rng, Alphabet::Dna, 10, &[0.0; 4]);
    }
}
