//! Planting periodic motifs into a background sequence.
//!
//! A planted motif writes its characters into the sequence separated by
//! gaps drawn from a range — exactly the structure the miner searches
//! for (`a1 g(N,M) a2 g(N,M) …`). Planting at the DNA helical-turn
//! period (gap 9–11) recreates the A/T periodicity signal of the paper's
//! case study.

use crate::sequence::Sequence;
use rand::Rng;

/// Description of a periodic motif to plant.
#[derive(Clone, Debug)]
pub struct PeriodicMotif {
    /// Alphabet codes of the motif characters (the pattern's `a1 … al`).
    pub motif: Vec<u8>,
    /// Minimum gap (wild-card count) between consecutive motif characters.
    pub gap_min: usize,
    /// Maximum gap between consecutive motif characters.
    pub gap_max: usize,
    /// How many occurrences to plant.
    pub occurrences: usize,
}

impl PeriodicMotif {
    /// The largest span one occurrence can cover:
    /// `len + (len − 1) · gap_max` characters.
    pub fn max_span(&self) -> usize {
        if self.motif.is_empty() {
            0
        } else {
            self.motif.len() + (self.motif.len() - 1) * self.gap_max
        }
    }
}

/// Overwrite positions of `background` with occurrences of `motif`,
/// each starting at a random position and using independently drawn
/// gaps in `[gap_min, gap_max]`. Returns the start positions used
/// (0-based), sorted ascending.
///
/// Occurrences may overlap each other — just like genuine genomic
/// repeats — but each occurrence is written left to right so later
/// plantings win collisions.
///
/// # Panics
/// Panics if the motif is empty, uses codes outside the background's
/// alphabet, `gap_min > gap_max`, or the motif cannot fit in the
/// background even once.
pub fn plant_periodic<R: Rng + ?Sized>(
    rng: &mut R,
    background: &mut Sequence,
    spec: &PeriodicMotif,
) -> Vec<usize> {
    assert!(!spec.motif.is_empty(), "motif must be non-empty");
    assert!(spec.gap_min <= spec.gap_max, "gap_min must be ≤ gap_max");
    let sigma = background.alphabet().size() as u8;
    assert!(
        spec.motif.iter().all(|&c| c < sigma),
        "motif codes must fit the background alphabet"
    );
    let max_span = spec.max_span();
    assert!(
        max_span <= background.len(),
        "motif span {max_span} exceeds background length {}",
        background.len()
    );

    let mut codes = background.codes().to_vec();
    let mut starts = Vec::with_capacity(spec.occurrences);
    let latest_start = background.len() - max_span;
    for _ in 0..spec.occurrences {
        let start = rng.gen_range(0..=latest_start);
        starts.push(start);
        let mut pos = start;
        for (i, &ch) in spec.motif.iter().enumerate() {
            codes[pos] = ch;
            if i + 1 < spec.motif.len() {
                pos += 1 + rng.gen_range(spec.gap_min..=spec.gap_max);
            }
        }
    }
    *background =
        Sequence::from_codes(background.alphabet().clone(), codes).expect("codes stay valid");
    starts.sort_unstable();
    starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::gen::iid::uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn background(len: usize, seed: u64) -> Sequence {
        uniform(&mut StdRng::seed_from_u64(seed), Alphabet::Dna, len)
    }

    #[test]
    fn plants_requested_occurrences() {
        let mut s = background(1000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let spec = PeriodicMotif {
            motif: vec![0, 3, 0], // A.T.A with gaps
            gap_min: 9,
            gap_max: 11,
            occurrences: 5,
        };
        let starts = plant_periodic(&mut rng, &mut s, &spec);
        assert_eq!(starts.len(), 5);
        assert!(starts.windows(2).all(|w| w[0] <= w[1]), "starts are sorted");
    }

    #[test]
    fn planted_motif_is_present_with_valid_gaps() {
        let mut s = background(500, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let spec = PeriodicMotif {
            motif: vec![2, 2, 2, 2], // GGGG
            gap_min: 5,
            gap_max: 7,
            occurrences: 1,
        };
        let starts = plant_periodic(&mut rng, &mut s, &spec);
        let start = starts[0];
        // The first character must be in place; subsequent ones must be
        // reachable within the gap range.
        assert_eq!(s.codes()[start], 2);
        let mut found = false;
        // Check that G appears at some position start + 6..=8 etc. — walk
        // greedily over every admissible chain.
        fn chain(s: &[u8], pos: usize, remaining: usize, lo: usize, hi: usize) -> bool {
            if remaining == 0 {
                return true;
            }
            (lo..=hi).any(|g| {
                let next = pos + 1 + g;
                next < s.len() && s[next] == 2 && chain(s, next, remaining - 1, lo, hi)
            })
        }
        if chain(s.codes(), start, 3, 5, 7) {
            found = true;
        }
        assert!(found, "planted GGGG chain must be recoverable");
    }

    #[test]
    fn max_span_formula() {
        let spec = PeriodicMotif {
            motif: vec![0; 3],
            gap_min: 3,
            gap_max: 4,
            occurrences: 0,
        };
        // 3 characters + 2 gaps of at most 4 = 11; matches the paper's
        // maxspan(l) = (l−1)M + l with l = 3, M = 4.
        assert_eq!(spec.max_span(), 11);
    }

    #[test]
    #[should_panic(expected = "span")]
    fn motif_too_long_panics() {
        let mut s = background(10, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let spec = PeriodicMotif {
            motif: vec![0; 5],
            gap_min: 9,
            gap_max: 12,
            occurrences: 1,
        };
        let _ = plant_periodic(&mut rng, &mut s, &spec);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_motif_panics() {
        let mut s = background(100, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let spec = PeriodicMotif {
            motif: vec![],
            gap_min: 1,
            gap_max: 2,
            occurrences: 1,
        };
        let _ = plant_periodic(&mut rng, &mut s, &spec);
    }

    #[test]
    fn zero_occurrences_leaves_background_unchanged() {
        let mut s = background(200, 9);
        let orig = s.clone();
        let mut rng = StdRng::seed_from_u64(10);
        let spec = PeriodicMotif {
            motif: vec![0, 1],
            gap_min: 2,
            gap_max: 3,
            occurrences: 0,
        };
        let starts = plant_periodic(&mut rng, &mut s, &spec);
        assert!(starts.is_empty());
        assert_eq!(s, orig);
    }
}
