//! Minimal FASTA reader/writer.
//!
//! Supports multi-record files, `>` headers with free-text descriptions,
//! `;` comment lines (the older FASTA dialect) and wrapped sequence
//! lines. This is the on-disk format the examples and the benchmark
//! harness use to exchange subject sequences.

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use crate::sequence::Sequence;
use std::io::{BufRead, Write};

/// One FASTA record: identifier, optional description, and the sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct FastaRecord {
    /// The token following `>` up to the first whitespace.
    pub id: String,
    /// The remainder of the header line, if any.
    pub description: Option<String>,
    /// The decoded sequence.
    pub sequence: Sequence,
}

/// Parse every record from a FASTA reader.
///
/// Characters in sequence lines must belong to `alphabet` (whitespace is
/// ignored). Empty records and a missing leading header are errors.
pub fn read_fasta<R: BufRead>(
    reader: R,
    alphabet: &Alphabet,
) -> Result<Vec<FastaRecord>, SeqError> {
    let mut records = Vec::new();
    let mut header: Option<(String, Option<String>)> = None;
    let mut body = String::new();

    let flush = |header: &mut Option<(String, Option<String>)>,
                 body: &mut String,
                 records: &mut Vec<FastaRecord>|
     -> Result<(), SeqError> {
        if let Some((id, description)) = header.take() {
            if body.trim().is_empty() {
                return Err(SeqError::FastaEmptyRecord { id });
            }
            let sequence = Sequence::from_str_checked(alphabet.clone(), body)?;
            records.push(FastaRecord {
                id,
                description,
                sequence,
            });
            body.clear();
        }
        Ok(())
    };

    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('>') {
            flush(&mut header, &mut body, &mut records)?;
            let mut parts = rest.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            let description = parts
                .next()
                .map(str::trim)
                .filter(|d| !d.is_empty())
                .map(String::from);
            header = Some((id, description));
        } else {
            if header.is_none() {
                return Err(SeqError::FastaMissingHeader);
            }
            body.push_str(trimmed);
        }
    }
    flush(&mut header, &mut body, &mut records)?;
    Ok(records)
}

/// Parse FASTA from an in-memory string.
pub fn parse_fasta(text: &str, alphabet: &Alphabet) -> Result<Vec<FastaRecord>, SeqError> {
    read_fasta(text.as_bytes(), alphabet)
}

/// Write records in FASTA format with lines wrapped at `width` characters.
///
/// # Panics
/// Panics if `width` is 0.
pub fn write_fasta<W: Write>(
    writer: &mut W,
    records: &[FastaRecord],
    width: usize,
) -> Result<(), SeqError> {
    assert!(width > 0, "FASTA line width must be positive");
    for rec in records {
        match &rec.description {
            Some(d) => writeln!(writer, ">{} {}", rec.id, d)?,
            None => writeln!(writer, ">{}", rec.id)?,
        }
        let text = rec.sequence.to_text();
        for chunk in text.as_bytes().chunks(width) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Render records to a FASTA string.
pub fn format_fasta(records: &[FastaRecord], width: usize) -> String {
    let mut buf = Vec::new();
    write_fasta(&mut buf, records, width).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("FASTA output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_record() {
        let recs = parse_fasta(">chr1 test fragment\nACGT\nACGT\n", &Alphabet::Dna).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, "chr1");
        assert_eq!(recs[0].description.as_deref(), Some("test fragment"));
        assert_eq!(recs[0].sequence.to_text(), "ACGTACGT");
    }

    #[test]
    fn parses_multiple_records_and_comments() {
        let text = "; a legacy comment\n>a\nAC\nGT\n\n>b no-desc-is-none\nTTTT\n";
        let recs = parse_fasta(text, &Alphabet::Dna).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].sequence.to_text(), "ACGT");
        assert_eq!(recs[1].id, "b");
        assert_eq!(recs[1].description.as_deref(), Some("no-desc-is-none"));
        assert_eq!(recs[1].sequence.to_text(), "TTTT");
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(matches!(
            parse_fasta("ACGT\n", &Alphabet::Dna),
            Err(SeqError::FastaMissingHeader)
        ));
    }

    #[test]
    fn empty_record_is_an_error() {
        assert!(matches!(
            parse_fasta(">empty\n>b\nACGT\n", &Alphabet::Dna),
            Err(SeqError::FastaEmptyRecord { .. })
        ));
        assert!(matches!(
            parse_fasta(">only-header\n", &Alphabet::Dna),
            Err(SeqError::FastaEmptyRecord { .. })
        ));
    }

    #[test]
    fn invalid_characters_propagate() {
        assert!(matches!(
            parse_fasta(">x\nACGN\n", &Alphabet::Dna),
            Err(SeqError::UnknownLetter { letter: 'N', .. })
        ));
    }

    #[test]
    fn roundtrip_with_wrapping() {
        let recs = vec![FastaRecord {
            id: "frag".into(),
            description: Some("roundtrip".into()),
            sequence: Sequence::dna(&"ACGT".repeat(20)).unwrap(),
        }];
        let text = format_fasta(&recs, 10);
        // 80 bases wrapped at 10 → 8 body lines.
        assert_eq!(text.lines().count(), 9);
        let back = parse_fasta(&text, &Alphabet::Dna).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn protein_fasta() {
        let recs = parse_fasta(">p\nMKWVT\nFISLL\n", &Alphabet::Protein).unwrap();
        assert_eq!(recs[0].sequence.to_text(), "MKWVTFISLL");
    }
}
