//! Code-mapped subject sequences.
//!
//! A [`Sequence`] stores the alphabet codes of its characters (one byte
//! per character), which is what the mining algorithms consume. The
//! paper indexes sequences 1-based (`S[1]` is the first character);
//! [`Sequence::at1`] mirrors that convention while the storage itself is
//! the usual 0-based slice.

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use std::fmt;

/// A subject sequence over a finite alphabet, stored as dense codes.
#[derive(Clone, PartialEq, Eq)]
pub struct Sequence {
    alphabet: Alphabet,
    codes: Vec<u8>,
}

impl Sequence {
    /// Encode a text into a sequence. ASCII whitespace is skipped (FASTA
    /// bodies are line wrapped); any other character must belong to the
    /// alphabet.
    pub fn from_text(alphabet: Alphabet, text: &[u8]) -> Result<Sequence, SeqError> {
        let mut codes = Vec::with_capacity(text.len());
        for (pos, &ch) in text.iter().enumerate() {
            if ch.is_ascii_whitespace() {
                continue;
            }
            codes.push(alphabet.encode_char(ch, pos)?);
        }
        Ok(Sequence { alphabet, codes })
    }

    /// Convenience constructor from a `&str`.
    pub fn from_str_checked(alphabet: Alphabet, text: &str) -> Result<Sequence, SeqError> {
        Self::from_text(alphabet, text.as_bytes())
    }

    /// Build directly from codes, validating them against the alphabet.
    pub fn from_codes(alphabet: Alphabet, codes: Vec<u8>) -> Result<Sequence, SeqError> {
        let size = alphabet.size() as u8;
        for (pos, &c) in codes.iter().enumerate() {
            if c >= size {
                return Err(SeqError::UnknownLetter {
                    letter: char::from(c),
                    pos,
                });
            }
        }
        Ok(Sequence { alphabet, codes })
    }

    /// A DNA sequence from text — the common case in this workspace.
    pub fn dna(text: &str) -> Result<Sequence, SeqError> {
        Self::from_str_checked(Alphabet::Dna, text)
    }

    /// A protein sequence from text.
    pub fn protein(text: &str) -> Result<Sequence, SeqError> {
        Self::from_str_checked(Alphabet::Protein, text)
    }

    /// The alphabet this sequence is defined over.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of characters (the paper's `L`).
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True iff the sequence has no characters.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The raw code slice (0-based).
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// 1-based character access matching the paper's `S[i]` notation.
    ///
    /// # Panics
    /// Panics if `i` is 0 or exceeds the length.
    pub fn at1(&self, i: usize) -> u8 {
        assert!(
            i >= 1 && i <= self.codes.len(),
            "S[{i}] out of range 1..={}",
            self.codes.len()
        );
        self.codes[i - 1]
    }

    /// The character (letter) at 1-based position `i`.
    pub fn letter_at1(&self, i: usize) -> u8 {
        self.alphabet.letter(self.at1(i))
    }

    /// A contiguous sub-sequence covering 0-based `range`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Sequence {
        Sequence {
            alphabet: self.alphabet.clone(),
            codes: self.codes[range].to_vec(),
        }
    }

    /// Append another sequence over the same alphabet.
    ///
    /// # Panics
    /// Panics if the alphabets differ.
    pub fn extend_from(&mut self, other: &Sequence) {
        assert!(
            self.alphabet == other.alphabet,
            "cannot concatenate sequences over different alphabets"
        );
        self.codes.extend_from_slice(&other.codes);
    }

    /// Decode back to text.
    pub fn to_text(&self) -> String {
        self.codes
            .iter()
            .map(|&c| self.alphabet.letter(c) as char)
            .collect()
    }

    /// Per-code occurrence counts (length `alphabet.size()`).
    pub fn code_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.alphabet.size()];
        for &c in &self.codes {
            counts[c as usize] += 1;
        }
        counts
    }

    /// The reverse complement of a DNA sequence (A↔T, C↔G, reversed).
    /// Mining both strands means mining `S` and `S.reverse_complement()`.
    ///
    /// # Panics
    /// Panics if the sequence is not over [`Alphabet::Dna`].
    pub fn reverse_complement(&self) -> Sequence {
        assert!(
            self.alphabet == Alphabet::Dna,
            "reverse_complement is defined for DNA sequences"
        );
        // Codes: A=0, C=1, G=2, T=3 — complement is 3 − code.
        let codes = self.codes.iter().rev().map(|&c| 3 - c).collect();
        Sequence {
            alphabet: Alphabet::Dna,
            codes,
        }
    }

    /// Per-code occurrence frequencies summing to 1 (all zeros for an
    /// empty sequence).
    pub fn code_frequencies(&self) -> Vec<f64> {
        let counts = self.code_counts();
        let total = self.codes.len() as f64;
        if total == 0.0 {
            return vec![0.0; self.alphabet.size()];
        }
        counts.into_iter().map(|c| c as f64 / total).collect()
    }
}

impl fmt::Display for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl fmt::Debug for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = self.to_text();
        if text.len() <= 40 {
            write!(f, "Sequence({text:?})")
        } else {
            write!(f, "Sequence({:?}… len={})", &text[..40], self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_and_decodes() {
        let s = Sequence::dna("ACGTA").unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.codes(), &[0, 1, 2, 3, 0]);
        assert_eq!(s.to_text(), "ACGTA");
    }

    #[test]
    fn one_based_indexing_matches_paper() {
        // Paper Section 3: if S = ACGTA then S[1] = A, S[2] = C.
        let s = Sequence::dna("ACGTA").unwrap();
        assert_eq!(s.letter_at1(1), b'A');
        assert_eq!(s.letter_at1(2), b'C');
        assert_eq!(s.letter_at1(5), b'A');
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn at1_zero_panics() {
        let s = Sequence::dna("ACGT").unwrap();
        let _ = s.at1(0);
    }

    #[test]
    fn whitespace_is_skipped() {
        let s = Sequence::dna("AC\nGT\n  A").unwrap();
        assert_eq!(s.to_text(), "ACGTA");
    }

    #[test]
    fn lowercase_accepted() {
        let s = Sequence::dna("acgt").unwrap();
        assert_eq!(s.to_text(), "ACGT");
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = Sequence::dna("ACGN").unwrap_err();
        assert!(matches!(
            err,
            SeqError::UnknownLetter {
                letter: 'N',
                pos: 3
            }
        ));
    }

    #[test]
    fn from_codes_validates() {
        assert!(Sequence::from_codes(Alphabet::Dna, vec![0, 1, 2, 3]).is_ok());
        assert!(Sequence::from_codes(Alphabet::Dna, vec![0, 4]).is_err());
    }

    #[test]
    fn slicing_and_concat() {
        let s = Sequence::dna("ACGTACGT").unwrap();
        let mid = s.slice(2..6);
        assert_eq!(mid.to_text(), "GTAC");
        let mut a = s.slice(0..4);
        a.extend_from(&s.slice(4..8));
        assert_eq!(a, s);
    }

    #[test]
    fn counts_and_frequencies() {
        let s = Sequence::dna("AACCCCGT").unwrap();
        assert_eq!(s.code_counts(), vec![2, 4, 1, 1]);
        let f = s.code_frequencies();
        assert!((f[1] - 0.5).abs() < 1e-12);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let empty = Sequence::dna("").unwrap();
        assert_eq!(empty.code_frequencies(), vec![0.0; 4]);
    }

    #[test]
    fn reverse_complement_basic() {
        let s = Sequence::dna("AACGT").unwrap();
        assert_eq!(s.reverse_complement().to_text(), "ACGTT");
        // Involution: rc(rc(S)) = S.
        assert_eq!(s.reverse_complement().reverse_complement(), s);
        // Palindromic site (EcoRI): GAATTC is its own reverse complement.
        let eco = Sequence::dna("GAATTC").unwrap();
        assert_eq!(eco.reverse_complement(), eco);
        assert_eq!(Sequence::dna("").unwrap().reverse_complement().len(), 0);
    }

    #[test]
    #[should_panic(expected = "DNA")]
    fn reverse_complement_needs_dna() {
        let p = Sequence::protein("MKWV").unwrap();
        let _ = p.reverse_complement();
    }

    #[test]
    fn protein_rejects_nonstandard_codes() {
        let err = Sequence::protein("MKXVT").unwrap_err();
        assert!(matches!(
            err,
            SeqError::UnknownLetter {
                letter: 'X',
                pos: 2
            }
        ));
    }

    #[test]
    fn protein_sequences_roundtrip() {
        let s = Sequence::protein("ACDEFGHIKLMNPQRSTVWY").unwrap();
        assert_eq!(s.len(), 20);
        assert_eq!(s.to_text(), "ACDEFGHIKLMNPQRSTVWY");
    }
}
