//! # perigap-seq
//!
//! Sequence substrate for the *perigap* workspace — the Rust
//! reproduction of "Mining Periodic Patterns with Gap Requirement from
//! Sequences" (Zhang, Kao, Cheung, Yip; SIGMOD 2005).
//!
//! Everything the miner needs from the world of sequences lives here:
//!
//! * [`Alphabet`] / [`Sequence`] — code-mapped subject sequences over
//!   DNA, protein or custom alphabets, with the paper's 1-based `S[i]`
//!   accessor;
//! * [`PackedDna`] — 2-bit at-rest storage for genome-scale inputs;
//! * [`fasta`] / [`genbank`] — FASTA and GenBank-lite I/O;
//! * [`gen`] — deterministic synthetic generators (i.i.d., order-k
//!   Markov, periodic-motif planting, tandem repeats, mutation noise)
//!   that substitute for the paper's NCBI downloads;
//! * [`stats`] / [`oscillation`] — composition, entropy, k-mer and
//!   base-pair-oscillation statistics;
//! * [`fragment`] — the case study's 100 kb genome segmentation.

#![warn(missing_docs)]

pub mod alphabet;
pub mod error;
pub mod fasta;
pub mod fragment;
pub mod gen;
pub mod genbank;
pub mod oscillation;
pub mod packed;
pub mod sequence;
pub mod stats;
pub mod translate;

pub use alphabet::Alphabet;
pub use error::SeqError;
pub use packed::{pack_codes, packed_len, unpack_codes, PackedDna};
pub use sequence::Sequence;
