//! Segmenting long sequences into fragments.
//!
//! The case study (Section 7) "segmented the genomes into short
//! fragments of 100 kilo-bases and ran the algorithm on each fragment".
//! Both non-overlapping windows (the case-study mode) and overlapping
//! sliding windows (the windowed-mining related work of Section 2) are
//! provided.

use crate::sequence::Sequence;

/// A fragment with provenance: where in the parent sequence it came from.
#[derive(Clone, Debug, PartialEq)]
pub struct Fragment {
    /// Index of this fragment in iteration order.
    pub index: usize,
    /// 0-based start offset in the parent sequence.
    pub start: usize,
    /// The fragment contents.
    pub sequence: Sequence,
}

/// Split into consecutive non-overlapping fragments of `width`
/// characters. A final fragment shorter than `min_final` characters is
/// dropped (mining a tiny tail produces no meaningful support ratios).
///
/// # Panics
/// Panics if `width == 0`.
pub fn fragments(seq: &Sequence, width: usize, min_final: usize) -> Vec<Fragment> {
    assert!(width > 0, "fragment width must be positive");
    let mut out = Vec::new();
    let mut start = 0;
    let mut index = 0;
    while start < seq.len() {
        let end = (start + width).min(seq.len());
        if end - start >= min_final || end - start == width {
            out.push(Fragment {
                index,
                start,
                sequence: seq.slice(start..end),
            });
            index += 1;
        }
        start = end;
    }
    out
}

/// Overlapping sliding windows of `width` characters advancing by
/// `step` (a step of 1 reproduces the "neighbouring windows share a
/// length-(w−1) segment" setting the paper cites from Mannila et al.).
///
/// # Panics
/// Panics if `width == 0` or `step == 0`.
pub fn sliding_windows(seq: &Sequence, width: usize, step: usize) -> Vec<Fragment> {
    assert!(width > 0, "window width must be positive");
    assert!(step > 0, "step must be positive");
    let mut out = Vec::new();
    if seq.len() < width {
        return out;
    }
    let mut index = 0;
    let mut start = 0;
    while start + width <= seq.len() {
        out.push(Fragment {
            index,
            start,
            sequence: seq.slice(start..start + width),
        });
        index += 1;
        start += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_overlapping_covers_sequence() {
        let s = Sequence::dna(&"ACGT".repeat(25)).unwrap(); // 100 chars
        let frags = fragments(&s, 30, 1);
        assert_eq!(frags.len(), 4);
        assert_eq!(frags[0].sequence.len(), 30);
        assert_eq!(frags[3].sequence.len(), 10);
        assert_eq!(frags[3].start, 90);
        let total: usize = frags.iter().map(|f| f.sequence.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn short_tail_is_dropped() {
        let s = Sequence::dna(&"A".repeat(100)).unwrap();
        let frags = fragments(&s, 30, 20);
        assert_eq!(frags.len(), 3, "10-char tail below min_final=20 is dropped");
    }

    #[test]
    fn exact_multiple_has_no_tail() {
        let s = Sequence::dna(&"A".repeat(90)).unwrap();
        let frags = fragments(&s, 30, 1);
        assert_eq!(frags.len(), 3);
        assert!(frags.iter().all(|f| f.sequence.len() == 30));
    }

    #[test]
    fn fragment_contents_match_parent() {
        let s = Sequence::dna("ACGTACGTAC").unwrap();
        let frags = fragments(&s, 4, 1);
        assert_eq!(frags[1].sequence.to_text(), "ACGT");
        assert_eq!(frags[2].sequence.to_text(), "AC");
        assert_eq!(frags[1].index, 1);
    }

    #[test]
    fn sliding_windows_overlap() {
        let s = Sequence::dna("ACGTACGT").unwrap();
        let wins = sliding_windows(&s, 4, 1);
        assert_eq!(wins.len(), 5);
        assert_eq!(wins[0].sequence.to_text(), "ACGT");
        assert_eq!(wins[1].sequence.to_text(), "CGTA");
        // Step larger than 1.
        let wins = sliding_windows(&s, 4, 4);
        assert_eq!(wins.len(), 2);
        assert_eq!(wins[1].start, 4);
    }

    #[test]
    fn window_wider_than_sequence_is_empty() {
        let s = Sequence::dna("ACG").unwrap();
        assert!(sliding_windows(&s, 4, 1).is_empty());
    }
}
