//! 2-bit packed storage for DNA sequences.
//!
//! Whole genomes run to megabases; storing one base per byte wastes 4×
//! the memory actually needed for a 4-letter alphabet. `PackedDna` packs
//! four bases per byte and converts losslessly to and from [`Sequence`].
//! The mining algorithms operate on byte-coded sequences (random access
//! is hotter than footprint there); the packed form is the at-rest and
//! I/O representation for large inputs.

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use crate::sequence::Sequence;

/// A DNA sequence packed at 2 bits per base (4 bases per byte).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PackedDna {
    /// Packed payload; base `i` lives in byte `i / 4`, bits `2·(i % 4)`.
    bytes: Vec<u8>,
    len: usize,
}

impl PackedDna {
    /// An empty packed sequence.
    pub fn new() -> Self {
        PackedDna::default()
    }

    /// Pack a byte-coded DNA sequence.
    ///
    /// # Panics
    /// Panics if the sequence is not over [`Alphabet::Dna`].
    pub fn from_sequence(seq: &Sequence) -> PackedDna {
        assert!(
            *seq.alphabet() == Alphabet::Dna,
            "PackedDna requires a DNA sequence"
        );
        let mut packed = PackedDna::with_capacity(seq.len());
        for &code in seq.codes() {
            packed.push(code);
        }
        packed
    }

    /// Pack from text (delegates validation to [`Sequence::dna`]).
    pub fn from_text(text: &str) -> Result<PackedDna, SeqError> {
        Ok(Self::from_sequence(&Sequence::dna(text)?))
    }

    /// Pre-allocate room for `bases` bases.
    pub fn with_capacity(bases: usize) -> PackedDna {
        PackedDna {
            bytes: Vec::with_capacity(bases.div_ceil(4)),
            len: 0,
        }
    }

    /// Number of bases stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no bases are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of heap payload used (for footprint assertions).
    pub fn payload_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Append one base code (0..4).
    ///
    /// # Panics
    /// Panics if `code >= 4`.
    pub fn push(&mut self, code: u8) {
        assert!(code < 4, "DNA code must be 0..4, got {code}");
        let slot = self.len % 4;
        if slot == 0 {
            self.bytes.push(0);
        }
        let byte = self.bytes.last_mut().expect("byte was just ensured");
        *byte |= code << (2 * slot);
        self.len += 1;
    }

    /// The base code at 0-based index `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> u8 {
        assert!(
            i < self.len,
            "index {i} out of range for {} bases",
            self.len
        );
        (self.bytes[i / 4] >> (2 * (i % 4))) & 0b11
    }

    /// Overwrite the base code at 0-based index `i`.
    ///
    /// # Panics
    /// Panics if `i >= len` or `code >= 4`.
    pub fn set(&mut self, i: usize, code: u8) {
        assert!(
            i < self.len,
            "index {i} out of range for {} bases",
            self.len
        );
        assert!(code < 4, "DNA code must be 0..4, got {code}");
        let shift = 2 * (i % 4);
        let byte = &mut self.bytes[i / 4];
        *byte = (*byte & !(0b11 << shift)) | (code << shift);
    }

    /// Iterate over the base codes.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Unpack into a byte-coded [`Sequence`].
    pub fn to_sequence(&self) -> Sequence {
        let codes: Vec<u8> = self.iter().collect();
        Sequence::from_codes(Alphabet::Dna, codes).expect("packed codes are always valid")
    }
}

impl FromIterator<u8> for PackedDna {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        let mut packed = PackedDna::new();
        for code in iter {
            packed.push(code);
        }
        packed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let p = PackedDna::from_text("ACGTACGTAC").unwrap();
        assert_eq!(p.len(), 10);
        assert_eq!(p.to_sequence().to_text(), "ACGTACGTAC");
    }

    #[test]
    fn packs_four_bases_per_byte() {
        let p = PackedDna::from_text("ACGTACGT").unwrap();
        assert_eq!(p.payload_bytes(), 2);
        let p = PackedDna::from_text("ACGTA").unwrap();
        assert_eq!(p.payload_bytes(), 2);
        let p = PackedDna::from_text("ACGT").unwrap();
        assert_eq!(p.payload_bytes(), 1);
    }

    #[test]
    fn get_and_set() {
        let mut p = PackedDna::from_text("AAAA").unwrap();
        p.set(2, 3);
        assert_eq!(p.get(2), 3);
        assert_eq!(p.to_sequence().to_text(), "AATA");
        // Neighbours untouched.
        assert_eq!(p.get(1), 0);
        assert_eq!(p.get(3), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let p = PackedDna::from_text("ACG").unwrap();
        let _ = p.get(3);
    }

    #[test]
    #[should_panic(expected = "DNA code")]
    fn push_invalid_code_panics() {
        let mut p = PackedDna::new();
        p.push(4);
    }

    #[test]
    fn from_iterator() {
        let p: PackedDna = [0u8, 1, 2, 3, 3, 2, 1, 0].into_iter().collect();
        assert_eq!(p.to_sequence().to_text(), "ACGTTGCA");
    }

    #[test]
    fn empty() {
        let p = PackedDna::new();
        assert!(p.is_empty());
        assert_eq!(p.to_sequence().len(), 0);
        assert_eq!(p.payload_bytes(), 0);
    }
}
