//! 2-bit packed storage for DNA sequences.
//!
//! Whole genomes run to megabases; storing one base per byte wastes 4×
//! the memory actually needed for a 4-letter alphabet. `PackedDna` packs
//! four bases per byte and converts losslessly to and from [`Sequence`].
//! The mining algorithms operate on byte-coded sequences (random access
//! is hotter than footprint there); the packed form is the at-rest and
//! I/O representation for large inputs.

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use crate::sequence::Sequence;

/// A DNA sequence packed at 2 bits per base (4 bases per byte).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PackedDna {
    /// Packed payload; base `i` lives in byte `i / 4`, bits `2·(i % 4)`.
    bytes: Vec<u8>,
    len: usize,
}

impl PackedDna {
    /// An empty packed sequence.
    pub fn new() -> Self {
        PackedDna::default()
    }

    /// Pack a byte-coded DNA sequence.
    ///
    /// # Panics
    /// Panics if the sequence is not over [`Alphabet::Dna`].
    pub fn from_sequence(seq: &Sequence) -> PackedDna {
        assert!(
            *seq.alphabet() == Alphabet::Dna,
            "PackedDna requires a DNA sequence"
        );
        let mut packed = PackedDna::with_capacity(seq.len());
        for &code in seq.codes() {
            packed.push(code);
        }
        packed
    }

    /// Pack from text (delegates validation to [`Sequence::dna`]).
    pub fn from_text(text: &str) -> Result<PackedDna, SeqError> {
        Ok(Self::from_sequence(&Sequence::dna(text)?))
    }

    /// Pre-allocate room for `bases` bases.
    pub fn with_capacity(bases: usize) -> PackedDna {
        PackedDna {
            bytes: Vec::with_capacity(bases.div_ceil(4)),
            len: 0,
        }
    }

    /// Number of bases stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no bases are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of heap payload used (for footprint assertions).
    pub fn payload_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Append one base code (0..4).
    ///
    /// # Panics
    /// Panics if `code >= 4`.
    pub fn push(&mut self, code: u8) {
        assert!(code < 4, "DNA code must be 0..4, got {code}");
        let slot = self.len % 4;
        if slot == 0 {
            self.bytes.push(0);
        }
        let byte = self.bytes.last_mut().expect("byte was just ensured");
        *byte |= code << (2 * slot);
        self.len += 1;
    }

    /// The base code at 0-based index `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> u8 {
        assert!(
            i < self.len,
            "index {i} out of range for {} bases",
            self.len
        );
        (self.bytes[i / 4] >> (2 * (i % 4))) & 0b11
    }

    /// Overwrite the base code at 0-based index `i`.
    ///
    /// # Panics
    /// Panics if `i >= len` or `code >= 4`.
    pub fn set(&mut self, i: usize, code: u8) {
        assert!(
            i < self.len,
            "index {i} out of range for {} bases",
            self.len
        );
        assert!(code < 4, "DNA code must be 0..4, got {code}");
        let shift = 2 * (i % 4);
        let byte = &mut self.bytes[i / 4];
        *byte = (*byte & !(0b11 << shift)) | (code << shift);
    }

    /// Iterate over the base codes.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Unpack into a byte-coded [`Sequence`].
    pub fn to_sequence(&self) -> Sequence {
        let codes: Vec<u8> = self.iter().collect();
        Sequence::from_codes(Alphabet::Dna, codes).expect("packed codes are always valid")
    }
}

/// Bytes needed to pack `len` symbols at `bits` bits per symbol.
pub fn packed_len(len: usize, bits: u32) -> usize {
    (len * bits as usize).div_ceil(8)
}

/// Pack byte codes into a little-endian bit stream at `bits` bits per
/// symbol: symbol `i` occupies bits `i·bits .. (i+1)·bits` of the
/// stream, least-significant bit of each byte first. For `bits == 2`
/// the layout is identical to [`PackedDna`]; wider alphabets (protein
/// at 5 bits) straddle byte boundaries.
///
/// # Panics
/// Panics if `bits` is outside `1..=8` or any code needs more than
/// `bits` bits.
pub fn pack_codes(codes: &[u8], bits: u32) -> Vec<u8> {
    assert!((1..=8).contains(&bits), "bits must be 1..=8, got {bits}");
    let mut bytes = vec![0u8; packed_len(codes.len(), bits)];
    for (i, &code) in codes.iter().enumerate() {
        assert!(
            (code as u32) < (1 << bits),
            "code {code} does not fit in {bits} bits"
        );
        let bit = i * bits as usize;
        let spread = (code as u16) << (bit % 8);
        bytes[bit / 8] |= spread as u8;
        if spread > 0xff {
            bytes[bit / 8 + 1] |= (spread >> 8) as u8;
        }
    }
    bytes
}

/// Inverse of [`pack_codes`]: recover `len` symbol codes from a
/// little-endian bit stream at `bits` bits per symbol.
///
/// # Panics
/// Panics if `bits` is outside `1..=8` or `bytes` is shorter than
/// [`packed_len`]`(len, bits)`.
pub fn unpack_codes(bytes: &[u8], bits: u32, len: usize) -> Vec<u8> {
    assert!((1..=8).contains(&bits), "bits must be 1..=8, got {bits}");
    assert!(
        bytes.len() >= packed_len(len, bits),
        "need {} packed bytes for {len} symbols at {bits} bits, got {}",
        packed_len(len, bits),
        bytes.len()
    );
    let mask = (1u16 << bits) - 1;
    (0..len)
        .map(|i| {
            let bit = i * bits as usize;
            let mut word = bytes[bit / 8] as u16;
            if bit % 8 + bits as usize > 8 {
                word |= (bytes[bit / 8 + 1] as u16) << 8;
            }
            ((word >> (bit % 8)) & mask) as u8
        })
        .collect()
}

impl FromIterator<u8> for PackedDna {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        let mut packed = PackedDna::new();
        for code in iter {
            packed.push(code);
        }
        packed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let p = PackedDna::from_text("ACGTACGTAC").unwrap();
        assert_eq!(p.len(), 10);
        assert_eq!(p.to_sequence().to_text(), "ACGTACGTAC");
    }

    #[test]
    fn packs_four_bases_per_byte() {
        let p = PackedDna::from_text("ACGTACGT").unwrap();
        assert_eq!(p.payload_bytes(), 2);
        let p = PackedDna::from_text("ACGTA").unwrap();
        assert_eq!(p.payload_bytes(), 2);
        let p = PackedDna::from_text("ACGT").unwrap();
        assert_eq!(p.payload_bytes(), 1);
    }

    #[test]
    fn get_and_set() {
        let mut p = PackedDna::from_text("AAAA").unwrap();
        p.set(2, 3);
        assert_eq!(p.get(2), 3);
        assert_eq!(p.to_sequence().to_text(), "AATA");
        // Neighbours untouched.
        assert_eq!(p.get(1), 0);
        assert_eq!(p.get(3), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let p = PackedDna::from_text("ACG").unwrap();
        let _ = p.get(3);
    }

    #[test]
    #[should_panic(expected = "DNA code")]
    fn push_invalid_code_panics() {
        let mut p = PackedDna::new();
        p.push(4);
    }

    #[test]
    fn from_iterator() {
        let p: PackedDna = [0u8, 1, 2, 3, 3, 2, 1, 0].into_iter().collect();
        assert_eq!(p.to_sequence().to_text(), "ACGTTGCA");
    }

    #[test]
    fn empty() {
        let p = PackedDna::new();
        assert!(p.is_empty());
        assert_eq!(p.to_sequence().len(), 0);
        assert_eq!(p.payload_bytes(), 0);
    }

    #[test]
    fn pack_codes_matches_packed_dna_at_two_bits() {
        let codes = [0u8, 1, 2, 3, 3, 2, 1, 0, 2];
        let dna: PackedDna = codes.iter().copied().collect();
        let packed = pack_codes(&codes, 2);
        assert_eq!(packed.len(), dna.payload_bytes());
        assert_eq!(unpack_codes(&packed, 2, codes.len()), codes.to_vec());
        for (i, &code) in codes.iter().enumerate() {
            assert_eq!((packed[i / 4] >> (2 * (i % 4))) & 0b11, code);
        }
    }

    #[test]
    fn pack_codes_roundtrips_every_width() {
        for bits in 1..=8u32 {
            let max = 1u16 << bits;
            let codes: Vec<u8> = (0..200u16).map(|i| ((i * 7 + 3) % max) as u8).collect();
            let packed = pack_codes(&codes, bits);
            assert_eq!(packed.len(), packed_len(codes.len(), bits), "bits {bits}");
            assert_eq!(
                unpack_codes(&packed, bits, codes.len()),
                codes,
                "bits {bits}"
            );
        }
    }

    #[test]
    fn pack_codes_straddles_byte_boundaries() {
        // 5-bit protein-width codes: symbol 1 spans bytes 0 and 1.
        let codes = [0b10101u8, 0b11011, 0b00110];
        let packed = pack_codes(&codes, 5);
        assert_eq!(packed.len(), 2);
        assert_eq!(unpack_codes(&packed, 5, 3), codes.to_vec());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn pack_codes_rejects_wide_code() {
        pack_codes(&[4], 2);
    }

    #[test]
    fn pack_codes_empty() {
        assert!(pack_codes(&[], 5).is_empty());
        assert!(unpack_codes(&[], 5, 0).is_empty());
    }
}
