//! Finite alphabets over which subject sequences and patterns are defined.
//!
//! The paper works with the DNA alphabet `{A, C, G, T}` and the 20-letter
//! amino-acid alphabet; the mining algorithms themselves only require a
//! finite alphabet, so a custom variant is provided too. Characters are
//! mapped to dense small codes (`0..size`) so sequences can be stored and
//! compared as byte slices.

use crate::error::SeqError;
use std::fmt;
use std::sync::Arc;

/// The 20 standard amino-acid one-letter codes, alphabetically ordered.
pub const AMINO_ACIDS: &[u8; 20] = b"ACDEFGHIKLMNPQRSTVWY";

/// The DNA nucleotide letters in the conventional order.
pub const DNA_BASES: &[u8; 4] = b"ACGT";

/// A finite alphabet: a bijection between characters and dense codes.
///
/// Cloning is cheap — custom alphabets share their tables via [`Arc`].
#[derive(Clone, PartialEq, Eq)]
pub enum Alphabet {
    /// `{A, C, G, T}` with codes 0..4.
    Dna,
    /// The 20 standard amino acids with codes 0..20.
    Protein,
    /// An arbitrary user-supplied character set.
    Custom(Arc<CustomAlphabet>),
}

/// Backing tables for [`Alphabet::Custom`].
#[derive(Clone, PartialEq, Eq)]
pub struct CustomAlphabet {
    letters: Vec<u8>,
    /// 256-entry reverse map; `u8::MAX` marks characters not in the set.
    codes: [u8; 256],
}

impl Alphabet {
    /// Build a custom alphabet from its character set.
    ///
    /// Characters must be distinct; at most 255 characters are supported
    /// (code `255` is reserved as the "absent" marker).
    pub fn custom(letters: &[u8]) -> Result<Alphabet, SeqError> {
        if letters.is_empty() {
            return Err(SeqError::EmptyAlphabet);
        }
        if letters.len() > 255 {
            return Err(SeqError::AlphabetTooLarge(letters.len()));
        }
        let mut codes = [u8::MAX; 256];
        for (i, &ch) in letters.iter().enumerate() {
            if codes[ch as usize] != u8::MAX {
                return Err(SeqError::DuplicateLetter(ch as char));
            }
            codes[ch as usize] = i as u8;
        }
        Ok(Alphabet::Custom(Arc::new(CustomAlphabet {
            letters: letters.to_vec(),
            codes,
        })))
    }

    /// Number of characters in the alphabet.
    pub fn size(&self) -> usize {
        match self {
            Alphabet::Dna => 4,
            Alphabet::Protein => 20,
            Alphabet::Custom(c) => c.letters.len(),
        }
    }

    /// The character for a code.
    ///
    /// # Panics
    /// Panics if `code >= self.size()`.
    pub fn letter(&self, code: u8) -> u8 {
        match self {
            Alphabet::Dna => DNA_BASES[code as usize],
            Alphabet::Protein => AMINO_ACIDS[code as usize],
            Alphabet::Custom(c) => c.letters[code as usize],
        }
    }

    /// The code for a character, or `None` if the character is not in the
    /// alphabet. DNA and protein lookups accept lowercase letters.
    pub fn code(&self, letter: u8) -> Option<u8> {
        match self {
            Alphabet::Dna => match letter.to_ascii_uppercase() {
                b'A' => Some(0),
                b'C' => Some(1),
                b'G' => Some(2),
                b'T' => Some(3),
                _ => None,
            },
            Alphabet::Protein => {
                let upper = letter.to_ascii_uppercase();
                AMINO_ACIDS
                    .iter()
                    .position(|&a| a == upper)
                    .map(|i| i as u8)
            }
            Alphabet::Custom(c) => {
                let code = c.codes[letter as usize];
                (code != u8::MAX).then_some(code)
            }
        }
    }

    /// Encode a character, reporting position-aware errors.
    pub fn encode_char(&self, letter: u8, pos: usize) -> Result<u8, SeqError> {
        self.code(letter).ok_or(SeqError::UnknownLetter {
            letter: letter as char,
            pos,
        })
    }

    /// Iterate over all codes `0..size`.
    pub fn codes(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.size() as u8).collect::<Vec<_>>().into_iter()
    }

    /// Iterate over all characters of the alphabet.
    pub fn letters(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.size() as u8).map(move |c| self.letter(c))
    }
}

impl fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Alphabet::Dna => f.write_str("Alphabet::Dna"),
            Alphabet::Protein => f.write_str("Alphabet::Protein"),
            Alphabet::Custom(c) => write!(
                f,
                "Alphabet::Custom({:?})",
                String::from_utf8_lossy(&c.letters)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_bijection() {
        let a = Alphabet::Dna;
        assert_eq!(a.size(), 4);
        for code in 0..4u8 {
            assert_eq!(a.code(a.letter(code)), Some(code));
        }
        assert_eq!(a.code(b'a'), Some(0));
        assert_eq!(a.code(b't'), Some(3));
        assert_eq!(a.code(b'N'), None);
    }

    #[test]
    fn protein_bijection() {
        let a = Alphabet::Protein;
        assert_eq!(a.size(), 20);
        for code in 0..20u8 {
            assert_eq!(a.code(a.letter(code)), Some(code));
        }
        // B, J, O, U, X, Z are not standard amino acids.
        for ch in [b'B', b'J', b'O', b'U', b'X', b'Z'] {
            assert_eq!(a.code(ch), None, "{}", ch as char);
        }
    }

    #[test]
    fn custom_roundtrip() {
        let a = Alphabet::custom(b"01").unwrap();
        assert_eq!(a.size(), 2);
        assert_eq!(a.code(b'0'), Some(0));
        assert_eq!(a.code(b'1'), Some(1));
        assert_eq!(a.code(b'2'), None);
        assert_eq!(a.letter(1), b'1');
    }

    #[test]
    fn custom_rejects_bad_inputs() {
        assert!(matches!(
            Alphabet::custom(b""),
            Err(SeqError::EmptyAlphabet)
        ));
        assert!(matches!(
            Alphabet::custom(b"AA"),
            Err(SeqError::DuplicateLetter('A'))
        ));
        let too_many: Vec<u8> = (0..=255u8).collect();
        assert!(matches!(
            Alphabet::custom(&too_many),
            Err(SeqError::AlphabetTooLarge(256))
        ));
    }

    #[test]
    fn encode_char_reports_position() {
        let a = Alphabet::Dna;
        match a.encode_char(b'X', 17) {
            Err(SeqError::UnknownLetter { letter, pos }) => {
                assert_eq!(letter, 'X');
                assert_eq!(pos, 17);
            }
            other => panic!("expected UnknownLetter, got {other:?}"),
        }
    }

    #[test]
    fn letters_iterator() {
        let dna: Vec<u8> = Alphabet::Dna.letters().collect();
        assert_eq!(dna, b"ACGT");
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Alphabet::custom(b"xyz").unwrap();
        let b = a.clone();
        assert_eq!(a, b);
    }
}
