//! Compositional statistics of sequences: base composition, GC content,
//! Shannon entropy and k-mer counting.
//!
//! These feed the case-study analysis (AT-richness of mined patterns)
//! and the null models (expected pattern support under independence).

use crate::sequence::Sequence;
use std::collections::HashMap;

/// Fraction of G/C characters in a DNA sequence (0 for an empty one).
///
/// # Panics
/// Panics if the sequence is not over the DNA alphabet.
pub fn gc_content(seq: &Sequence) -> f64 {
    assert_eq!(
        seq.alphabet().size(),
        4,
        "gc_content expects a DNA sequence"
    );
    if seq.is_empty() {
        return 0.0;
    }
    let counts = seq.code_counts();
    // Codes: A=0, C=1, G=2, T=3.
    (counts[1] + counts[2]) as f64 / seq.len() as f64
}

/// Shannon entropy of the character distribution, in bits.
pub fn shannon_entropy(seq: &Sequence) -> f64 {
    seq.code_frequencies()
        .into_iter()
        .filter(|&p| p > 0.0)
        .map(|p| -p * p.log2())
        .sum()
}

/// Count every contiguous k-mer. Keys are the code vectors.
///
/// # Panics
/// Panics if `k == 0`.
pub fn kmer_counts(seq: &Sequence, k: usize) -> HashMap<Vec<u8>, u64> {
    assert!(k > 0, "k must be positive");
    let mut counts = HashMap::new();
    if seq.len() >= k {
        for window in seq.codes().windows(k) {
            *counts.entry(window.to_vec()).or_insert(0u64) += 1;
        }
    }
    counts
}

/// Probability of observing the character string `codes` at a uniformly
/// random set of positions, assuming independent characters with the
/// sequence's empirical frequencies. This is the i.i.d. null expectation
/// for a pattern's *support ratio* (the paper's `sup(P)/N_l`), since gap
/// positions are unconstrained under independence.
pub fn iid_string_probability(seq: &Sequence, codes: &[u8]) -> f64 {
    let freqs = seq.code_frequencies();
    codes.iter().map(|&c| freqs[c as usize]).product()
}

/// Dinucleotide (adjacent-pair) counts: entry `[a][b]` is the number of
/// positions `i` with `S[i] = a` and `S[i+1] = b`.
pub fn dinucleotide_counts(seq: &Sequence) -> Vec<Vec<u64>> {
    let sigma = seq.alphabet().size();
    let mut counts = vec![vec![0u64; sigma]; sigma];
    for w in seq.codes().windows(2) {
        counts[w[0] as usize][w[1] as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gc_content_basic() {
        let s = Sequence::dna("GGCC").unwrap();
        assert_eq!(gc_content(&s), 1.0);
        let s = Sequence::dna("AATT").unwrap();
        assert_eq!(gc_content(&s), 0.0);
        let s = Sequence::dna("ACGT").unwrap();
        assert_eq!(gc_content(&s), 0.5);
        assert_eq!(gc_content(&Sequence::dna("").unwrap()), 0.0);
    }

    #[test]
    fn entropy_extremes() {
        let uniform = Sequence::dna("ACGTACGT").unwrap();
        assert!((shannon_entropy(&uniform) - 2.0).abs() < 1e-12);
        let constant = Sequence::dna("AAAA").unwrap();
        assert_eq!(shannon_entropy(&constant), 0.0);
        // Two equiprobable characters → 1 bit.
        let two = Sequence::dna("ATATAT").unwrap();
        assert!((shannon_entropy(&two) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kmer_counting() {
        let s = Sequence::dna("ACGACG").unwrap();
        let k3 = kmer_counts(&s, 3);
        assert_eq!(k3[&vec![0u8, 1, 2]], 2); // ACG twice
        assert_eq!(k3[&vec![1u8, 2, 0]], 1); // CGA once
        assert_eq!(k3.values().sum::<u64>(), 4); // L - k + 1
                                                 // k longer than the sequence → empty map.
        assert!(kmer_counts(&s, 7).is_empty());
    }

    #[test]
    fn iid_probability_multiplies_frequencies() {
        let s = Sequence::dna("AACG").unwrap(); // A: 1/2, C: 1/4, G: 1/4
        let p = iid_string_probability(&s, &[0, 1]); // P(A)·P(C)
        assert!((p - 0.125).abs() < 1e-12);
        assert_eq!(iid_string_probability(&s, &[]), 1.0);
        // T never occurs → probability 0.
        assert_eq!(iid_string_probability(&s, &[3]), 0.0);
    }

    #[test]
    fn dinucleotide_counts_sum() {
        let s = Sequence::dna("ACGTA").unwrap();
        let d = dinucleotide_counts(&s);
        let total: u64 = d.iter().flatten().sum();
        assert_eq!(total, 4); // L - 1 pairs
        assert_eq!(d[0][1], 1); // AC
        assert_eq!(d[3][0], 1); // TA
    }
}
