//! Minimal GenBank flat-file reader.
//!
//! The paper's inputs are NCBI entries (AX829174 et al.), which ship in
//! GenBank format. This reader extracts what mining needs — the locus
//! name, the stated length, and the `ORIGIN` sequence block — and
//! ignores the annotation sections. Multi-record files (separated by
//! `//`) are supported.

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use crate::sequence::Sequence;
use std::io::BufRead;

/// One parsed GenBank record.
#[derive(Clone, Debug, PartialEq)]
pub struct GenBankRecord {
    /// The locus name (first token of the LOCUS line).
    pub locus: String,
    /// The length stated on the LOCUS line, when present.
    pub stated_len: Option<usize>,
    /// The decoded ORIGIN sequence.
    pub sequence: Sequence,
}

/// Parse every record from a GenBank reader.
///
/// Errors on records with no `ORIGIN` data, on characters outside the
/// alphabet, and on a stated length that contradicts the ORIGIN block
/// (truncated downloads are a real failure mode worth catching).
pub fn read_genbank<R: BufRead>(
    reader: R,
    alphabet: &Alphabet,
) -> Result<Vec<GenBankRecord>, SeqError> {
    let mut records = Vec::new();
    let mut locus: Option<(String, Option<usize>)> = None;
    let mut in_origin = false;
    let mut body = String::new();

    let flush = |locus: &mut Option<(String, Option<usize>)>,
                 body: &mut String,
                 records: &mut Vec<GenBankRecord>|
     -> Result<(), SeqError> {
        if let Some((name, stated_len)) = locus.take() {
            if body.is_empty() {
                return Err(SeqError::FastaEmptyRecord { id: name });
            }
            let sequence = Sequence::from_text(alphabet.clone(), body.as_bytes())?;
            if let Some(expected) = stated_len {
                if sequence.len() != expected {
                    return Err(SeqError::Io(format!(
                        "GenBank record {name}: LOCUS states {expected} bp but ORIGIN holds {}",
                        sequence.len()
                    )));
                }
            }
            records.push(GenBankRecord {
                locus: name,
                stated_len,
                sequence,
            });
            body.clear();
        }
        Ok(())
    };

    for line in reader.lines() {
        let line = line?;
        if let Some(rest) = line.strip_prefix("LOCUS") {
            flush(&mut locus, &mut body, &mut records)?;
            in_origin = false;
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("unnamed").to_string();
            // The length is the token immediately before a "bp"/"aa" unit.
            let tokens: Vec<&str> = rest.split_whitespace().collect();
            let stated_len = tokens
                .windows(2)
                .find(|w| w[1] == "bp" || w[1] == "aa")
                .and_then(|w| w[0].parse().ok());
            locus = Some((name, stated_len));
        } else if line.starts_with("ORIGIN") {
            in_origin = true;
        } else if line.trim_start().starts_with("//") {
            in_origin = false;
            flush(&mut locus, &mut body, &mut records)?;
        } else if in_origin {
            // ORIGIN lines look like "        1 acgtac gtacgt …":
            // strip position numbers and whitespace, keep the letters.
            for ch in line.chars() {
                if ch.is_ascii_alphabetic() {
                    body.push(ch);
                }
            }
        }
    }
    flush(&mut locus, &mut body, &mut records)?;
    Ok(records)
}

/// Parse GenBank text from memory.
pub fn parse_genbank(text: &str, alphabet: &Alphabet) -> Result<Vec<GenBankRecord>, SeqError> {
    read_genbank(text.as_bytes(), alphabet)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
LOCUS       AX829174              40 bp    DNA     linear   PAT 14-OCT-2003
DEFINITION  Sequence 5 from Patent EP1308459.
ACCESSION   AX829174
FEATURES             Location/Qualifiers
     source          1..40
ORIGIN
        1 acgtacgtac gtacgtacgt acgtacgtac gtacgtacgt
//
";

    #[test]
    fn parses_single_record() {
        let recs = parse_genbank(SAMPLE, &Alphabet::Dna).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].locus, "AX829174");
        assert_eq!(recs[0].stated_len, Some(40));
        assert_eq!(recs[0].sequence.len(), 40);
        assert_eq!(recs[0].sequence.to_text(), "ACGT".repeat(10));
    }

    #[test]
    fn parses_multiple_records() {
        let two = format!(
            "{SAMPLE}{}",
            "LOCUS       TINY                   8 bp    DNA\nORIGIN\n        1 aattccgg\n//\n"
        );
        let recs = parse_genbank(&two, &Alphabet::Dna).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].locus, "TINY");
        assert_eq!(recs[1].sequence.to_text(), "AATTCCGG");
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let bad = SAMPLE.replace("40 bp", "39 bp");
        let err = parse_genbank(&bad, &Alphabet::Dna).unwrap_err();
        assert!(matches!(err, SeqError::Io(msg) if msg.contains("39")));
    }

    #[test]
    fn missing_origin_is_an_error() {
        let bad = "LOCUS  X  4 bp DNA\n//\n";
        assert!(matches!(
            parse_genbank(bad, &Alphabet::Dna),
            Err(SeqError::FastaEmptyRecord { .. })
        ));
    }

    #[test]
    fn annotation_sections_are_ignored() {
        let with_features = SAMPLE.replace(
            "FEATURES             Location/Qualifiers",
            "FEATURES             Location/Qualifiers\n     gene            1..40\n                     /gene=\"acgt\"",
        );
        let recs = parse_genbank(&with_features, &Alphabet::Dna).unwrap();
        assert_eq!(recs[0].sequence.len(), 40);
    }

    #[test]
    fn no_stated_length_is_fine() {
        let text = "LOCUS  ANON\nORIGIN\n        1 acgt\n//\n";
        let recs = parse_genbank(text, &Alphabet::Dna).unwrap();
        assert_eq!(recs[0].stated_len, None);
        assert_eq!(recs[0].sequence.len(), 4);
    }
}
