//! Base-pair oscillation analysis.
//!
//! The paper's introduction motivates gap-constrained periodic mining
//! with the classical base-pair correlation statistic: the probability
//! of seeing character `b` exactly `p` positions after character `a` is
//! `n_ab(p) / (L − p)`; under independence it would be `pr(a)·pr(b)`,
//! and the difference
//!
//! ```text
//! corr_ab(p) = n_ab(p)/(L − p) − pr(a)·pr(b)
//! ```
//!
//! exposes the famous 10–11 bp helical periodicity. This module computes
//! the statistic and locates spectrum peaks; the `oscillation_scan`
//! example uses it to pick gap requirements for mining.

use crate::sequence::Sequence;

/// The correlation spectrum of one ordered character pair over a range
/// of distances.
#[derive(Clone, Debug)]
pub struct OscillationSpectrum {
    /// First character code (`a`).
    pub a: u8,
    /// Second character code (`b`).
    pub b: u8,
    /// Inclusive distance range start.
    pub min_distance: usize,
    /// `corr_ab(p)` for each `p` in `min_distance..min_distance + values.len()`.
    pub values: Vec<f64>,
}

impl OscillationSpectrum {
    /// The distance with the largest correlation, or `None` when empty.
    pub fn peak(&self) -> Option<(usize, f64)> {
        self.values
            .iter()
            .copied()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("no NaNs"))
            .map(|(i, v)| (self.min_distance + i, v))
    }

    /// All local maxima strictly above `threshold`, as
    /// `(distance, value)` pairs.
    pub fn peaks_above(&self, threshold: f64) -> Vec<(usize, f64)> {
        let v = &self.values;
        let mut out = Vec::new();
        for i in 0..v.len() {
            let left = if i == 0 { f64::NEG_INFINITY } else { v[i - 1] };
            let right = if i + 1 == v.len() {
                f64::NEG_INFINITY
            } else {
                v[i + 1]
            };
            if v[i] > threshold && v[i] >= left && v[i] >= right {
                out.push((self.min_distance + i, v[i]));
            }
        }
        out
    }
}

/// Count of positions `i` with `S[i] = a` and `S[i+p] = b` (0-based
/// internally; matches the paper's `n_ab(p)`).
pub fn pair_count_at_distance(seq: &Sequence, a: u8, b: u8, p: usize) -> u64 {
    let codes = seq.codes();
    if p == 0 || p >= codes.len() {
        return 0;
    }
    codes[..codes.len() - p]
        .iter()
        .zip(&codes[p..])
        .filter(|&(&x, &y)| x == a && y == b)
        .count() as u64
}

/// Compute `corr_ab(p)` for `p` in `[min_distance, max_distance]`.
///
/// # Panics
/// Panics if the distance range is empty or reaches past the sequence.
pub fn correlation_spectrum(
    seq: &Sequence,
    a: u8,
    b: u8,
    min_distance: usize,
    max_distance: usize,
) -> OscillationSpectrum {
    assert!(min_distance >= 1, "distance must be at least 1");
    assert!(min_distance <= max_distance, "empty distance range");
    assert!(
        max_distance < seq.len(),
        "max distance {max_distance} must be below the sequence length {}",
        seq.len()
    );
    let freqs = seq.code_frequencies();
    let expected = freqs[a as usize] * freqs[b as usize];
    let values = (min_distance..=max_distance)
        .map(|p| {
            let observed = pair_count_at_distance(seq, a, b, p) as f64 / (seq.len() - p) as f64;
            observed - expected
        })
        .collect();
    OscillationSpectrum {
        a,
        b,
        min_distance,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::gen::iid::uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pair_counts_by_hand() {
        // S = ACGTA: (A at 0, T at 3) → n_AT(3) = 1; n_AC(1) = 1.
        let s = Sequence::dna("ACGTA").unwrap();
        assert_eq!(pair_count_at_distance(&s, 0, 3, 3), 1);
        assert_eq!(pair_count_at_distance(&s, 0, 1, 1), 1);
        assert_eq!(pair_count_at_distance(&s, 0, 0, 4), 1); // A...A
        assert_eq!(pair_count_at_distance(&s, 0, 0, 0), 0);
        assert_eq!(pair_count_at_distance(&s, 0, 0, 10), 0);
    }

    #[test]
    fn perfect_period_has_sharp_peak() {
        // Period-4 sequence: A appears every 4 positions after an A.
        let s = Sequence::dna(&"ACGT".repeat(100)).unwrap();
        let spec = correlation_spectrum(&s, 0, 0, 1, 10);
        let (peak_p, peak_v) = spec.peak().unwrap();
        assert!(peak_p == 4 || peak_p == 8, "peak at {peak_p}");
        // Observed P(A after A at p=4) ≈ 0.25 vs expected 0.0625.
        assert!(peak_v > 0.15, "peak value {peak_v}");
        // Off-period distances are anti-correlated.
        assert!(spec.values[0] < 0.0); // p = 1
    }

    #[test]
    fn random_sequence_has_flat_spectrum() {
        let s = uniform(&mut StdRng::seed_from_u64(1), Alphabet::Dna, 20_000);
        let spec = correlation_spectrum(&s, 0, 3, 1, 30);
        for (i, &v) in spec.values.iter().enumerate() {
            assert!(v.abs() < 0.02, "corr at p={} is {v}", i + 1);
        }
    }

    #[test]
    fn peaks_above_finds_local_maxima() {
        let spec = OscillationSpectrum {
            a: 0,
            b: 0,
            min_distance: 5,
            values: vec![0.0, 0.3, 0.1, 0.05, 0.4, 0.2],
        };
        let peaks = spec.peaks_above(0.25);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].0, 6);
        assert_eq!(peaks[1].0, 9);
    }

    #[test]
    fn planted_helical_period_is_detected() {
        use crate::gen::periodic::{plant_periodic, PeriodicMotif};
        let mut s = uniform(&mut StdRng::seed_from_u64(2), Alphabet::Dna, 10_000);
        let mut rng = StdRng::seed_from_u64(3);
        // Plant A.{10}A.{10}A chains (fixed gap 10 → distance 11).
        let spec = PeriodicMotif {
            motif: vec![0; 6],
            gap_min: 10,
            gap_max: 10,
            occurrences: 250,
        };
        plant_periodic(&mut rng, &mut s, &spec);
        let spectrum = correlation_spectrum(&s, 0, 0, 5, 20);
        let (peak_p, _) = spectrum.peak().unwrap();
        assert_eq!(peak_p, 11, "expected the planted helical-turn distance");
    }

    #[test]
    #[should_panic(expected = "below the sequence length")]
    fn distance_past_sequence_panics() {
        let s = Sequence::dna("ACGT").unwrap();
        let _ = correlation_spectrum(&s, 0, 0, 1, 4);
    }
}
