//! Error type for the sequence substrate.

use std::fmt;

/// Errors produced while building alphabets, encoding sequences or
/// parsing FASTA input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// A custom alphabet was built from an empty character set.
    EmptyAlphabet,
    /// A custom alphabet exceeded the 255-character limit.
    AlphabetTooLarge(usize),
    /// A custom alphabet repeated a character.
    DuplicateLetter(char),
    /// A character outside the alphabet was encountered while encoding.
    UnknownLetter {
        /// The offending character.
        letter: char,
        /// Zero-based position in the input.
        pos: usize,
    },
    /// FASTA input did not start with a `>` header line.
    FastaMissingHeader,
    /// A FASTA record had a header but no sequence lines.
    FastaEmptyRecord {
        /// The record's identifier.
        id: String,
    },
    /// An I/O error occurred while reading or writing (message only, so
    /// the error stays `Clone + PartialEq` for tests).
    Io(String),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::EmptyAlphabet => write!(f, "alphabet must contain at least one character"),
            SeqError::AlphabetTooLarge(n) => {
                write!(f, "alphabet has {n} characters; at most 255 are supported")
            }
            SeqError::DuplicateLetter(c) => {
                write!(f, "alphabet character {c:?} appears more than once")
            }
            SeqError::UnknownLetter { letter, pos } => {
                write!(
                    f,
                    "character {letter:?} at position {pos} is not in the alphabet"
                )
            }
            SeqError::FastaMissingHeader => {
                write!(f, "FASTA input must begin with a '>' header line")
            }
            SeqError::FastaEmptyRecord { id } => {
                write!(f, "FASTA record {id:?} contains no sequence data")
            }
            SeqError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SeqError {}

impl From<std::io::Error> for SeqError {
    fn from(e: std::io::Error) -> Self {
        SeqError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SeqError::UnknownLetter {
            letter: 'N',
            pos: 3,
        };
        assert!(e.to_string().contains("'N'"));
        assert!(e.to_string().contains('3'));
        assert!(SeqError::EmptyAlphabet.to_string().contains("at least one"));
        assert!(SeqError::FastaEmptyRecord { id: "chr1".into() }
            .to_string()
            .contains("chr1"));
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SeqError = io.into();
        assert!(matches!(e, SeqError::Io(msg) if msg.contains("gone")));
    }
}
