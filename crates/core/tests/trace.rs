//! Integration tests for the observability layer: the JSONL trace a
//! mine emits must agree *exactly* with the engine's own
//! `MineOutcome::stats`, across every traced engine (serial MPP,
//! parallel MPP, MPPm, and the multi-sequence miner).

use perigap_core::mpp::{mpp_traced, MppConfig};
use perigap_core::mppm::mppm_traced;
use perigap_core::multiseq::mine_collection_traced;
use perigap_core::parallel::mpp_parallel_traced;
use perigap_core::result::MineOutcome;
use perigap_core::trace::{validate_trace, Json, JsonlObserver, MetricsObserver};
use perigap_core::GapRequirement;
use perigap_seq::gen::iid::uniform;
use perigap_seq::{Alphabet, Sequence};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gap(n: usize, m: usize) -> GapRequirement {
    GapRequirement::new(n, m).unwrap()
}

/// Parse the JSONL text and return the per-level
/// `(level, candidates, frequent, kept)` rows.
fn level_rows(text: &str) -> Vec<(usize, u128, usize, usize)> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).expect("trace line parses"))
        .filter(|v| v.get("event").and_then(Json::as_str) == Some("level"))
        .map(|v| {
            (
                v.get("level").unwrap().as_usize().unwrap(),
                v.get("candidates").unwrap().as_u128().unwrap(),
                v.get("frequent").unwrap().as_usize().unwrap(),
                v.get("kept").unwrap().as_usize().unwrap(),
            )
        })
        .collect()
}

/// Assert that a trace's level events reproduce `outcome.stats.levels`
/// exactly, and that the trace validates against the schema.
fn assert_trace_matches(text: &str, outcome: &MineOutcome, label: &str) {
    let report = validate_trace(text).unwrap_or_else(|e| panic!("{label}: invalid trace: {e}"));
    assert_eq!(
        report.frequent,
        outcome.frequent.len(),
        "{label}: summary frequent"
    );
    assert_eq!(
        report.total_candidates,
        outcome.stats.total_candidates(),
        "{label}: summary candidates"
    );
    let rows = level_rows(text);
    assert_eq!(
        rows.len(),
        outcome.stats.levels.len(),
        "{label}: level count"
    );
    for (row, stat) in rows.iter().zip(&outcome.stats.levels) {
        assert_eq!(row.0, stat.level, "{label}: level id");
        assert_eq!(
            row.1, stat.candidates,
            "{label}: level {} candidates",
            stat.level
        );
        assert_eq!(
            row.2, stat.frequent,
            "{label}: level {} frequent",
            stat.level
        );
        assert_eq!(row.3, stat.extended, "{label}: level {} kept", stat.level);
    }
}

#[test]
fn jsonl_totals_match_stats_across_engines() {
    let seq = uniform(&mut StdRng::seed_from_u64(77), Alphabet::Dna, 600);
    let g = gap(1, 3);
    let rho = 0.0008;
    let config = MppConfig::default();

    let mut serial_sink = JsonlObserver::new(Vec::new());
    let serial = mpp_traced(&seq, g, rho, 12, config.clone(), &mut serial_sink).unwrap();
    let serial_text = String::from_utf8(serial_sink.finish().unwrap()).unwrap();
    assert_trace_matches(&serial_text, &serial, "mpp");

    let mut parallel_sink = JsonlObserver::new(Vec::new());
    let parallel =
        mpp_parallel_traced(&seq, g, rho, 12, config.clone(), 4, &mut parallel_sink).unwrap();
    let parallel_text = String::from_utf8(parallel_sink.finish().unwrap()).unwrap();
    assert_trace_matches(&parallel_text, &parallel, "mpp_parallel");

    let mut mppm_sink = JsonlObserver::new(Vec::new());
    let auto = mppm_traced(&seq, g, rho, 4, config.clone(), &mut mppm_sink).unwrap();
    let mppm_text = String::from_utf8(mppm_sink.finish().unwrap()).unwrap();
    assert_trace_matches(&mppm_text, &auto, "mppm");
    assert!(
        mppm_text.contains("\"event\": \"em\""),
        "MPPm trace must carry the e_m event"
    );

    // Serial and parallel mine the same patterns, so their level series
    // must agree row for row.
    assert_eq!(level_rows(&serial_text), level_rows(&parallel_text));
}

#[test]
fn parallel_trace_engages_pool_with_consistent_worker_totals() {
    // A protein alphabet seeds 20^3 patterns — enough kept candidates
    // to cross the pool's engagement threshold.
    let seq = uniform(&mut StdRng::seed_from_u64(78), Alphabet::Protein, 3_000);
    let mut sink = (JsonlObserver::new(Vec::new()), MetricsObserver::new());
    let outcome =
        mpp_parallel_traced(&seq, gap(0, 2), 1e-6, 6, MppConfig::default(), 4, &mut sink).unwrap();
    let (jsonl, metrics) = sink;
    let text = String::from_utf8(jsonl.finish().unwrap()).unwrap();
    assert_trace_matches(&text, &outcome, "pooled mpp_parallel");

    // Pool events are present in both sinks and internally consistent.
    let pool_lines: Vec<Json> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).unwrap())
        .filter(|v| v.get("event").and_then(Json::as_str) == Some("pool"))
        .collect();
    assert!(!pool_lines.is_empty(), "pool must engage on this input");
    assert_eq!(pool_lines.len(), metrics.pool.len());
    for (line, event) in pool_lines.iter().zip(&metrics.pool) {
        let chunks = line.get("chunks").unwrap().as_usize().unwrap();
        assert_eq!(chunks, event.chunks);
        let workers = line.get("workers").unwrap().as_arr().unwrap();
        let claimed: usize = workers
            .iter()
            .map(|w| w.get("chunks").unwrap().as_usize().unwrap())
            .sum();
        assert_eq!(claimed, chunks, "every chunk claimed exactly once");
    }
}

#[test]
fn multiseq_trace_matches_outcome() {
    let seqs: Vec<Sequence> = (0..6)
        .map(|i| uniform(&mut StdRng::seed_from_u64(200 + i), Alphabet::Dna, 120))
        .collect();
    let config = MppConfig::default();
    let mut sink = JsonlObserver::new(Vec::new());
    let outcome =
        mine_collection_traced(&seqs, gap(1, 2), 0.002, 3, 8, config.clone(), &mut sink).unwrap();
    let text = String::from_utf8(sink.finish().unwrap()).unwrap();
    let report = validate_trace(&text).unwrap();
    assert_eq!(report.frequent, outcome.patterns.len());

    // Degenerate input still produces a valid (summary-only) trace.
    let mut empty_sink = JsonlObserver::new(Vec::new());
    let none: Vec<Sequence> = Vec::new();
    let empty = mine_collection_traced(
        &none,
        gap(1, 2),
        0.002,
        3,
        8,
        config.clone(),
        &mut empty_sink,
    )
    .unwrap();
    assert!(empty.patterns.is_empty());
    let empty_text = String::from_utf8(empty_sink.finish().unwrap()).unwrap();
    validate_trace(&empty_text).unwrap();
}

#[test]
fn noop_and_traced_runs_agree() {
    // Attaching an observer must not change what is mined.
    let seq = uniform(&mut StdRng::seed_from_u64(79), Alphabet::Dna, 400);
    let g = gap(2, 4);
    let plain = perigap_core::mpp::mpp(&seq, g, 0.001, 10, MppConfig::default()).unwrap();
    let mut metrics = MetricsObserver::new();
    let traced = mpp_traced(&seq, g, 0.001, 10, MppConfig::default(), &mut metrics).unwrap();
    assert_eq!(plain.frequent.len(), traced.frequent.len());
    for (a, b) in plain.frequent.iter().zip(&traced.frequent) {
        assert_eq!(a.pattern, b.pattern);
        assert_eq!(a.support, b.support);
    }
    assert_eq!(
        metrics.total_candidates(),
        traced.stats.total_candidates(),
        "observer candidates == engine candidates"
    );
    assert!(metrics.seed.is_some());
    assert_eq!(
        metrics.complete.as_ref().unwrap().frequent,
        traced.frequent.len()
    );
}
