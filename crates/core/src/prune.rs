//! Pruning front-ends over the level-wise engines: top-k by support and
//! targeted mining.
//!
//! Both modes promise output *bit-identical* to post-filtering a full
//! mine, so every prune below has to be airtight against the support
//! algebra this codebase actually implements. That algebra is **not**
//! the textbook anti-monotone one: support is the occurrence-*count*
//! sum over a pattern's PIL, and each extension step can multiply a
//! chain count by up to the gap flexibility `W = M − N + 1` (Theorem 1
//! is exactly the statement `sup(child) ≤ W · sup(parent)`). Two
//! regimes follow:
//!
//! * **Top-k by support.** A bounded min-heap of the best `k` supports
//!   seen so far defines a monotone-rising *support floor*, always ≤
//!   the true k-th largest support of the final frequent set. Gating
//!   *emission* on `sup ≥ floor` is sound at any gap — a pattern below
//!   the floor can never re-enter the top k — and a final rank sort +
//!   truncate makes the output exact regardless of the floor's
//!   (inherently schedule-dependent) raise history. Pruning the *search
//!   space* — join parents, the kept frontier, DFS components, spilled
//!   subtrees — additionally requires that no pruned pattern has a
//!   descendant above the floor. That holds exactly when `W == 1`
//!   (chains cannot branch, so counts collapse to distinct offsets and
//!   support is anti-monotone); for `W > 1` a descendant `Δ` levels
//!   down may reach `sup · W^Δ` with no a-priori depth bound, so no
//!   support floor can soundly cut a join. The pruner therefore
//!   branch-and-bounds the lattice only under rigid gaps and falls back
//!   to emission gating elsewhere.
//! * **Targeted mining.** A [`TargetSpec`] — a code prefix or a symbol
//!   mask — restricts the result set, and results are verified against
//!   the spec as they are admitted. How much of the lattice that lets
//!   us skip differs sharply between the two spec shapes, because the
//!   Apriori self-join needs every contiguous *window* of a result
//!   alive at its level, not just the result's own prefix chain. A
//!   symbol mask is window-closed — every window of an admissible
//!   pattern is itself admissible — so the whole out-of-mask cone
//!   (parents, frontier, DFS components) is pruned before a single
//!   join runs. A prefix constrains windows only at shift 0: the
//!   window of a deep result starting past the prefix is arbitrary, so
//!   the suffix lattice must be materialized in full and a prefix
//!   target prunes emission alone.
//!
//! The engines thread a [`Pruner`] through their level filters, the
//! candidate generators, and the DFS component dispatch. A default
//! (inactive) pruner leaves every code path byte-identical to a full
//! mine, which is what keeps the existing differential suites honest.

use crate::arena::PilSet;
use crate::result::{FrequentPattern, MineOutcome};
use std::cmp::{Ordering as CmpOrdering, Reverse};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which part of the pattern tree a targeted mine should materialize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargetSpec {
    /// Only patterns whose code sequence starts with this prefix.
    Prefix(Vec<u8>),
    /// Only patterns drawn entirely from the masked symbol set;
    /// `mask[code] == true` admits the code.
    Symbols(Vec<bool>),
}

impl TargetSpec {
    /// A prefix target from raw symbol codes.
    pub fn prefix(codes: Vec<u8>) -> TargetSpec {
        TargetSpec::Prefix(codes)
    }

    /// A symbol-set target admitting exactly `allowed` out of an
    /// alphabet of `alphabet_size` codes.
    pub fn symbols(allowed: &[u8], alphabet_size: usize) -> TargetSpec {
        let mut mask = vec![false; alphabet_size];
        for &code in allowed {
            if let Some(slot) = mask.get_mut(code as usize) {
                *slot = true;
            }
        }
        TargetSpec::Symbols(mask)
    }

    /// Does a finished pattern satisfy the spec?
    pub fn admits_pattern(&self, codes: &[u8]) -> bool {
        match self {
            TargetSpec::Prefix(prefix) => {
                codes.len() >= prefix.len() && codes[..prefix.len()] == prefix[..]
            }
            TargetSpec::Symbols(mask) => Self::all_masked(mask, codes),
        }
    }

    /// Cone check: may `codes` still take part in building an
    /// admissible result — as a left join parent, a window of a deeper
    /// descendant, or a DFS component member?
    ///
    /// The self-join derives a result from *every* contiguous window of
    /// it, level by level, so a pattern can only be cut when no
    /// admissible result could contain it as a window. A symbol mask is
    /// closed under windows (each window symbol is a result symbol), so
    /// one masked-out code kills the whole subtree. A prefix is not: a
    /// window starting at shift ≥ the prefix length is unconstrained,
    /// so any pattern might be a window of a long-enough cone result
    /// and nothing can be cut from the search.
    pub fn admits_cone(&self, codes: &[u8]) -> bool {
        match self {
            TargetSpec::Prefix(_) => true,
            TargetSpec::Symbols(mask) => Self::all_masked(mask, codes),
        }
    }

    /// May the pattern stay on the join frontier as a *right* partner?
    /// Prefix targets constrain nothing here — the right parent only
    /// contributes suffix positions past the shared core, which the
    /// prefix may or may not reach — while a masked-out symbol in any
    /// parent is fatal to every candidate containing it.
    pub fn admits_frontier(&self, codes: &[u8]) -> bool {
        match self {
            TargetSpec::Prefix(_) => true,
            TargetSpec::Symbols(mask) => Self::all_masked(mask, codes),
        }
    }

    fn all_masked(mask: &[bool], codes: &[u8]) -> bool {
        codes
            .iter()
            .all(|&c| mask.get(c as usize).copied().unwrap_or(false))
    }
}

/// Pruning configuration carried by `MppConfig`. The default (no top-k,
/// no target) is a full mine and leaves the engines byte-identical to
/// their unpruned behavior.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PruneMode {
    /// Keep only the `k` best-supported patterns (rank order:
    /// support desc, then length asc, then codes asc).
    pub top_k: Option<usize>,
    /// Mine only the patterns admitted by this spec.
    pub target: Option<TargetSpec>,
}

impl PruneMode {
    /// Top-k mode with no target.
    pub fn top_k(k: usize) -> PruneMode {
        PruneMode {
            top_k: Some(k),
            target: None,
        }
    }

    /// Targeted mode with no support bound beyond ρs.
    pub fn targeted(spec: TargetSpec) -> PruneMode {
        PruneMode {
            top_k: None,
            target: Some(spec),
        }
    }

    /// True when no pruning is configured (a plain full mine).
    pub fn is_default(&self) -> bool {
        self.top_k.is_none() && self.target.is_none()
    }
}

/// The shared rising support floor for a top-k run.
///
/// `floor` is a saturated-u64 image of the k-th best support seen so
/// far: reads on the hot path are relaxed loads, raises go through
/// `fetch_max` (a CAS loop on most targets). Saturation keeps the
/// floor conservative — a floor clamped *down* to `u64::MAX` can only
/// under-prune, never over-prune — so supports above `u64::MAX` stay
/// correct.
struct FloorState {
    k: usize,
    floor: AtomicU64,
    raises: AtomicU64,
    pruned: AtomicU64,
    heap: Mutex<BinaryHeap<Reverse<u128>>>,
}

impl FloorState {
    fn new(k: usize) -> FloorState {
        FloorState {
            k,
            floor: AtomicU64::new(0),
            raises: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            heap: Mutex::new(BinaryHeap::with_capacity(k.min(1 << 20))),
        }
    }

    /// Offer a freshly admitted frequent pattern's support; raises the
    /// floor once the heap holds k entries and `sup` beats the minimum.
    fn offer(&self, sup: u128) {
        if self.k == 0 {
            return;
        }
        // A non-zero floor means the heap already holds k entries and
        // the floor *is* the heap minimum, so a support below it could
        // never be pushed — skip the lock on this hot reject path
        // (under emission-only gating most offers end here).
        let floor = self.floor.load(Ordering::Relaxed);
        if floor > 0 && sup < floor as u128 {
            return;
        }
        let mut heap = self
            .heap
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if heap.len() < self.k {
            heap.push(Reverse(sup));
            if heap.len() == self.k {
                let min = heap.peek().expect("non-empty heap").0;
                drop(heap);
                self.raise(min);
            }
        } else if let Some(&Reverse(min)) = heap.peek() {
            if sup > min {
                heap.pop();
                heap.push(Reverse(sup));
                let min = heap.peek().expect("non-empty heap").0;
                drop(heap);
                self.raise(min);
            }
        }
    }

    fn raise(&self, to: u128) {
        let to = u64::try_from(to).unwrap_or(u64::MAX);
        let prev = self.floor.fetch_max(to, Ordering::Relaxed);
        if to > prev {
            self.raises.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    fn admits(&self, sup: u128) -> bool {
        sup >= self.floor.load(Ordering::Relaxed) as u128
    }
}

struct TargetState {
    spec: TargetSpec,
    pruned: AtomicU64,
}

/// Engine-side handle over the active pruning state. Cloning shares
/// the same floor/heap and counters, which is how the worker pools see
/// each other's raises.
#[derive(Clone, Default)]
pub(crate) struct Pruner {
    floor: Option<Arc<FloorState>>,
    target: Option<Arc<TargetState>>,
    /// True when the floor may cut the *search space* (parents, kept
    /// frontier, components, spill restores), not just emission. Only
    /// sound under a rigid gap (`W == 1`), where support is
    /// anti-monotone; see the module docs for why wider gaps admit no
    /// sound subtree bound.
    search_floor: bool,
}

impl Pruner {
    /// Build the pruning state for a run under a gap of the given
    /// `flexibility` (`W = M − N + 1`).
    pub(crate) fn new(mode: &PruneMode, flexibility: usize) -> Pruner {
        Pruner {
            floor: mode.top_k.map(|k| Arc::new(FloorState::new(k))),
            target: mode.target.clone().map(|spec| {
                Arc::new(TargetState {
                    spec,
                    pruned: AtomicU64::new(0),
                })
            }),
            search_floor: mode.top_k.is_some() && flexibility <= 1,
        }
    }

    /// False for the default pruner, whose checks all admit everything.
    #[inline]
    pub(crate) fn is_active(&self) -> bool {
        self.floor.is_some() || self.target.is_some()
    }

    /// Search-space floor test: may a pattern with this support stay in
    /// the lattice at all (result set *and* join frontier)? Admits
    /// everything unless the rigid-gap floor regime is on. Counts a
    /// floor prune on failure.
    #[inline]
    pub(crate) fn admits_search(&self, sup: u128) -> bool {
        if !self.search_floor {
            return true;
        }
        match &self.floor {
            None => true,
            Some(floor) => {
                if floor.admits(sup) {
                    true
                } else {
                    floor.pruned.fetch_add(1, Ordering::Relaxed);
                    false
                }
            }
        }
    }

    /// Emission check for an exact-frequent pattern: target
    /// verification, then the top-k offer, then the floor's emission
    /// gate (sound at any gap — a result below the floor can never be
    /// in the top k). The offer sits between the two so the floor only
    /// ever reflects target-admissible supports; raising it on
    /// out-of-target patterns would over-prune a combined run. Counts
    /// whichever prune fired.
    #[inline]
    pub(crate) fn admits_result(&self, codes: &[u8], sup: u128) -> bool {
        if let Some(target) = &self.target {
            if !target.spec.admits_pattern(codes) {
                target.pruned.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        if let Some(floor) = &self.floor {
            floor.offer(sup);
            if !floor.admits(sup) {
                floor.pruned.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        true
    }

    /// May the pattern stay on the join frontier (as a right partner)?
    #[inline]
    pub(crate) fn admits_frontier(&self, codes: &[u8]) -> bool {
        match &self.target {
            None => true,
            Some(target) => target.spec.admits_frontier(codes),
        }
    }

    /// May the pattern act as a *left* join parent? Checks the target
    /// cone first, then rechecks the rigid-gap floor (which may have
    /// risen since the level filter ran); `sup` is only evaluated when
    /// that regime is on. Counts whichever prune fired.
    #[inline]
    pub(crate) fn admits_parent(&self, codes: &[u8], sup: impl FnOnce() -> u128) -> bool {
        if let Some(target) = &self.target {
            if !target.spec.admits_cone(codes) {
                target.pruned.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        if self.search_floor {
            if let Some(floor) = &self.floor {
                if !floor.admits(sup()) {
                    floor.pruned.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        true
    }

    /// Can any member of a DFS component still seed an admissible
    /// candidate? Every descendant of the component keeps one of the
    /// members as its base-level prefix (the left-ancestor chain stays
    /// inside the component), so a component with no member passing the
    /// cone + floor checks is dead and its whole subtree — spilled or
    /// resident — can be dropped. Counts one prune per member when the
    /// component is dropped.
    pub(crate) fn component_viable(&self, set: &PilSet, members: &[usize]) -> bool {
        if !self.is_active() {
            return true;
        }
        let mut in_cone = false;
        for &m in members {
            let cone = match &self.target {
                None => true,
                Some(target) => target.spec.admits_cone(set.pattern_codes(m)),
            };
            if cone {
                in_cone = true;
                match &self.floor {
                    Some(floor) if self.search_floor => {
                        if floor.admits(set.support(m)) {
                            return true;
                        }
                    }
                    _ => return true,
                }
            }
        }
        let dropped = members.len() as u64;
        if !in_cone {
            if let Some(target) = &self.target {
                target.pruned.fetch_add(dropped, Ordering::Relaxed);
            }
        } else if let Some(floor) = &self.floor {
            floor.pruned.fetch_add(dropped, Ordering::Relaxed);
        }
        false
    }

    /// Best support among a component's cone-admissible members — the
    /// value a spilled component's floor recheck keys on at restore
    /// time (cone membership is fixed; only the floor moves while a
    /// record sits on disk). `u128::MAX` when the rigid-gap floor
    /// regime is off, so the recheck is a no-op on full, targeted, and
    /// wide-gap top-k runs.
    pub(crate) fn component_best(&self, set: &PilSet, members: &[usize]) -> u128 {
        if !self.search_floor || self.floor.is_none() {
            return u128::MAX;
        }
        members
            .iter()
            .filter(|&&m| match &self.target {
                None => true,
                Some(target) => target.spec.admits_cone(set.pattern_codes(m)),
            })
            .map(|&m| set.support(m))
            .max()
            .unwrap_or(0)
    }

    /// Fold the pruning counters into the outcome's stats and put the
    /// result set into its final order: rank order + truncation for
    /// top-k runs, the canonical (length, codes) order otherwise.
    pub(crate) fn finish(&self, outcome: &mut MineOutcome) {
        if let Some(target) = &self.target {
            outcome.stats.pruned_by_target += target.pruned.load(Ordering::Relaxed);
        }
        match &self.floor {
            Some(floor) => {
                outcome.stats.floor_raises += floor.raises.load(Ordering::Relaxed);
                outcome.stats.pruned_by_floor += floor.pruned.load(Ordering::Relaxed);
                outcome.stats.top_k = Some(floor.k);
                rank_sort(&mut outcome.frequent);
                outcome.frequent.truncate(floor.k);
            }
            None => outcome.sort(),
        }
    }
}

/// The canonical top-k rank order: support descending, then length
/// ascending, then codes ascending — the same order `PatternIndex`
/// bakes into its rank array, which is what makes `--top-k` output
/// bit-stable across engines, thread counts, and the store.
pub fn rank_cmp(a: &FrequentPattern, b: &FrequentPattern) -> CmpOrdering {
    b.support
        .cmp(&a.support)
        .then(a.pattern.len().cmp(&b.pattern.len()))
        .then(a.pattern.codes().cmp(b.pattern.codes()))
}

/// Sort a frequent set into rank order (see [`rank_cmp`]).
pub fn rank_sort(frequent: &mut [FrequentPattern]) {
    frequent.sort_by(rank_cmp);
}

/// The post-filter oracle: the first `k` patterns of `frequent` in rank
/// order. A pruned top-k mine must return exactly this, order included.
pub fn select_top_k(frequent: &[FrequentPattern], k: usize) -> Vec<FrequentPattern> {
    let mut ranked = frequent.to_vec();
    rank_sort(&mut ranked);
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::mpp_dfs;
    use crate::gap::GapRequirement;
    use crate::mpp::{mpp, MppConfig};
    use crate::parallel::mpp_parallel;
    use perigap_seq::Sequence;

    #[test]
    fn floor_rises_only_when_heap_is_full() {
        let floor = FloorState::new(3);
        floor.offer(10);
        floor.offer(5);
        assert_eq!(floor.floor.load(Ordering::Relaxed), 0);
        floor.offer(7);
        assert_eq!(floor.floor.load(Ordering::Relaxed), 5);
        floor.offer(4); // below the min: no change
        assert_eq!(floor.floor.load(Ordering::Relaxed), 5);
        floor.offer(20); // evicts 5, min becomes 7
        assert_eq!(floor.floor.load(Ordering::Relaxed), 7);
        assert_eq!(floor.raises.load(Ordering::Relaxed), 2);
        assert!(floor.admits(7));
        assert!(!floor.admits(6));
    }

    #[test]
    fn floor_saturates_past_u64() {
        let floor = FloorState::new(1);
        floor.offer(u128::from(u64::MAX) + 5);
        assert_eq!(floor.floor.load(Ordering::Relaxed), u64::MAX);
        // A saturated floor still admits anything at or above u64::MAX.
        assert!(floor.admits(u128::from(u64::MAX)));
        assert!(!floor.admits(42));
    }

    #[test]
    fn prefix_spec_admission_rules() {
        let spec = TargetSpec::prefix(vec![0, 2]);
        assert!(spec.admits_pattern(&[0, 2]));
        assert!(spec.admits_pattern(&[0, 2, 3]));
        assert!(!spec.admits_pattern(&[0])); // too short
        assert!(!spec.admits_pattern(&[0, 1, 2]));
        // A prefix cannot cut the search: any pattern may be a window
        // (at shift ≥ prefix length) of a deep cone result, so cone and
        // frontier admit everything and only emission filters.
        assert!(spec.admits_cone(&[0, 2, 1]));
        assert!(spec.admits_cone(&[1]));
        assert!(spec.admits_frontier(&[3, 3, 3]));
    }

    #[test]
    fn symbols_spec_admission_rules() {
        let spec = TargetSpec::symbols(&[0, 3], 4);
        assert!(spec.admits_pattern(&[0, 3, 0]));
        assert!(!spec.admits_pattern(&[0, 1]));
        assert!(!spec.admits_cone(&[2]));
        // A masked-out code is fatal on either side of the join.
        assert!(!spec.admits_frontier(&[0, 1]));
        assert!(spec.admits_frontier(&[3, 0]));
        // Codes outside the mask's range are never admitted.
        assert!(!spec.admits_pattern(&[9]));
    }

    #[test]
    fn select_top_k_breaks_ties_by_len_then_codes() {
        let seq = Sequence::dna("ACACAC".repeat(4).as_str()).unwrap();
        let gap = GapRequirement::new(0, 3).unwrap();
        let full = mpp(&seq, gap, 0.05, 6, MppConfig::default()).unwrap();
        let top = select_top_k(&full.frequent, 4);
        assert_eq!(top.len(), 4);
        for pair in top.windows(2) {
            assert_ne!(rank_cmp(&pair[0], &pair[1]), CmpOrdering::Greater);
        }
    }

    /// The tie-heavy regression for the deterministic tie-break: an
    /// AT-repeat where whole levels share one support, with k cutting
    /// through the middle of a tie group, across all three engines and
    /// two thread counts.
    #[test]
    fn top_k_is_bit_stable_across_engines_at_ties() {
        let seq = Sequence::dna("AT".repeat(50).as_str()).unwrap();
        let gap = GapRequirement::new(1, 1).unwrap();
        let rho = 0.4;
        let n = 20;
        let full = mpp(&seq, gap, rho, n, MppConfig::default()).unwrap();
        assert!(full.frequent.len() > 8, "fixture too small to tie-test");
        for k in [1usize, 3, 7, full.frequent.len() + 10] {
            let expect = select_top_k(&full.frequent, k);
            let config = MppConfig {
                prune: PruneMode::top_k(k),
                ..MppConfig::default()
            };
            let serial = mpp(&seq, gap, rho, n, config.clone()).unwrap();
            assert_eq!(serial.frequent, expect, "serial BFS k={k}");
            assert_eq!(serial.stats.top_k, Some(k));
            for threads in [1usize, 3] {
                let par = mpp_parallel(&seq, gap, rho, n, config.clone(), threads).unwrap();
                assert_eq!(par.frequent, expect, "parallel BFS k={k} t={threads}");
                let dfs = mpp_dfs(&seq, gap, rho, n, config.clone(), threads).unwrap();
                assert_eq!(dfs.frequent, expect, "DFS k={k} t={threads}");
            }
        }
    }

    #[test]
    fn targeted_prefix_matches_post_filtered_full_mine() {
        let seq = Sequence::dna("ACGTT".repeat(40).as_str()).unwrap();
        let gap = GapRequirement::new(1, 3).unwrap();
        let rho = 0.005;
        let n = 8;
        let full = mpp(&seq, gap, rho, n, MppConfig::default()).unwrap();
        let spec = TargetSpec::prefix(vec![1, 0]); // "CA" under ACGT coding
        let mut expect: Vec<FrequentPattern> = full
            .frequent
            .iter()
            .filter(|f| spec.admits_pattern(f.pattern.codes()))
            .cloned()
            .collect();
        expect.sort_by(|a, b| {
            (a.pattern.len(), a.pattern.codes()).cmp(&(b.pattern.len(), b.pattern.codes()))
        });
        let config = MppConfig {
            prune: PruneMode::targeted(spec),
            ..MppConfig::default()
        };
        let got = mpp(&seq, gap, rho, n, config.clone()).unwrap();
        assert_eq!(got.frequent, expect);
        assert!(got.stats.pruned_by_target > 0);
        assert_eq!(got.stats.top_k, None);
        for threads in [1usize, 3] {
            let dfs = mpp_dfs(&seq, gap, rho, n, config.clone(), threads).unwrap();
            assert_eq!(dfs.frequent, expect, "DFS t={threads}");
        }
    }

    #[test]
    fn targeted_symbols_matches_post_filtered_full_mine() {
        let seq = Sequence::dna("ACGTT".repeat(40).as_str()).unwrap();
        let gap = GapRequirement::new(1, 3).unwrap();
        let rho = 0.005;
        let n = 8;
        let full = mpp(&seq, gap, rho, n, MppConfig::default()).unwrap();
        let spec = TargetSpec::symbols(&[1, 3], 4); // {C, T}
        let mut expect: Vec<FrequentPattern> = full
            .frequent
            .iter()
            .filter(|f| spec.admits_pattern(f.pattern.codes()))
            .cloned()
            .collect();
        expect.sort_by(|a, b| {
            (a.pattern.len(), a.pattern.codes()).cmp(&(b.pattern.len(), b.pattern.codes()))
        });
        let config = MppConfig {
            prune: PruneMode::targeted(spec),
            ..MppConfig::default()
        };
        let got = mpp(&seq, gap, rho, n, config.clone()).unwrap();
        assert_eq!(got.frequent, expect);
        let par = mpp_parallel(&seq, gap, rho, n, config.clone(), 3).unwrap();
        assert_eq!(par.frequent, expect);
    }

    #[test]
    fn top_k_run_reports_floor_prunes() {
        let seq = Sequence::dna("ACGTT".repeat(60).as_str()).unwrap();
        let gap = GapRequirement::new(1, 3).unwrap();
        let config = MppConfig {
            prune: PruneMode::top_k(3),
            ..MppConfig::default()
        };
        let got = mpp(&seq, gap, 0.005, 8, config).unwrap();
        assert_eq!(got.frequent.len(), 3);
        assert!(got.stats.floor_raises > 0);
        assert!(got.stats.pruned_by_floor > 0);
    }

    /// Under a wide gap (`W > 1`) support can grow under extension, so
    /// the floor must not cut the search space: the top-k result has to
    /// keep matching the post-filter oracle even when deep descendants
    /// out-support every ancestor.
    #[test]
    fn top_k_stays_exact_when_support_grows_with_depth() {
        let seq = Sequence::dna("ACGTT".repeat(40).as_str()).unwrap();
        let gap = GapRequirement::new(1, 3).unwrap();
        let rho = 0.005;
        let n = 8;
        let full = mpp(&seq, gap, rho, n, MppConfig::default()).unwrap();
        let deepest_beats_shallowest = {
            let max_len = full.frequent.iter().map(|f| f.pattern.len()).max().unwrap();
            let min_len = full.frequent.iter().map(|f| f.pattern.len()).min().unwrap();
            let deep_max = full
                .frequent
                .iter()
                .filter(|f| f.pattern.len() == max_len)
                .map(|f| f.support)
                .max()
                .unwrap();
            let shallow_min = full
                .frequent
                .iter()
                .filter(|f| f.pattern.len() == min_len)
                .map(|f| f.support)
                .min()
                .unwrap();
            max_len > min_len && deep_max > shallow_min
        };
        assert!(
            deepest_beats_shallowest,
            "fixture no longer exercises growing support"
        );
        for k in [1usize, 5, 20] {
            let expect = select_top_k(&full.frequent, k);
            let config = MppConfig {
                prune: PruneMode::top_k(k),
                ..MppConfig::default()
            };
            let got = mpp(&seq, gap, rho, n, config.clone()).unwrap();
            assert_eq!(got.frequent, expect, "serial k={k}");
            let dfs = mpp_dfs(&seq, gap, rho, n, config.clone(), 3).unwrap();
            assert_eq!(dfs.frequent, expect, "dfs k={k}");
        }
    }

    /// A combined `--top-k --target` run ranks only within the target
    /// cone: the floor must rise on admitted patterns alone.
    #[test]
    fn top_k_of_a_targeted_mine_ranks_within_the_cone() {
        let seq = Sequence::dna("ACGTT".repeat(40).as_str()).unwrap();
        let gap = GapRequirement::new(1, 3).unwrap();
        let rho = 0.005;
        let n = 8;
        let spec = TargetSpec::symbols(&[1, 3], 4); // {C, T}
        let full = mpp(&seq, gap, rho, n, MppConfig::default()).unwrap();
        let cone: Vec<FrequentPattern> = full
            .frequent
            .iter()
            .filter(|f| spec.admits_pattern(f.pattern.codes()))
            .cloned()
            .collect();
        let expect = select_top_k(&cone, 5);
        let config = MppConfig {
            prune: PruneMode {
                top_k: Some(5),
                target: Some(spec),
            },
            ..MppConfig::default()
        };
        let got = mpp(&seq, gap, rho, n, config.clone()).unwrap();
        assert_eq!(got.frequent, expect);
        let par = mpp_parallel(&seq, gap, rho, n, config, 3).unwrap();
        assert_eq!(par.frequent, expect);
    }
}
