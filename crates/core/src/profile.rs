//! Per-position gap profiles — the generalized pattern form of the
//! paper's introduction.
//!
//! The introduction defines patterns `s_i s_(i+g1) s_(i+g1+g2) …` where
//! *each* `g_j` is its own range; the formal model then fixes one
//! `[N, M]` for every position. This module implements the general
//! form: a [`GapProfile`] assigns every step its own requirement, so a
//! protein miner can demand, say, 28–29 residues between repeats 1→2
//! but 26–28 between 2→3 (the porcine ribonuclease inhibitor's
//! alternating 29/28 unit from Section 1).
//!
//! PIL joins assume a shared gap and do not survive the
//! generalization; instead the miner grows patterns from the left with
//! **end-anchored index lists** (`EIL(P)(y)` = offset sequences of `P`
//! ending at `y`), which extend one character at a time under the
//! step-specific requirement. Pruning uses the Theorem 1 argument
//! verbatim with `W^d` replaced by the product of the trailing
//! flexibilities.

use crate::error::MineError;
use crate::gap::GapRequirement;
use crate::pattern::Pattern;
use crate::result::{FrequentPattern, LevelStats, MineOutcome, MineStats};
use perigap_math::{BigRatio, BigUint};
use perigap_seq::Sequence;
use std::collections::HashMap;
use std::time::Instant;

/// A per-step gap profile: `steps()[j]` constrains the wild-card run
/// between pattern characters `j+1` and `j+2` (1-based characters).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GapProfile {
    steps: Vec<GapRequirement>,
}

impl GapProfile {
    /// A profile from explicit per-step requirements; supports patterns
    /// up to `steps.len() + 1` characters.
    pub fn new(steps: Vec<GapRequirement>) -> Result<GapProfile, MineError> {
        if steps.is_empty() {
            return Err(MineError::InvalidM(0));
        }
        Ok(GapProfile { steps })
    }

    /// The paper's uniform model: the same `[N, M]` at every step, for
    /// patterns up to `max_len` characters.
    pub fn uniform(gap: GapRequirement, max_len: usize) -> GapProfile {
        GapProfile {
            steps: vec![gap; max_len.saturating_sub(1).max(1)],
        }
    }

    /// Per-step requirements.
    pub fn steps(&self) -> &[GapRequirement] {
        &self.steps
    }

    /// Longest pattern this profile can describe.
    pub fn max_pattern_len(&self) -> usize {
        self.steps.len() + 1
    }

    /// The requirement governing step `j` (0-based: between characters
    /// `j+1` and `j+2`).
    ///
    /// # Panics
    /// Panics when `j` is beyond the profile.
    pub fn gap_at(&self, j: usize) -> GapRequirement {
        self.steps[j]
    }

    /// Minimum span of a length-`l` pattern under this profile.
    pub fn min_span(&self, l: usize) -> usize {
        if l == 0 {
            return 0;
        }
        l + self.steps[..l - 1].iter().map(|g| g.min()).sum::<usize>()
    }

    /// Product of the flexibilities of steps `from..to` (0-based,
    /// exclusive `to`) — the Theorem 1 divisor for trailing
    /// perturbations.
    fn flexibility_product(&self, from: usize, to: usize) -> BigUint {
        let mut acc = BigUint::one();
        for g in &self.steps[from..to] {
            acc.mul_assign_u64(g.flexibility() as u64);
        }
        acc
    }
}

/// Number of length-`l` offset sequences under a profile, by position
/// DP (no closed form exists for heterogeneous steps).
pub fn profile_n(seq_len: usize, profile: &GapProfile, l: usize) -> BigUint {
    if l == 0 {
        return BigUint::one();
    }
    if l > profile.max_pattern_len() || seq_len == 0 {
        return BigUint::zero();
    }
    let mut ways = vec![BigUint::one(); seq_len];
    for step_idx in 0..l - 1 {
        let gap = profile.gap_at(step_idx);
        let mut next = vec![BigUint::zero(); seq_len];
        for (c, w) in ways.iter().enumerate() {
            if w.is_zero() {
                continue;
            }
            for step in gap.steps() {
                let target = c + step;
                if target < seq_len {
                    next[target].add_assign_ref(w);
                } else {
                    break;
                }
            }
        }
        ways = next;
    }
    let mut total = BigUint::zero();
    for w in &ways {
        total.add_assign_ref(w);
    }
    total
}

/// Reference support of `pattern` under a profile (position DP oracle).
pub fn support_dp_profile(seq: &Sequence, profile: &GapProfile, pattern: &Pattern) -> u128 {
    if pattern.is_empty() || seq.is_empty() || pattern.len() > profile.max_pattern_len() {
        return 0;
    }
    let len = seq.len();
    let mut ways = vec![0u128; len + 1];
    for (slot, &code) in seq.codes().iter().enumerate() {
        if code == pattern.at1(1) {
            ways[slot + 1] = 1;
        }
    }
    for k in 2..=pattern.len() {
        let gap = profile.gap_at(k - 2);
        let target = pattern.at1(k);
        let mut next = vec![0u128; len + 1];
        for (c, &w) in ways.iter().enumerate().skip(1) {
            if w == 0 {
                continue;
            }
            for step in gap.steps() {
                let t = c + step;
                if t > len {
                    break;
                }
                if seq.at1(t) == target {
                    next[t] = next[t].saturating_add(w);
                }
            }
        }
        ways = next;
    }
    ways.iter().fold(0u128, |acc, &w| acc.saturating_add(w))
}

/// End-anchored index list: `(end offset, count)` ascending — the
/// left-to-right dual of [`crate::pil::Pil`].
type Eil = Vec<(u32, u128)>;

fn eil_support(eil: &Eil) -> u128 {
    eil.iter().fold(0u128, |acc, &(_, c)| acc.saturating_add(c))
}

/// Mine frequent patterns under a gap profile, complete for lengths up
/// to `n` (clamped to the profile's capacity).
///
/// `rho` is the usual support-ratio threshold against the profile's own
/// `N_l` ([`profile_n`]).
pub fn mine_with_profile(
    seq: &Sequence,
    profile: &GapProfile,
    rho: f64,
    n: usize,
    start_level: usize,
) -> Result<MineOutcome, MineError> {
    if !(rho > 0.0 && rho <= 1.0) {
        return Err(MineError::InvalidThreshold(rho));
    }
    if start_level == 0 {
        return Err(MineError::InvalidM(0));
    }
    let started = Instant::now();
    let max_len = profile.max_pattern_len();
    let start = start_level.min(max_len);
    if seq.len() < profile.min_span(start) {
        return Err(MineError::SequenceTooShort {
            len: seq.len(),
            needed: profile.min_span(start),
        });
    }
    let rho_exact = BigRatio::from_f64_exact(rho);
    let n = n.clamp(start, max_len);
    let sigma = seq.alphabet().size() as u8;

    // N_l table for every reachable level.
    let n_table: Vec<BigUint> = (0..=max_len)
        .map(|l| profile_n(seq.len(), profile, l))
        .collect();
    let n_n = n_table[n].clone();

    // Seed: EILs of every length-1 pattern.
    let mut current: HashMap<Pattern, Eil> = HashMap::new();
    for code in 0..sigma {
        let eil: Eil = seq
            .codes()
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == code)
            .map(|(i, _)| ((i + 1) as u32, 1u128))
            .collect();
        if !eil.is_empty() {
            current.insert(Pattern::from_codes(vec![code]), eil);
        }
    }
    // Grow to the start level unconditionally (shorter patterns are not
    // reported, mirroring the paper's "start at length 3").
    let mut level = 1;
    while level < start {
        current = extend_all(seq, profile, current, level - 1, sigma);
        level += 1;
    }

    let mut stats = MineStats {
        n_used: n,
        ..MineStats::default()
    };
    let mut frequent = Vec::new();
    let mut candidates_at_level = (sigma as u128).saturating_pow(start as u32);

    while level <= max_len && !current.is_empty() {
        let level_started = Instant::now();
        let n_l = &n_table[level];
        if n_l.is_zero() {
            break;
        }
        // Thresholds: exact = ρ·N_l; relaxed = ρ·N_n / Π trailing W.
        let exact_rhs = rho_exact.mul(&BigRatio::from_integer(n_l.clone()));
        let relaxed_divisor = if level < n {
            profile.flexibility_product(level.saturating_sub(1), n - 1)
        } else {
            BigUint::one()
        };
        let relaxed_rhs = rho_exact.mul(&BigRatio::from_integer(n_n.clone()));

        let n_l_f64 = n_l.to_f64();
        let mut kept: HashMap<Pattern, Eil> = HashMap::new();
        let mut frequent_here = 0usize;
        for (pattern, eil) in current.drain() {
            let sup = eil_support(&eil);
            let sup_big = BigUint::from_u128(sup);
            if sup_big.mul_ref(exact_rhs.denom()) >= *exact_rhs.numer() {
                frequent.push(FrequentPattern {
                    pattern: pattern.clone(),
                    support: sup,
                    ratio: sup as f64 / n_l_f64,
                });
                frequent_here += 1;
            }
            let lhs = sup_big.mul_ref(&relaxed_divisor);
            let passes_relaxed = if level < n {
                lhs.mul_ref(relaxed_rhs.denom()) >= *relaxed_rhs.numer()
            } else {
                sup_big.mul_ref(exact_rhs.denom()) >= *exact_rhs.numer()
            };
            if passes_relaxed {
                kept.insert(pattern, eil);
            }
        }
        stats.levels.push(LevelStats {
            level,
            candidates: candidates_at_level,
            frequent: frequent_here,
            extended: kept.len(),
            elapsed: level_started.elapsed(),
        });
        if kept.is_empty() || level == max_len {
            break;
        }
        candidates_at_level = (kept.len() as u128).saturating_mul(sigma as u128);
        current = extend_all(seq, profile, kept, level - 1, sigma);
        level += 1;
    }

    stats.total_elapsed = started.elapsed();
    let mut outcome = MineOutcome { frequent, stats };
    outcome.sort();
    Ok(outcome)
}

/// Extend every pattern by every character under step `step_idx`.
fn extend_all(
    seq: &Sequence,
    profile: &GapProfile,
    current: HashMap<Pattern, Eil>,
    step_idx: usize,
    sigma: u8,
) -> HashMap<Pattern, Eil> {
    let gap = profile.gap_at(step_idx);
    let len = seq.len();
    let mut next: HashMap<Pattern, Eil> = HashMap::new();
    for (pattern, eil) in current {
        // Bucket successor ends per character, accumulating counts in
        // offset order via a dense scratch map.
        let mut buckets: Vec<HashMap<u32, u128>> = vec![HashMap::new(); sigma as usize];
        for &(y, count) in &eil {
            for step in gap.steps() {
                let target = y as usize + step;
                if target > len {
                    break;
                }
                let ch = seq.at1(target) as usize;
                *buckets[ch].entry(target as u32).or_insert(0) += count;
            }
        }
        for (ch, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut eil: Eil = bucket.into_iter().collect();
            eil.sort_unstable_by_key(|&(y, _)| y);
            let mut codes = pattern.codes().to_vec();
            codes.push(ch as u8);
            next.insert(Pattern::from_codes(codes), eil);
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::OffsetCounts;
    use crate::mpp::{mpp, MppConfig};
    use crate::naive::support_dp;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    #[test]
    fn uniform_profile_matches_mpp() {
        let seq = uniform(&mut StdRng::seed_from_u64(81), Alphabet::Dna, 120);
        let g = gap(1, 3);
        let rho = 0.002;
        let n = 10;
        let reference = mpp(&seq, g, rho, n, MppConfig::default()).unwrap();
        let profile = GapProfile::uniform(g, 15);
        let mined = mine_with_profile(&seq, &profile, rho, n, 3).unwrap();
        assert_eq!(mined.frequent.len(), reference.frequent.len());
        for f in &reference.frequent {
            let found = mined.get(&f.pattern).expect("profile miner finds it");
            assert_eq!(found.support, f.support);
        }
    }

    #[test]
    fn profile_n_matches_uniform_counts() {
        let g = gap(2, 4);
        let counts = OffsetCounts::new(60, g);
        let profile = GapProfile::uniform(g, 12);
        for l in 0..=12 {
            assert_eq!(profile_n(60, &profile, l), counts.n(l), "l = {l}");
        }
    }

    #[test]
    fn support_oracle_matches_uniform_dp() {
        let seq = uniform(&mut StdRng::seed_from_u64(82), Alphabet::Dna, 80);
        let g = gap(1, 2);
        let profile = GapProfile::uniform(g, 8);
        for text in ["ACG", "TTTT", "GATC"] {
            let p = Pattern::parse(text, &Alphabet::Dna).unwrap();
            assert_eq!(
                support_dp_profile(&seq, &profile, &p),
                support_dp(&seq, g, &p),
                "pattern {text}"
            );
        }
    }

    #[test]
    fn heterogeneous_profile_counts_by_hand() {
        // S = ACGTA (L=5); profile: step0 gap [1,1] (step 2), step1 gap
        // [0,0] (step 1). Offset seqs of length 3: [c1, c1+2, c1+3] with
        // c1+3 ≤ 5 → c1 ∈ {1, 2}: N_3 = 2.
        let profile = GapProfile::new(vec![gap(1, 1), gap(0, 0)]).unwrap();
        assert_eq!(profile_n(5, &profile, 3).to_u64(), Some(2));
        assert_eq!(profile.max_pattern_len(), 3);
        assert_eq!(profile.min_span(3), 3 + 1);
        // Pattern AGT matches S=ACGTA at [1,3,4]: sup = 1.
        let seq = Sequence::dna("ACGTA").unwrap();
        let p = Pattern::parse("AGT", &Alphabet::Dna).unwrap();
        assert_eq!(support_dp_profile(&seq, &profile, &p), 1);
    }

    #[test]
    fn heterogeneous_mining_finds_planted_structure() {
        // Background of C; plant A .. A . A structures: gaps exactly 2
        // then 1.
        let mut codes = vec![1u8; 100];
        for start in (0..90).step_by(10) {
            codes[start] = 0;
            codes[start + 3] = 0;
            codes[start + 5] = 0;
        }
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let profile = GapProfile::new(vec![gap(2, 2), gap(1, 1)]).unwrap();
        let mined = mine_with_profile(&seq, &profile, 0.05, 3, 3).unwrap();
        let aaa = Pattern::from_codes(vec![0, 0, 0]);
        let found = mined.get(&aaa).expect("planted AAA under the profile");
        assert_eq!(found.support, 9);
        // The same pattern under the *reversed* profile does not match.
        let reversed = GapProfile::new(vec![gap(1, 1), gap(2, 2)]).unwrap();
        assert_eq!(support_dp_profile(&seq, &reversed, &aaa), 0);
    }

    #[test]
    fn mined_supports_match_oracle() {
        let seq = uniform(&mut StdRng::seed_from_u64(83), Alphabet::Dna, 150);
        let profile =
            GapProfile::new(vec![gap(1, 2), gap(2, 3), gap(0, 1), gap(1, 1), gap(2, 2)]).unwrap();
        let mined = mine_with_profile(&seq, &profile, 0.003, 6, 3).unwrap();
        assert!(!mined.frequent.is_empty());
        for f in &mined.frequent {
            assert_eq!(f.support, support_dp_profile(&seq, &profile, &f.pattern));
        }
    }

    #[test]
    fn completeness_against_brute_force() {
        let seq = uniform(&mut StdRng::seed_from_u64(84), Alphabet::Dna, 70);
        let profile = GapProfile::new(vec![gap(1, 2), gap(0, 2), gap(1, 3)]).unwrap();
        let rho = 0.01;
        let mined = mine_with_profile(&seq, &profile, rho, 4, 2).unwrap();
        // Brute force every pattern of lengths 2..=4.
        let rho_exact = BigRatio::from_f64_exact(rho);
        for l in 2..=4usize {
            let n_l = profile_n(70, &profile, l);
            let mut stack = vec![0u8; l];
            loop {
                let p = Pattern::from_codes(stack.clone());
                let sup = support_dp_profile(&seq, &profile, &p);
                let is_frequent = BigUint::from_u128(sup).mul_ref(rho_exact.denom())
                    >= rho_exact.numer().mul_ref(&n_l);
                assert_eq!(
                    mined.get(&p).is_some(),
                    is_frequent,
                    "pattern {:?} at length {l}",
                    p.display(&Alphabet::Dna)
                );
                let mut i = l;
                loop {
                    if i == 0 {
                        break;
                    }
                    stack[i - 1] += 1;
                    if stack[i - 1] < 4 {
                        break;
                    }
                    stack[i - 1] = 0;
                    i -= 1;
                }
                if i == 0 {
                    break;
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        let seq = Sequence::dna("ACGT").unwrap();
        let profile = GapProfile::uniform(gap(1, 2), 5);
        assert!(mine_with_profile(&seq, &profile, 0.0, 5, 3).is_err());
        assert!(GapProfile::new(vec![]).is_err());
        // Sequence too short for the start level.
        let tiny = Sequence::dna("AC").unwrap();
        assert!(matches!(
            mine_with_profile(&tiny, &profile, 0.1, 5, 3),
            Err(MineError::SequenceTooShort { .. })
        ));
    }
}
