//! The MPP algorithm (Figure 3) and the shared level-wise engine.
//!
//! MPP takes a user estimate `n` of the longest frequent pattern
//! length. Below level `n` it prunes with the Theorem 1 factor
//! `λ(n, n−i)`; above it the factor degenerates to 1 (a plain
//! level-wise pass), making longer patterns best-effort. The engine is
//! shared with [`crate::mppm`], which differs only in how `n` is
//! chosen.

use crate::adaptive::{ReprCache, ReprPolicy};
use crate::arena::{build_seed, generate_candidates, prefix_runs, PilSet};
use crate::counts::OffsetCounts;
use crate::error::MineError;
use crate::gap::GapRequirement;
use crate::kernel::{Kernel, ResolvedKernel};
use crate::lambda::BoundTable;
use crate::pattern::Pattern;
use crate::pil::JoinCounters;
use crate::prune::{PruneMode, Pruner};
use crate::result::{FrequentPattern, LevelStats, MineOutcome, MineStats};
use crate::trace::{AbortEvent, CompleteEvent, LevelEvent, MineObserver, NoopObserver, SeedEvent};
use perigap_math::BigRatio;
use perigap_seq::Sequence;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs common to every level-wise run.
#[derive(Clone, Debug)]
pub struct MppConfig {
    /// First mined pattern length. The paper starts at 3 because over a
    /// 4-letter alphabet shorter patterns are always frequent and thus
    /// uninteresting.
    pub start_level: usize,
    /// Hard cap on the deepest level (safety valve; `None` runs to
    /// `l2`).
    pub max_level: Option<usize>,
    /// Ceiling on live arena bytes (parent + candidate generations
    /// combined). When mining would exceed it the run aborts with
    /// [`MineError::MemoryCeiling`] instead of thrashing; `None` is
    /// unlimited. The hybrid DFS engine can finish under the ceiling
    /// anyway by spilling cold subtrees — see [`MppConfig::spill_dir`].
    pub max_arena_bytes: Option<usize>,
    /// Per-suffix PIL representation policy for the join kernels
    /// (sparse sliding-window merge vs dense prefix-sum probe) — a pure
    /// performance knob; mined output and `MineStats` are bit-identical
    /// under every setting. See [`crate::adaptive::ReprPolicy`].
    pub pil_repr: ReprPolicy,
    /// Compute-kernel selection for the dense window probe and the
    /// level-3 seeding scan (scalar vs AVX2 SIMD). Like
    /// [`MppConfig::pil_repr`] this is a pure performance knob: mined
    /// output, saturation flags and `MineStats` are bit-identical under
    /// every setting. See [`crate::kernel`].
    pub kernel: Kernel,
    /// Directory for DFS spill records (see [`crate::spill`]). `Some`
    /// arms spill-to-disk on the hybrid engine when `max_arena_bytes`
    /// is also set; the breadth-first engines ignore it and keep the
    /// abort-at-ceiling behaviour. Ignored when [`MppConfig::spill_io`]
    /// supplies a backend directly.
    pub spill_dir: Option<PathBuf>,
    /// Fraction of `max_arena_bytes` at which the hybrid engine starts
    /// spilling cold subtree arenas (`0.0` spills at every handoff,
    /// `1.0` only at the ceiling itself). Only consulted when a spill
    /// backend is configured. Default `0.5`.
    pub spill_watermark: f64,
    /// Spill backend override for tests and benchmarks. Takes
    /// precedence over [`MppConfig::spill_dir`]; mining results are
    /// identical for any correct backend.
    pub spill_io: Option<Arc<dyn crate::spill::SpillIo>>,
    /// Pruning mode: top-k by support and/or a mining target (see
    /// [`crate::prune`]). The default is a plain full mine; any active
    /// mode trades the full frequent set for a (much) smaller search.
    pub prune: PruneMode,
}

impl Default for MppConfig {
    fn default() -> Self {
        MppConfig {
            start_level: 3,
            max_level: None,
            max_arena_bytes: None,
            pil_repr: ReprPolicy::default(),
            kernel: Kernel::default(),
            spill_dir: None,
            spill_watermark: 0.5,
            spill_io: None,
            prune: PruneMode::default(),
        }
    }
}

/// Run MPP: mine all patterns with support ratio ≥ `rho` (guaranteed
/// complete for lengths ≤ `n`; best-effort beyond).
///
/// `rho` is the support threshold as a fraction (the paper's
/// `ρs = 0.003%` is `0.00003`).
pub fn mpp(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    n: usize,
    config: MppConfig,
) -> Result<MineOutcome, MineError> {
    mpp_traced(seq, gap, rho, n, config, &mut NoopObserver)
}

/// [`mpp`] with a [`MineObserver`] attached. The observer is a generic
/// parameter, so `mpp` (which passes [`NoopObserver`]) monomorphizes to
/// the exact pre-observability hot path.
pub fn mpp_traced<O: MineObserver>(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    n: usize,
    config: MppConfig,
    observer: &mut O,
) -> Result<MineOutcome, MineError> {
    let started = Instant::now();
    let repr_before = crate::adaptive::repr_stats();
    let (counts, rho_exact) = prepare(seq, gap, rho, &config)?;
    let kern = config.kernel.resolve();
    let seed_started = Instant::now();
    let pils = build_seed(seq, gap, config.start_level, kern);
    observer.on_seed(&SeedEvent {
        level: config.start_level,
        patterns: pils.len(),
        pil_entries: pils.entry_count(),
        arena_bytes: pils.arena_bytes(),
        elapsed: seed_started.elapsed(),
    });
    let (mut outcome, peak) = match run_levelwise(
        seq, &counts, &rho_exact, n, &config, kern, pils, None, observer,
    ) {
        Ok(done) => done,
        Err(e) => {
            observer.on_abort(&AbortEvent {
                message: e.to_string(),
            });
            return Err(e);
        }
    };
    outcome.stats.total_elapsed = started.elapsed();
    observer.on_repr(
        &crate::adaptive::repr_stats()
            .since(repr_before)
            .to_event(config.pil_repr.mode),
    );
    observer.on_complete(
        &CompleteEvent::from_outcome(&outcome)
            .with_peak_arena_bytes(peak)
            .with_kernel(kern),
    );
    Ok(outcome)
}

/// Fail with [`MineError::MemoryCeiling`] when `live` arena bytes
/// exceed the configured ceiling.
pub(crate) fn check_ceiling(limit: Option<usize>, live: usize) -> Result<(), MineError> {
    match limit {
        Some(cap) if live > cap => Err(MineError::MemoryCeiling {
            limit: cap,
            required: live,
        }),
        _ => Ok(()),
    }
}

/// Validate inputs and build the shared counting table.
pub(crate) fn prepare(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    config: &MppConfig,
) -> Result<(OffsetCounts, BigRatio), MineError> {
    if !(rho > 0.0 && rho <= 1.0) {
        return Err(MineError::InvalidThreshold(rho));
    }
    if config.start_level == 0 {
        return Err(MineError::InvalidM(0));
    }
    let needed = gap.min_span(config.start_level);
    if seq.len() < needed {
        return Err(MineError::SequenceTooShort {
            len: seq.len(),
            needed,
        });
    }
    Ok((
        OffsetCounts::new(seq.len(), gap),
        BigRatio::from_f64_exact(rho),
    ))
}

/// The level-wise core shared by MPP and MPPm.
///
/// `seed` holds the PILs of every start-level pattern with non-zero
/// support, sorted, in the arena layout. Each level filters the current
/// generation against the exact and Theorem 1 bounds, then generates
/// the next generation by run-detection over the sorted survivors
/// (Section 5.1's `Gen(L̂)` without any hashing — see
/// [`crate::arena`]). A level's [`LevelStats::elapsed`] covers the
/// whole level: filtering *and* the join fan-out that produces the next
/// generation.
///
/// Returns the outcome together with the peak live arena bytes the run
/// reached (parent + candidate generation combined), or
/// [`MineError::MemoryCeiling`] when [`MppConfig::max_arena_bytes`]
/// would be exceeded.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_levelwise<O: MineObserver>(
    seq: &Sequence,
    counts: &OffsetCounts,
    rho: &BigRatio,
    n: usize,
    config: &MppConfig,
    kern: ResolvedKernel,
    seed: PilSet,
    mut stats_seed: Option<MineStats>,
    observer: &mut O,
) -> Result<(MineOutcome, usize), MineError> {
    let gap = counts.gap();
    let sigma = seq.alphabet().size() as u128;
    let start = config.start_level;
    // Figure 3 line 3: if n > l1, n = l1. Also never below the start
    // level — the engine cannot prune with a target shorter than the
    // patterns it begins from.
    let n = n.clamp(start, counts.l1().max(start));
    let hard_cap = config.max_level.unwrap_or(usize::MAX).min(counts.l2());

    let mut stats = stats_seed.take().unwrap_or_default();
    stats.n_used = n;
    let pruner = Pruner::new(&config.prune, counts.gap().flexibility());
    let mut frequent: Vec<FrequentPattern> = Vec::new();
    let mut bounds = BoundTable::new(counts, rho, n);

    let mut current = seed;
    // One reused output set: the join fan-out writes into buffers that
    // survive across levels.
    let mut next = PilSet::new(start + 1);
    // One reused representation cache: per-suffix dense builds live
    // only for the level that decided them.
    let mut repr = ReprCache::with_kernel(config.pil_repr, kern, Some(gap));
    let mut kept: Vec<usize> = Vec::new();
    let mut level = start;
    let mut candidates_at_level: u128 = sigma.saturating_pow(start as u32);
    let mut peak = current.arena_bytes();
    check_ceiling(config.max_arena_bytes, peak)?;

    while level <= hard_cap {
        let level_started = Instant::now();
        if counts.n(level).is_zero() {
            break;
        }
        let row = bounds.row(level);

        kept.clear();
        let mut frequent_here = 0usize;
        for i in 0..current.len() {
            let sup = current.support(i);
            let admits_exact = row.exact.admits_u128(sup);
            let admits_lhat = row.lhat.admits_u128(sup);
            if (admits_exact || admits_lhat) && !pruner.admits_search(sup) {
                continue;
            }
            if admits_exact && pruner.admits_result(current.pattern_codes(i), sup) {
                frequent.push(FrequentPattern {
                    pattern: Pattern::from_codes(current.pattern_codes(i).to_vec()),
                    support: sup,
                    ratio: sup as f64 / row.n_f64,
                });
                frequent_here += 1;
            }
            if admits_lhat && pruner.admits_frontier(current.pattern_codes(i)) {
                kept.push(i);
            }
        }
        let evaluated = current.len();
        let extended = kept.len();
        let gen_saturated = current.saturated();
        stats.support_saturated |= gen_saturated;
        let finish_level = |stats: &mut MineStats,
                            observer: &mut O,
                            join_elapsed: Duration,
                            elapsed,
                            arena_bytes: usize,
                            jc: JoinCounters| {
            stats.levels.push(LevelStats {
                level,
                candidates: candidates_at_level,
                frequent: frequent_here,
                extended,
                elapsed,
            });
            observer.on_level(&LevelEvent {
                level,
                candidates: candidates_at_level,
                evaluated,
                frequent: frequent_here,
                kept: extended,
                pruned_bound: evaluated - extended,
                pruned_support: evaluated - frequent_here,
                arena_bytes,
                joins: jc.joins,
                probed: jc.probed,
                reallocs: jc.reallocs,
                bytes_moved: jc.bytes_moved,
                join_elapsed,
                elapsed,
                saturated: gen_saturated,
            });
        };

        if kept.is_empty() || level == hard_cap {
            finish_level(
                &mut stats,
                observer,
                Duration::ZERO,
                level_started.elapsed(),
                current.arena_bytes(),
                JoinCounters::default(),
            );
            break;
        }

        // Gen(L̂): join pairs with suffix(P1) = prefix(P2) (Section 5.1).
        let join_started = Instant::now();
        let runs = prefix_runs(&current, &kept);
        next.reset(level + 1);
        repr.begin(current.len());
        let mut jc = JoinCounters::default();
        generate_candidates(
            &current,
            &kept,
            &runs,
            gap,
            0,
            kept.len(),
            &mut next,
            &mut repr,
            kern,
            &mut jc,
            &pruner,
        );
        let live = current.arena_bytes() + next.arena_bytes();
        peak = peak.max(live);
        check_ceiling(config.max_arena_bytes, live)?;
        finish_level(
            &mut stats,
            observer,
            join_started.elapsed(),
            level_started.elapsed(),
            live,
            jc,
        );

        candidates_at_level = next.len() as u128;
        if next.is_empty() {
            break;
        }
        std::mem::swap(&mut current, &mut next);
        level += 1;
    }

    let mut outcome = MineOutcome { frequent, stats };
    pruner.finish(&mut outcome);
    Ok((outcome, peak))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lambda::PruneBound;
    use crate::naive::support_dp;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    /// Brute-force frequent patterns of lengths `start..=max_len` by DP
    /// support counting over all σ^l patterns. Exponential in `max_len`
    /// — keep it small.
    fn brute_force(
        seq: &Sequence,
        g: GapRequirement,
        rho: f64,
        start: usize,
        max_len: usize,
    ) -> Vec<(Pattern, u128)> {
        let counts = OffsetCounts::new(seq.len(), g);
        let rho = BigRatio::from_f64_exact(rho);
        let sigma = seq.alphabet().size() as u8;
        let mut out = Vec::new();
        for l in start..=max_len {
            if counts.n(l).is_zero() {
                break;
            }
            let bound = PruneBound::exact(&counts, &rho, l);
            let mut stack = vec![0u8; l];
            // Odometer over all sigma^l patterns.
            loop {
                let p = Pattern::from_codes(stack.clone());
                let sup = support_dp(seq, g, &p);
                if bound.admits_u128(sup) {
                    out.push((p, sup));
                }
                // Increment odometer.
                let mut i = l;
                loop {
                    if i == 0 {
                        break;
                    }
                    stack[i - 1] += 1;
                    if stack[i - 1] < sigma {
                        break;
                    }
                    stack[i - 1] = 0;
                    i -= 1;
                }
                if i == 0 {
                    break;
                }
            }
        }
        out
    }

    #[test]
    fn matches_brute_force_small() {
        let s = uniform(&mut StdRng::seed_from_u64(11), Alphabet::Dna, 60);
        let g = gap(1, 3);
        let rho = 0.001;
        const CAP: usize = 6;
        let expected = brute_force(&s, g, rho, 3, CAP);
        let outcome = mpp(&s, g, rho, 20, MppConfig::default()).unwrap();
        // n = 20 ≥ longest frequent, so the result must be complete:
        // compare both directions for lengths ≤ CAP.
        let mined_short: Vec<_> = outcome.frequent.iter().filter(|f| f.len() <= CAP).collect();
        assert_eq!(mined_short.len(), expected.len());
        for (p, sup) in &expected {
            let found = outcome
                .get(p)
                .unwrap_or_else(|| panic!("missing pattern {:?}", p.display(&Alphabet::Dna)));
            assert_eq!(found.support, *sup);
        }
    }

    #[test]
    fn complete_for_lengths_up_to_n() {
        let s = uniform(&mut StdRng::seed_from_u64(12), Alphabet::Dna, 80);
        let g = gap(1, 2);
        let rho = 0.002;
        const CAP: usize = 5;
        let expected = brute_force(&s, g, rho, 3, CAP);
        // Run MPP with n = CAP: completeness is guaranteed up to CAP.
        let outcome = mpp(&s, g, rho, CAP, MppConfig::default()).unwrap();
        for (p, _) in &expected {
            assert!(
                outcome.get(p).is_some(),
                "pattern {:?} of length {} missing with n = {CAP}",
                p.display(&Alphabet::Dna),
                p.len()
            );
        }
    }

    #[test]
    fn supports_and_ratios_are_correct() {
        let s = uniform(&mut StdRng::seed_from_u64(13), Alphabet::Dna, 120);
        let g = gap(2, 4);
        let outcome = mpp(&s, g, 0.005, 15, MppConfig::default()).unwrap();
        let counts = OffsetCounts::new(s.len(), g);
        assert!(!outcome.frequent.is_empty(), "something should be frequent");
        for f in &outcome.frequent {
            assert_eq!(f.support, support_dp(&s, g, &f.pattern));
            let expected_ratio = f.support as f64 / counts.n_f64(f.len());
            assert!((f.ratio - expected_ratio).abs() < 1e-12);
            assert!(
                f.ratio >= 0.005 * (1.0 - 1e-9),
                "ratio {} below rho",
                f.ratio
            );
        }
    }

    #[test]
    fn small_n_is_subset_of_large_n() {
        let s = uniform(&mut StdRng::seed_from_u64(14), Alphabet::Dna, 150);
        let g = gap(1, 3);
        let small = mpp(&s, g, 0.001, 3, MppConfig::default()).unwrap();
        let large = mpp(&s, g, 0.001, 30, MppConfig::default()).unwrap();
        for f in &small.frequent {
            let in_large = large.get(&f.pattern).expect("large-n run must contain it");
            assert_eq!(in_large.support, f.support);
        }
        assert!(small.frequent.len() <= large.frequent.len());
    }

    #[test]
    fn n_is_clamped_to_l1() {
        let s = uniform(&mut StdRng::seed_from_u64(15), Alphabet::Dna, 50);
        let g = gap(9, 12);
        let outcome = mpp(&s, g, 0.01, 500, MppConfig::default()).unwrap();
        let l1 = g.l1(50);
        assert_eq!(outcome.stats.n_used, l1.max(3));
    }

    #[test]
    fn stats_track_candidates() {
        let s = uniform(&mut StdRng::seed_from_u64(16), Alphabet::Dna, 200);
        let g = gap(1, 2);
        let outcome = mpp(&s, g, 0.0005, 10, MppConfig::default()).unwrap();
        let stats = &outcome.stats;
        assert_eq!(stats.levels[0].level, 3);
        assert_eq!(stats.levels[0].candidates, 64, "seed level counts σ^3");
        // L ⊆ L̂ at every level below n.
        for l in &stats.levels {
            assert!(l.frequent <= l.extended || l.level >= stats.n_used);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let s = Sequence::dna("ACGTACGTACGT").unwrap();
        let g = gap(1, 2);
        assert!(matches!(
            mpp(&s, g, 0.0, 5, MppConfig::default()),
            Err(MineError::InvalidThreshold(_))
        ));
        assert!(matches!(
            mpp(&s, g, 1.5, 5, MppConfig::default()),
            Err(MineError::InvalidThreshold(_))
        ));
        let tiny = Sequence::dna("ACG").unwrap();
        assert!(matches!(
            mpp(&tiny, gap(9, 12), 0.1, 5, MppConfig::default()),
            Err(MineError::SequenceTooShort { .. })
        ));
    }

    #[test]
    fn max_level_caps_depth() {
        let s = Sequence::dna(&"AT".repeat(100)).unwrap();
        let g = gap(1, 1);
        let config = MppConfig {
            max_level: Some(4),
            ..MppConfig::default()
        };
        let outcome = mpp(&s, g, 0.5, 10, config).unwrap();
        assert!(outcome.longest_len() <= 4);
        assert!(outcome.stats.levels.iter().all(|l| l.level <= 4));
    }

    #[test]
    fn check_ceiling_boundary_is_strictly_greater() {
        // The pinned semantics for every ceiling check in the
        // workspace (the BFS engines here, the DFS `MemGauge`): a live
        // total exactly at the cap passes, one byte over aborts, and
        // the error reports both sides.
        assert!(check_ceiling(None, usize::MAX).is_ok());
        assert!(check_ceiling(Some(1024), 0).is_ok());
        assert!(
            check_ceiling(Some(1024), 1024).is_ok(),
            "live == cap passes"
        );
        match check_ceiling(Some(1024), 1025) {
            Err(MineError::MemoryCeiling { limit, required }) => {
                assert_eq!((limit, required), (1024, 1025));
            }
            other => panic!("expected MemoryCeiling, got {other:?}"),
        }
        assert!(check_ceiling(Some(0), 0).is_ok());
        assert!(check_ceiling(Some(0), 1).is_err());
    }

    #[test]
    fn arena_ceiling_aborts_mining() {
        let s = uniform(&mut StdRng::seed_from_u64(17), Alphabet::Dna, 400);
        let g = gap(0, 3);
        let config = MppConfig {
            max_arena_bytes: Some(64),
            ..MppConfig::default()
        };
        match mpp(&s, g, 0.0005, 10, config) {
            Err(MineError::MemoryCeiling { limit, required }) => {
                assert_eq!(limit, 64);
                assert!(required > 64);
            }
            other => panic!("expected MemoryCeiling, got {other:?}"),
        }
        // A generous ceiling leaves the result untouched.
        let roomy = MppConfig {
            max_arena_bytes: Some(usize::MAX),
            ..MppConfig::default()
        };
        let capped = mpp(&s, g, 0.0005, 10, roomy).unwrap();
        let free = mpp(&s, g, 0.0005, 10, MppConfig::default()).unwrap();
        assert_eq!(capped.frequent, free.frequent);
    }

    #[test]
    fn mining_is_representation_invariant() {
        use crate::adaptive::{PilRepr, ReprPolicy};
        let s = uniform(&mut StdRng::seed_from_u64(18), Alphabet::Dna, 300);
        let g = gap(0, 3);
        let rho = 0.0008;
        let base_cfg = MppConfig {
            pil_repr: ReprPolicy::of(PilRepr::Sparse),
            ..MppConfig::default()
        };
        let base = mpp(&s, g, rho, 12, base_cfg).unwrap();
        for mode in [PilRepr::Dense, PilRepr::Auto] {
            let cfg = MppConfig {
                pil_repr: ReprPolicy::of(mode),
                ..MppConfig::default()
            };
            let out = mpp(&s, g, rho, 12, cfg).unwrap();
            assert_eq!(base.frequent, out.frequent, "mode {mode}");
            assert_eq!(base.stats.n_used, out.stats.n_used);
            assert_eq!(base.stats.support_saturated, out.stats.support_saturated);
            assert_eq!(base.stats.levels.len(), out.stats.levels.len());
            for (a, b) in base.stats.levels.iter().zip(&out.stats.levels) {
                assert_eq!(
                    (a.level, a.candidates, a.frequent, a.extended),
                    (b.level, b.candidates, b.frequent, b.extended),
                    "mode {mode}"
                );
            }
        }
    }

    #[test]
    fn repetitive_sequence_mines_deep_patterns() {
        // ATATAT… with gap [1,1]: AAA…A and TTT…T are the only patterns
        // with support; everything of the form A^k is frequent at low rho.
        // Ratio of A^l here is exactly 0.5 (A occupies every odd start),
        // so rho = 0.4 keeps the homogeneous patterns frequent.
        let s = Sequence::dna(&"AT".repeat(50)).unwrap();
        let g = gap(1, 1);
        let outcome = mpp(&s, g, 0.4, 20, MppConfig::default()).unwrap();
        assert!(
            outcome.longest_len() >= 10,
            "longest = {}",
            outcome.longest_len()
        );
        for f in &outcome.frequent {
            let codes = f.pattern.codes();
            assert!(
                codes.iter().all(|&c| c == 0) || codes.iter().all(|&c| c == 3),
                "unexpected pattern {:?}",
                f.pattern.display(&Alphabet::Dna)
            );
        }
    }
}
