//! Result and statistics types shared by all mining algorithms.

use crate::pattern::Pattern;
use std::time::Duration;

/// One mined frequent pattern with its evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct FrequentPattern {
    /// The pattern (shorthand form).
    pub pattern: Pattern,
    /// `sup(P)`: distinct matching offset sequences.
    pub support: u128,
    /// `sup(P) / N_l` — the quantity compared against ρs.
    pub ratio: f64,
}

impl FrequentPattern {
    /// Pattern length `|P|`.
    pub fn len(&self) -> usize {
        self.pattern.len()
    }

    /// True iff the pattern has no characters (never produced by the
    /// miners; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.pattern.is_empty()
    }
}

/// Per-level counters: the raw material of the paper's Table 3.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LevelStats {
    /// Pattern length at this level.
    pub level: usize,
    /// `|C_level|`: candidates generated (for the seed level, all
    /// `σ^level` patterns, matching the paper's accounting).
    pub candidates: u128,
    /// `|L_level|`: candidates meeting the plain frequency threshold.
    pub frequent: usize,
    /// `|L̂_level|`: candidates meeting the λ-relaxed threshold and thus
    /// carried into candidate generation.
    pub extended: usize,
    /// Wall-clock time spent on this level.
    pub elapsed: Duration,
}

/// Run-wide statistics.
#[derive(Clone, Debug, Default)]
pub struct MineStats {
    /// Per-level counters in level order.
    pub levels: Vec<LevelStats>,
    /// The `n` the level-wise engine actually used (after clamping to
    /// `l1`, or as estimated by MPPm).
    pub n_used: usize,
    /// MPPm's `e_m` statistic, if one was computed.
    pub em: Option<u64>,
    /// Time spent computing `e_m` (zero for MPP).
    pub em_elapsed: Duration,
    /// Total wall-clock time of the run.
    pub total_elapsed: Duration,
    /// True when any PIL support counter hit its `u64` ceiling during
    /// the run: reported supports are then lower bounds, not exact
    /// counts. Surfaced by the CLI and by `trace::CompleteEvent`.
    pub support_saturated: bool,
    /// Spill records the DFS engine wrote under the memory ceiling
    /// (see [`crate::spill`]); zero on the breadth-first engines and on
    /// unbounded runs. Like every other counter these are deterministic,
    /// but they describe the memory policy, not the mined output — the
    /// spill invariance tests compare stats *minus* these four fields.
    pub spilled_records: u64,
    /// Serialized bytes written across all spill records.
    pub spilled_bytes: u64,
    /// Spill records read back and mined (equals `spilled_records` on a
    /// completed run — every cold subtree is restored exactly once).
    pub restored_records: u64,
    /// Serialized bytes read back across all restores.
    pub restored_bytes: u64,
    /// Spill records whose backing file could not be removed after
    /// their subtree was mined (or during the abort sweep). Each one
    /// also surfaces as a `spill-cleanup` warning trace event; the mine
    /// itself still completes — a leftover file costs disk, not
    /// correctness.
    pub spill_cleanup_failures: u64,
    /// The `k` a top-k run was bounded to (`None` on full and targeted
    /// mines). When set, `frequent` holds the rank-ordered top k, which
    /// is smaller than the per-level `frequent` totals.
    pub top_k: Option<usize>,
    /// Times the shared top-k support floor actually rose. Like the
    /// spill counters this describes the search schedule, not the mined
    /// output — raise timing depends on thread interleaving, so the
    /// pruning invariance tests compare outputs, not these counters.
    pub floor_raises: u64,
    /// Patterns and join parents pruned by the rising support floor
    /// (schedule-dependent; see [`MineStats::floor_raises`]).
    pub pruned_by_floor: u64,
    /// Join parents, components, and post-verified results pruned by
    /// the [`crate::prune::TargetSpec`] of a targeted run.
    pub pruned_by_target: u64,
}

impl MineStats {
    /// Total candidates across all levels.
    pub fn total_candidates(&self) -> u128 {
        self.levels.iter().map(|l| l.candidates).sum()
    }

    /// Candidate count at one level, if the level was reached.
    pub fn candidates_at(&self, level: usize) -> Option<u128> {
        self.levels
            .iter()
            .find(|l| l.level == level)
            .map(|l| l.candidates)
    }
}

/// The outcome of a mining run: the frequent patterns (sorted by
/// length, then lexicographically by codes) plus run statistics.
#[derive(Clone, Debug, Default)]
pub struct MineOutcome {
    /// Every frequent pattern found.
    pub frequent: Vec<FrequentPattern>,
    /// Run statistics.
    pub stats: MineStats,
}

impl MineOutcome {
    /// Length of the longest frequent pattern (0 when none).
    pub fn longest_len(&self) -> usize {
        self.frequent.iter().map(|f| f.len()).max().unwrap_or(0)
    }

    /// All frequent patterns of one length.
    pub fn of_length(&self, len: usize) -> impl Iterator<Item = &FrequentPattern> {
        self.frequent.iter().filter(move |f| f.len() == len)
    }

    /// Number of frequent patterns of one length.
    pub fn count_of_length(&self, len: usize) -> usize {
        self.of_length(len).count()
    }

    /// Look up one pattern's result.
    pub fn get(&self, pattern: &Pattern) -> Option<&FrequentPattern> {
        self.frequent.iter().find(|f| &f.pattern == pattern)
    }

    /// Canonical ordering: by length, then by codes.
    pub fn sort(&mut self) {
        self.frequent
            .sort_by(|a, b| (a.len(), a.pattern.codes()).cmp(&(b.len(), b.pattern.codes())));
    }

    /// The closed subset of the frequent patterns, in the original
    /// order: a pattern is dropped iff some frequent pattern one
    /// symbol longer extends it (as prefix or suffix) with **equal**
    /// support, making the shorter pattern pure redundancy. Supports
    /// are not anti-monotone under flexible gaps, so this is a
    /// post-filter over the emitted set, never a search-side prune.
    pub fn closed_frequent(&self) -> Vec<FrequentPattern> {
        let by_codes: std::collections::HashMap<&[u8], u128> = self
            .frequent
            .iter()
            .map(|f| (f.pattern.codes(), f.support))
            .collect();
        let mut dropped = std::collections::HashSet::new();
        for f in &self.frequent {
            let codes = f.pattern.codes();
            if codes.len() < 2 {
                continue;
            }
            for sub in [&codes[..codes.len() - 1], &codes[1..]] {
                if by_codes.get(sub) == Some(&f.support) {
                    dropped.insert(sub.to_vec());
                }
            }
        }
        self.frequent
            .iter()
            .filter(|f| !dropped.contains(f.pattern.codes()))
            .cloned()
            .collect()
    }
}

/// Run-wide statistics of a sharded corpus mine (see
/// [`crate::corpus::mine_corpus`]). All counters are deterministic for
/// a given corpus + config + checkpoint state; which shards count as
/// `restored_shards` vs `mined_shards` depends on what the resumed
/// checkpoint directory already held.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Shards (sequences) in the corpus.
    pub shards: usize,
    /// Shards mined fresh this run.
    pub mined_shards: usize,
    /// Shards restored from checkpoint records instead of mined.
    pub restored_shards: usize,
    /// Checkpoint records written this run (0 when checkpointing is
    /// off).
    pub checkpoint_records: u64,
    /// Serialized bytes written across those records (manifest
    /// rewrites excluded).
    pub checkpoint_bytes: u64,
    /// Length in symbols of the longest shard — the straggler the
    /// longest-first schedule front-loads.
    pub longest_shard: usize,
    /// The corpus file's trailing FNV-1a hash (what the manifest pins).
    pub corpus_hash: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(text: &[u8], support: u128) -> FrequentPattern {
        FrequentPattern {
            pattern: Pattern::from_codes(text.to_vec()),
            support,
            ratio: 0.5,
        }
    }

    #[test]
    fn outcome_queries() {
        let mut outcome = MineOutcome {
            frequent: vec![fp(&[0, 1, 2], 10), fp(&[0, 1], 20), fp(&[3, 3], 5)],
            stats: MineStats::default(),
        };
        outcome.sort();
        assert_eq!(outcome.longest_len(), 3);
        assert_eq!(outcome.count_of_length(2), 2);
        assert_eq!(outcome.count_of_length(5), 0);
        // Sorted: [0,1] before [3,3] before [0,1,2].
        assert_eq!(outcome.frequent[0].pattern.codes(), &[0, 1]);
        assert_eq!(outcome.frequent[2].pattern.codes(), &[0, 1, 2]);
        assert!(outcome.get(&Pattern::from_codes(vec![3, 3])).is_some());
        assert!(outcome.get(&Pattern::from_codes(vec![9])).is_none());
    }

    #[test]
    fn stats_totals() {
        let stats = MineStats {
            levels: vec![
                LevelStats {
                    level: 3,
                    candidates: 64,
                    ..Default::default()
                },
                LevelStats {
                    level: 4,
                    candidates: 100,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(stats.total_candidates(), 164);
        assert_eq!(stats.candidates_at(4), Some(100));
        assert_eq!(stats.candidates_at(5), None);
    }

    #[test]
    fn empty_outcome() {
        let outcome = MineOutcome::default();
        assert_eq!(outcome.longest_len(), 0);
        assert_eq!(outcome.stats.total_candidates(), 0);
    }

    #[test]
    fn closed_filter_drops_absorbed_patterns() {
        // [0,1] extends to [0,1,2] at equal support -> dropped;
        // [1,2] is the suffix of [0,1,2] at equal support -> dropped;
        // [2,3] has a frequent extension but at lower support -> kept.
        let outcome = MineOutcome {
            frequent: vec![
                fp(&[0, 1], 10),
                fp(&[1, 2], 10),
                fp(&[2, 3], 12),
                fp(&[0, 1, 2], 10),
                fp(&[2, 3, 0], 7),
            ],
            stats: MineStats::default(),
        };
        let closed = outcome.closed_frequent();
        let codes: Vec<&[u8]> = closed.iter().map(|f| f.pattern.codes()).collect();
        assert_eq!(codes, vec![&[2u8, 3][..], &[0, 1, 2][..], &[2, 3, 0][..]]);
    }

    /// Differential oracle: the production hash-probe filter must agree
    /// with the obvious O(n²) scan over the full frequent set of a
    /// real mine.
    #[test]
    fn closed_filter_matches_naive_scan_on_mined_output() {
        use crate::gap::GapRequirement;
        use crate::mpp::{mpp, MppConfig};
        use perigap_seq::Sequence;

        let seq = Sequence::dna(&"ACGTT".repeat(60)).unwrap();
        let gap = GapRequirement::new(1, 3).unwrap();
        let outcome = mpp(&seq, gap, 0.005, 10, MppConfig::default()).unwrap();
        assert!(
            outcome.frequent.len() > 10,
            "fixture must mine a non-trivial set"
        );

        let naive: Vec<&FrequentPattern> = outcome
            .frequent
            .iter()
            .filter(|p| {
                !outcome.frequent.iter().any(|q| {
                    q.len() == p.len() + 1
                        && q.support == p.support
                        && (p.pattern.is_prefix_of(&q.pattern)
                            || q.pattern.codes()[1..] == *p.pattern.codes())
                })
            })
            .collect();
        let fast = outcome.closed_frequent();
        assert!(fast.len() < outcome.frequent.len(), "filter must bite");
        assert_eq!(fast.len(), naive.len());
        for (a, b) in fast.iter().zip(naive) {
            assert_eq!(a, b);
        }
    }
}
