//! Corpus-scale sharded mining: a memory-mapped packed corpus file,
//! per-sequence shard fan-out on the work-stealing pool, and
//! checkpoint/resume.
//!
//! [`multiseq::mine_collection`](crate::multiseq::mine_collection)
//! walks every sequence of a collection level by level over in-RAM
//! `Vec`s. That is faithful to the paper's MPP-M formulation but does
//! not scale to a corpus: N worker threads would hold N heap copies of
//! the input, and a killed long mine restarts from zero. This module
//! is the bridge from "one sequence in RAM" to "corpus under a memory
//! cap that survives a kill":
//!
//! 1. **The `PGCO` corpus file** packs every sequence at
//!    [`KeyCodec`](crate::packed::KeyCodec) width (2 bits/symbol for
//!    DNA, 5 for protein) behind one offset/ID directory and a
//!    trailing FNV-1a hash. [`Corpus::open`] memory-maps it read-only,
//!    so any number of worker threads share one kernel mapping instead
//!    of per-thread heap copies; each worker decodes only the shard it
//!    actually mines.
//! 2. **Sharded mining** ([`mine_corpus`]) turns each sequence into a
//!    unit of work fanned out on the existing
//!    [`parallel`](crate::parallel) work-stealing pool,
//!    longest-shards-first so the straggler tail overlaps the small
//!    shards. Emission inside every engine is *exact* (a pattern is
//!    emitted iff the exact per-level bound admits it, and the λ̂
//!    schedule is sound), so per-shard frequent sets merge into the
//!    collection outcome bit-identically to `mine_collection`: a
//!    pattern is collection-frequent iff it is frequent in at least
//!    `min_sequences` shards, and per-sequence supports for the
//!    remaining shards are recovered with the exact DP oracle.
//! 3. **Checkpoint/resume** reuses the PGST wire conventions of
//!    [`spill`](crate::spill): every completed shard is serialized as
//!    one checksummed record under the checkpoint directory, a
//!    manifest pins (corpus hash, gap, ρs, n, engine config, completed
//!    shard set) and is atomically rewritten after each shard, and a
//!    resumed run validates the manifest, restores completed shards,
//!    and mines only the missing ones. Every corruption mode is a
//!    typed [`MineError`] — the merge never sees state it cannot
//!    verify.

use crate::dfs::mpp_dfs;
use crate::error::MineError;
use crate::gap::GapRequirement;
use crate::mpp::{mpp, MppConfig};
use crate::multiseq::{CollectionOutcome, CollectionPattern};
use crate::packed::KeyCodec;
use crate::parallel::{PoolHooks, PoolJob, WorkerPool};
use crate::pattern::Pattern;
use crate::result::CorpusStats;
use crate::spill::{fnv1a, Take};
use crate::trace::{CompleteEvent, MineObserver, NoopObserver, ShardEvent};
use perigap_seq::{pack_codes, packed_len, unpack_codes, Alphabet, Sequence};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const CORPUS_MAGIC: &[u8; 4] = b"PGCO";
const CORPUS_VERSION: u32 = 1;
/// Fixed-size corpus header: magic + version + alphabet tag + bit
/// width + sequence count.
const CORPUS_HEADER: usize = 4 + 4 + 1 + 1 + 4;
const ALPHABET_DNA: u8 = 0;
const ALPHABET_PROTEIN: u8 = 1;

const PGST_MAGIC: &[u8; 4] = b"PGST";
const PGST_VERSION: u32 = 1;
/// Section tag for per-shard checkpoint records — mirrored as
/// `perigap_store::TAG_CORPUS_CHECKPOINT` (the store crate cannot be
/// imported from here without inverting the dependency).
const TAG_CORPUS_CHECKPOINT: u8 = 4;
/// Section tag for the checkpoint manifest — mirrored as
/// `perigap_store::TAG_CORPUS_MANIFEST`.
const TAG_CORPUS_MANIFEST: u8 = 5;
/// Record id the manifest reports errors under (no shard owns it).
const MANIFEST_RECORD: u64 = u64::MAX;
/// Trailing checksum size shared by every record in this module.
const TRAILER: usize = 8;

/// File name of the checkpoint manifest inside `--checkpoint-dir`.
pub const MANIFEST_FILE: &str = "manifest.pgcm";

fn corpus_err(message: impl Into<String>) -> MineError {
    MineError::CorpusIo {
        message: message.into(),
    }
}

fn corpus_take_err(_record: u64, message: String) -> MineError {
    MineError::CorpusIo { message }
}

fn ckpt_err(record: u64, message: String) -> MineError {
    MineError::CheckpointIo { record, message }
}

// ---------------------------------------------------------------------
// Read-only file mapping
// ---------------------------------------------------------------------

/// A read-only `mmap` of a whole file, declared raw (no libc crate —
/// the same idiom as the SIGINT shim in `perigap-serve`). The mapping
/// is immutable and lives as long as the [`Corpus`], so sharing it
/// across worker threads is sound.
#[cfg(unix)]
struct Mapping {
    ptr: *mut u8,
    len: usize,
}

#[cfg(unix)]
unsafe impl Send for Mapping {}
#[cfg(unix)]
unsafe impl Sync for Mapping {}

#[cfg(unix)]
impl Mapping {
    fn map(file: &fs::File, len: usize) -> Option<Mapping> {
        use std::os::unix::io::AsRawFd;
        extern "C" {
            fn mmap(
                addr: *mut u8,
                len: usize,
                prot: i32,
                flags: i32,
                fd: i32,
                offset: i64,
            ) -> *mut u8;
        }
        const PROT_READ: i32 = 1;
        const MAP_PRIVATE: i32 = 2;
        if len == 0 {
            return None;
        }
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return None;
        }
        Some(Mapping { ptr, len })
    }

    fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mapping {
    fn drop(&mut self) {
        extern "C" {
            fn munmap(addr: *mut u8, len: usize) -> i32;
        }
        unsafe {
            munmap(self.ptr, self.len);
        }
    }
}

/// Where the corpus bytes live: a shared kernel mapping (the zero-copy
/// production path) or one heap buffer (the portable fallback and the
/// `open_buffered` test path).
enum Backing {
    #[cfg(unix)]
    Mapped(Mapping),
    Heap(Vec<u8>),
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Backing::Mapped(m) => m.bytes(),
            Backing::Heap(v) => v,
        }
    }
}

// ---------------------------------------------------------------------
// The corpus file
// ---------------------------------------------------------------------

/// One sequence's entry in the corpus directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    /// Sequence name (the FASTA record id at pack time).
    pub name: String,
    /// Sequence length in symbols.
    pub len: usize,
    /// Absolute byte offset of the packed payload inside the file.
    offset: usize,
}

/// An opened `PGCO` corpus: validated directory over (usually) a
/// memory-mapped packed payload.
///
/// File layout, all integers little-endian:
///
/// ```text
/// "PGCO" | u32 version | u8 alphabet | u8 bits | u32 count
/// count × ( u32 name_len | name | u64 symbols | u64 payload_offset )
/// count × packed payload (bit stream, byte-aligned per sequence)
/// u64 FNV-1a over everything above   ← the "corpus hash"
/// ```
///
/// The hash is checked on open, payload offsets must tile the payload
/// region exactly, and the bit width must match the
/// [`KeyCodec`](crate::packed::KeyCodec) width of the alphabet —
/// anything else is [`MineError::CorpusIo`].
pub struct Corpus {
    backing: Backing,
    alphabet: Alphabet,
    bits: u32,
    entries: Vec<ShardEntry>,
    hash: u64,
}

impl std::fmt::Debug for Corpus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Corpus")
            .field("alphabet", &self.alphabet)
            .field("bits", &self.bits)
            .field("sequences", &self.entries.len())
            .field("hash", &format_args!("{:#018x}", self.hash))
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl Corpus {
    /// Pack `sequences` (all over one alphabet — DNA or protein) into
    /// a corpus file at `path`, written atomically (tmp + rename).
    /// Returns the corpus hash the file trails with.
    pub fn write(path: &Path, sequences: &[(String, Sequence)]) -> Result<u64, MineError> {
        if sequences.is_empty() {
            return Err(corpus_err("a corpus needs at least one sequence"));
        }
        let alphabet = sequences[0].1.alphabet().clone();
        let tag = match alphabet {
            Alphabet::Dna => ALPHABET_DNA,
            Alphabet::Protein => ALPHABET_PROTEIN,
            Alphabet::Custom(_) => {
                return Err(corpus_err(
                    "corpus files support the DNA and protein alphabets only",
                ))
            }
        };
        if sequences.len() > u32::MAX as usize {
            return Err(corpus_err("too many sequences for one corpus"));
        }
        let bits = KeyCodec::new(alphabet.size()).bits();
        let mut buf = Vec::new();
        buf.extend_from_slice(CORPUS_MAGIC);
        buf.extend_from_slice(&CORPUS_VERSION.to_le_bytes());
        buf.push(tag);
        buf.push(bits as u8);
        buf.extend_from_slice(&(sequences.len() as u32).to_le_bytes());
        let dir_bytes: usize = sequences
            .iter()
            .map(|(name, _)| 4 + name.len() + 8 + 8)
            .sum();
        let mut offset = CORPUS_HEADER + dir_bytes;
        for (name, seq) in sequences {
            if seq.alphabet() != &alphabet {
                return Err(corpus_err(format!(
                    "sequence {name:?} uses a different alphabet than the first sequence"
                )));
            }
            if name.len() > u32::MAX as usize {
                return Err(corpus_err(format!("sequence name of {} bytes", name.len())));
            }
            buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
            buf.extend_from_slice(&(seq.len() as u64).to_le_bytes());
            buf.extend_from_slice(&(offset as u64).to_le_bytes());
            offset += packed_len(seq.len(), bits);
        }
        debug_assert_eq!(buf.len(), CORPUS_HEADER + dir_bytes);
        for (_, seq) in sequences {
            buf.extend_from_slice(&pack_codes(seq.codes(), bits));
        }
        let hash = fnv1a(&buf);
        buf.extend_from_slice(&hash.to_le_bytes());
        let tmp = path.with_extension("pgco.tmp");
        fs::write(&tmp, &buf)
            .map_err(|e| corpus_err(format!("cannot write {}: {e}", tmp.display())))?;
        fs::rename(&tmp, path)
            .map_err(|e| corpus_err(format!("cannot rename into {}: {e}", path.display())))?;
        Ok(hash)
    }

    /// Open a corpus zero-copy: memory-map the file read-only and
    /// validate the directory and trailing hash against the mapping.
    /// Falls back to one heap read where `mmap` is unavailable.
    pub fn open(path: &Path) -> Result<Corpus, MineError> {
        let file = fs::File::open(path)
            .map_err(|e| corpus_err(format!("cannot open {}: {e}", path.display())))?;
        let len = file
            .metadata()
            .map_err(|e| corpus_err(format!("cannot stat {}: {e}", path.display())))?
            .len() as usize;
        #[cfg(unix)]
        if let Some(mapping) = Mapping::map(&file, len) {
            return Corpus::validate(Backing::Mapped(mapping));
        }
        drop(file);
        Corpus::open_buffered(path)
    }

    /// Open a corpus through one heap read instead of a mapping — the
    /// portable fallback, kept public so tests can pin the non-mmap
    /// path. Validation and mining behaviour are identical.
    pub fn open_buffered(path: &Path) -> Result<Corpus, MineError> {
        let bytes = fs::read(path)
            .map_err(|e| corpus_err(format!("cannot read {}: {e}", path.display())))?;
        Corpus::validate(Backing::Heap(bytes))
    }

    /// Validate the full file image: header, directory, payload
    /// tiling, trailing hash.
    fn validate(backing: Backing) -> Result<Corpus, MineError> {
        let bytes = backing.bytes();
        if bytes.len() < CORPUS_HEADER + TRAILER {
            return Err(corpus_err(format!(
                "file of {} bytes is shorter than a corpus header",
                bytes.len()
            )));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - TRAILER);
        let stored = u64::from_le_bytes(trailer.try_into().expect("exact length"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(corpus_err(format!(
                "hash mismatch: file says {stored:#018x}, contents hash to {computed:#018x} \
                 (truncated or corrupt corpus)"
            )));
        }
        let mut r = Take::new(body, 0, corpus_take_err);
        if r.bytes(4)? != CORPUS_MAGIC {
            return Err(corpus_err("bad magic (not a PGCO corpus file)"));
        }
        let version = r.u32()?;
        if version != CORPUS_VERSION {
            return Err(corpus_err(format!("unknown corpus version {version}")));
        }
        let alphabet = match r.u8()? {
            ALPHABET_DNA => Alphabet::Dna,
            ALPHABET_PROTEIN => Alphabet::Protein,
            other => return Err(corpus_err(format!("unknown alphabet tag {other}"))),
        };
        let bits = r.u8()? as u32;
        let expected_bits = KeyCodec::new(alphabet.size()).bits();
        if bits != expected_bits {
            return Err(corpus_err(format!(
                "bit width {bits} does not match the {expected_bits}-bit codec width of {alphabet:?}"
            )));
        }
        let count = r.u32()? as usize;
        // Each directory entry is ≥ 20 bytes; refuse nonsense counts
        // before allocating for them.
        if count > body.len() / 20 {
            return Err(corpus_err(format!(
                "sequence count {count} cannot fit in a {}-byte file",
                body.len()
            )));
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let name_len = r.u32()? as usize;
            let name = std::str::from_utf8(r.bytes(name_len)?)
                .map_err(|_| corpus_err(format!("sequence {i} name is not UTF-8")))?
                .to_string();
            let len = r.u64()? as usize;
            let offset = r.u64()? as usize;
            entries.push(ShardEntry { name, len, offset });
        }
        // Payloads must tile the region between the directory and the
        // trailer exactly, in order.
        let mut expected = body.len() - r.remaining();
        for (i, entry) in entries.iter().enumerate() {
            if entry.offset != expected {
                return Err(corpus_err(format!(
                    "sequence {i} payload offset {} does not tile the payload region \
                     (expected {expected})",
                    entry.offset
                )));
            }
            expected += packed_len(entry.len, bits);
        }
        if expected != body.len() {
            return Err(corpus_err(format!(
                "payload region ends at {expected}, file body has {} bytes",
                body.len()
            )));
        }
        Ok(Corpus {
            backing,
            alphabet,
            bits,
            entries,
            hash: stored,
        })
    }

    /// Number of sequences (= shards).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the corpus holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The directory entry of shard `i`.
    pub fn entry(&self, i: usize) -> &ShardEntry {
        &self.entries[i]
    }

    /// The corpus alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The trailing FNV-1a hash — what checkpoint manifests pin.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Total symbols across all sequences.
    pub fn total_symbols(&self) -> usize {
        self.entries.iter().map(|e| e.len).sum()
    }

    /// Total bytes of the backing file image.
    pub fn file_bytes(&self) -> usize {
        self.backing.bytes().len()
    }

    /// True when the corpus is served from a kernel mapping rather
    /// than a heap buffer.
    pub fn is_mapped(&self) -> bool {
        match self.backing {
            #[cfg(unix)]
            Backing::Mapped(_) => true,
            Backing::Heap(_) => false,
        }
    }

    /// Decode shard `i` into a byte-coded [`Sequence`] — the only
    /// per-shard heap copy a worker holds.
    pub fn sequence(&self, i: usize) -> Result<Sequence, MineError> {
        let entry = &self.entries[i];
        let span = packed_len(entry.len, self.bits);
        let payload = &self.backing.bytes()[entry.offset..entry.offset + span];
        let codes = unpack_codes(payload, self.bits, entry.len);
        Sequence::from_codes(self.alphabet.clone(), codes).map_err(|e| {
            corpus_err(format!(
                "shard {i} payload decodes outside the {:?} alphabet: {e}",
                self.alphabet
            ))
        })
    }
}

// ---------------------------------------------------------------------
// Checkpoint records and manifest
// ---------------------------------------------------------------------

/// Checkpointing knobs for [`mine_corpus`].
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory for per-shard records and the manifest (created if
    /// missing).
    pub dir: PathBuf,
    /// Resume from an existing manifest instead of starting fresh.
    /// The manifest must describe this corpus and these mining
    /// parameters exactly, or the run refuses with
    /// [`MineError::CheckpointMismatch`].
    pub resume: bool,
    /// Stop (with [`MineError::CorpusPaused`]) once this many shards
    /// have been checkpointed this run — the deterministic stand-in
    /// for a mid-run `SIGKILL` used by benchmarks and tests. With one
    /// thread the pause point is exact; under a parallel fan-out,
    /// in-flight shards may still complete (and if every shard was
    /// claimed before the flag rose, the run simply finishes).
    pub stop_after_shards: Option<usize>,
}

impl CheckpointConfig {
    /// Checkpoint into `dir`, starting fresh.
    pub fn fresh(dir: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig {
            dir: dir.into(),
            resume: false,
            stop_after_shards: None,
        }
    }

    /// Resume from the manifest in `dir`.
    pub fn resume(dir: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig {
            dir: dir.into(),
            resume: true,
            stop_after_shards: None,
        }
    }
}

/// Everything a manifest pins about a run. Two runs may merge shard
/// results only when every field here matches.
#[derive(Clone, Debug, PartialEq)]
struct Manifest {
    corpus_hash: u64,
    gap_min: u64,
    gap_max: u64,
    rho_bits: u64,
    n: u64,
    min_sequences: u64,
    start_level: u64,
    /// `u64::MAX` encodes "no cap".
    max_level: u64,
    engine: u8,
    completed: Vec<bool>,
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(PGST_MAGIC);
    buf.extend_from_slice(&PGST_VERSION.to_le_bytes());
    buf.push(TAG_CORPUS_MANIFEST);
    buf.extend_from_slice(&m.corpus_hash.to_le_bytes());
    buf.extend_from_slice(&m.gap_min.to_le_bytes());
    buf.extend_from_slice(&m.gap_max.to_le_bytes());
    buf.extend_from_slice(&m.rho_bits.to_le_bytes());
    buf.extend_from_slice(&m.n.to_le_bytes());
    buf.extend_from_slice(&m.min_sequences.to_le_bytes());
    buf.extend_from_slice(&m.start_level.to_le_bytes());
    buf.extend_from_slice(&m.max_level.to_le_bytes());
    buf.push(m.engine);
    buf.extend_from_slice(&(m.completed.len() as u32).to_le_bytes());
    let mut bitmap = vec![0u8; m.completed.len().div_ceil(8)];
    for (i, &done) in m.completed.iter().enumerate() {
        if done {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    buf.extend_from_slice(&bitmap);
    let digest = fnv1a(&buf);
    buf.extend_from_slice(&digest.to_le_bytes());
    buf
}

fn decode_manifest(bytes: &[u8]) -> Result<Manifest, MineError> {
    let err = |m: String| ckpt_err(MANIFEST_RECORD, m);
    if bytes.len() < TRAILER {
        return Err(err(format!(
            "manifest of {} bytes is shorter than its checksum",
            bytes.len()
        )));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - TRAILER);
    let stored = u64::from_le_bytes(trailer.try_into().expect("exact length"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(err(format!(
            "checksum mismatch: manifest says {stored:#018x}, contents hash to {computed:#018x}"
        )));
    }
    let mut r = Take::new(body, MANIFEST_RECORD, ckpt_err);
    if r.bytes(4)? != PGST_MAGIC {
        return Err(err("bad magic".into()));
    }
    let version = r.u32()?;
    if version != PGST_VERSION {
        return Err(err(format!("unknown version {version}")));
    }
    let tag = r.u8()?;
    if tag != TAG_CORPUS_MANIFEST {
        return Err(err(format!("unexpected section tag {tag}")));
    }
    let corpus_hash = r.u64()?;
    let gap_min = r.u64()?;
    let gap_max = r.u64()?;
    let rho_bits = r.u64()?;
    let n = r.u64()?;
    let min_sequences = r.u64()?;
    let start_level = r.u64()?;
    let max_level = r.u64()?;
    let engine = r.u8()?;
    if engine > 1 {
        return Err(err(format!("unknown engine tag {engine}")));
    }
    let shards = r.u32()? as usize;
    let bitmap = r.bytes(shards.div_ceil(8))?;
    if r.remaining() != 0 {
        return Err(err(format!(
            "{} trailing bytes after the completed-shard bitmap",
            r.remaining()
        )));
    }
    let completed = (0..shards)
        .map(|i| bitmap[i / 8] >> (i % 8) & 1 == 1)
        .collect();
    Ok(Manifest {
        corpus_hash,
        gap_min,
        gap_max,
        rho_bits,
        n,
        min_sequences,
        start_level,
        max_level,
        engine,
        completed,
    })
}

fn encode_shard_record(shard: u64, corpus_hash: u64, patterns: &[(Pattern, u128)]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(PGST_MAGIC);
    buf.extend_from_slice(&PGST_VERSION.to_le_bytes());
    buf.push(TAG_CORPUS_CHECKPOINT);
    buf.extend_from_slice(&shard.to_le_bytes());
    buf.extend_from_slice(&corpus_hash.to_le_bytes());
    buf.extend_from_slice(&(patterns.len() as u32).to_le_bytes());
    for (pattern, support) in patterns {
        buf.extend_from_slice(&(pattern.len() as u32).to_le_bytes());
        buf.extend_from_slice(pattern.codes());
        buf.extend_from_slice(&support.to_le_bytes());
    }
    let digest = fnv1a(&buf);
    buf.extend_from_slice(&digest.to_le_bytes());
    buf
}

/// Decode one shard record, validating framing, ownership (`shard`),
/// provenance (`corpus_hash`), alphabet range, and the canonical
/// (length, codes) order the engines emit in.
fn decode_shard_record(
    shard: u64,
    corpus_hash: u64,
    sigma: usize,
    bytes: &[u8],
) -> Result<Vec<(Pattern, u128)>, MineError> {
    let err = |m: String| ckpt_err(shard, m);
    if bytes.len() < TRAILER {
        return Err(err(format!(
            "record of {} bytes is shorter than its checksum",
            bytes.len()
        )));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - TRAILER);
    let stored = u64::from_le_bytes(trailer.try_into().expect("exact length"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(err(format!(
            "checksum mismatch: record says {stored:#018x}, contents hash to {computed:#018x}"
        )));
    }
    let mut r = Take::new(body, shard, ckpt_err);
    if r.bytes(4)? != PGST_MAGIC {
        return Err(err("bad magic".into()));
    }
    let version = r.u32()?;
    if version != PGST_VERSION {
        return Err(err(format!("unknown version {version}")));
    }
    let tag = r.u8()?;
    if tag != TAG_CORPUS_CHECKPOINT {
        return Err(err(format!("unexpected section tag {tag}")));
    }
    let stored_shard = r.u64()?;
    if stored_shard != shard {
        return Err(err(format!(
            "record belongs to shard {stored_shard}, expected {shard}"
        )));
    }
    let stored_hash = r.u64()?;
    if stored_hash != corpus_hash {
        return Err(MineError::CheckpointMismatch {
            field: "corpus hash",
            manifest: format!("{stored_hash:#018x}"),
            requested: format!("{corpus_hash:#018x}"),
        });
    }
    let count = r.u32()? as usize;
    if count > body.len() / 20 {
        return Err(err(format!(
            "pattern count {count} cannot fit in a {}-byte record",
            body.len()
        )));
    }
    let mut patterns: Vec<(Pattern, u128)> = Vec::with_capacity(count);
    for i in 0..count {
        let len = r.u32()? as usize;
        if len == 0 {
            return Err(err(format!("pattern {i} has length 0")));
        }
        let codes = r.bytes(len)?;
        if let Some(&bad) = codes.iter().find(|&&c| c as usize >= sigma) {
            return Err(err(format!(
                "pattern {i} symbol {bad} is outside the {sigma}-letter alphabet"
            )));
        }
        let support = r.u128()?;
        if support == 0 {
            return Err(err(format!("pattern {i} has support 0")));
        }
        let pattern = Pattern::from_codes(codes.to_vec());
        if let Some((prev, _)) = patterns.last() {
            if (prev.len(), prev.codes()) >= (pattern.len(), pattern.codes()) {
                return Err(err(format!(
                    "pattern {i} is out of canonical (length, codes) order"
                )));
            }
        }
        patterns.push((pattern, support));
    }
    if r.remaining() != 0 {
        return Err(err(format!(
            "{} trailing bytes after the last pattern",
            r.remaining()
        )));
    }
    Ok(patterns)
}

fn shard_record_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:08}.pgck"))
}

/// Write `bytes` to `path` atomically (unique tmp + rename), mapping
/// failures to [`MineError::CheckpointIo`] under `record`.
fn write_atomic(path: &Path, bytes: &[u8], record: u64) -> Result<(), MineError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes)
        .map_err(|e| ckpt_err(record, format!("cannot write {}: {e}", tmp.display())))?;
    fs::rename(&tmp, path).map_err(|e| {
        ckpt_err(
            record,
            format!("cannot rename into {}: {e}", path.display()),
        )
    })?;
    Ok(())
}

/// Shared checkpoint state: the directory plus the manifest the
/// workers serialize their completion bits through.
struct CkptState {
    dir: PathBuf,
    corpus_hash: u64,
    manifest: Mutex<Manifest>,
}

impl CkptState {
    /// Persist one completed shard: write its record, then mark it in
    /// the manifest and rewrite the manifest atomically. Returns the
    /// record's byte size.
    fn commit(&self, shard: usize, patterns: &[(Pattern, u128)]) -> Result<u64, MineError> {
        let bytes = encode_shard_record(shard as u64, self.corpus_hash, patterns);
        write_atomic(&shard_record_path(&self.dir, shard), &bytes, shard as u64)?;
        let mut manifest = self.manifest.lock().expect("manifest lock");
        manifest.completed[shard] = true;
        write_atomic(
            &self.dir.join(MANIFEST_FILE),
            &encode_manifest(&manifest),
            MANIFEST_RECORD,
        )?;
        Ok(bytes.len() as u64)
    }

    fn completed_count(&self) -> usize {
        self.manifest
            .lock()
            .expect("manifest lock")
            .completed
            .iter()
            .filter(|&&c| c)
            .count()
    }
}

// ---------------------------------------------------------------------
// Sharded mining
// ---------------------------------------------------------------------

/// Which single-sequence engine mines each shard. Both emit the exact
/// frequent set, so the merged corpus outcome is identical; they
/// differ only in wall-clock and peak-memory profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardEngine {
    /// Breadth-first level-wise engine ([`crate::mpp::mpp`]).
    Bfs,
    /// Hybrid BFS→DFS engine ([`crate::dfs::mpp_dfs`]), single-threaded
    /// per shard — parallelism comes from the shard fan-out itself.
    Dfs,
}

impl ShardEngine {
    fn tag(self) -> u8 {
        match self {
            ShardEngine::Bfs => 0,
            ShardEngine::Dfs => 1,
        }
    }

    fn name(self) -> &'static str {
        match self {
            ShardEngine::Bfs => "bfs",
            ShardEngine::Dfs => "dfs",
        }
    }
}

/// Configuration of a sharded corpus mine.
#[derive(Clone, Debug)]
pub struct CorpusMineConfig {
    /// The pruning target `n` driving Theorem 1, clamped per shard to
    /// that shard's `l1` exactly as `mine_collection` clamps it.
    pub n: usize,
    /// A pattern is corpus-frequent when frequent in at least this
    /// many shards.
    pub min_sequences: usize,
    /// Threads across shards (worker 0 is the calling thread).
    pub threads: usize,
    /// Per-shard engine.
    pub engine: ShardEngine,
    /// Per-shard engine configuration (`start_level`, arena ceiling,
    /// PIL representation, kernel, spill). When the hybrid engine
    /// spills, each shard spills under its own subdirectory of
    /// [`MppConfig::spill_dir`].
    pub mpp: MppConfig,
    /// Optional checkpoint/resume state.
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for CorpusMineConfig {
    fn default() -> CorpusMineConfig {
        CorpusMineConfig {
            n: 10,
            min_sequences: 1,
            threads: 1,
            engine: ShardEngine::Bfs,
            mpp: MppConfig::default(),
            checkpoint: None,
        }
    }
}

/// Outcome of a sharded corpus mine: the merged collection outcome
/// (bit-identical to `mine_collection` over the decoded sequences)
/// plus corpus-level statistics.
#[derive(Clone, Debug, Default)]
pub struct CorpusOutcome {
    /// The merged collection-frequent patterns.
    pub outcome: CollectionOutcome,
    /// Shard/checkpoint statistics.
    pub stats: CorpusStats,
}

/// What one finished shard carries back to the merge.
struct MinedShard {
    patterns: Vec<(Pattern, u128)>,
    elapsed: Duration,
    record_bytes: u64,
}

/// The pool job: pending shards in longest-first order, claimed off
/// one atomic cursor by the pool workers plus the calling thread.
struct ShardJob {
    corpus: Arc<Corpus>,
    /// Pending shard indices, longest sequence first.
    order: Vec<usize>,
    cursor: AtomicUsize,
    hooks: PoolHooks,
    gap: GapRequirement,
    rho: f64,
    n: usize,
    engine: ShardEngine,
    mpp: MppConfig,
    ckpt: Option<Arc<CkptState>>,
    stop_after: Option<usize>,
    /// Shards checkpointed this run (drives `stop_after`).
    done: AtomicUsize,
    /// Once set, remaining claims return `None` (paused).
    stop: AtomicBool,
}

impl ShardJob {
    fn mine_one(&self, shard: usize) -> Result<Vec<(Pattern, u128)>, MineError> {
        let entry = self.corpus.entry(shard);
        // Too short to hold a start-level pattern: never votes, same
        // as mine_collection's skip.
        if entry.len < self.gap.min_span(self.mpp.start_level) {
            return Ok(Vec::new());
        }
        let seq = self.corpus.sequence(shard)?;
        let mut config = self.mpp.clone();
        if let Some(dir) = &config.spill_dir {
            // Each shard gets its own spill namespace; record ids are
            // per-run counters and would collide in a shared directory.
            config.spill_dir = Some(dir.join(format!("shard-{shard:08}")));
        }
        let outcome = match self.engine {
            ShardEngine::Bfs => mpp(&seq, self.gap, self.rho, self.n, config)?,
            ShardEngine::Dfs => mpp_dfs(&seq, self.gap, self.rho, self.n, config, 1)?,
        };
        Ok(outcome
            .frequent
            .into_iter()
            .map(|f| (f.pattern, f.support))
            .collect())
    }
}

impl PoolJob for ShardJob {
    type Out = (usize, Result<Option<MinedShard>, MineError>);

    fn n_items(&self) -> usize {
        self.order.len()
    }

    fn cursor(&self) -> &AtomicUsize {
        &self.cursor
    }

    fn hooks(&self) -> &PoolHooks {
        &self.hooks
    }

    fn progress_level(&self) -> usize {
        0
    }

    fn process(&self, item: usize) -> Self::Out {
        let shard = self.order[item];
        if self.stop.load(Ordering::SeqCst) {
            return (shard, Ok(None));
        }
        let started = Instant::now();
        let patterns = match self.mine_one(shard) {
            Ok(p) => p,
            Err(e) => return (shard, Err(e)),
        };
        let mut record_bytes = 0;
        if let Some(ckpt) = &self.ckpt {
            record_bytes = match ckpt.commit(shard, &patterns) {
                Ok(b) => b,
                Err(e) => return (shard, Err(e)),
            };
            let done = self.done.fetch_add(1, Ordering::SeqCst) + 1;
            if self.stop_after.is_some_and(|limit| done >= limit) {
                self.stop.store(true, Ordering::SeqCst);
            }
        }
        (
            shard,
            Ok(Some(MinedShard {
                patterns,
                elapsed: started.elapsed(),
                record_bytes,
            })),
        )
    }

    fn out_weight(out: &Self::Out) -> usize {
        match &out.1 {
            Ok(Some(mined)) => mined.patterns.len(),
            _ => 0,
        }
    }
}

/// Mine a packed corpus, sharded per sequence: every pattern frequent
/// (ratio ≥ `rho`) in at least `config.min_sequences` shards, with
/// per-shard supports — bit-identical to
/// [`mine_collection`](crate::multiseq::mine_collection) over the
/// decoded sequences, for every engine, thread count, and
/// checkpoint/resume split.
pub fn mine_corpus(
    corpus: &Arc<Corpus>,
    gap: GapRequirement,
    rho: f64,
    config: &CorpusMineConfig,
) -> Result<CorpusOutcome, MineError> {
    mine_corpus_traced(corpus, gap, rho, config, &mut NoopObserver)
}

/// [`mine_corpus`] with a [`MineObserver`] attached. One
/// [`ShardEvent`] per shard is emitted in shard-index order after the
/// fan-out completes (so traces are deterministic), followed by the
/// completion event.
pub fn mine_corpus_traced<O: MineObserver>(
    corpus: &Arc<Corpus>,
    gap: GapRequirement,
    rho: f64,
    config: &CorpusMineConfig,
    observer: &mut O,
) -> Result<CorpusOutcome, MineError> {
    let started = Instant::now();
    if !(rho > 0.0 && rho <= 1.0) {
        return Err(MineError::InvalidThreshold(rho));
    }
    if config.mpp.start_level == 0 {
        return Err(MineError::InvalidM(0));
    }
    assert!(config.threads >= 1, "need at least one thread");
    let n_shards = corpus.len();
    let mut stats = CorpusStats {
        shards: n_shards,
        longest_shard: corpus.entries.iter().map(|e| e.len).max().unwrap_or(0),
        corpus_hash: corpus.hash(),
        ..CorpusStats::default()
    };
    if n_shards == 0 || config.min_sequences == 0 || config.min_sequences > n_shards {
        return Ok(CorpusOutcome {
            outcome: CollectionOutcome::default(),
            stats,
        });
    }

    // Checkpoint setup: restore completed shards on resume, or pin a
    // fresh manifest for this run.
    let mut results: Vec<Option<MinedShard>> = (0..n_shards).map(|_| None).collect();
    let mut restored = vec![false; n_shards];
    let ckpt: Option<Arc<CkptState>> = match &config.checkpoint {
        None => None,
        Some(ck) => {
            fs::create_dir_all(&ck.dir).map_err(|e| {
                ckpt_err(
                    MANIFEST_RECORD,
                    format!("cannot create {}: {e}", ck.dir.display()),
                )
            })?;
            let template = Manifest {
                corpus_hash: corpus.hash(),
                gap_min: gap.min() as u64,
                gap_max: gap.max() as u64,
                rho_bits: rho.to_bits(),
                n: config.n as u64,
                min_sequences: config.min_sequences as u64,
                start_level: config.mpp.start_level as u64,
                max_level: config.mpp.max_level.map_or(u64::MAX, |l| l as u64),
                engine: config.engine.tag(),
                completed: vec![false; n_shards],
            };
            let manifest_path = ck.dir.join(MANIFEST_FILE);
            let manifest = if ck.resume {
                let bytes = fs::read(&manifest_path).map_err(|e| {
                    ckpt_err(
                        MANIFEST_RECORD,
                        format!("cannot read {}: {e}", manifest_path.display()),
                    )
                })?;
                let found = decode_manifest(&bytes)?;
                check_manifest(&found, &template, config.engine)?;
                for (shard, &done) in found.completed.iter().enumerate() {
                    if !done {
                        continue;
                    }
                    let restore_started = Instant::now();
                    let path = shard_record_path(&ck.dir, shard);
                    let bytes = fs::read(&path).map_err(|e| {
                        ckpt_err(
                            shard as u64,
                            format!(
                                "manifest marks the shard complete but {} is unreadable: {e}",
                                path.display()
                            ),
                        )
                    })?;
                    let patterns = decode_shard_record(
                        shard as u64,
                        corpus.hash(),
                        corpus.alphabet().size(),
                        &bytes,
                    )?;
                    results[shard] = Some(MinedShard {
                        patterns,
                        elapsed: restore_started.elapsed(),
                        record_bytes: 0,
                    });
                    restored[shard] = true;
                }
                found
            } else {
                write_atomic(&manifest_path, &encode_manifest(&template), MANIFEST_RECORD)?;
                template
            };
            Some(Arc::new(CkptState {
                dir: ck.dir.clone(),
                corpus_hash: corpus.hash(),
                manifest: Mutex::new(manifest),
            }))
        }
    };
    stats.restored_shards = restored.iter().filter(|&&r| r).count();

    // Pending shards, longest first: the straggler starts immediately
    // and the small shards fill the tail.
    let mut pending: Vec<usize> = (0..n_shards).filter(|&j| results[j].is_none()).collect();
    pending.sort_by_key(|&j| (usize::MAX - corpus.entry(j).len, j));
    let job = Arc::new(ShardJob {
        corpus: Arc::clone(corpus),
        order: pending,
        cursor: AtomicUsize::new(0),
        hooks: PoolHooks::default(),
        gap,
        rho,
        n: config.n,
        engine: config.engine,
        mpp: config.mpp.clone(),
        ckpt: ckpt.clone(),
        stop_after: config
            .checkpoint
            .as_ref()
            .and_then(|ck| ck.stop_after_shards),
        done: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
    });

    let outs: Vec<<ShardJob as PoolJob>::Out> = if config.threads >= 2 && job.n_items() >= 2 {
        let pool = WorkerPool::new(config.threads - 1);
        let (outs, event) = pool.run(Arc::clone(&job))?;
        observer.on_pool(&event);
        outs
    } else {
        (0..job.n_items()).map(|i| job.process(i)).collect()
    };

    let mut skipped = 0usize;
    for (shard, result) in outs {
        match result? {
            Some(mined) => {
                stats.mined_shards += 1;
                if mined.record_bytes > 0 {
                    stats.checkpoint_records += 1;
                    stats.checkpoint_bytes += mined.record_bytes;
                }
                results[shard] = Some(mined);
            }
            None => skipped += 1,
        }
    }
    if skipped > 0 {
        return Err(MineError::CorpusPaused {
            completed: ckpt.as_ref().map_or(0, |c| c.completed_count()),
            total: n_shards,
        });
    }

    for (shard, mined) in results.iter().enumerate() {
        let mined = mined.as_ref().expect("every shard mined or restored");
        observer.on_shard(&ShardEvent {
            shard,
            len: corpus.entry(shard).len,
            patterns: mined.patterns.len(),
            restored: restored[shard],
            elapsed: mined.elapsed,
        });
    }

    let per_shard: Vec<Vec<(Pattern, u128)>> = results
        .into_iter()
        .map(|r| r.expect("every shard mined or restored").patterns)
        .collect();
    let outcome = merge_shards(corpus, gap, &per_shard, config.min_sequences)?;
    observer.on_complete(&CompleteEvent {
        frequent: outcome.patterns.len(),
        levels: 0,
        total_candidates: 0,
        n_used: config.n,
        support_saturated: false,
        peak_arena_bytes: 0,
        kernel: config.engine.name().to_string(),
        top_k: None,
        floor_raises: 0,
        pruned_by_floor: 0,
        pruned_by_target: 0,
        total_elapsed: started.elapsed(),
    });
    Ok(CorpusOutcome { outcome, stats })
}

/// Refuse to resume under a manifest describing a different run.
fn check_manifest(
    found: &Manifest,
    wanted: &Manifest,
    engine: ShardEngine,
) -> Result<(), MineError> {
    let mismatch = |field: &'static str, manifest: String, requested: String| {
        Err(MineError::CheckpointMismatch {
            field,
            manifest,
            requested,
        })
    };
    if found.corpus_hash != wanted.corpus_hash {
        return mismatch(
            "corpus hash",
            format!("{:#018x}", found.corpus_hash),
            format!("{:#018x}", wanted.corpus_hash),
        );
    }
    if (found.gap_min, found.gap_max) != (wanted.gap_min, wanted.gap_max) {
        return mismatch(
            "gap requirement",
            format!("[{}, {}]", found.gap_min, found.gap_max),
            format!("[{}, {}]", wanted.gap_min, wanted.gap_max),
        );
    }
    if found.rho_bits != wanted.rho_bits {
        return mismatch(
            "support threshold",
            format!("{}", f64::from_bits(found.rho_bits)),
            format!("{}", f64::from_bits(wanted.rho_bits)),
        );
    }
    if found.n != wanted.n {
        return mismatch("n", found.n.to_string(), wanted.n.to_string());
    }
    if found.min_sequences != wanted.min_sequences {
        return mismatch(
            "min sequences",
            found.min_sequences.to_string(),
            wanted.min_sequences.to_string(),
        );
    }
    if found.start_level != wanted.start_level {
        return mismatch(
            "start level",
            found.start_level.to_string(),
            wanted.start_level.to_string(),
        );
    }
    if found.max_level != wanted.max_level {
        return mismatch(
            "max level",
            found.max_level.to_string(),
            wanted.max_level.to_string(),
        );
    }
    if found.engine != engine.tag() {
        return mismatch(
            "engine",
            if found.engine == 0 { "bfs" } else { "dfs" }.to_string(),
            engine.name().to_string(),
        );
    }
    if found.completed.len() != wanted.completed.len() {
        return mismatch(
            "shard count",
            found.completed.len().to_string(),
            wanted.completed.len().to_string(),
        );
    }
    Ok(())
}

/// Merge per-shard frequent sets into the collection outcome:
/// frequency votes from shard membership, true supports for
/// non-frequent shards from the exact DP oracle, canonical
/// (length, codes) order — exactly what `mine_collection` emits.
fn merge_shards(
    corpus: &Corpus,
    gap: GapRequirement,
    per_shard: &[Vec<(Pattern, u128)>],
    min_sequences: usize,
) -> Result<CollectionOutcome, MineError> {
    let n = per_shard.len();
    let mut evidence: HashMap<&Pattern, Vec<(usize, u128)>> = HashMap::new();
    for (j, shard) in per_shard.iter().enumerate() {
        for (pattern, support) in shard {
            evidence.entry(pattern).or_default().push((j, *support));
        }
    }
    let mut patterns: Vec<CollectionPattern> = evidence
        .into_iter()
        .filter(|(_, ev)| ev.len() >= min_sequences)
        .map(|(pattern, ev)| {
            let mut supports = vec![0u128; n];
            // `ev` was filled in ascending shard order.
            let frequent_in: Vec<usize> = ev
                .iter()
                .map(|&(j, support)| {
                    supports[j] = support;
                    j
                })
                .collect();
            CollectionPattern {
                pattern: pattern.clone(),
                frequent_in,
                supports,
            }
        })
        .collect();
    for j in 0..n {
        if patterns
            .iter()
            .all(|cp| cp.frequent_in.binary_search(&j).is_ok())
        {
            continue;
        }
        let seq = corpus.sequence(j)?;
        for cp in &mut patterns {
            if cp.frequent_in.binary_search(&j).is_err() {
                cp.supports[j] = crate::naive::support_dp(&seq, gap, &cp.pattern);
            }
        }
    }
    patterns.sort_by(|a, b| {
        (a.pattern.len(), a.pattern.codes()).cmp(&(b.pattern.len(), b.pattern.codes()))
    });
    Ok(CollectionOutcome { patterns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiseq::mine_collection;
    use perigap_seq::gen::iid::uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    fn tmp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "perigap-corpus-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Mixed-length DNA fixture with shared repeat structure so the
    /// merged set is non-trivial at every `min_sequences`.
    fn fixture_seqs(n: usize, base_seed: u64) -> Vec<(String, Sequence)> {
        (0..n)
            .map(|i| {
                let len = 80 + 40 * i;
                let mut seq = uniform(
                    &mut StdRng::seed_from_u64(base_seed + i as u64),
                    Alphabet::Dna,
                    len,
                );
                seq.extend_from(&Sequence::dna(&"ACGTT".repeat(12)).unwrap());
                (format!("seq-{i}"), seq)
            })
            .collect()
    }

    fn write_fixture(dir: &Path, n: usize, seed: u64) -> (PathBuf, Vec<Sequence>) {
        let seqs = fixture_seqs(n, seed);
        let path = dir.join("fixture.pgco");
        Corpus::write(&path, &seqs).unwrap();
        (path, seqs.into_iter().map(|(_, s)| s).collect())
    }

    #[test]
    fn roundtrip_dna_and_protein() {
        let dir = tmp_dir("roundtrip");
        for (label, seqs) in [
            (
                "dna",
                vec![
                    ("a".to_string(), Sequence::dna("ACGTACGTACG").unwrap()),
                    ("b".to_string(), Sequence::dna("TTTT").unwrap()),
                    ("empty".to_string(), Sequence::dna("").unwrap()),
                ],
            ),
            (
                "protein",
                vec![
                    (
                        "p1".to_string(),
                        Sequence::protein("ACDEFGHIKLMNPQRSTVWY").unwrap(),
                    ),
                    ("p2".to_string(), Sequence::protein("WYWYWYW").unwrap()),
                ],
            ),
        ] {
            let path = dir.join(format!("{label}.pgco"));
            let hash = Corpus::write(&path, &seqs).unwrap();
            for corpus in [
                Corpus::open(&path).unwrap(),
                Corpus::open_buffered(&path).unwrap(),
            ] {
                assert_eq!(corpus.hash(), hash, "{label}");
                assert_eq!(corpus.len(), seqs.len(), "{label}");
                for (i, (name, seq)) in seqs.iter().enumerate() {
                    assert_eq!(&corpus.entry(i).name, name, "{label}");
                    assert_eq!(corpus.entry(i).len, seq.len(), "{label}");
                    assert_eq!(&corpus.sequence(i).unwrap(), seq, "{label}");
                }
            }
            #[cfg(unix)]
            assert!(Corpus::open(&path).unwrap().is_mapped(), "{label}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_rejects_bad_inputs() {
        let dir = tmp_dir("write-rejects");
        let path = dir.join("bad.pgco");
        assert!(matches!(
            Corpus::write(&path, &[]),
            Err(MineError::CorpusIo { .. })
        ));
        let mixed = vec![
            ("a".to_string(), Sequence::dna("ACGT").unwrap()),
            ("b".to_string(), Sequence::protein("ACDE").unwrap()),
        ];
        assert!(matches!(
            Corpus::write(&path, &mixed),
            Err(MineError::CorpusIo { .. })
        ));
        let custom = vec![(
            "c".to_string(),
            Sequence::from_codes(Alphabet::custom(b"xyz").unwrap(), vec![0, 1, 2]).unwrap(),
        )];
        assert!(matches!(
            Corpus::write(&path, &custom),
            Err(MineError::CorpusIo { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let dir = tmp_dir("truncation");
        let (path, _) = write_fixture(&dir, 3, 11);
        let bytes = fs::read(&path).unwrap();
        let cut = dir.join("cut.pgco");
        for keep in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            fs::write(&cut, &bytes[..keep]).unwrap();
            for result in [Corpus::open(&cut), Corpus::open_buffered(&cut)] {
                match result {
                    Err(MineError::CorpusIo { .. }) => {}
                    other => panic!("keep {keep}: expected CorpusIo, got {other:?}"),
                }
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let dir = tmp_dir("bitflip");
        let (path, _) = write_fixture(&dir, 2, 13);
        let bytes = fs::read(&path).unwrap();
        let flipped = dir.join("flipped.pgco");
        let mut positions: Vec<usize> = (0..bytes.len()).step_by(11).collect();
        positions.push(bytes.len() - 1);
        for i in positions {
            let mut copy = bytes.clone();
            copy[i] ^= 0x10;
            fs::write(&flipped, &copy).unwrap();
            match Corpus::open(&flipped) {
                Err(MineError::CorpusIo { .. }) => {}
                other => panic!("flip at {i}: expected CorpusIo, got {other:?}"),
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corpus_mine_matches_collection_all_engines_and_threads() {
        let dir = tmp_dir("matches-collection");
        let (path, seqs) = write_fixture(&dir, 4, 17);
        let corpus = Arc::new(Corpus::open(&path).unwrap());
        let g = gap(1, 3);
        let rho = 0.004;
        for min_sequences in [1, 2, 4] {
            let expected =
                mine_collection(&seqs, g, rho, min_sequences, 12, MppConfig::default()).unwrap();
            for engine in [ShardEngine::Bfs, ShardEngine::Dfs] {
                for threads in [1, 3] {
                    let config = CorpusMineConfig {
                        n: 12,
                        min_sequences,
                        threads,
                        engine,
                        ..CorpusMineConfig::default()
                    };
                    let got = mine_corpus(&corpus, g, rho, &config).unwrap();
                    assert_eq!(
                        got.outcome, expected,
                        "min_sequences {min_sequences} {engine:?} threads {threads}"
                    );
                    assert_eq!(got.stats.mined_shards, 4);
                    assert_eq!(got.stats.restored_shards, 0);
                }
            }
            assert!(
                !expected.patterns.is_empty() || min_sequences == 4,
                "fixture should mine patterns at min_sequences {min_sequences}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_pause_and_resume_is_bit_identical() {
        let dir = tmp_dir("pause-resume");
        let (path, _) = write_fixture(&dir, 5, 19);
        let corpus = Arc::new(Corpus::open(&path).unwrap());
        let g = gap(0, 2);
        let rho = 0.004;
        let cold = mine_corpus(
            &corpus,
            g,
            rho,
            &CorpusMineConfig {
                n: 10,
                min_sequences: 2,
                ..CorpusMineConfig::default()
            },
        )
        .unwrap();

        for threads in [1, 3] {
            for stop_after in [1, 3] {
                let ckpt_dir = dir.join(format!("ckpt-{threads}-{stop_after}"));
                let paused = mine_corpus(
                    &corpus,
                    g,
                    rho,
                    &CorpusMineConfig {
                        n: 10,
                        min_sequences: 2,
                        threads,
                        checkpoint: Some(CheckpointConfig {
                            dir: ckpt_dir.clone(),
                            resume: false,
                            stop_after_shards: Some(stop_after),
                        }),
                        ..CorpusMineConfig::default()
                    },
                );
                match paused {
                    Err(MineError::CorpusPaused { completed, total }) => {
                        assert!(completed >= stop_after, "checkpointed at least the quota");
                        assert!(completed < total, "pause means unfinished shards remain");
                    }
                    Ok(full) => {
                        // Parallel claims can outrun the stop flag and
                        // finish every shard; the resume below is then
                        // a pure restore. Serial pause is exact.
                        assert!(threads > 1, "serial pause must be deterministic");
                        assert_eq!(full.outcome, cold.outcome);
                    }
                    Err(other) => panic!("expected CorpusPaused, got {other:?}"),
                }
                let resumed = mine_corpus(
                    &corpus,
                    g,
                    rho,
                    &CorpusMineConfig {
                        n: 10,
                        min_sequences: 2,
                        threads,
                        checkpoint: Some(CheckpointConfig::resume(ckpt_dir)),
                        ..CorpusMineConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    resumed.outcome, cold.outcome,
                    "threads {threads} stop_after {stop_after}"
                );
                assert!(resumed.stats.restored_shards >= stop_after);
                assert_eq!(
                    resumed.stats.restored_shards + resumed.stats.mined_shards,
                    5
                );
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn completed_checkpoint_resumes_as_pure_restore() {
        let dir = tmp_dir("pure-restore");
        let (path, _) = write_fixture(&dir, 3, 23);
        let corpus = Arc::new(Corpus::open(&path).unwrap());
        let g = gap(1, 2);
        let ckpt_dir = dir.join("ckpt");
        let config = CorpusMineConfig {
            n: 10,
            min_sequences: 1,
            checkpoint: Some(CheckpointConfig::fresh(&ckpt_dir)),
            ..CorpusMineConfig::default()
        };
        let cold = mine_corpus(&corpus, g, 0.004, &config).unwrap();
        assert_eq!(cold.stats.checkpoint_records, 3);
        assert!(cold.stats.checkpoint_bytes > 0);
        let resumed = mine_corpus(
            &corpus,
            g,
            0.004,
            &CorpusMineConfig {
                checkpoint: Some(CheckpointConfig::resume(&ckpt_dir)),
                ..config
            },
        )
        .unwrap();
        assert_eq!(resumed.outcome, cold.outcome);
        assert_eq!(resumed.stats.restored_shards, 3);
        assert_eq!(resumed.stats.mined_shards, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_faults_are_typed() {
        let dir = tmp_dir("resume-faults");
        let (path, _) = write_fixture(&dir, 3, 29);
        let corpus = Arc::new(Corpus::open(&path).unwrap());
        let g = gap(1, 2);
        let ckpt_dir = dir.join("ckpt");
        let config = CorpusMineConfig {
            n: 10,
            min_sequences: 1,
            checkpoint: Some(CheckpointConfig::fresh(&ckpt_dir)),
            ..CorpusMineConfig::default()
        };
        mine_corpus(&corpus, g, 0.004, &config).unwrap();
        let resume_config = CorpusMineConfig {
            checkpoint: Some(CheckpointConfig::resume(&ckpt_dir)),
            ..config.clone()
        };

        // Missing manifest.
        let empty_dir = dir.join("empty-ckpt");
        fs::create_dir_all(&empty_dir).unwrap();
        match mine_corpus(
            &corpus,
            g,
            0.004,
            &CorpusMineConfig {
                checkpoint: Some(CheckpointConfig::resume(&empty_dir)),
                ..config.clone()
            },
        ) {
            Err(MineError::CheckpointIo { record, .. }) => assert_eq!(record, u64::MAX),
            other => panic!("expected CheckpointIo, got {other:?}"),
        }

        // Corrupt manifest: every sampled bit flip is a typed error.
        let manifest_path = ckpt_dir.join(MANIFEST_FILE);
        let manifest_bytes = fs::read(&manifest_path).unwrap();
        for i in (0..manifest_bytes.len()).step_by(5) {
            let mut copy = manifest_bytes.clone();
            copy[i] ^= 0x04;
            fs::write(&manifest_path, &copy).unwrap();
            match mine_corpus(&corpus, g, 0.004, &resume_config) {
                Err(MineError::CheckpointIo { .. }) | Err(MineError::CheckpointMismatch { .. }) => {
                }
                other => panic!("manifest flip at {i}: expected typed error, got {other:?}"),
            }
        }
        fs::write(&manifest_path, &manifest_bytes).unwrap();

        // Corrupt shard record.
        let record_path = shard_record_path(&ckpt_dir, 1);
        let record_bytes = fs::read(&record_path).unwrap();
        let mut torn = record_bytes.clone();
        let mid = torn.len() / 2;
        torn[mid] ^= 0x20;
        fs::write(&record_path, &torn).unwrap();
        match mine_corpus(&corpus, g, 0.004, &resume_config) {
            Err(MineError::CheckpointIo { record, .. }) => assert_eq!(record, 1),
            other => panic!("expected CheckpointIo for shard 1, got {other:?}"),
        }
        fs::write(&record_path, &record_bytes[..record_bytes.len() - 3]).unwrap();
        assert!(matches!(
            mine_corpus(&corpus, g, 0.004, &resume_config),
            Err(MineError::CheckpointIo { record: 1, .. })
        ));
        fs::remove_file(&record_path).unwrap();
        assert!(matches!(
            mine_corpus(&corpus, g, 0.004, &resume_config),
            Err(MineError::CheckpointIo { record: 1, .. })
        ));
        fs::write(&record_path, &record_bytes).unwrap();

        // Hash mismatch: resume against a different corpus.
        let other_path = dir.join("other.pgco");
        Corpus::write(&other_path, &fixture_seqs(3, 31)).unwrap();
        let other = Arc::new(Corpus::open(&other_path).unwrap());
        match mine_corpus(&other, g, 0.004, &resume_config) {
            Err(MineError::CheckpointMismatch { field, .. }) => assert_eq!(field, "corpus hash"),
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }

        // Parameter mismatches.
        match mine_corpus(&corpus, g, 0.005, &resume_config) {
            Err(MineError::CheckpointMismatch { field, .. }) => {
                assert_eq!(field, "support threshold")
            }
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }
        match mine_corpus(&corpus, gap(1, 3), 0.004, &resume_config) {
            Err(MineError::CheckpointMismatch { field, .. }) => {
                assert_eq!(field, "gap requirement")
            }
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }
        match mine_corpus(
            &corpus,
            g,
            0.004,
            &CorpusMineConfig {
                engine: ShardEngine::Dfs,
                ..resume_config.clone()
            },
        ) {
            Err(MineError::CheckpointMismatch { field, .. }) => assert_eq!(field, "engine"),
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }

        // After restoring everything, resume still works.
        assert!(mine_corpus(&corpus, g, 0.004, &resume_config).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_events_are_deterministic_and_complete() {
        #[derive(Default)]
        struct Collector {
            shards: Vec<(usize, bool, usize)>,
            completes: usize,
        }
        impl MineObserver for Collector {
            fn on_shard(&mut self, event: &ShardEvent) {
                self.shards.push((event.shard, event.restored, event.len));
            }
            fn on_complete(&mut self, _event: &CompleteEvent) {
                self.completes += 1;
            }
        }
        let dir = tmp_dir("events");
        let (path, seqs) = write_fixture(&dir, 3, 37);
        let corpus = Arc::new(Corpus::open(&path).unwrap());
        let g = gap(1, 2);
        let mut obs = Collector::default();
        mine_corpus_traced(
            &corpus,
            g,
            0.004,
            &CorpusMineConfig {
                threads: 2,
                ..CorpusMineConfig::default()
            },
            &mut obs,
        )
        .unwrap();
        assert_eq!(obs.completes, 1);
        assert_eq!(
            obs.shards,
            (0..3)
                .map(|j| (j, false, seqs[j].len()))
                .collect::<Vec<_>>()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degenerate_configs_mirror_mine_collection() {
        let dir = tmp_dir("degenerate");
        let (path, _) = write_fixture(&dir, 2, 41);
        let corpus = Arc::new(Corpus::open(&path).unwrap());
        let g = gap(1, 2);
        assert!(matches!(
            mine_corpus(&corpus, g, 0.0, &CorpusMineConfig::default()),
            Err(MineError::InvalidThreshold(_))
        ));
        for min_sequences in [0, 3] {
            let out = mine_corpus(
                &corpus,
                g,
                0.01,
                &CorpusMineConfig {
                    min_sequences,
                    ..CorpusMineConfig::default()
                },
            )
            .unwrap();
            assert!(out.outcome.patterns.is_empty());
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
