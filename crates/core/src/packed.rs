//! Fixed-width integer keys for patterns.
//!
//! A pattern over an alphabet of size `σ` is a short string of codes
//! `0..σ`. Packing each code into `⌈log₂ σ⌉` bits of a `u64` turns the
//! pattern into a single machine word: comparisons are one integer
//! compare, the seed scan ([`crate::pil::Pil::build_all`]) can index a
//! dense table by key with zero hashing or allocation per scan event,
//! and numeric key order coincides with lexicographic code order (the
//! first character occupies the most significant bits), so a table
//! walked in key order yields patterns already sorted.

/// Bit-packing codec for one alphabet size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyCodec {
    bits: u32,
}

impl KeyCodec {
    /// Codec for an alphabet of `sigma` symbols (`⌈log₂ σ⌉` bits per
    /// symbol, minimum 1).
    ///
    /// # Panics
    /// Panics if `sigma` is 0 or exceeds 256.
    pub fn new(sigma: usize) -> KeyCodec {
        assert!(sigma > 0, "alphabet cannot be empty");
        assert!(sigma <= 256, "alphabet codes must fit u8");
        let bits = (usize::BITS - (sigma - 1).leading_zeros()).max(1);
        KeyCodec { bits }
    }

    /// Bits per symbol.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Can a length-`level` pattern fit one `u64` key?
    pub fn fits(&self, level: usize) -> bool {
        (level as u64) * (self.bits as u64) <= 64
    }

    /// Number of key bits a length-`level` pattern occupies.
    ///
    /// # Panics
    /// Panics if the pattern does not [fit](Self::fits).
    pub fn key_bits(&self, level: usize) -> u32 {
        assert!(self.fits(level), "level {level} overflows a u64 key");
        level as u32 * self.bits
    }

    /// Append one code to a key: `key · 2^bits + code`.
    #[inline(always)]
    pub fn push(&self, key: u64, code: u8) -> u64 {
        (key << self.bits) | code as u64
    }

    /// Pack a full code slice (first code most significant).
    ///
    /// # Panics
    /// Panics if the slice does not [fit](Self::fits).
    pub fn pack(&self, codes: &[u8]) -> u64 {
        assert!(self.fits(codes.len()), "pattern overflows a u64 key");
        codes.iter().fold(0u64, |key, &c| self.push(key, c))
    }

    /// Invert [`pack`](Self::pack), appending `level` codes to `out`.
    pub fn unpack_into(&self, key: u64, level: usize, out: &mut Vec<u8>) {
        let mask = (1u64 << self.bits) - 1;
        let base = out.len();
        out.resize(base + level, 0);
        let mut k = key;
        for slot in out[base..].iter_mut().rev() {
            *slot = (k & mask) as u8;
            k >>= self.bits;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_cover_the_alphabet() {
        assert_eq!(KeyCodec::new(1).bits(), 1);
        assert_eq!(KeyCodec::new(2).bits(), 1);
        assert_eq!(KeyCodec::new(4).bits(), 2);
        assert_eq!(KeyCodec::new(5).bits(), 3);
        assert_eq!(KeyCodec::new(20).bits(), 5);
        assert_eq!(KeyCodec::new(256).bits(), 8);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let codec = KeyCodec::new(20);
        let codes = [0u8, 19, 7, 3, 12];
        let key = codec.pack(&codes);
        let mut out = Vec::new();
        codec.unpack_into(key, codes.len(), &mut out);
        assert_eq!(out, codes);
    }

    #[test]
    fn key_order_is_lexicographic() {
        let codec = KeyCodec::new(4);
        let mut pairs: Vec<(u64, Vec<u8>)> = Vec::new();
        for a in 0..4u8 {
            for b in 0..4u8 {
                for c in 0..4u8 {
                    pairs.push((codec.pack(&[a, b, c]), vec![a, b, c]));
                }
            }
        }
        let mut by_key = pairs.clone();
        by_key.sort_by_key(|&(k, _)| k);
        let mut by_codes = pairs;
        by_codes.sort_by(|x, y| x.1.cmp(&y.1));
        assert_eq!(by_key, by_codes);
    }

    #[test]
    fn incremental_push_matches_pack() {
        let codec = KeyCodec::new(4);
        let codes = [2u8, 0, 3, 1];
        let mut key = 0;
        for &c in &codes {
            key = codec.push(key, c);
        }
        assert_eq!(key, codec.pack(&codes));
    }

    #[test]
    fn fits_boundaries() {
        let dna = KeyCodec::new(4); // 2 bits
        assert!(dna.fits(32));
        assert!(!dna.fits(33));
        let byte = KeyCodec::new(256); // 8 bits
        assert!(byte.fits(8));
        assert!(!byte.fits(9));
        assert_eq!(dna.key_bits(3), 6);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overlong_pack_panics() {
        KeyCodec::new(4).pack(&[0; 33]);
    }
}
