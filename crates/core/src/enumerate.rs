//! The enumeration baseline (the "Enumeration Algorithm" column of
//! Table 3).
//!
//! Because the Apriori property fails for this problem, a pruning-free
//! miner must count *every* `σ^l` pattern at every level. We store only
//! patterns with non-zero support (an empty PIL is support 0 — a longer
//! pattern with a zero-support leading sub-pattern can have no support
//! either, since offset projections preserve matches), but the
//! candidate accounting is the full `σ^l`, and so is the join work,
//! which is why the baseline is hopeless beyond small levels. A budget
//! guard turns runaway configurations into an error instead of an
//! endless run.

use crate::error::MineError;
use crate::gap::GapRequirement;
use crate::lambda::PruneBound;
use crate::mpp::{prepare, MppConfig};
use crate::pil::Pil;
use crate::result::{FrequentPattern, LevelStats, MineOutcome, MineStats};
use std::collections::HashMap;
use std::time::Instant;

/// Run the enumeration baseline.
///
/// `candidate_budget` bounds the *cumulative* number of candidates
/// (`Σ σ^l`) the run may account for; exceeding it aborts with
/// [`MineError::EnumerationBudget`]. The paper's Table 3 runs the
/// budgetless equivalent up to `C_18` only because `l ≤ 13` patterns
/// stop occurring; reproduce that with a generous budget.
pub fn enumerate(
    seq: &perigap_seq::Sequence,
    gap: GapRequirement,
    rho: f64,
    config: MppConfig,
    candidate_budget: u128,
) -> Result<MineOutcome, MineError> {
    let started = Instant::now();
    let (counts, rho_exact) = prepare(seq, gap, rho, &config)?;
    let sigma = seq.alphabet().size() as u128;
    let start = config.start_level;
    let hard_cap = config.max_level.unwrap_or(usize::MAX).min(counts.l2());

    let mut stats = MineStats {
        n_used: 0,
        ..MineStats::default()
    };
    let mut frequent: Vec<FrequentPattern> = Vec::new();
    let mut spent: u128 = 0;

    // Patterns with non-zero support at the current level.
    let mut current: HashMap<crate::pattern::Pattern, Pil> = Pil::build_all(seq, gap, start);
    let mut level = start;

    while level <= hard_cap {
        let level_started = Instant::now();
        if counts.n(level).is_zero() {
            break;
        }
        let required = sigma.saturating_pow(level as u32);
        spent = spent.saturating_add(required);
        if spent > candidate_budget {
            return Err(MineError::EnumerationBudget {
                required: spent,
                budget: candidate_budget,
            });
        }
        let bound = PruneBound::exact(&counts, &rho_exact, level);
        let n_l_f64 = counts.n_f64(level);
        let mut frequent_here = 0usize;
        for (pattern, pil) in &current {
            let sup = pil.support();
            if bound.admits_u128(sup) {
                frequent.push(FrequentPattern {
                    pattern: pattern.clone(),
                    support: sup,
                    ratio: sup as f64 / n_l_f64,
                });
                frequent_here += 1;
            }
        }
        stats.levels.push(LevelStats {
            level,
            candidates: required,
            frequent: frequent_here,
            extended: current.len(),
            elapsed: level_started.elapsed(),
        });
        if current.is_empty() || level == hard_cap {
            break;
        }

        // Extend every supported pattern by every supported pattern with
        // matching overlap — the sparse equivalent of counting all
        // σ^(level+1) candidates.
        let mut by_prefix: HashMap<&[u8], Vec<&crate::pattern::Pattern>> = HashMap::new();
        for pattern in current.keys() {
            by_prefix
                .entry(&pattern.codes()[..pattern.len() - 1])
                .or_default()
                .push(pattern);
        }
        let mut next = HashMap::new();
        for (p1, pil1) in &current {
            if let Some(partners) = by_prefix.get(&p1.codes()[1..]) {
                for p2 in partners {
                    let pil2 = &current[*p2];
                    let pil = Pil::join(pil1, pil2, gap);
                    if !pil.is_empty() {
                        let candidate = p1.join(p2).expect("overlap holds");
                        next.insert(candidate, pil);
                    }
                }
            }
        }
        if next.is_empty() {
            // Record the empty continuation level the way the paper's
            // table shows trailing all-zero rows, then stop.
            current = next;
            level += 1;
            continue;
        }
        current = next;
        level += 1;
    }

    stats.total_elapsed = started.elapsed();
    let mut outcome = MineOutcome { frequent, stats };
    outcome.sort();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpp::{mpp, MppConfig};
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::{Alphabet, Sequence};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    /// Unpruned enumeration keeps *every* supported pattern at every
    /// level, so with a flexible gap the stored set grows toward σ^l —
    /// the explosion the paper's Table 3 documents. Tests must cap the
    /// depth to stay tractable.
    fn capped(max_level: usize) -> MppConfig {
        MppConfig {
            max_level: Some(max_level),
            ..MppConfig::default()
        }
    }

    #[test]
    fn agrees_with_mpp_worst_case() {
        let s = uniform(&mut StdRng::seed_from_u64(31), Alphabet::Dna, 100);
        let g = gap(1, 2);
        let rho = 0.001;
        let baseline = enumerate(&s, g, rho, capped(7), u128::MAX).unwrap();
        let worst = mpp(&s, g, rho, g.l1(100), capped(7)).unwrap();
        assert_eq!(baseline.frequent.len(), worst.frequent.len());
        for f in &baseline.frequent {
            assert_eq!(worst.get(&f.pattern).unwrap().support, f.support);
        }
    }

    #[test]
    fn candidate_accounting_is_sigma_to_the_l() {
        let s = uniform(&mut StdRng::seed_from_u64(32), Alphabet::Dna, 100);
        let outcome = enumerate(&s, gap(1, 2), 0.01, capped(6), u128::MAX).unwrap();
        for l in &outcome.stats.levels {
            assert_eq!(l.candidates, 4u128.pow(l.level as u32));
        }
    }

    #[test]
    fn budget_guard_fires() {
        let s = uniform(&mut StdRng::seed_from_u64(33), Alphabet::Dna, 200);
        let err = enumerate(&s, gap(1, 3), 1e-9, MppConfig::default(), 10_000).unwrap_err();
        assert!(matches!(err, MineError::EnumerationBudget { .. }));
    }

    #[test]
    fn stops_when_no_pattern_has_support() {
        // Rigid gap on a short sequence: support dies quickly.
        let s = Sequence::dna("ACGTACGTACGT").unwrap();
        let outcome = enumerate(&s, gap(3, 3), 0.5, MppConfig::default(), u128::MAX).unwrap();
        let max_level = outcome.stats.levels.last().unwrap().level;
        assert!(
            max_level <= 4,
            "rigid gap on 12 chars dies early, got {max_level}"
        );
    }
}
