//! Reference matching semantics and support counting.
//!
//! These implementations define ground truth for the optimized PIL
//! machinery: a literal check of "does `P` match `S` w.r.t. this offset
//! sequence", an explicit enumerator of matching offset sequences (only
//! viable on tiny inputs — there are `Θ(L·W^(l−1))` candidates), and a
//! position-DP support counter that is slow but obviously correct.

use crate::gap::GapRequirement;
use crate::pattern::Pattern;
use perigap_seq::Sequence;

/// Does `pattern` match `seq` with respect to `offsets` (1-based,
/// as in the paper)? Checks both the gap requirement and the character
/// equalities `S[c_j] = P[j]`.
pub fn matches_at(
    seq: &Sequence,
    gap: GapRequirement,
    pattern: &Pattern,
    offsets: &[usize],
) -> bool {
    if offsets.len() != pattern.len() || offsets.is_empty() {
        return pattern.is_empty() && offsets.is_empty();
    }
    if offsets[0] < 1 || *offsets.last().expect("non-empty") > seq.len() {
        return false;
    }
    for w in offsets.windows(2) {
        if !gap.admits(w[0], w[1]) {
            return false;
        }
    }
    offsets
        .iter()
        .zip(pattern.codes())
        .all(|(&c, &p)| seq.at1(c) == p)
}

/// Enumerate every offset sequence with respect to which `pattern`
/// matches `seq`. Exponential in the pattern length — use only on toy
/// inputs (tests, examples).
pub fn enumerate_matches(
    seq: &Sequence,
    gap: GapRequirement,
    pattern: &Pattern,
) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if pattern.is_empty() {
        return out;
    }
    let mut stack = Vec::with_capacity(pattern.len());
    for start in 1..=seq.len() {
        if seq.at1(start) == pattern.at1(1) {
            stack.push(start);
            extend(seq, gap, pattern, &mut stack, &mut out);
            stack.pop();
        }
    }
    out
}

fn extend(
    seq: &Sequence,
    gap: GapRequirement,
    pattern: &Pattern,
    stack: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if stack.len() == pattern.len() {
        out.push(stack.clone());
        return;
    }
    let prev = *stack.last().expect("stack is seeded with the start");
    let next_char = pattern.at1(stack.len() + 1);
    for step in gap.steps() {
        let next = prev + step;
        if next > seq.len() {
            break;
        }
        if seq.at1(next) == next_char {
            stack.push(next);
            extend(seq, gap, pattern, stack, out);
            stack.pop();
        }
    }
}

/// Support `sup(P)` by dynamic programming over subject positions:
/// `ways[c]` counts the matching offset sequences for the first `k`
/// pattern characters that end at offset `c`. `O(|P| · L · W)` time —
/// the trustworthy-but-slow oracle the PIL implementation is verified
/// against.
pub fn support_dp(seq: &Sequence, gap: GapRequirement, pattern: &Pattern) -> u128 {
    if pattern.is_empty() || seq.is_empty() {
        return 0;
    }
    let len = seq.len();
    // 1-based offsets: slot 0 is unused padding.
    let mut ways = vec![0u128; len + 1];
    for (slot, &code) in seq.codes().iter().enumerate() {
        if code == pattern.at1(1) {
            ways[slot + 1] = 1;
        }
    }
    for k in 2..=pattern.len() {
        let target = pattern.at1(k);
        let mut next = vec![0u128; len + 1];
        for (c, &w) in ways.iter().enumerate().skip(1) {
            if w == 0 {
                continue;
            }
            for step in gap.steps() {
                let t = c + step;
                if t > len {
                    break;
                }
                if seq.at1(t) == target {
                    next[t] = next[t].saturating_add(w);
                }
            }
        }
        ways = next;
    }
    ways.iter().fold(0u128, |acc, &w| acc.saturating_add(w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_seq::Alphabet;

    fn pat(text: &str) -> Pattern {
        Pattern::parse(text, &Alphabet::Dna).unwrap()
    }

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    #[test]
    fn paper_support_example() {
        // Section 3: S = AAGCC, P = AC, gap [2,3] → offsets
        // [1,4], [1,5], [2,5]; sup(P) = 3.
        let s = Sequence::dna("AAGCC").unwrap();
        let p = pat("AC");
        let g = gap(2, 3);
        assert!(matches_at(&s, g, &p, &[1, 4]));
        assert!(matches_at(&s, g, &p, &[1, 5]));
        assert!(matches_at(&s, g, &p, &[2, 5]));
        assert!(!matches_at(&s, g, &p, &[2, 4])); // gap of 1 < N
        let all = enumerate_matches(&s, g, &p);
        assert_eq!(all, vec![vec![1, 4], vec![1, 5], vec![2, 5]]);
        assert_eq!(support_dp(&s, g, &p), 3);
    }

    #[test]
    fn apriori_violation_example() {
        // Section 4.2: S = ACTTT, gap [1,3]: sup(AT) = 3 > sup(A) = 1.
        let s = Sequence::dna("ACTTT").unwrap();
        let g = gap(1, 3);
        assert_eq!(support_dp(&s, g, &pat("AT")), 3);
        assert_eq!(support_dp(&s, g, &pat("A")), 1);
    }

    #[test]
    fn matches_at_validates_everything() {
        let s = Sequence::dna("ACGTACGT").unwrap();
        let g = gap(2, 3);
        // Right characters, wrong gap.
        assert!(!matches_at(&s, g, &pat("AA"), &[1, 2]));
        // Out-of-bounds offsets.
        assert!(!matches_at(&s, g, &pat("AT"), &[0, 4]));
        assert!(!matches_at(&s, g, &pat("AT"), &[5, 9]));
        // Wrong character.
        assert!(!matches_at(&s, g, &pat("AA"), &[1, 4]));
        assert!(matches_at(&s, g, &pat("AT"), &[1, 4]));
        // Arity mismatch.
        assert!(!matches_at(&s, g, &pat("AT"), &[1]));
    }

    #[test]
    fn single_character_support_is_occurrence_count() {
        let s = Sequence::dna("ACAACA").unwrap();
        assert_eq!(support_dp(&s, gap(1, 2), &pat("A")), 4);
        assert_eq!(support_dp(&s, gap(1, 2), &pat("C")), 2);
        assert_eq!(support_dp(&s, gap(1, 2), &pat("G")), 0);
    }

    #[test]
    fn dp_matches_enumeration_on_random_input() {
        use perigap_seq::gen::iid::uniform;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = uniform(&mut StdRng::seed_from_u64(42), Alphabet::Dna, 60);
        let g = gap(1, 3);
        for text in ["A", "AT", "ACG", "AAA", "GTA", "ACGT", "TTTT"] {
            let p = pat(text);
            assert_eq!(
                support_dp(&s, g, &p),
                enumerate_matches(&s, g, &p).len() as u128,
                "pattern {text}"
            );
        }
    }

    #[test]
    fn empty_cases() {
        let s = Sequence::dna("ACGT").unwrap();
        let empty = Pattern::from_codes(vec![]);
        assert_eq!(support_dp(&s, gap(1, 2), &empty), 0);
        assert!(enumerate_matches(&s, gap(1, 2), &empty).is_empty());
        let none = Sequence::dna("").unwrap();
        assert_eq!(support_dp(&none, gap(1, 2), &pat("A")), 0);
    }

    #[test]
    fn rigid_gap_counts_periodic_occurrences() {
        // S = ATATAT, gap [1,1] (step 2): AAA matches only at [1,3,5],
        // TTT only at [2,4,6], and mixed patterns never.
        let s = Sequence::dna("ATATAT").unwrap();
        let g = gap(1, 1);
        assert_eq!(support_dp(&s, g, &pat("AAA")), 1);
        assert_eq!(support_dp(&s, g, &pat("TTT")), 1);
        assert_eq!(support_dp(&s, g, &pat("ATA")), 0);
    }
}
