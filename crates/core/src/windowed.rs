//! The windowed mining model of the related work (Section 2), built
//! for comparison: Han et al. divide the sequence into non-overlapping
//! windows and call a pattern frequent when it occurs in enough
//! windows; Mannila et al. use sliding windows. Under either, the
//! Apriori property holds — which is why those models are easy to mine
//! — but "patterns that span multiple windows cannot be discovered",
//! the limitation the paper's within-sequence ratio model removes.
//!
//! [`windowed_mine`] implements the non-overlapping variant over the
//! same pattern/gap machinery, and
//! [`cross_window_loss`] quantifies the limitation by reporting
//! patterns the paper's model finds that the windowed model misses.

use crate::error::MineError;
use crate::gap::GapRequirement;
use crate::mpp::MppConfig;
use crate::pattern::Pattern;
use crate::pil::Pil;
use crate::result::MineOutcome;
use perigap_seq::fragment::fragments;
use perigap_seq::Sequence;
use std::collections::HashMap;

/// Maximum live patterns per level before [`windowed_mine`] aborts —
/// a backstop against the model's weak selectivity (see the function
/// docs).
pub const WINDOWED_PATTERN_BUDGET: usize = 2_000_000;

/// A pattern frequent under the windowed model.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowedPattern {
    /// The pattern.
    pub pattern: Pattern,
    /// Number of windows in which it occurs at least once.
    pub window_count: usize,
}

/// Outcome of a windowed mining run.
#[derive(Clone, Debug, Default)]
pub struct WindowedOutcome {
    /// Patterns occurring in at least the required number of windows,
    /// sorted by length then codes.
    pub patterns: Vec<WindowedPattern>,
    /// Number of windows examined.
    pub windows: usize,
}

impl WindowedOutcome {
    /// Look up a pattern.
    pub fn get(&self, pattern: &Pattern) -> Option<&WindowedPattern> {
        self.patterns.iter().find(|p| &p.pattern == pattern)
    }
}

/// Mine with the non-overlapping-window model: split `seq` into
/// `window` -character windows and report every pattern (with the
/// usual gap requirement) that *occurs* in at least `min_windows`
/// windows. Occurrence is binary per window — the windowed related
/// work counts windows, not offset sequences.
///
/// Level-wise with genuine Apriori pruning (valid in this model):
/// a pattern can only reach `min_windows` windows if both its prefix
/// and suffix do. **Beware**: binary occurrence is far less selective
/// than the paper's support-ratio threshold, so on genomic inputs the
/// live pattern set can grow toward `σ^l`; cap the depth with
/// `config.max_level`. As a backstop, the run aborts with
/// [`MineError::EnumerationBudget`] if more than [`WINDOWED_PATTERN_BUDGET`]
/// patterns are ever alive at one level.
pub fn windowed_mine(
    seq: &Sequence,
    gap: GapRequirement,
    window: usize,
    min_windows: usize,
    config: MppConfig,
) -> Result<WindowedOutcome, MineError> {
    if window == 0 {
        return Err(MineError::SequenceTooShort {
            len: seq.len(),
            needed: 1,
        });
    }
    let wins = fragments(seq, window, 1);
    let total = wins.len();
    if total == 0 || min_windows == 0 || min_windows > total {
        return Ok(WindowedOutcome {
            patterns: Vec::new(),
            windows: total,
        });
    }
    let start = config.start_level;
    let hard_cap = config.max_level.unwrap_or(usize::MAX);

    // Per-window PILs at the seed level, reduced to window-occurrence
    // sets per pattern.
    let mut current: HashMap<Pattern, Vec<(usize, Pil)>> = HashMap::new();
    for win in &wins {
        if win.sequence.len() < gap.min_span(start) {
            continue;
        }
        for (pattern, pil) in Pil::build_all(&win.sequence, gap, start) {
            current.entry(pattern).or_default().push((win.index, pil));
        }
    }

    let mut out = Vec::new();
    let mut level = start;
    while level <= hard_cap && !current.is_empty() {
        if current.len() > WINDOWED_PATTERN_BUDGET {
            return Err(MineError::EnumerationBudget {
                required: current.len() as u128,
                budget: WINDOWED_PATTERN_BUDGET as u128,
            });
        }
        // Apriori filter: keep only patterns present in enough windows.
        current.retain(|_, occurrences| occurrences.len() >= min_windows);
        for (pattern, occurrences) in &current {
            out.push(WindowedPattern {
                pattern: pattern.clone(),
                window_count: occurrences.len(),
            });
        }
        if current.is_empty() || level == hard_cap {
            break;
        }

        let mut by_prefix: HashMap<Vec<u8>, Vec<&Pattern>> = HashMap::new();
        for pattern in current.keys() {
            by_prefix
                .entry(pattern.codes()[..pattern.len() - 1].to_vec())
                .or_default()
                .push(pattern);
        }
        let mut next: HashMap<Pattern, Vec<(usize, Pil)>> = HashMap::new();
        for (p1, occ1) in &current {
            let Some(partners) = by_prefix.get(&p1.codes()[1..]) else {
                continue;
            };
            for p2 in partners {
                let occ2 = &current[*p2];
                let candidate = p1.join(p2).expect("overlap holds");
                // Join window-aligned PILs.
                let mut joined = Vec::new();
                let mut i = 0;
                let mut j = 0;
                while i < occ1.len() && j < occ2.len() {
                    match occ1[i].0.cmp(&occ2[j].0) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let pil = Pil::join(&occ1[i].1, &occ2[j].1, gap);
                            if !pil.is_empty() {
                                joined.push((occ1[i].0, pil));
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
                if !joined.is_empty() {
                    next.insert(candidate, joined);
                }
            }
        }
        current = next;
        level += 1;
    }

    out.sort_by(|a, b| {
        (a.pattern.len(), a.pattern.codes()).cmp(&(b.pattern.len(), b.pattern.codes()))
    });
    Ok(WindowedOutcome {
        patterns: out,
        windows: total,
    })
}

/// Patterns that the paper's whole-sequence model (`reference`) finds
/// but the windowed model misses at the same gap requirement — the
/// "patterns that span multiple windows cannot be discovered" effect.
pub fn cross_window_loss<'a>(
    reference: &'a MineOutcome,
    windowed: &WindowedOutcome,
) -> Vec<&'a Pattern> {
    reference
        .frequent
        .iter()
        .map(|f| &f.pattern)
        .filter(|p| windowed.get(p).is_none())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mppm::mppm;
    use crate::naive::support_dp;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    #[test]
    fn counts_windows_not_occurrences() {
        // Two windows; pattern occurs 3 times in window 0, once in 1.
        let seq = Sequence::dna("AACCAACCAA_AACC".replace('_', "G").as_str()).unwrap();
        let g = gap(1, 2);
        let config = MppConfig {
            start_level: 2,
            max_level: Some(3),
            ..MppConfig::default()
        };
        let outcome = windowed_mine(&seq, g, 8, 2, config.clone()).unwrap();
        // AC occurs in both windows → window_count 2.
        let ac = Pattern::from_codes(vec![0, 1]);
        let found = outcome.get(&ac).expect("AC spans both windows");
        assert_eq!(found.window_count, 2);
    }

    #[test]
    fn min_windows_filters() {
        let seq = uniform(&mut StdRng::seed_from_u64(1), Alphabet::Dna, 300);
        let g = gap(1, 2);
        let config = MppConfig {
            start_level: 3,
            max_level: Some(5),
            ..MppConfig::default()
        };
        let lax = windowed_mine(&seq, g, 60, 1, config.clone()).unwrap();
        let strict = windowed_mine(&seq, g, 60, 5, config.clone()).unwrap();
        assert_eq!(lax.windows, 5);
        assert!(strict.patterns.len() <= lax.patterns.len());
        for p in &strict.patterns {
            assert_eq!(p.window_count, 5);
        }
    }

    #[test]
    fn window_counts_are_correct() {
        let seq = uniform(&mut StdRng::seed_from_u64(2), Alphabet::Dna, 240);
        let g = gap(1, 3);
        let config = MppConfig {
            start_level: 3,
            max_level: Some(4),
            ..MppConfig::default()
        };
        let outcome = windowed_mine(&seq, g, 80, 1, config.clone()).unwrap();
        let wins = fragments(&seq, 80, 1);
        for wp in &outcome.patterns {
            let expected = wins
                .iter()
                .filter(|w| support_dp(&w.sequence, g, &wp.pattern) > 0)
                .count();
            assert_eq!(wp.window_count, expected, "pattern {:?}", wp.pattern);
        }
    }

    #[test]
    fn spanning_pattern_is_lost_by_windows_found_by_paper_model() {
        // Plant a pattern whose occurrences all straddle a window
        // boundary: window model misses it, whole-sequence model finds it.
        let mut codes = vec![1u8; 120]; // all C background
                                        // Occurrences of A g(2,2) A g(2,2) A, every one straddling the
                                        // window boundary at offset 60 (start < 60 ≤ start + 6).
        for start in [54usize, 56, 58] {
            codes[start] = 0;
            codes[start + 3] = 0;
            codes[start + 6] = 0;
        }
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let g = gap(2, 2);
        let aaa = Pattern::from_codes(vec![0, 0, 0]);
        assert!(support_dp(&seq, g, &aaa) >= 3);

        let config = MppConfig {
            start_level: 3,
            max_level: Some(3),
            ..MppConfig::default()
        };
        let windowed = windowed_mine(&seq, g, 60, 1, config.clone()).unwrap();
        assert!(
            windowed.get(&aaa).is_none(),
            "boundary-straddling AAA invisible to windows"
        );

        let reference = mppm(&seq, g, 0.0001, 2, config.clone()).unwrap();
        assert!(
            reference.get(&aaa).is_some(),
            "whole-sequence model finds AAA"
        );
        let lost = cross_window_loss(&reference, &windowed);
        assert!(lost.iter().any(|p| **p == aaa));
    }

    #[test]
    fn degenerate_inputs() {
        let seq = Sequence::dna("ACGTACGT").unwrap();
        let g = gap(1, 2);
        let config = MppConfig::default();
        assert!(windowed_mine(&seq, g, 0, 1, config.clone()).is_err());
        let out = windowed_mine(&seq, g, 4, 3, config.clone()).unwrap();
        assert!(out.patterns.is_empty(), "min_windows above window count");
        assert_eq!(out.windows, 2);
    }
}
