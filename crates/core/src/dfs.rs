//! The hybrid BFS→DFS mining engine.
//!
//! The breadth-first engines ([`crate::mpp`], [`crate::parallel`]) hold
//! two *full* generations alive at every level, so their footprint is
//! O(widest level). This engine mines breadth-first only while the
//! survivor set is one connected prefix-run component; as soon as the
//! survivors split into two or more components it hands each component
//! to the worker pool as an independent **depth-first subtree task**.
//! Inside a subtree the engine keeps a *double-buffered* chain — the
//! parent generation and the generation under construction — so live
//! arena bytes along a chain are O(deepest chain), not O(widest level).
//!
//! Two further levers:
//!
//! - **Eager candidate filtering.** Candidates are evaluated against
//!   the exact and Theorem 1 bounds the moment they are generated;
//!   only survivors are written to the next arena. The breadth-first
//!   engines persist every candidate (empty PILs included) until the
//!   next level's filter pass.
//! - **Batched multi-suffix joins.** All right parents of one left
//!   parent share a single walk of the left PIL
//!   ([`crate::pil::join_multi_into`]), instead of re-scanning it per
//!   candidate.
//!
//! ## Why the component handoff is sound
//!
//! Let the survivors at level `h` be split into prefix runs (equal
//! `(h−1)`-prefix groups). Union, for every pattern `p` in run `r`, the
//! run keyed by `suffix(p)` into `r`'s component. Claim: every
//! generation partner at *every* deeper level stays inside one
//! component. A level-`h+1` candidate `d = p·x` lives where its left
//! parent `p` lives; its right parent `q` satisfies
//! `prefix(q) = suffix(p)`, so `q` is in the run keyed `suffix(p)` —
//! unioned with `p`'s component. Inductively, any deeper pattern's
//! parents both descend from level-`h` patterns of the same component.
//! Components are therefore independent mining problems, and the same
//! argument re-applies inside a subtree whenever its survivors split
//! again.
//!
//! ## Engine invariants
//!
//! Every counter in [`MineStats`] and every [`LevelEvent`] counter
//! (candidates, evaluated, frequent, kept, pruned, saturated) is
//! **identical** to the breadth-first engines': both consult the same
//! [`BoundTable`] rows and enumerate the same partner pairs. Durations
//! and `arena_bytes` are engine-dependent — here a level's elapsed
//! time is the summed generation+evaluation time that *produced* it,
//! and `arena_bytes` covers the surviving arenas only.

use crate::adaptive::{ReprCache, ReprPolicy};
use crate::arena::{build_seed, prefix_runs, PilSet};
use crate::counts::OffsetCounts;
use crate::error::MineError;
use crate::gap::GapRequirement;
use crate::kernel::{self, ResolvedKernel};
use crate::lambda::{BoundRow, BoundTable};
use crate::mpp::{check_ceiling, prepare, MppConfig};
use crate::parallel::{
    PoolHooks, PoolJob, WorkerPool, CHUNKS_PER_THREAD, MIN_CHUNK, PARALLEL_THRESHOLD,
};
use crate::pattern::Pattern;
use crate::pil::{join_multi_into, JoinCounters, MultiJoinScratch};
use crate::prune::Pruner;
use crate::result::{FrequentPattern, LevelStats, MineOutcome, MineStats};
use crate::spill::{self, SpillState};
use crate::trace::{
    AbortEvent, CompleteEvent, LevelEvent, MineObserver, NoopObserver, PoolLevelEvent,
    RestoreEvent, SeedEvent, SpillEvent, SubtreeEvent, WarningEvent,
};
use perigap_math::BigRatio;
use perigap_seq::Sequence;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// MPP on the hybrid BFS→DFS engine. Identical frequent patterns and
/// stats counters to [`crate::mpp::mpp`] / [`crate::parallel::mpp_parallel`];
/// lower peak memory on workloads whose survivor set splits or narrows.
pub fn mpp_dfs(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    n: usize,
    config: MppConfig,
    threads: usize,
) -> Result<MineOutcome, MineError> {
    mpp_dfs_traced(seq, gap, rho, n, config, threads, &mut NoopObserver)
}

/// [`mpp_dfs`] with a [`MineObserver`] attached. Beyond the shared
/// events, every subtree task emits a [`SubtreeEvent`] and pooled
/// phases emit [`crate::trace::PoolLevelEvent`]s.
pub fn mpp_dfs_traced<O: MineObserver>(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    n: usize,
    config: MppConfig,
    threads: usize,
    observer: &mut O,
) -> Result<MineOutcome, MineError> {
    assert!(threads >= 1, "need at least one thread");
    let started = Instant::now();
    let repr_before = crate::adaptive::repr_stats();
    let (counts, rho_exact) = prepare(seq, gap, rho, &config)?;
    let kern = config.kernel.resolve();
    let seed_started = Instant::now();
    let pils = build_seed(seq, gap, config.start_level, kern);
    observer.on_seed(&SeedEvent {
        level: config.start_level,
        patterns: pils.len(),
        pil_entries: pils.entry_count(),
        arena_bytes: pils.arena_bytes(),
        elapsed: seed_started.elapsed(),
    });
    let run = run_hybrid(
        seq,
        &counts,
        &rho_exact,
        n,
        &config,
        kern,
        pils,
        threads,
        PoolHooks::default(),
        None,
        observer,
    );
    let (mut outcome, peak) = match run {
        Ok(done) => done,
        Err(e) => {
            observer.on_abort(&AbortEvent {
                message: e.to_string(),
            });
            return Err(e);
        }
    };
    outcome.stats.total_elapsed = started.elapsed();
    observer.on_repr(
        &crate::adaptive::repr_stats()
            .since(repr_before)
            .to_event(config.pil_repr.mode),
    );
    observer.on_complete(
        &CompleteEvent::from_outcome(&outcome)
            .with_peak_arena_bytes(peak)
            .with_kernel(kern),
    );
    Ok(outcome)
}

/// Per-level counter totals, merged across the prelude, chunk tasks,
/// and subtree tasks. Field-for-field the ingredients of one
/// [`LevelEvent`]/[`LevelStats`] pair.
#[derive(Clone, Default)]
struct LevelAgg {
    candidates: u128,
    evaluated: usize,
    frequent: usize,
    kept: usize,
    saturated: bool,
    arena_bytes: usize,
    jc: JoinCounters,
    join_elapsed: Duration,
    elapsed: Duration,
}

/// Merge `add` into the slot for `level`.
fn absorb(aggs: &mut BTreeMap<usize, LevelAgg>, level: usize, add: LevelAgg) {
    let a = aggs.entry(level).or_default();
    a.candidates += add.candidates;
    a.evaluated += add.evaluated;
    a.frequent += add.frequent;
    a.kept += add.kept;
    a.saturated |= add.saturated;
    a.arena_bytes += add.arena_bytes;
    a.jc.absorb(&add.jc);
    a.join_elapsed += add.join_elapsed;
    a.elapsed += add.elapsed;
}

/// Shared live/peak arena accounting. `grow` charges bytes against the
/// engine-wide gauge (and the optional ceiling) *before* the allocation
/// is considered live; `shrink` releases them. Transient chunk output
/// buffers are deliberately unaccounted — they are bounded by a chunk's
/// share of one generation and keeping them out makes the reported peak
/// deterministic across thread schedules.
struct MemGauge<'a> {
    live: &'a AtomicUsize,
    peak: &'a AtomicUsize,
    limit: Option<usize>,
    /// Largest `held` this gauge saw (per-task peak for [`SubtreeEvent`]).
    task_peak: usize,
    /// Bytes currently charged through this gauge.
    held: usize,
}

impl MemGauge<'_> {
    fn new<'a>(live: &'a AtomicUsize, peak: &'a AtomicUsize, limit: Option<usize>) -> MemGauge<'a> {
        MemGauge {
            live,
            peak,
            limit,
            task_peak: 0,
            held: 0,
        }
    }

    fn grow(&mut self, bytes: usize) -> Result<(), MineError> {
        self.held += bytes;
        self.task_peak = self.task_peak.max(self.held);
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(live, Ordering::Relaxed);
        // One place pins the boundary semantics for the whole
        // workspace: `live == cap` passes, `live > cap` aborts.
        check_ceiling(self.limit, live)
    }

    fn shrink(&mut self, bytes: usize) {
        self.held -= bytes;
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// Counters from one [`eager_generate`] call.
#[derive(Default)]
struct EagerStats {
    evaluated: usize,
    frequent: usize,
    kept: usize,
    saturated: bool,
    batches: u64,
    batch_candidates: u64,
    jc: JoinCounters,
}

/// Reusable working buffers for [`eager_generate`], bundled so callers
/// amortise their allocations across generation steps. `outs[j]` maps
/// position-for-position onto one batch's partner run; `souts` is the
/// staging area for the sparse subset of a mixed batch (buffers migrate
/// between the two via `mem::swap`, so capacity is retained either way).
#[derive(Default)]
struct EagerBufs {
    scratch: MultiJoinScratch,
    outs: Vec<Vec<(u32, u64)>>,
    souts: Vec<Vec<(u32, u64)>>,
    sat: Vec<bool>,
    dense_pos: Vec<usize>,
    sparse_pos: Vec<usize>,
    codes: Vec<u8>,
}

/// Generate the level `set.level() + 1` candidates whose left parent is
/// `members[lo..hi]`, evaluating each against `row` the moment it is
/// produced. Frequent candidates are appended to `frequent`; candidates
/// passing the extension bound are appended to `next`. Every partner
/// pair is counted in `evaluated` (empty joins included), matching the
/// breadth-first engines' candidate accounting exactly.
///
/// Each batch is split by `repr`'s per-suffix representation decision:
/// dense partners take the O(|A|) prefix-sum probe
/// ([`join_dense_into`]), the sparse remainder shares one batched
/// sliding-window walk ([`join_multi_into`]). Outputs and saturation
/// flags are position-identical to the all-sparse path.
#[allow(clippy::too_many_arguments)]
fn eager_generate(
    set: &PilSet,
    members: &[usize],
    runs: &[(usize, usize)],
    lo: usize,
    hi: usize,
    gap: GapRequirement,
    kern: ResolvedKernel,
    row: &BoundRow,
    next: &mut PilSet,
    repr: &mut ReprCache,
    bufs: &mut EagerBufs,
    frequent: &mut Vec<FrequentPattern>,
    pruner: &Pruner,
) -> EagerStats {
    let level = set.level();
    let mut st = EagerStats::default();
    repr.begin(set.len());
    let mut partners: Vec<&[(u32, u64)]> = Vec::new();
    for &i in &members[lo..hi] {
        let p1 = set.pattern_codes(i);
        // Pruned modes: a left parent outside the target cone or under
        // the top-k floor cannot contribute an admissible candidate.
        if !pruner.admits_parent(p1, || set.support(i)) {
            continue;
        }
        let suffix = &p1[1..];
        let found =
            runs.binary_search_by(|&(s, _)| set.pattern_codes(members[s])[..level - 1].cmp(suffix));
        let Ok(r) = found else { continue };
        let (s, e) = runs[r];
        let cnt = e - s;
        if bufs.outs.len() < cnt {
            bufs.outs.resize_with(cnt, Vec::new);
        }
        bufs.dense_pos.clear();
        bufs.sparse_pos.clear();
        bufs.sat.clear();
        bufs.sat.resize(cnt, false);
        for (j, &m) in members[s..e].iter().enumerate() {
            if repr.decide(m, set.entries(m)) {
                bufs.dense_pos.push(j);
            } else {
                bufs.sparse_pos.push(j);
            }
        }
        let a = set.entries(i);
        for &j in &bufs.dense_pos {
            // A dense list can never saturate: `DensePil::build` already
            // proved the *total* count sum fits in u64, and every window
            // is a sub-sum of it — `sat[j]` stays false, matching what
            // the sparse walk would have reported.
            let dense = repr.get(members[s + j]).expect("decided dense");
            bufs.outs[j].clear();
            kernel::join_dense_kernel(kern, a, dense, gap, &mut bufs.outs[j], &mut st.jc);
        }
        if !bufs.sparse_pos.is_empty() {
            let k = bufs.sparse_pos.len();
            partners.clear();
            partners.extend(bufs.sparse_pos.iter().map(|&j| set.entries(members[s + j])));
            if bufs.souts.len() < k {
                bufs.souts.resize_with(k, Vec::new);
            }
            join_multi_into(
                a,
                &partners,
                gap,
                &mut bufs.souts[..k],
                &mut bufs.scratch,
                &mut st.jc,
            );
            for (k2, &j) in bufs.sparse_pos.iter().enumerate() {
                std::mem::swap(&mut bufs.outs[j], &mut bufs.souts[k2]);
                bufs.sat[j] = bufs.scratch.saturated[k2];
            }
        }
        st.batches += 1;
        st.batch_candidates += cnt as u64;
        for (j, &m) in members[s..e].iter().enumerate() {
            st.evaluated += 1;
            st.saturated |= bufs.sat[j];
            let entries = &bufs.outs[j];
            let sup: u128 = entries.iter().map(|&(_, c)| c as u128).sum();
            let mut admitted_exact = row.exact.admits_u128(sup);
            let mut admitted_lhat = row.lhat.admits_u128(sup);
            if (admitted_exact || admitted_lhat) && !pruner.admits_search(sup) {
                continue;
            }
            if admitted_exact || admitted_lhat {
                bufs.codes.clear();
                bufs.codes.extend_from_slice(p1);
                bufs.codes.push(set.pattern_codes(m)[level - 1]);
                admitted_exact = admitted_exact && pruner.admits_result(&bufs.codes, sup);
                admitted_lhat = admitted_lhat && pruner.admits_frontier(&bufs.codes);
            }
            if admitted_exact {
                frequent.push(FrequentPattern {
                    pattern: Pattern::from_codes(bufs.codes.clone()),
                    support: sup,
                    ratio: sup as f64 / row.n_f64,
                });
                st.frequent += 1;
            }
            if admitted_lhat {
                next.push_pattern(&bufs.codes, entries);
                st.kept += 1;
            }
        }
    }
    st
}

/// Partition the survivor set into connected prefix-run components:
/// union-find over `runs`, where each pattern's run is unioned with the
/// run keyed by its suffix (the component-closure rule from the module
/// docs). Returns ascending member lists, in first-seen run order; one
/// list means the set cannot be split yet.
fn run_components(set: &PilSet, members: &[usize], runs: &[(usize, usize)]) -> Vec<Vec<usize>> {
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let level = set.level();
    let mut parent: Vec<usize> = (0..runs.len()).collect();
    for (r, &(s, e)) in runs.iter().enumerate() {
        for &m in &members[s..e] {
            let suffix = &set.pattern_codes(m)[1..];
            let found = runs.binary_search_by(|&(s2, _)| {
                set.pattern_codes(members[s2])[..level - 1].cmp(suffix)
            });
            if let Ok(r2) = found {
                let (a, b) = (find(&mut parent, r), find(&mut parent, r2));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut slot: Vec<Option<usize>> = vec![None; runs.len()];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for (r, &(s, e)) in runs.iter().enumerate() {
        let root = find(&mut parent, r);
        let idx = match slot[root] {
            Some(idx) => idx,
            None => {
                comps.push(Vec::new());
                slot[root] = Some(comps.len() - 1);
                comps.len() - 1
            }
        };
        comps[idx].extend_from_slice(&members[s..e]);
    }
    comps
}

/// One pool item of the hybrid engine.
enum DfsTask {
    /// Prelude chunk: eager-generate for left parents
    /// `members[lo..hi]` of the shared base generation.
    Chunk { lo: usize, hi: usize },
    /// Depth-first subtree over one component's base-level members.
    Subtree { members: Vec<usize> },
    /// A subtree whose base component was serialized to the spill
    /// backend at handoff; the processing worker restores it first.
    /// `best` is the component's best cone-admissible support at spill
    /// time — if the top-k floor passes it by restore time the record
    /// is dropped unread (see [`DfsJob::process_spilled`]).
    SpilledSubtree { record: u64, best: u128 },
}

/// What one [`DfsTask`] returns (inside `Ok`; a task that trips the
/// memory ceiling returns the error as its output value).
struct TaskOut {
    /// Chunk tasks: the surviving slice of the next generation.
    part: Option<PilSet>,
    /// Per-level counter totals this task contributed.
    aggs: Vec<(usize, LevelAgg)>,
    /// Frequent patterns this task found.
    frequent: Vec<FrequentPattern>,
    /// Subtree tasks: the progress event.
    subtree: Option<SubtreeEvent>,
    /// Spilled subtree tasks: the restore event.
    restore: Option<RestoreEvent>,
    /// Spilled subtree tasks: set when the mined record's backing file
    /// could not be removed (surfaced as a `spill-cleanup` warning, not
    /// an error — see [`crate::spill::SpillIo::remove`]).
    cleanup_failure: Option<String>,
}

/// A roster of [`DfsTask`]s over one shared base generation, claimed
/// off the common [`WorkerPool`] cursor.
struct DfsJob {
    base: PilSet,
    /// Survivor indices into `base`, ascending.
    members: Vec<usize>,
    /// Prefix runs over `members`.
    runs: Vec<(usize, usize)>,
    tasks: Vec<DfsTask>,
    gap: GapRequirement,
    seq_len: usize,
    base_level: usize,
    n: usize,
    rho: BigRatio,
    hard_cap: usize,
    limit: Option<usize>,
    live: Arc<AtomicUsize>,
    peak: Arc<AtomicUsize>,
    /// The `base_level + 1` bound row, built once on the main thread so
    /// chunk tasks skip per-task bound construction.
    first_row: BoundRow,
    /// Per-list representation policy; each task builds its own
    /// [`ReprCache`] (dense lists are reused across the left parents of
    /// one task, never shared between threads).
    repr: ReprPolicy,
    /// Compute kernel for the dense probes inside every task.
    kern: ResolvedKernel,
    /// Present when the base generation was spilled: the backend plus
    /// the once-only claim guard for each record.
    spill: Option<SpillState>,
    cursor: AtomicUsize,
    hooks: PoolHooks,
    /// Shared pruning state (floor + target) across every task.
    pruner: Pruner,
}

impl PoolJob for DfsJob {
    type Out = Result<TaskOut, MineError>;

    fn n_items(&self) -> usize {
        self.tasks.len()
    }

    fn cursor(&self) -> &AtomicUsize {
        &self.cursor
    }

    fn hooks(&self) -> &PoolHooks {
        &self.hooks
    }

    fn progress_level(&self) -> usize {
        self.base_level + 1
    }

    fn process(&self, item: usize) -> Self::Out {
        match &self.tasks[item] {
            DfsTask::Chunk { lo, hi } => self.process_chunk(*lo, *hi),
            DfsTask::Subtree { members } => self.process_subtree(item, members),
            DfsTask::SpilledSubtree { record, best } => self.process_spilled(item, *record, *best),
        }
    }

    fn out_weight(out: &Self::Out) -> usize {
        match out {
            Ok(t) => t.aggs.iter().map(|(_, a)| a.evaluated).sum(),
            Err(_) => 0,
        }
    }
}

impl DfsJob {
    fn process_chunk(&self, lo: usize, hi: usize) -> Result<TaskOut, MineError> {
        let started = Instant::now();
        let mut next = PilSet::new(self.base_level + 1);
        let mut repr = ReprCache::with_kernel(self.repr, self.kern, Some(self.gap));
        let mut bufs = EagerBufs::default();
        let mut frequent: Vec<FrequentPattern> = Vec::new();
        let st = eager_generate(
            &self.base,
            &self.members,
            &self.runs,
            lo,
            hi,
            self.gap,
            self.kern,
            &self.first_row,
            &mut next,
            &mut repr,
            &mut bufs,
            &mut frequent,
            &self.pruner,
        );
        let elapsed = started.elapsed();
        let agg = LevelAgg {
            candidates: st.evaluated as u128,
            evaluated: st.evaluated,
            frequent: st.frequent,
            kept: st.kept,
            saturated: st.saturated,
            arena_bytes: next.arena_bytes(),
            jc: st.jc,
            join_elapsed: elapsed,
            elapsed,
        };
        Ok(TaskOut {
            part: Some(next),
            aggs: vec![(self.base_level + 1, agg)],
            frequent,
            subtree: None,
            restore: None,
            cleanup_failure: None,
        })
    }

    fn process_subtree(&self, item: usize, members: &[usize]) -> Result<TaskOut, MineError> {
        let started = Instant::now();
        // `OffsetCounts` caches are `!Sync`, so each task builds its own
        // (cheap: the tables are lazy and shallow at mining depths).
        let counts = OffsetCounts::new(self.seq_len, self.gap);
        let mut ctx = TaskCtx {
            gap: self.gap,
            hard_cap: self.hard_cap,
            counts: &counts,
            bounds: BoundTable::new(&counts, &self.rho, self.n),
            gauge: MemGauge::new(&self.live, &self.peak, self.limit),
            repr: ReprCache::with_kernel(self.repr, self.kern, Some(self.gap)),
            kern: self.kern,
            bufs: EagerBufs::default(),
            aggs: BTreeMap::new(),
            frequent: Vec::new(),
            deepest: self.base_level,
            batches: 0,
            batch_candidates: 0,
            pruner: self.pruner.clone(),
        };
        descend_split(&mut ctx, &self.base, members, self.base_level)?;
        let evaluated: usize = ctx.aggs.values().map(|a| a.evaluated).sum();
        let event = SubtreeEvent {
            index: item,
            level: self.base_level,
            patterns: members.len(),
            deepest: ctx.deepest,
            evaluated,
            frequent: ctx.frequent.len(),
            peak_arena_bytes: ctx.gauge.task_peak,
            batches: ctx.batches,
            batch_candidates: ctx.batch_candidates,
            elapsed: started.elapsed(),
        };
        Ok(TaskOut {
            part: None,
            aggs: ctx.aggs.into_iter().collect(),
            frequent: ctx.frequent,
            subtree: Some(event),
            restore: None,
            cleanup_failure: None,
        })
    }

    /// Restore one spilled component and mine it like
    /// [`process_subtree`]. The record is claimed exactly once across
    /// the pool (a stealing worker that re-dispatches a task can never
    /// restore the same bytes twice), its arena is re-charged to the
    /// shared gauge before any join runs, and the backing file is
    /// removed only after the subtree finished cleanly.
    fn process_spilled(&self, item: usize, record: u64, best: u128) -> Result<TaskOut, MineError> {
        let started = Instant::now();
        let state = self
            .spill
            .as_ref()
            .expect("spilled task scheduled without spill state");
        state.claim(record)?;
        // Top-k: if the floor climbed past the component's best support
        // while the record sat on disk, the whole subtree is dead —
        // drop the record without reading it back.
        if !self.pruner.admits_search(best) {
            let cleanup_failure = state.io.remove(record).err().map(|e| {
                format!(
                    "spill record {record} could not be removed after its subtree was pruned: {e}"
                )
            });
            return Ok(TaskOut {
                part: None,
                aggs: Vec::new(),
                frequent: Vec::new(),
                subtree: None,
                restore: None,
                cleanup_failure,
            });
        }
        let bytes = state
            .io
            .read(record)
            .map_err(|e| spill::spill_err(record, e.to_string()))?;
        let set = spill::decode_record(record, &bytes)?;
        let restore = RestoreEvent {
            record,
            bytes: bytes.len() as u64,
            patterns: set.len(),
            elapsed: started.elapsed(),
        };
        drop(bytes);
        let counts = OffsetCounts::new(self.seq_len, self.gap);
        let mut ctx = TaskCtx {
            gap: self.gap,
            hard_cap: self.hard_cap,
            counts: &counts,
            bounds: BoundTable::new(&counts, &self.rho, self.n),
            gauge: MemGauge::new(&self.live, &self.peak, self.limit),
            repr: ReprCache::with_kernel(self.repr, self.kern, Some(self.gap)),
            kern: self.kern,
            bufs: EagerBufs::default(),
            aggs: BTreeMap::new(),
            frequent: Vec::new(),
            deepest: self.base_level,
            batches: 0,
            batch_candidates: 0,
            pruner: self.pruner.clone(),
        };
        // The restored component is the hot working set: it goes back
        // on the gauge, and if even that overflows the ceiling the run
        // aborts with `MemoryCeiling` — spilling never hides a working
        // set that genuinely does not fit.
        let arena = set.arena_bytes();
        ctx.gauge.grow(arena)?;
        let members: Vec<usize> = (0..set.len()).collect();
        let res = descend_split(&mut ctx, &set, &members, self.base_level);
        ctx.gauge.shrink(arena);
        res?;
        let cleanup_failure = state.io.remove(record).err().map(|e| {
            format!("spill record {record} could not be removed after its subtree was mined: {e}")
        });
        let evaluated: usize = ctx.aggs.values().map(|a| a.evaluated).sum();
        let event = SubtreeEvent {
            index: item,
            level: self.base_level,
            patterns: set.len(),
            deepest: ctx.deepest,
            evaluated,
            frequent: ctx.frequent.len(),
            peak_arena_bytes: ctx.gauge.task_peak,
            batches: ctx.batches,
            batch_candidates: ctx.batch_candidates,
            elapsed: started.elapsed(),
        };
        Ok(TaskOut {
            part: None,
            aggs: ctx.aggs.into_iter().collect(),
            frequent: ctx.frequent,
            subtree: Some(event),
            restore: Some(restore),
            cleanup_failure,
        })
    }
}

/// Best-effort removal of every spill record a job may have left
/// behind, run on any error exit after the handoff wrote records. Most
/// records are already gone (mined subtrees remove their own; `remove`
/// treats missing files as success) — this catches the ones orphaned
/// by the task that failed and by tasks that never ran.
fn sweep_spill_records<O: MineObserver>(job: &DfsJob, stats: &mut MineStats, observer: &mut O) {
    let Some(state) = &job.spill else { return };
    for record in 0..job.tasks.len() as u64 {
        if let Err(e) = state.io.remove(record) {
            stats.spill_cleanup_failures += 1;
            observer.on_warning(&WarningEvent {
                kind: "spill-cleanup".into(),
                message: format!(
                    "orphan spill record {record} could not be removed in the abort sweep: {e}"
                ),
            });
        }
    }
}

/// Mutable state threaded through one subtree task's recursion.
struct TaskCtx<'a> {
    gap: GapRequirement,
    hard_cap: usize,
    counts: &'a OffsetCounts,
    bounds: BoundTable<'a>,
    gauge: MemGauge<'a>,
    repr: ReprCache,
    kern: ResolvedKernel,
    bufs: EagerBufs,
    aggs: BTreeMap<usize, LevelAgg>,
    frequent: Vec<FrequentPattern>,
    deepest: usize,
    batches: u64,
    batch_candidates: u64,
    pruner: Pruner,
}

/// Split `members` of `set` (at `level`) into components and mine each;
/// a single component takes one generation step and continues as a
/// [`mine_chain`]. `set` is owned by the caller — its bytes are on the
/// caller's account, not this frame's.
fn descend_split(
    ctx: &mut TaskCtx<'_>,
    set: &PilSet,
    members: &[usize],
    level: usize,
) -> Result<(), MineError> {
    if members.is_empty() || level >= ctx.hard_cap || ctx.counts.n(level + 1).is_zero() {
        return Ok(());
    }
    // Pruned modes: a component with no member inside the target cone
    // and above the floor cannot contribute — its whole subtree dies
    // here (this is also where a restored spill component is dropped
    // when the floor climbed past it while it sat on disk).
    if !ctx.pruner.component_viable(set, members) {
        return Ok(());
    }
    let runs = prefix_runs(set, members);
    let comps = run_components(set, members, &runs);
    if comps.len() > 1 {
        for comp in &comps {
            descend_split(ctx, set, comp, level)?;
        }
        return Ok(());
    }
    let gen_started = Instant::now();
    let mut next = PilSet::new(level + 1);
    let row = ctx.bounds.row(level + 1).clone();
    let st = eager_generate(
        set,
        members,
        &runs,
        0,
        members.len(),
        ctx.gap,
        ctx.kern,
        &row,
        &mut next,
        &mut ctx.repr,
        &mut ctx.bufs,
        &mut ctx.frequent,
        &ctx.pruner,
    );
    ctx.batches += st.batches;
    ctx.batch_candidates += st.batch_candidates;
    if st.evaluated == 0 {
        return Ok(());
    }
    let elapsed = gen_started.elapsed();
    let next_bytes = next.arena_bytes();
    absorb(
        &mut ctx.aggs,
        level + 1,
        LevelAgg {
            candidates: st.evaluated as u128,
            evaluated: st.evaluated,
            frequent: st.frequent,
            kept: st.kept,
            saturated: st.saturated,
            arena_bytes: next_bytes,
            jc: st.jc,
            join_elapsed: elapsed,
            elapsed,
        },
    );
    ctx.deepest = ctx.deepest.max(level + 1);
    if next.is_empty() {
        return Ok(());
    }
    ctx.gauge.grow(next_bytes)?;
    mine_chain(ctx, next, next_bytes, level + 1)
}

/// The double-buffered depth-first chain: `current` (charged to the
/// gauge by the caller) is extended one level at a time, freeing each
/// parent the moment its child generation survives — live bytes along
/// the chain are O(parent + child). A split hands the components back
/// to [`descend_split`] while `current` stays live underneath them.
fn mine_chain(
    ctx: &mut TaskCtx<'_>,
    mut current: PilSet,
    mut cur_bytes: usize,
    mut level: usize,
) -> Result<(), MineError> {
    loop {
        if level >= ctx.hard_cap || ctx.counts.n(level + 1).is_zero() {
            ctx.gauge.shrink(cur_bytes);
            return Ok(());
        }
        let members: Vec<usize> = (0..current.len()).collect();
        let runs = prefix_runs(&current, &members);
        let comps = run_components(&current, &members, &runs);
        if comps.len() > 1 {
            for comp in &comps {
                descend_split(ctx, &current, comp, level)?;
            }
            ctx.gauge.shrink(cur_bytes);
            return Ok(());
        }
        let gen_started = Instant::now();
        let mut next = PilSet::new(level + 1);
        let row = ctx.bounds.row(level + 1).clone();
        let st = eager_generate(
            &current,
            &members,
            &runs,
            0,
            members.len(),
            ctx.gap,
            ctx.kern,
            &row,
            &mut next,
            &mut ctx.repr,
            &mut ctx.bufs,
            &mut ctx.frequent,
            &ctx.pruner,
        );
        ctx.batches += st.batches;
        ctx.batch_candidates += st.batch_candidates;
        if st.evaluated == 0 {
            ctx.gauge.shrink(cur_bytes);
            return Ok(());
        }
        let elapsed = gen_started.elapsed();
        let next_bytes = next.arena_bytes();
        absorb(
            &mut ctx.aggs,
            level + 1,
            LevelAgg {
                candidates: st.evaluated as u128,
                evaluated: st.evaluated,
                frequent: st.frequent,
                kept: st.kept,
                saturated: st.saturated,
                arena_bytes: next_bytes,
                jc: st.jc,
                join_elapsed: elapsed,
                elapsed,
            },
        );
        ctx.deepest = ctx.deepest.max(level + 1);
        if next.is_empty() {
            ctx.gauge.shrink(cur_bytes);
            return Ok(());
        }
        // Double buffer: charge the child, release the parent, step.
        ctx.gauge.grow(next_bytes)?;
        ctx.gauge.shrink(cur_bytes);
        current = next;
        cur_bytes = next_bytes;
        level += 1;
    }
}

/// The hybrid core shared by [`mpp_dfs`] and [`crate::mppm::mppm_dfs`]:
/// breadth-first prelude with eager filtering, component handoff to
/// depth-first subtree tasks, and engine-wide peak-arena accounting.
/// Returns the outcome plus peak live arena bytes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_hybrid<O: MineObserver>(
    seq: &Sequence,
    counts: &OffsetCounts,
    rho: &BigRatio,
    n: usize,
    config: &MppConfig,
    kern: ResolvedKernel,
    seed: PilSet,
    threads: usize,
    hooks: PoolHooks,
    mut stats_seed: Option<MineStats>,
    observer: &mut O,
) -> Result<(MineOutcome, usize), MineError> {
    assert!(threads >= 1, "need at least one thread");
    let gap = counts.gap();
    let sigma = seq.alphabet().size() as u128;
    let start = config.start_level;
    let n = n.clamp(start, counts.l1().max(start));
    let hard_cap = config.max_level.unwrap_or(usize::MAX).min(counts.l2());

    let mut stats = stats_seed.take().unwrap_or_default();
    stats.n_used = n;
    let pruner = Pruner::new(&config.prune, gap.flexibility());
    let mut frequent: Vec<FrequentPattern> = Vec::new();
    let mut aggs: BTreeMap<usize, LevelAgg> = BTreeMap::new();
    let mut pool_events: Vec<PoolLevelEvent> = Vec::new();
    let mut subtree_events: Vec<SubtreeEvent> = Vec::new();
    let mut restore_events: Vec<RestoreEvent> = Vec::new();
    let mut spill_event: Option<SpillEvent> = None;

    // Spilling needs both a ceiling (otherwise there is nothing to
    // stay under) and a backend: an injected `spill_io` wins over
    // `spill_dir` so tests and callers can capture the raw records.
    let spill_io: Option<Arc<dyn spill::SpillIo>> = if config.max_arena_bytes.is_some() {
        config.spill_io.clone().or_else(|| {
            config
                .spill_dir
                .as_ref()
                .map(|dir| Arc::new(spill::FsSpillIo::new(dir)) as Arc<dyn spill::SpillIo>)
        })
    } else {
        None
    };
    let watermark_bytes = config
        .max_arena_bytes
        .map(|cap| (cap as f64 * config.spill_watermark) as usize);

    let live = Arc::new(AtomicUsize::new(0));
    let peak_shared = Arc::new(AtomicUsize::new(0));
    let mut gauge = MemGauge::new(&live, &peak_shared, config.max_arena_bytes);
    let pool = (threads > 1).then(|| WorkerPool::<DfsJob>::new(threads - 1));
    let mut bounds = BoundTable::new(counts, rho, n);

    if hard_cap >= start && !counts.n(start).is_zero() {
        let mut current = seed;
        let mut cur_bytes = current.arena_bytes();
        gauge.grow(cur_bytes)?;

        // Seed filter — the only level whose members were not already
        // evaluated at generation time.
        let filter_started = Instant::now();
        let row = bounds.row(start).clone();
        let mut kept: Vec<usize> = Vec::new();
        let mut frequent_here = 0usize;
        for i in 0..current.len() {
            let sup = current.support(i);
            let admits_exact = row.exact.admits_u128(sup);
            let admits_lhat = row.lhat.admits_u128(sup);
            if (admits_exact || admits_lhat) && !pruner.admits_search(sup) {
                continue;
            }
            if admits_exact && pruner.admits_result(current.pattern_codes(i), sup) {
                frequent.push(FrequentPattern {
                    pattern: Pattern::from_codes(current.pattern_codes(i).to_vec()),
                    support: sup,
                    ratio: sup as f64 / row.n_f64,
                });
                frequent_here += 1;
            }
            if admits_lhat && pruner.admits_frontier(current.pattern_codes(i)) {
                kept.push(i);
            }
        }
        absorb(
            &mut aggs,
            start,
            LevelAgg {
                candidates: sigma.saturating_pow(start as u32),
                evaluated: current.len(),
                frequent: frequent_here,
                kept: kept.len(),
                saturated: current.saturated(),
                arena_bytes: cur_bytes,
                jc: JoinCounters::default(),
                join_elapsed: Duration::ZERO,
                elapsed: filter_started.elapsed(),
            },
        );

        let mut repr_cache = ReprCache::with_kernel(config.pil_repr, kern, Some(gap));
        let mut bufs = EagerBufs::default();
        let mut level = start;
        loop {
            if kept.is_empty() || level >= hard_cap || counts.n(level + 1).is_zero() {
                break;
            }
            let runs = prefix_runs(&current, &kept);
            let mut comps = run_components(&current, &kept, &runs);
            if comps.len() >= 2 {
                // Pruned modes: drop dead components before they become
                // tasks (or spill records). The handoff proceeds even if
                // only one — or zero — components stay viable.
                if pruner.is_active() {
                    comps.retain(|comp| pruner.component_viable(&current, comp));
                    if comps.is_empty() {
                        gauge.shrink(cur_bytes);
                        break;
                    }
                }
                // Handoff: every component is an independent subtree.
                // Only the main thread has grown the gauge so far, so
                // `live == cur_bytes` here and the spill decision is
                // deterministic across thread counts.
                let first_row = bounds.row(level + 1).clone();
                let spilling = spill_io.is_some()
                    && watermark_bytes.is_some_and(|wm| live.load(Ordering::Relaxed) >= wm);
                let (tasks, spill_state): (Vec<DfsTask>, Option<SpillState>) = if spilling {
                    let io = Arc::clone(spill_io.as_ref().expect("spill decision needs a backend"));
                    let spill_started = Instant::now();
                    let mut bytes_written = 0u64;
                    let mut bests: Vec<u128> = Vec::with_capacity(comps.len());
                    for (r, comp) in comps.iter().enumerate() {
                        bests.push(pruner.component_best(&current, comp));
                        let bytes = spill::encode_record(r as u64, &current, comp);
                        if let Err(e) = io.write(r as u64, &bytes) {
                            // Best-effort cleanup of records already on
                            // disk before surfacing the typed error.
                            for done in 0..r as u64 {
                                if let Err(re) = io.remove(done) {
                                    stats.spill_cleanup_failures += 1;
                                    observer.on_warning(&WarningEvent {
                                        kind: "spill-cleanup".into(),
                                        message: format!(
                                            "spill record {done} could not be removed after record {r} failed to write: {re}"
                                        ),
                                    });
                                }
                            }
                            return Err(spill::spill_err(r as u64, e.to_string()));
                        }
                        bytes_written += bytes.len() as u64;
                    }
                    let records = comps.len() as u64;
                    stats.spilled_records = records;
                    stats.spilled_bytes = bytes_written;
                    spill_event = Some(SpillEvent {
                        level,
                        records,
                        bytes: bytes_written,
                        live_bytes: live.load(Ordering::Relaxed),
                        watermark_bytes: watermark_bytes.unwrap_or(0),
                        elapsed: spill_started.elapsed(),
                    });
                    // Release the cold base before any subtree runs:
                    // each worker re-charges only the component it is
                    // actively restoring.
                    gauge.shrink(cur_bytes);
                    current = PilSet::new(level);
                    kept = Vec::new();
                    (
                        bests
                            .into_iter()
                            .enumerate()
                            .map(|(record, best)| DfsTask::SpilledSubtree {
                                record: record as u64,
                                best,
                            })
                            .collect(),
                        Some(SpillState::new(io, records as usize)),
                    )
                } else {
                    (
                        comps
                            .into_iter()
                            .map(|members| DfsTask::Subtree { members })
                            .collect(),
                        None,
                    )
                };
                let job = Arc::new(DfsJob {
                    base: current,
                    members: kept,
                    runs,
                    tasks,
                    gap,
                    seq_len: seq.len(),
                    base_level: level,
                    n,
                    rho: rho.clone(),
                    hard_cap,
                    limit: config.max_arena_bytes,
                    live: Arc::clone(&live),
                    peak: Arc::clone(&peak_shared),
                    first_row,
                    repr: config.pil_repr,
                    kern,
                    spill: spill_state,
                    cursor: AtomicUsize::new(0),
                    hooks,
                    pruner: pruner.clone(),
                });
                let outs = match &pool {
                    Some(pool) => match pool.run(Arc::clone(&job)) {
                        Ok((outs, event)) => {
                            pool_events.push(event);
                            outs
                        }
                        Err(e) => {
                            sweep_spill_records(&job, &mut stats, observer);
                            return Err(e);
                        }
                    },
                    None => (0..job.n_items()).map(|i| job.process(i)).collect(),
                };
                // Consume every task result before surfacing a failure:
                // an early return here would skip the spill sweep and
                // strand the records of tasks that never ran.
                let mut first_err: Option<MineError> = None;
                for out in outs {
                    let t = match out {
                        Ok(t) => t,
                        Err(e) => {
                            first_err.get_or_insert(e);
                            continue;
                        }
                    };
                    for (l, a) in t.aggs {
                        absorb(&mut aggs, l, a);
                    }
                    frequent.extend(t.frequent);
                    if let Some(ev) = t.subtree {
                        subtree_events.push(ev);
                    }
                    if let Some(ev) = t.restore {
                        stats.restored_records += 1;
                        stats.restored_bytes += ev.bytes;
                        restore_events.push(ev);
                    }
                    if let Some(message) = t.cleanup_failure {
                        stats.spill_cleanup_failures += 1;
                        observer.on_warning(&WarningEvent {
                            kind: "spill-cleanup".into(),
                            message,
                        });
                    }
                }
                if let Some(e) = first_err {
                    sweep_spill_records(&job, &mut stats, observer);
                    return Err(e);
                }
                if !spilling {
                    gauge.shrink(cur_bytes);
                }
                break;
            }

            // One component: eager-generate the next level, pooled when
            // the fan-out is wide enough to pay for chunk handoff.
            let gen_started = Instant::now();
            let first_row = bounds.row(level + 1).clone();
            let (next, mut agg) = match &pool {
                Some(pool) if kept.len() >= PARALLEL_THRESHOLD => {
                    let chunk = kept
                        .len()
                        .div_ceil(threads * CHUNKS_PER_THREAD)
                        .max(MIN_CHUNK);
                    let n_chunks = kept.len().div_ceil(chunk);
                    let tasks: Vec<DfsTask> = (0..n_chunks)
                        .map(|c| {
                            let lo = c * chunk;
                            DfsTask::Chunk {
                                lo,
                                hi: (lo + chunk).min(kept.len()),
                            }
                        })
                        .collect();
                    let job = Arc::new(DfsJob {
                        base: std::mem::take(&mut current),
                        members: std::mem::take(&mut kept),
                        runs,
                        tasks,
                        gap,
                        seq_len: seq.len(),
                        base_level: level,
                        n,
                        rho: rho.clone(),
                        hard_cap,
                        limit: config.max_arena_bytes,
                        live: Arc::clone(&live),
                        peak: Arc::clone(&peak_shared),
                        first_row,
                        repr: config.pil_repr,
                        kern,
                        spill: None,
                        cursor: AtomicUsize::new(0),
                        hooks,
                        pruner: pruner.clone(),
                    });
                    let (outs, event) = pool.run(Arc::clone(&job))?;
                    pool_events.push(event);
                    let mut parts = Vec::with_capacity(outs.len());
                    let mut merged = LevelAgg::default();
                    for out in outs {
                        let t = out?;
                        for (l, a) in t.aggs {
                            debug_assert_eq!(l, level + 1);
                            merged.candidates += a.candidates;
                            merged.evaluated += a.evaluated;
                            merged.frequent += a.frequent;
                            merged.kept += a.kept;
                            merged.saturated |= a.saturated;
                            merged.jc.absorb(&a.jc);
                        }
                        frequent.extend(t.frequent);
                        if let Some(p) = t.part {
                            parts.push(p);
                        }
                    }
                    (PilSet::concat(level + 1, parts), merged)
                }
                _ => {
                    let mut next = PilSet::new(level + 1);
                    let st = eager_generate(
                        &current,
                        &kept,
                        &runs,
                        0,
                        kept.len(),
                        gap,
                        kern,
                        &first_row,
                        &mut next,
                        &mut repr_cache,
                        &mut bufs,
                        &mut frequent,
                        &pruner,
                    );
                    let agg = LevelAgg {
                        candidates: st.evaluated as u128,
                        evaluated: st.evaluated,
                        frequent: st.frequent,
                        kept: st.kept,
                        saturated: st.saturated,
                        jc: st.jc,
                        ..LevelAgg::default()
                    };
                    (next, agg)
                }
            };
            if agg.evaluated == 0 {
                gauge.shrink(cur_bytes);
                break;
            }
            let elapsed = gen_started.elapsed();
            let next_bytes = next.arena_bytes();
            agg.arena_bytes = next_bytes;
            agg.join_elapsed = elapsed;
            agg.elapsed = elapsed;
            let survivors = agg.kept;
            absorb(&mut aggs, level + 1, agg);
            if survivors == 0 {
                gauge.shrink(cur_bytes);
                break;
            }
            gauge.grow(next_bytes)?;
            gauge.shrink(cur_bytes);
            current = next;
            cur_bytes = next_bytes;
            kept = (0..current.len()).collect();
            level += 1;
        }
    }

    for (&level, agg) in &aggs {
        stats.support_saturated |= agg.saturated;
        stats.levels.push(LevelStats {
            level,
            candidates: agg.candidates,
            frequent: agg.frequent,
            extended: agg.kept,
            elapsed: agg.elapsed,
        });
        observer.on_level(&LevelEvent {
            level,
            candidates: agg.candidates,
            evaluated: agg.evaluated,
            frequent: agg.frequent,
            kept: agg.kept,
            pruned_bound: agg.evaluated - agg.kept,
            pruned_support: agg.evaluated - agg.frequent,
            arena_bytes: agg.arena_bytes,
            joins: agg.jc.joins,
            probed: agg.jc.probed,
            reallocs: agg.jc.reallocs,
            bytes_moved: agg.jc.bytes_moved,
            join_elapsed: agg.join_elapsed,
            elapsed: agg.elapsed,
            saturated: agg.saturated,
        });
    }
    if let Some(ev) = &spill_event {
        observer.on_spill(ev);
    }
    for ev in &pool_events {
        observer.on_pool(ev);
    }
    subtree_events.sort_by_key(|e| e.index);
    for ev in &subtree_events {
        observer.on_subtree(ev);
    }
    restore_events.sort_by_key(|e| e.record);
    for ev in &restore_events {
        observer.on_restore(ev);
    }

    let peak = peak_shared.load(Ordering::Relaxed);
    let mut outcome = MineOutcome { frequent, stats };
    pruner.finish(&mut outcome);
    Ok((outcome, peak))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpp::mpp;
    use crate::trace::MetricsObserver;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    fn assert_counters_match(dfs: &MineOutcome, bfs: &MineOutcome, label: &str) {
        assert_eq!(dfs.frequent.len(), bfs.frequent.len(), "{label}");
        for (a, b) in dfs.frequent.iter().zip(&bfs.frequent) {
            assert_eq!(a.pattern, b.pattern, "{label}");
            assert_eq!(a.support, b.support, "{label}");
            assert!((a.ratio - b.ratio).abs() < 1e-12, "{label}");
        }
        assert_eq!(dfs.stats.n_used, bfs.stats.n_used, "{label}");
        assert_eq!(
            dfs.stats.support_saturated, bfs.stats.support_saturated,
            "{label}"
        );
        assert_eq!(dfs.stats.levels.len(), bfs.stats.levels.len(), "{label}");
        for (a, b) in dfs.stats.levels.iter().zip(&bfs.stats.levels) {
            assert_eq!(a.level, b.level, "{label}");
            assert_eq!(a.candidates, b.candidates, "{label} level {}", a.level);
            assert_eq!(a.frequent, b.frequent, "{label} level {}", a.level);
            assert_eq!(a.extended, b.extended, "{label} level {}", a.level);
        }
    }

    #[test]
    fn dfs_matches_bfs_exactly() {
        let seq = uniform(&mut StdRng::seed_from_u64(95), Alphabet::Dna, 400);
        let g = gap(1, 3);
        let rho = 0.0008;
        let bfs = mpp(&seq, g, rho, 12, MppConfig::default()).unwrap();
        for threads in [1usize, 4] {
            let dfs = mpp_dfs(&seq, g, rho, 12, MppConfig::default(), threads).unwrap();
            assert_counters_match(&dfs, &bfs, &format!("{threads} threads"));
        }
    }

    #[test]
    fn pooled_prelude_matches_serial() {
        // 20^3 = 8000 seed patterns: the single-component prelude must
        // cross PARALLEL_THRESHOLD and exercise the chunked fan-out.
        let seq = uniform(&mut StdRng::seed_from_u64(99), Alphabet::Protein, 3_000);
        let g = gap(0, 2);
        let rho = 1e-6;
        let bfs = mpp(&seq, g, rho, 6, MppConfig::default()).unwrap();
        assert!(bfs.stats.levels[0].extended >= PARALLEL_THRESHOLD);
        for threads in [2usize, 4] {
            let dfs = mpp_dfs(&seq, g, rho, 6, MppConfig::default(), threads).unwrap();
            assert_counters_match(&dfs, &bfs, &format!("{threads} threads"));
        }
    }

    #[test]
    fn component_split_hands_off_subtrees() {
        // ATATAT… with gap [1,1]: the A-run and T-run never join each
        // other, so the survivor set splits immediately and each side
        // mines as its own depth-first subtree.
        let seq = Sequence::dna(&"AT".repeat(50)).unwrap();
        let g = gap(1, 1);
        let bfs = mpp(&seq, g, 0.4, 20, MppConfig::default()).unwrap();
        for threads in [1usize, 2] {
            let mut metrics = MetricsObserver::new();
            let dfs = mpp_dfs_traced(
                &seq,
                g,
                0.4,
                20,
                MppConfig::default(),
                threads,
                &mut metrics,
            )
            .unwrap();
            assert_counters_match(&dfs, &bfs, &format!("{threads} threads"));
            assert!(
                metrics.subtrees.len() >= 2,
                "expected a component handoff, got {} subtree events",
                metrics.subtrees.len()
            );
            assert!(dfs.longest_len() >= 10);
            for ev in &metrics.subtrees {
                assert!(ev.deepest >= ev.level);
                assert!(ev.batches > 0);
            }
        }
    }

    #[test]
    fn dfs_mining_is_representation_invariant() {
        use crate::adaptive::{PilRepr, ReprPolicy};
        let seq = uniform(&mut StdRng::seed_from_u64(95), Alphabet::Dna, 400);
        let g = gap(1, 3);
        let rho = 0.0008;
        let base = mpp_dfs(&seq, g, rho, 12, MppConfig::default(), 1).unwrap();
        for mode in [PilRepr::Sparse, PilRepr::Dense, PilRepr::Auto] {
            let config = MppConfig {
                pil_repr: ReprPolicy::of(mode),
                ..MppConfig::default()
            };
            for threads in [1usize, 4] {
                let run = mpp_dfs(&seq, g, rho, 12, config.clone(), threads).unwrap();
                assert_counters_match(&run, &base, &format!("{mode} on {threads} threads"));
            }
        }
    }

    #[test]
    fn dfs_peak_no_higher_than_bfs_peak() {
        let seq = uniform(&mut StdRng::seed_from_u64(41), Alphabet::Dna, 2_000);
        let g = gap(0, 3);
        let rho = 0.0003;
        let mut bfs_metrics = MetricsObserver::new();
        crate::parallel::mpp_parallel_traced(
            &seq,
            g,
            rho,
            8,
            MppConfig::default(),
            1,
            &mut bfs_metrics,
        )
        .unwrap();
        let mut dfs_metrics = MetricsObserver::new();
        mpp_dfs_traced(&seq, g, rho, 8, MppConfig::default(), 1, &mut dfs_metrics).unwrap();
        let bfs_peak = bfs_metrics.complete.as_ref().unwrap().peak_arena_bytes;
        let dfs_peak = dfs_metrics.complete.as_ref().unwrap().peak_arena_bytes;
        assert!(bfs_peak > 0 && dfs_peak > 0);
        assert!(
            dfs_peak <= bfs_peak,
            "eager filtering must not raise the peak: dfs {dfs_peak} vs bfs {bfs_peak}"
        );
    }

    #[test]
    fn memory_ceiling_aborts_with_trace_event() {
        let seq = uniform(&mut StdRng::seed_from_u64(42), Alphabet::Dna, 400);
        let config = MppConfig {
            max_arena_bytes: Some(16),
            ..MppConfig::default()
        };
        let mut metrics = MetricsObserver::new();
        let result = mpp_dfs_traced(&seq, gap(0, 3), 0.0008, 10, config, 2, &mut metrics);
        match result {
            Err(MineError::MemoryCeiling { limit, required }) => {
                assert_eq!(limit, 16);
                assert!(required > 16);
            }
            other => panic!("expected MemoryCeiling, got {other:?}"),
        }
        let abort = metrics.abort.expect("abort event must be emitted");
        assert!(abort.message.contains("ceiling"), "{}", abort.message);
        assert!(metrics.complete.is_none());
    }

    #[test]
    fn worker_panic_in_subtree_surfaces_as_error_not_hang() {
        // The AT-repeat workload splits into 2 components at the seed
        // level, so the handoff happens immediately and a worker is
        // guaranteed to claim (and die on) a subtree task.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let seq = Sequence::dna(&"AT".repeat(50)).unwrap();
            let g = gap(1, 1);
            let config = MppConfig::default();
            let hooks = PoolHooks {
                panic_workers: true,
                main_no_steal: true,
            };
            let result = prepare(&seq, g, 0.4, &config).and_then(|(counts, rho_exact)| {
                let pils = build_seed(&seq, g, config.start_level, ResolvedKernel::Scalar);
                run_hybrid(
                    &seq,
                    &counts,
                    &rho_exact,
                    20,
                    &config,
                    ResolvedKernel::Scalar,
                    pils,
                    4,
                    hooks,
                    None,
                    &mut NoopObserver,
                )
                .map(|(outcome, _)| outcome)
            });
            let _ = tx.send(result);
        });
        let result = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("mine must error out in bounded time, not deadlock");
        match result {
            Err(MineError::WorkerFailed { message, .. }) => {
                assert!(message.contains("injected"), "unexpected message {message}");
            }
            Ok(_) => panic!("mine must fail when every worker panics"),
            Err(other) => panic!("expected WorkerFailed, got {other:?}"),
        }
    }

    #[test]
    fn mem_gauge_shares_check_ceiling_boundary() {
        // Same semantics as `check_ceiling`: exactly at the cap is
        // fine, one byte over aborts.
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut gauge = MemGauge::new(&live, &peak, Some(100));
        gauge.grow(100).expect("live == cap must pass");
        match gauge.grow(1) {
            Err(MineError::MemoryCeiling { limit, required }) => {
                assert_eq!((limit, required), (100, 101));
            }
            other => panic!("expected MemoryCeiling, got {other:?}"),
        }
        assert_eq!(
            peak.load(Ordering::Relaxed),
            101,
            "peak records the overshoot"
        );
    }

    #[test]
    fn spill_completes_under_ceiling_that_otherwise_aborts() {
        use crate::spill::MemSpillIo;
        let seq = Sequence::dna(&"AT".repeat(50)).unwrap();
        let g = gap(1, 1);

        // Unbounded baseline: record the true peak.
        let mut free_metrics = MetricsObserver::new();
        let free =
            mpp_dfs_traced(&seq, g, 0.4, 20, MppConfig::default(), 1, &mut free_metrics).unwrap();
        let peak = free_metrics.complete.as_ref().unwrap().peak_arena_bytes;
        assert!(peak > 0);
        let cap = peak - 1;

        // Under that cap without spilling, the run must abort …
        let no_spill = MppConfig {
            max_arena_bytes: Some(cap),
            ..MppConfig::default()
        };
        assert!(matches!(
            mpp_dfs(&seq, g, 0.4, 20, no_spill, 1),
            Err(MineError::MemoryCeiling { .. })
        ));

        // … and with spilling it completes bit-identically, with the
        // counters and trace events firing. One thread gets the tight
        // cap; two threads mine both restored components concurrently
        // (their live sets stack), so they get headroom — the zero
        // watermark still forces the spill path either way.
        for (threads, cap) in [(1usize, cap), (2usize, peak * 2)] {
            let io = Arc::new(MemSpillIo::default());
            let config = MppConfig {
                max_arena_bytes: Some(cap),
                spill_watermark: 0.0,
                spill_io: Some(io),
                ..MppConfig::default()
            };
            let mut metrics = MetricsObserver::new();
            let spilled = mpp_dfs_traced(&seq, g, 0.4, 20, config, threads, &mut metrics).unwrap();
            assert_counters_match(&spilled, &free, &format!("spill on {threads} threads"));
            assert!(spilled.stats.spilled_records >= 2, "handoff must spill");
            assert_eq!(
                spilled.stats.restored_records,
                spilled.stats.spilled_records
            );
            assert_eq!(spilled.stats.restored_bytes, spilled.stats.spilled_bytes);
            assert!(spilled.stats.spilled_bytes > 0);
            assert_eq!(metrics.spills.len(), 1);
            assert_eq!(
                metrics.restores.len() as u64,
                spilled.stats.restored_records
            );
            let spill_peak = metrics.complete.as_ref().unwrap().peak_arena_bytes;
            assert!(
                spill_peak <= cap,
                "spilling must hold the peak under the cap: {spill_peak} vs {cap}"
            );
        }
    }
}
