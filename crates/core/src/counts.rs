//! Counting offset sequences: the paper's `N_l` analysis
//! (Section 4.1 and the Appendix).
//!
//! `N_l` — the number of distinct length-`l` offset sequences in a
//! length-`L` sequence under gap requirement `[N, M]` — is what turns a
//! support count into a support *ratio*. Three regimes:
//!
//! 1. `l > l2` — even the minimum span exceeds `L`: `N_l = 0`.
//! 2. `l ≤ l1` — even the maximum span fits (Theorem 4):
//!    `N_l = [L − (l−1)((M+N)/2 + 1)] · W^(l−1)`.
//! 3. `l1 < l ≤ l2` — the boundary band, computed from the recurrence
//!    `f(k+1, i) = Σ_{j=1..W} f(k, i−W+j)` (Equation 8) with
//!    `f(l, i) = W^(l−1)` for `i ≤ 0` and `f(l, i) = 0` for
//!    `i > (l−1)(W−1)` (Equations 6–7).
//!
//! All values are exact [`BigUint`]s — `N_l` overflows `u128` for quite
//! ordinary parameters — with `f64`/log views layered on top.

use crate::gap::GapRequirement;
use perigap_math::BigUint;
use std::cell::RefCell;

/// Lazily computed, cached table of `N_l` values for one `(L, [N,M])`
/// configuration.
///
/// ```
/// use perigap_core::{GapRequirement, OffsetCounts};
///
/// // Section 4.1's example: N_10 at L = 1000, gap [9,12].
/// let counts = OffsetCounts::new(1000, GapRequirement::new(9, 12)?);
/// assert_eq!(counts.n(10).to_u64(), Some(235_012_096));
/// assert!(counts.n(counts.l2() + 1).is_zero());
/// # Ok::<(), perigap_core::MineError>(())
/// ```
#[derive(Debug)]
pub struct OffsetCounts {
    seq_len: usize,
    gap: GapRequirement,
    l1: usize,
    l2: usize,
    cache: RefCell<Vec<Option<BigUint>>>,
    /// Rows of the boundary recurrence: `f_rows[k - 1][i - 1] = f(k, i)`
    /// for `i` in the non-trivial band `1 ..= (k−1)(W−1)`. Built on
    /// demand, one prefix of rows at a time.
    f_rows: RefCell<Vec<Vec<BigUint>>>,
}

impl OffsetCounts {
    /// Create a count table for a sequence of length `seq_len` under
    /// `gap`.
    pub fn new(seq_len: usize, gap: GapRequirement) -> OffsetCounts {
        let l1 = gap.l1(seq_len);
        let l2 = gap.l2(seq_len);
        OffsetCounts {
            seq_len,
            gap,
            l1,
            l2,
            cache: RefCell::new(vec![None; l2 + 2]),
            f_rows: RefCell::new(Vec::new()),
        }
    }

    /// A fresh table for the same `(L, [N,M])` configuration with empty
    /// caches. The interior-mutable caches make `OffsetCounts` `!Sync`,
    /// so concurrent subtree tasks each fork their own instead of
    /// sharing one behind a lock; the configuration copy is trivially
    /// cheap next to the first `n(l)` evaluation.
    pub fn fork(&self) -> OffsetCounts {
        OffsetCounts::new(self.seq_len, self.gap)
    }

    /// The subject sequence length `L`.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// The gap requirement.
    pub fn gap(&self) -> GapRequirement {
        self.gap
    }

    /// `l1`: longest length whose maximum span fits in the sequence.
    pub fn l1(&self) -> usize {
        self.l1
    }

    /// `l2`: longest length whose minimum span fits in the sequence.
    pub fn l2(&self) -> usize {
        self.l2
    }

    /// Exact `N_l`. `N_0` is defined as 1 (the empty offset sequence),
    /// which makes the λ identities hold for `d = l`.
    pub fn n(&self, l: usize) -> BigUint {
        if l == 0 {
            return BigUint::one();
        }
        if l > self.l2 {
            return BigUint::zero();
        }
        if let Some(cached) = &self.cache.borrow()[l] {
            return cached.clone();
        }
        let value = if l <= self.l1 {
            self.n_closed_form(l)
        } else {
            self.n_boundary(l)
        };
        self.cache.borrow_mut()[l] = Some(value.clone());
        value
    }

    /// `N_l` as `f64` (may round; never overflows for `l ≤ l2`).
    pub fn n_f64(&self, l: usize) -> f64 {
        self.n(l).to_f64()
    }

    /// `ln(N_l)`; `-inf` when `N_l = 0`.
    pub fn ln_n(&self, l: usize) -> f64 {
        let n = self.n(l);
        if n.is_zero() {
            f64::NEG_INFINITY
        } else {
            n.ln()
        }
    }

    /// Theorem 4: `N_l = (L − maxspan(l) + 1)·W^(l−1) + (l−1)(W−1)·W^(l−1)/2`,
    /// which equals the paper's `[L − (l−1)((M+N)/2 + 1)]·W^(l−1)` without
    /// needing fractional arithmetic.
    fn n_closed_form(&self, l: usize) -> BigUint {
        let w = self.gap.flexibility() as u64;
        let w_pow = BigUint::from_u64(w).pow((l - 1) as u32);
        let full_starts = (self.seq_len - self.gap.max_span(l) + 1) as u64;
        let mut total = w_pow.clone();
        total.mul_assign_u64(full_starts);
        // Boundary contribution: (l−1)(W−1)·W^(l−1) / 2 — always an
        // even product (W·(W−1) is even; for l = 1 the factor is 0).
        let mut boundary = w_pow;
        boundary.mul_assign_u64((l as u64 - 1) * (w - 1));
        let (half, rem) = boundary.div_rem_u64(2);
        debug_assert_eq!(rem, 0, "(l-1)(W-1)W^(l-1) is always even");
        total.add_assign_ref(&half);
        total
    }

    /// Case 3: `N_l = Σ_{i = maxspan(l)−L}^{(l−1)(W−1)} f(l, i)`.
    fn n_boundary(&self, l: usize) -> BigUint {
        let w = self.gap.flexibility();
        let lo = self.gap.max_span(l) - self.seq_len; // ≥ 1 since l > l1
        let hi = (l - 1) * (w - 1);
        let mut total = BigUint::zero();
        for i in lo..=hi {
            total.add_assign_ref(&self.f(l, i as i64));
        }
        total
    }

    /// `f(l, i)`: the number of length-`l` offset sequences starting at
    /// offset 1 in a sequence of length `maxspan(l) − i` (Appendix).
    pub fn f(&self, l: usize, i: i64) -> BigUint {
        assert!(l >= 1, "f(l, i) needs l ≥ 1");
        let w = self.gap.flexibility();
        if i <= 0 {
            return BigUint::from_u64(w as u64).pow((l - 1) as u32);
        }
        let band = ((l - 1) * (w - 1)) as i64;
        if i > band {
            return BigUint::zero();
        }
        self.ensure_f_rows(l);
        self.f_rows.borrow()[l - 1][(i - 1) as usize].clone()
    }

    /// Build `f` rows up to length `l` via the Equation 8 recurrence,
    /// using a sliding-window sum so each row costs `O(band)` additions.
    fn ensure_f_rows(&self, l: usize) {
        let mut rows = self.f_rows.borrow_mut();
        let w = self.gap.flexibility();
        while rows.len() < l {
            let k = rows.len() + 1; // building row for length k
            let band = (k - 1) * (w - 1);
            if k == 1 {
                rows.push(Vec::new());
                continue;
            }
            let prev_band = (k - 2) * (w - 1);
            // Closed-form lookup into row k−1 with out-of-band handling.
            let prev = |i: i64, rows: &Vec<Vec<BigUint>>| -> BigUint {
                if i <= 0 {
                    BigUint::from_u64(w as u64).pow((k - 2) as u32)
                } else if i as usize > prev_band {
                    BigUint::zero()
                } else {
                    rows[k - 2][(i - 1) as usize].clone()
                }
            };
            // f(k, i) = Σ_{m = i−W+1}^{i} f(k−1, m): maintain the window
            // sum incrementally.
            let mut row = Vec::with_capacity(band);
            // Seed the window with Σ f(k−1, m) for m in [2−W, 1].
            let mut window = BigUint::zero();
            for m in (1 - w as i64 + 1)..=1 {
                window.add_assign_ref(&prev(m, &rows));
            }
            for i in 1..=band as i64 {
                row.push(window.clone());
                // Slide to i+1: add f(k−1, i+1), drop f(k−1, i−W+1).
                window.add_assign_ref(&prev(i + 1, &rows));
                window.sub_assign_ref(&prev(i - w as i64 + 1, &rows));
            }
            rows.push(row);
        }
    }

    /// Theorem 3 check value: `Σ_{i=1}^{(l−1)(W−1)} f(l, i)` must equal
    /// `(l−1)/2 · (W−1) · W^(l−1)`. Exposed for tests and for the
    /// `repro counts` harness.
    pub fn theorem3_sum(&self, l: usize) -> (BigUint, BigUint) {
        let w = self.gap.flexibility();
        let band = (l - 1) * (w - 1);
        let mut sum = BigUint::zero();
        for i in 1..=band as i64 {
            sum.add_assign_ref(&self.f(l, i));
        }
        let mut expected = BigUint::from_u64(w as u64).pow((l - 1) as u32);
        expected.mul_assign_u64((l as u64 - 1) * (w as u64 - 1));
        let (expected, rem) = expected.div_rem_u64(2);
        debug_assert_eq!(rem, 0);
        (sum, expected)
    }
}

/// Reference `N_l` by dynamic programming over subject positions:
/// `O(L · l · W)` big-integer additions. Used as the test oracle for
/// the closed-form and boundary computations.
pub fn n_by_position_dp(seq_len: usize, gap: GapRequirement, l: usize) -> BigUint {
    if l == 0 {
        return BigUint::one();
    }
    if seq_len == 0 {
        return BigUint::zero();
    }
    // ways[c] = number of length-k offset sequences ending at offset c+1.
    let mut ways = vec![BigUint::one(); seq_len];
    for _k in 2..=l {
        let mut next = vec![BigUint::zero(); seq_len];
        for (c, w) in ways.iter().enumerate() {
            if w.is_zero() {
                continue;
            }
            for step in gap.steps() {
                let target = c + step;
                if target < seq_len {
                    next[target].add_assign_ref(w);
                } else {
                    break;
                }
            }
        }
        ways = next;
    }
    let mut total = BigUint::zero();
    for w in &ways {
        total.add_assign_ref(w);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(seq_len: usize, n: usize, m: usize) -> OffsetCounts {
        OffsetCounts::new(seq_len, GapRequirement::new(n, m).unwrap())
    }

    #[test]
    fn n1_is_sequence_length() {
        let c = counts(1000, 9, 12);
        assert_eq!(c.n(1).to_u64(), Some(1000));
    }

    #[test]
    fn n0_is_one_and_beyond_l2_is_zero() {
        let c = counts(100, 3, 5);
        assert_eq!(c.n(0), BigUint::one());
        assert!(c.n(c.l2() + 1).is_zero());
        assert!(c.n(c.l2() + 50).is_zero());
    }

    #[test]
    fn paper_n10_example() {
        // Section 4.1: L = 1000, [9, 12] → N_10 ≈ 235 million.
        // Exactly: (1000 − 9·11.5)·4^9 = 896.5·262144 = 235,012,096.
        let c = counts(1000, 9, 12);
        assert_eq!(c.n(10).to_u64(), Some(235_012_096));
    }

    #[test]
    fn closed_form_matches_dp_small() {
        let gap = GapRequirement::new(2, 4).unwrap();
        let c = OffsetCounts::new(40, gap);
        for l in 1..=c.l1() {
            assert_eq!(
                c.n(l),
                n_by_position_dp(40, gap, l),
                "N_{l} mismatch (closed form vs DP)"
            );
        }
    }

    #[test]
    fn boundary_matches_dp_small() {
        let gap = GapRequirement::new(2, 4).unwrap();
        let c = OffsetCounts::new(40, gap);
        assert!(c.l2() > c.l1(), "test needs a non-empty boundary band");
        for l in (c.l1() + 1)..=c.l2() {
            assert_eq!(
                c.n(l),
                n_by_position_dp(40, gap, l),
                "N_{l} mismatch (boundary vs DP)"
            );
        }
    }

    #[test]
    fn boundary_matches_dp_various_gaps() {
        for (n, m, len) in [(1, 2, 25), (0, 3, 20), (3, 3, 30), (4, 7, 60)] {
            let gap = GapRequirement::new(n, m).unwrap();
            let c = OffsetCounts::new(len, gap);
            for l in 1..=(c.l2() + 1) {
                assert_eq!(
                    c.n(l),
                    n_by_position_dp(len, gap, l),
                    "N_{l} mismatch for L={len}, gap=[{n},{m}]"
                );
            }
        }
    }

    #[test]
    fn theorem3_holds() {
        let c = counts(1000, 9, 12);
        for l in 2..=12 {
            let (sum, expected) = c.theorem3_sum(l);
            assert_eq!(sum, expected, "Theorem 3 fails at l = {l}");
        }
        let c = counts(50, 1, 4);
        for l in 2..=10 {
            let (sum, expected) = c.theorem3_sum(l);
            assert_eq!(sum, expected, "Theorem 3 fails at l = {l} (wide W)");
        }
    }

    #[test]
    fn f_closed_forms() {
        let c = counts(100, 3, 5); // W = 3
                                   // i ≤ 0 → W^(l−1).
        assert_eq!(c.f(4, 0).to_u64(), Some(27));
        assert_eq!(c.f(4, -5).to_u64(), Some(27));
        // i beyond the band → 0.
        assert!(c.f(4, 7).is_zero());
        assert!(c.f(1, 1).is_zero());
        // f(2, i) = W − i inside the band (shown in the Appendix).
        for i in 1..=2 {
            assert_eq!(c.f(2, i).to_u64(), Some((3 - i) as u64), "f(2,{i})");
        }
    }

    #[test]
    fn rigid_gap_w_equals_one() {
        // W = 1: every pattern has exactly one gap layout; N_l = number
        // of admissible start positions = L − minspan(l) + 1.
        let c = counts(50, 4, 4);
        for l in 1..=c.l2() {
            let span = c.gap().min_span(l);
            assert_eq!(
                c.n(l).to_u64(),
                Some((50 - span + 1) as u64),
                "N_{l} under rigid gap"
            );
        }
    }

    #[test]
    fn n_grows_exponentially_then_dies() {
        let c = counts(1000, 9, 12);
        // Growth by ≈ W per level in the deep-fit regime.
        let n5 = c.n_f64(5);
        let n6 = c.n_f64(6);
        assert!(n6 / n5 > 3.9 && n6 / n5 < 4.0, "ratio {}", n6 / n5);
        // Decay to zero past l2.
        assert!(c.n(c.l2()) > BigUint::zero());
        assert!(c.n(c.l2() + 1).is_zero());
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let c = counts(1000, 9, 12);
        let n77 = c.n(77); // W^76 scale — far beyond u128.
        assert!(n77.bit_len() > 150);
        assert!(c.ln_n(77).is_finite());
        assert!(c.ln_n(101) == f64::NEG_INFINITY);
    }

    #[test]
    fn ln_matches_f64_for_moderate_l() {
        let c = counts(1000, 9, 12);
        for l in 1..=20 {
            let direct = c.n_f64(l).ln();
            assert!((c.ln_n(l) - direct).abs() < 1e-9, "l = {l}");
        }
    }
}
