//! Arena-backed generation storage for the level-wise miners.
//!
//! A mining level owns thousands of short PILs. Storing each as its own
//! `Vec` (and each pattern as its own heap string, keyed in a
//! `HashMap`) made the seed scan and the join fan-out allocation-bound.
//! This module replaces both with one structure per generation:
//!
//! - [`PilSet`] holds every pattern of a generation in two flat
//!   arrays — concatenated pattern codes (stride = level) and one
//!   contiguous entry arena with per-pattern ranges. Patterns are kept
//!   in lexicographic code order.
//! - [`build_seed`] seeds a level directly into a [`PilSet`] using the
//!   packed keys of [`crate::packed::KeyCodec`]: for small alphabets a
//!   dense `σ`-ary table indexed by key absorbs every scan event with
//!   zero hashing and zero per-event allocation.
//! - Candidate generation exploits the sort order: all patterns sharing
//!   a `(level−1)`-prefix form a contiguous *run*, so the prefix-group
//!   `HashMap` of the old pipeline reduces to run detection plus a
//!   binary search ([`prefix_runs`] / [`generate_candidates`]), and the
//!   candidates come out already sorted and duplicate-free — candidate
//!   codes are `p1 · last(p2)`, which inherit the order of `(p1, p2)`.
//!
//! Everything here is `pub(crate)`: the public API (`Pil::build_all`,
//! `mpp`, `mppm`, `mpp_parallel`) is a thin shell over these types and
//! its behaviour — including byte-identical mining output — is
//! unchanged.

use crate::adaptive::ReprCache;
use crate::gap::GapRequirement;
use crate::kernel::{self, ResolvedKernel};
use crate::packed::KeyCodec;
use crate::pattern::Pattern;
use crate::pil::{join_into, join_multi_into, DensePil, JoinCounters, MultiJoinScratch, Pil};
use crate::prune::Pruner;
use perigap_seq::Sequence;
use std::collections::HashMap;

/// Above this many key bits the dense seed table would outgrow the
/// cache benefit (2^20 slots ≈ 24 MB of headers); fall back to hashing
/// the packed key.
const DENSE_KEY_BITS_MAX: u32 = 20;

/// One generation of patterns with their PILs, in lexicographic code
/// order, arena-backed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct PilSet {
    level: usize,
    /// Concatenated pattern codes; pattern `i` is
    /// `codes[i*level .. (i+1)*level]`.
    codes: Vec<u8>,
    /// `entries[bounds[i]..bounds[i+1]]` is pattern `i`'s PIL.
    bounds: Vec<usize>,
    /// All `(first offset, count)` pairs of the generation.
    entries: Vec<(u32, u64)>,
    /// True when any count in this generation clamped at `u64::MAX`
    /// during seeding or joining — supports are then lower bounds.
    saturated: bool,
}

impl PilSet {
    pub(crate) fn new(level: usize) -> PilSet {
        PilSet {
            level,
            codes: Vec::new(),
            bounds: vec![0],
            entries: Vec::new(),
            saturated: false,
        }
    }

    /// True when any count in this generation hit the `u64` ceiling.
    pub(crate) fn saturated(&self) -> bool {
        self.saturated
    }

    /// Restore the saturation flag on a set rebuilt from parts —
    /// [`push_pattern`](PilSet::push_pattern) deliberately never sets
    /// it, so deserialization (see [`crate::spill`]) must carry it over
    /// explicitly.
    pub(crate) fn set_saturated(&mut self, saturated: bool) {
        self.saturated = saturated;
    }

    /// Total PIL entries across all patterns (the arena's payload size).
    pub(crate) fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Approximate heap bytes held by the generation's buffers.
    pub(crate) fn arena_bytes(&self) -> usize {
        self.codes.len()
            + self.entries.len() * std::mem::size_of::<(u32, u64)>()
            + self.bounds.len() * std::mem::size_of::<usize>()
    }

    pub(crate) fn level(&self) -> usize {
        self.level
    }

    /// Number of patterns stored.
    pub(crate) fn len(&self) -> usize {
        self.bounds.len() - 1
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pattern `i`'s codes.
    pub(crate) fn pattern_codes(&self, i: usize) -> &[u8] {
        &self.codes[i * self.level..(i + 1) * self.level]
    }

    /// Pattern `i`'s PIL entries.
    pub(crate) fn entries(&self, i: usize) -> &[(u32, u64)] {
        &self.entries[self.bounds[i]..self.bounds[i + 1]]
    }

    /// `sup` of pattern `i` (Property 1: sum of counts).
    pub(crate) fn support(&self, i: usize) -> u128 {
        self.entries(i)
            .iter()
            .fold(0u128, |acc, &(_, y)| acc.saturating_add(y as u128))
    }

    /// Largest support over all stored patterns (0 when empty).
    pub(crate) fn max_support(&self) -> u128 {
        (0..self.len()).map(|i| self.support(i)).max().unwrap_or(0)
    }

    /// Append a pattern with pre-built entries. Patterns must arrive in
    /// strictly ascending code order; callers uphold this.
    pub(crate) fn push_pattern(&mut self, codes: &[u8], entries: &[(u32, u64)]) {
        debug_assert_eq!(codes.len(), self.level);
        self.codes.extend_from_slice(codes);
        self.entries.extend_from_slice(entries);
        self.bounds.push(self.entries.len());
    }

    /// Append the candidate `p1_codes · last`, computing its PIL by
    /// joining `prefix` and `suffix` straight into the arena.
    pub(crate) fn push_candidate(
        &mut self,
        p1_codes: &[u8],
        last: u8,
        prefix: &[(u32, u64)],
        suffix: &[(u32, u64)],
        gap: GapRequirement,
        counters: &mut JoinCounters,
    ) {
        debug_assert_eq!(p1_codes.len() + 1, self.level);
        self.codes.extend_from_slice(p1_codes);
        self.codes.push(last);
        self.saturated |= join_into(prefix, suffix, gap, &mut self.entries, counters);
        self.bounds.push(self.entries.len());
    }

    /// [`PilSet::push_candidate`] through the dense prefix-sum kernel:
    /// the suffix arrives as a pre-built [`DensePil`] (cached per
    /// suffix by [`ReprCache`]), so the join is one O(1) probe per
    /// prefix offset and can never saturate (see [`DensePil::build`]).
    /// `kern` picks the scalar or AVX2 probe — same output either way.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_candidate_dense(
        &mut self,
        p1_codes: &[u8],
        last: u8,
        prefix: &[(u32, u64)],
        suffix: &DensePil,
        gap: GapRequirement,
        kern: ResolvedKernel,
        counters: &mut JoinCounters,
    ) {
        debug_assert_eq!(p1_codes.len() + 1, self.level);
        self.codes.extend_from_slice(p1_codes);
        self.codes.push(last);
        kernel::join_dense_kernel(kern, prefix, suffix, gap, &mut self.entries, counters);
        self.bounds.push(self.entries.len());
    }

    /// Append the candidate `p1_codes · last` with a PIL already
    /// computed by the batched multi-suffix join — the entries are
    /// copied in and the partner's saturation flag is absorbed.
    pub(crate) fn push_batched(
        &mut self,
        p1_codes: &[u8],
        last: u8,
        entries: &[(u32, u64)],
        saturated: bool,
    ) {
        debug_assert_eq!(p1_codes.len() + 1, self.level);
        self.codes.extend_from_slice(p1_codes);
        self.codes.push(last);
        self.entries.extend_from_slice(entries);
        self.saturated |= saturated;
        self.bounds.push(self.entries.len());
    }

    /// Drop all patterns, keeping the allocations, and set a new level —
    /// the join fan-out reuses one output set per engine this way.
    pub(crate) fn reset(&mut self, level: usize) {
        self.level = level;
        self.codes.clear();
        self.entries.clear();
        self.bounds.clear();
        self.bounds.push(0);
        self.saturated = false;
    }

    /// Concatenate parts (in order) into one set. Parts must hold
    /// disjoint ascending code ranges — true for chunked candidate
    /// generation, where chunk `k` covers left-parent indices before
    /// chunk `k+1`'s.
    pub(crate) fn concat(level: usize, parts: impl IntoIterator<Item = PilSet>) -> PilSet {
        let mut out = PilSet::new(level);
        for part in parts {
            debug_assert_eq!(part.level, level);
            let base = out.entries.len();
            out.codes.extend_from_slice(&part.codes);
            out.entries.extend_from_slice(&part.entries);
            out.bounds.extend(part.bounds[1..].iter().map(|b| base + b));
            out.saturated |= part.saturated;
        }
        out
    }

    /// Convert to the public map form, omitting empty PILs (they only
    /// arise from joins, never from seeding).
    pub(crate) fn into_pil_map(self) -> HashMap<Pattern, Pil> {
        let mut map = HashMap::with_capacity(self.len());
        for i in 0..self.len() {
            let entries = self.entries(i);
            if entries.is_empty() {
                continue;
            }
            map.insert(
                Pattern::from_codes(self.pattern_codes(i).to_vec()),
                Pil::from_raw(entries.to_vec()),
            );
        }
        map
    }
}

/// Build the PILs of every length-`level` pattern occurring in `seq` —
/// the engine behind [`Pil::build_all`] — as a sorted [`PilSet`].
///
/// Strategy by alphabet size `σ` and level:
/// - `level · ⌈log₂ σ⌉ ≤ 20` bits: dense table of `2^bits` slots
///   indexed by the packed key (DNA level 3 = 64 slots; protein
///   level 3 = 32768). No hashing, no per-event allocation.
/// - key fits a `u64`: hash the packed key (still allocation-free per
///   event).
/// - otherwise: hash the code string (the original pipeline's shape).
pub(crate) fn build_seed(
    seq: &Sequence,
    gap: GapRequirement,
    level: usize,
    kern: ResolvedKernel,
) -> PilSet {
    assert!(level >= 1, "level must be at least 1");
    let codec = KeyCodec::new(seq.alphabet().size());
    if codec.fits(level) {
        if codec.key_bits(level) <= DENSE_KEY_BITS_MAX {
            // Level 3 (the engines' start level) has a vectorized scan;
            // `build_seed_l3_simd` declines at runtime when AVX2 is
            // unavailable and the recursive scalar scan takes over.
            if level == 3 && kern == ResolvedKernel::Simd {
                if let Some((slots, saturated)) =
                    kernel::build_seed_l3_simd(seq, gap, codec, DENSE_KEY_BITS_MAX)
                {
                    return slots_to_set(&slots, level, codec, saturated);
                }
            }
            build_seed_dense(seq, gap, level, codec)
        } else {
            build_seed_sparse(seq, gap, level, codec)
        }
    } else {
        build_seed_bytes(seq, gap, level)
    }
}

/// Accumulate one scan event (an offset sequence starting at `start`
/// matching the pattern) into an entry list. Returns `true` when the
/// count was already at `u64::MAX` and the event was lost to
/// saturation.
#[inline(always)]
fn bump(entries: &mut Vec<(u32, u64)>, start: u32) -> bool {
    match entries.last_mut() {
        Some(last) if last.0 == start => {
            let saturated = last.1 == u64::MAX;
            last.1 = last.1.saturating_add(1);
            saturated
        }
        _ => {
            entries.push((start, 1));
            false
        }
    }
}

fn build_seed_dense(seq: &Sequence, gap: GapRequirement, level: usize, codec: KeyCodec) -> PilSet {
    let mut slots: Vec<Vec<(u32, u64)>> = vec![Vec::new(); 1usize << codec.key_bits(level)];
    let mut saturated = false;
    for start in 1..=seq.len() {
        let key0 = codec.push(0, seq.at1(start));
        scan_keys(seq, gap, start, key0, level - 1, codec, &mut |key| {
            saturated |= bump(&mut slots[key as usize], start as u32);
        });
    }
    slots_to_set(&slots, level, codec, saturated)
}

/// Walk a dense key-indexed slot table into a sorted [`PilSet`].
/// Ascending slot index == ascending packed key == lexicographic code
/// order, so the set comes out sorted for free. Shared by the scalar
/// scan and [`kernel::build_seed_l3_simd`], which both fill the same
/// slot layout.
fn slots_to_set(
    slots: &[Vec<(u32, u64)>],
    level: usize,
    codec: KeyCodec,
    saturated: bool,
) -> PilSet {
    let mut set = PilSet::new(level);
    let mut codes = Vec::with_capacity(level);
    for (key, entries) in slots.iter().enumerate() {
        if entries.is_empty() {
            continue;
        }
        codes.clear();
        codec.unpack_into(key as u64, level, &mut codes);
        set.push_pattern(&codes, entries);
    }
    set.saturated = saturated;
    set
}

fn build_seed_sparse(seq: &Sequence, gap: GapRequirement, level: usize, codec: KeyCodec) -> PilSet {
    let mut map: HashMap<u64, Vec<(u32, u64)>> = HashMap::new();
    let mut saturated = false;
    for start in 1..=seq.len() {
        let key0 = codec.push(0, seq.at1(start));
        scan_keys(seq, gap, start, key0, level - 1, codec, &mut |key| {
            saturated |= bump(map.entry(key).or_default(), start as u32);
        });
    }
    let mut pairs: Vec<(u64, Vec<(u32, u64)>)> = map.into_iter().collect();
    pairs.sort_unstable_by_key(|&(key, _)| key);
    let mut set = PilSet::new(level);
    let mut codes = Vec::with_capacity(level);
    for (key, entries) in pairs {
        codes.clear();
        codec.unpack_into(key, level, &mut codes);
        set.push_pattern(&codes, &entries);
    }
    set.saturated = saturated;
    set
}

fn build_seed_bytes(seq: &Sequence, gap: GapRequirement, level: usize) -> PilSet {
    let mut map: HashMap<Vec<u8>, Vec<(u32, u64)>> = HashMap::new();
    let mut chars = Vec::with_capacity(level);
    let mut saturated = false;
    for start in 1..=seq.len() {
        chars.clear();
        chars.push(seq.at1(start));
        scan_codes(seq, gap, level, start, &mut chars, &mut |codes| {
            saturated |= bump(map.entry(codes.to_vec()).or_default(), start as u32);
        });
    }
    let mut pairs: Vec<_> = map.into_iter().collect();
    pairs.sort_unstable_by(|a: &(Vec<u8>, _), b| a.0.cmp(&b.0));
    let mut set = PilSet::new(level);
    for (codes, entries) in pairs {
        set.push_pattern(&codes, &entries);
    }
    set.saturated = saturated;
    set
}

/// Depth-first scan over gap-admissible offset chains, carrying the
/// packed key of the characters seen so far. `remaining` counts the
/// symbols still to append.
fn scan_keys(
    seq: &Sequence,
    gap: GapRequirement,
    pos: usize,
    key: u64,
    remaining: usize,
    codec: KeyCodec,
    sink: &mut impl FnMut(u64),
) {
    if remaining == 0 {
        sink(key);
        return;
    }
    for step in gap.steps() {
        let next = pos + step;
        if next > seq.len() {
            break;
        }
        scan_keys(
            seq,
            gap,
            next,
            codec.push(key, seq.at1(next)),
            remaining - 1,
            codec,
            sink,
        );
    }
}

/// Byte-string twin of [`scan_keys`] for patterns too long to pack.
fn scan_codes(
    seq: &Sequence,
    gap: GapRequirement,
    level: usize,
    pos: usize,
    chars: &mut Vec<u8>,
    sink: &mut impl FnMut(&[u8]),
) {
    if chars.len() == level {
        sink(chars);
        return;
    }
    for step in gap.steps() {
        let next = pos + step;
        if next > seq.len() {
            break;
        }
        chars.push(seq.at1(next));
        scan_codes(seq, gap, level, next, chars, sink);
        chars.pop();
    }
}

/// Detect the runs of equal `(level−1)`-prefix over `kept` (positions
/// into `kept`, which itself holds ascending indices into `set`).
/// Because `set` is sorted, each prefix group is contiguous.
pub(crate) fn prefix_runs(set: &PilSet, kept: &[usize]) -> Vec<(usize, usize)> {
    let plen = set.level() - 1;
    let mut runs: Vec<(usize, usize)> = Vec::new();
    for (k, &idx) in kept.iter().enumerate() {
        let prefix = &set.pattern_codes(idx)[..plen];
        match runs.last_mut() {
            Some(run) if &set.pattern_codes(kept[run.0])[..plen] == prefix => run.1 = k + 1,
            _ => runs.push((k, k + 1)),
        }
    }
    runs
}

/// Generate candidates whose left parent is `kept[lo..hi]`, appending
/// them (already sorted) to `out`. The right-parent run is found by
/// binary search over the prefix runs.
///
/// `repr` decides per suffix list whether the join runs on the sparse
/// merge or the dense prefix-sum probe; the dense build is cached in it
/// and reused across every left parent sharing the suffix. The caller
/// must have [`ReprCache::begin`]-reset it for `set`'s pattern indices.
///
/// Each left parent's partner run is a *sibling group*: the sparse
/// subset shares one batched walk of the left PIL
/// ([`join_multi_into`]), the dense subset takes the per-partner
/// prefix-sum probe under `kern`, and candidates are emitted back in
/// partner order — so the output is byte-identical to the per-candidate
/// path, saturation flags included.
#[allow(clippy::too_many_arguments)]
pub(crate) fn generate_candidates(
    set: &PilSet,
    kept: &[usize],
    runs: &[(usize, usize)],
    gap: GapRequirement,
    lo: usize,
    hi: usize,
    out: &mut PilSet,
    repr: &mut ReprCache,
    kern: ResolvedKernel,
    counters: &mut JoinCounters,
    pruner: &Pruner,
) {
    debug_assert_eq!(out.level(), set.level() + 1);
    let level = set.level();
    let mut scratch = MultiJoinScratch::default();
    let mut souts: Vec<Vec<(u32, u64)>> = Vec::new();
    let mut partners: Vec<&[(u32, u64)]> = Vec::new();
    let mut sparse_pos: Vec<usize> = Vec::new();
    for &i in &kept[lo..hi] {
        let p1 = set.pattern_codes(i);
        // Pruned modes: skip a left parent whose cone cannot reach the
        // target or whose support already sits under the top-k floor.
        if !pruner.admits_parent(p1, || set.support(i)) {
            continue;
        }
        let suffix = &p1[1..];
        let found =
            runs.binary_search_by(|&(s, _)| set.pattern_codes(kept[s])[..level - 1].cmp(suffix));
        if let Ok(r) = found {
            let (s, e) = runs[r];
            sparse_pos.clear();
            for (j, &m) in kept[s..e].iter().enumerate() {
                if !repr.decide(m, set.entries(m)) {
                    sparse_pos.push(j);
                }
            }
            if e - s == 1 && sparse_pos.len() == 1 {
                // Singleton sparse group: join straight into the arena,
                // skipping the staging buffer round-trip.
                let m = kept[s];
                let last = set.pattern_codes(m)[level - 1];
                out.push_candidate(p1, last, set.entries(i), set.entries(m), gap, counters);
                continue;
            }
            if !sparse_pos.is_empty() {
                let k = sparse_pos.len();
                partners.clear();
                partners.extend(sparse_pos.iter().map(|&j| set.entries(kept[s + j])));
                if souts.len() < k {
                    souts.resize_with(k, Vec::new);
                }
                join_multi_into(
                    set.entries(i),
                    &partners,
                    gap,
                    &mut souts[..k],
                    &mut scratch,
                    counters,
                );
            }
            let mut sp = 0usize;
            for (j, &m) in kept[s..e].iter().enumerate() {
                let last = set.pattern_codes(m)[level - 1];
                if sparse_pos.get(sp) == Some(&j) {
                    out.push_batched(p1, last, &souts[sp], scratch.saturated[sp]);
                    sp += 1;
                } else {
                    let dense = repr.get(m).expect("decided dense");
                    out.push_candidate_dense(p1, last, set.entries(i), dense, gap, kern, counters);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::{PilRepr, ReprPolicy};
    use crate::naive::support_dp;
    use perigap_seq::Sequence;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    /// A fresh cache sized for `set`, under `mode`.
    fn cache_for(set: &PilSet, mode: PilRepr) -> ReprCache {
        let mut cache = ReprCache::new(ReprPolicy::of(mode));
        cache.begin(set.len());
        cache
    }

    /// `build_seed` pinned to the scalar kernel, as most tests want.
    fn seed(s: &Sequence, g: GapRequirement, level: usize) -> PilSet {
        build_seed(s, g, level, ResolvedKernel::Scalar)
    }

    /// `generate_candidates` with the scalar kernel and throwaway counters.
    #[allow(clippy::too_many_arguments)]
    fn gen(
        set: &PilSet,
        kept: &[usize],
        runs: &[(usize, usize)],
        g: GapRequirement,
        lo: usize,
        hi: usize,
        out: &mut PilSet,
        repr: &mut ReprCache,
    ) {
        let mut jc = JoinCounters::default();
        generate_candidates(
            set,
            kept,
            runs,
            g,
            lo,
            hi,
            out,
            repr,
            ResolvedKernel::Scalar,
            &mut jc,
            &Pruner::default(),
        );
    }

    fn dna(text: &str) -> Sequence {
        Sequence::dna(text).unwrap()
    }

    #[test]
    fn seed_is_sorted_and_matches_dp() {
        let s = dna("ACGTACGTTGCAACGT");
        let g = gap(1, 3);
        for level in 1..=3 {
            let set = seed(&s, g, level);
            for i in 1..set.len() {
                assert!(set.pattern_codes(i - 1) < set.pattern_codes(i), "sorted");
            }
            for i in 0..set.len() {
                let p = Pattern::from_codes(set.pattern_codes(i).to_vec());
                assert_eq!(set.support(i), support_dp(&s, g, &p), "level {level}");
                assert!(!set.entries(i).is_empty());
            }
        }
    }

    #[test]
    fn all_seed_strategies_agree() {
        // Force each strategy on the same data by varying the level so
        // the key width crosses the dense and u64 thresholds.
        let s = dna(&"ACGGTTA".repeat(30));
        let g = gap(0, 1);
        let dense = seed(&s, g, 3); // 6 key bits
        let sparse = build_seed_sparse(&s, g, 3, KeyCodec::new(4));
        let bytes = build_seed_bytes(&s, g, 3);
        assert_eq!(dense, sparse);
        assert_eq!(dense, bytes);
    }

    #[test]
    fn paper_example_via_pilset() {
        // S = AACCGTT, gap [1,2]: PIL(ACT) = {(1,3),(2,2)}.
        let s = dna("AACCGTT");
        let set = seed(&s, gap(1, 2), 3);
        let act: Vec<u8> = vec![0, 1, 3];
        let i = (0..set.len())
            .find(|&i| set.pattern_codes(i) == act)
            .unwrap();
        assert_eq!(set.entries(i), &[(1, 3), (2, 2)]);
        assert_eq!(set.support(i), 5);
        assert!(set.max_support() >= 5);
    }

    #[test]
    fn runs_group_shared_prefixes() {
        let s = dna("ACGTACGTACGT");
        let set = seed(&s, gap(0, 2), 2);
        let kept: Vec<usize> = (0..set.len()).collect();
        let runs = prefix_runs(&set, &kept);
        // Every pattern is in exactly one run and runs tile `kept`.
        assert_eq!(runs.first().unwrap().0, 0);
        assert_eq!(runs.last().unwrap().1, kept.len());
        for w in runs.windows(2) {
            assert_eq!(w[0].1, w[1].0, "runs tile without gaps");
        }
        for &(s_, e) in &runs {
            let p = &set.pattern_codes(kept[s_])[..1];
            for &k in &kept[s_..e] {
                assert_eq!(&set.pattern_codes(k)[..1], p);
            }
        }
    }

    #[test]
    fn candidates_match_naive_generation() {
        let s = dna("ACGTTGCAACGTTACG");
        let g = gap(1, 2);
        let set = seed(&s, g, 3);
        let kept: Vec<usize> = (0..set.len()).collect();
        let runs = prefix_runs(&set, &kept);
        let mut out = PilSet::new(4);
        let mut repr = cache_for(&set, PilRepr::Sparse);
        gen(&set, &kept, &runs, g, 0, kept.len(), &mut out, &mut repr);

        // Naive: every ordered pair with suffix(p1) == prefix(p2).
        let mut expected: Vec<(Vec<u8>, Pil)> = Vec::new();
        for i in 0..set.len() {
            for j in 0..set.len() {
                let (p1, p2) = (set.pattern_codes(i), set.pattern_codes(j));
                if p1[1..] == p2[..2] {
                    let mut codes = p1.to_vec();
                    codes.push(p2[2]);
                    let pil = Pil::join(
                        &Pil::from_raw(set.entries(i).to_vec()),
                        &Pil::from_raw(set.entries(j).to_vec()),
                        g,
                    );
                    expected.push((codes, pil));
                }
            }
        }
        expected.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(out.len(), expected.len());
        for (i, (codes, pil)) in expected.iter().enumerate() {
            assert_eq!(out.pattern_codes(i), &codes[..]);
            assert_eq!(out.entries(i), pil.entries());
        }
        // And sorted output, by construction.
        for i in 1..out.len() {
            assert!(out.pattern_codes(i - 1) < out.pattern_codes(i));
        }
    }

    #[test]
    fn candidate_generation_is_representation_invariant() {
        // The same generation through the sparse merge, the dense
        // probe, and the occupancy policy must be byte-identical —
        // codes, entries, bounds, and the saturation flag.
        let s = dna("ACGTTGCAACGTTACGGTCAACGT");
        for g in [gap(0, 2), gap(1, 3), gap(2, 5)] {
            let set = seed(&s, g, 3);
            let kept: Vec<usize> = (0..set.len()).collect();
            let runs = prefix_runs(&set, &kept);
            let mut sparse = PilSet::new(4);
            let mut repr = cache_for(&set, PilRepr::Sparse);
            gen(&set, &kept, &runs, g, 0, kept.len(), &mut sparse, &mut repr);
            for mode in [PilRepr::Dense, PilRepr::Auto] {
                let mut out = PilSet::new(4);
                let mut repr = cache_for(&set, mode);
                gen(&set, &kept, &runs, g, 0, kept.len(), &mut out, &mut repr);
                assert_eq!(out, sparse, "mode {mode} under gap {g}");
            }
        }
    }

    #[test]
    fn concat_preserves_chunked_generation() {
        let s = dna("ACGTTGCAACGTTACGGTCA");
        let g = gap(0, 2);
        let set = seed(&s, g, 3);
        let kept: Vec<usize> = (0..set.len()).collect();
        let runs = prefix_runs(&set, &kept);
        let mut whole = PilSet::new(4);
        let mut repr = cache_for(&set, PilRepr::Auto);
        gen(&set, &kept, &runs, g, 0, kept.len(), &mut whole, &mut repr);
        let mid = kept.len() / 2;
        let mut a = PilSet::new(4);
        let mut b = PilSet::new(4);
        // Chunked generation rebuilds the cache per chunk, as the
        // parallel engine does.
        let mut repr_a = cache_for(&set, PilRepr::Auto);
        let mut repr_b = cache_for(&set, PilRepr::Auto);
        gen(&set, &kept, &runs, g, 0, mid, &mut a, &mut repr_a);
        gen(&set, &kept, &runs, g, mid, kept.len(), &mut b, &mut repr_b);
        assert_eq!(PilSet::concat(4, [a, b]), whole);
    }

    #[test]
    fn saturation_is_flagged_and_propagated() {
        // `bump` loses an event only at the ceiling — and says so.
        let mut entries = vec![(1u32, u64::MAX - 1)];
        assert!(!bump(&mut entries, 1));
        assert!(bump(&mut entries, 1));
        assert_eq!(entries, vec![(1, u64::MAX)]);
        // A join whose window sum overflows flags the candidate set.
        let g = gap(1, 2);
        let mut set = PilSet::new(3);
        let prefix = [(1u32, 1u64)];
        let suffix = [(3u32, u64::MAX), (4u32, 2u64)];
        set.push_candidate(
            &[0, 0],
            0,
            &prefix,
            &suffix,
            g,
            &mut JoinCounters::default(),
        );
        assert!(set.saturated());
        assert!(set.entry_count() > 0);
        assert!(set.arena_bytes() > 0);
        // concat carries the flag; reset clears it.
        let clean = PilSet::new(3);
        assert!(!clean.saturated());
        let mut merged = PilSet::concat(3, [clean, set]);
        assert!(merged.saturated());
        merged.reset(4);
        assert!(!merged.saturated());
        // An ordinary seed never saturates.
        assert!(!seed(&dna("ACGTACGT"), g, 2).saturated());
    }

    #[test]
    fn reset_reuses_buffers() {
        let s = dna("ACGTACGT");
        let mut set = seed(&s, gap(0, 1), 2);
        assert!(!set.is_empty());
        let cap = set.entries.capacity();
        set.reset(3);
        assert!(set.is_empty());
        assert_eq!(set.level(), 3);
        assert_eq!(set.entries.capacity(), cap);
    }

    #[test]
    fn into_pil_map_round_trips() {
        let s = dna("AACCGTT");
        let g = gap(1, 2);
        let map = seed(&s, g, 3).into_pil_map();
        let direct = Pil::build_all(&s, g, 3);
        assert_eq!(map, direct);
    }

    #[test]
    fn seed_is_kernel_invariant() {
        // The SIMD level-3 seeding scan must match the scalar table
        // walk entry for entry. Without AVX2 (or under
        // PERIGAP_FORCE_SCALAR) the Simd kernel falls back and the
        // comparison is trivially true.
        let s = dna(&"ACGTTGCAACGGTTACGTCA".repeat(17));
        for g in [gap(0, 0), gap(0, 3), gap(1, 4), gap(3, 9)] {
            let scalar = build_seed(&s, g, 3, ResolvedKernel::Scalar);
            let simd = build_seed(&s, g, 3, ResolvedKernel::Simd);
            assert_eq!(scalar, simd, "gap {g}");
            assert_eq!(scalar.saturated(), simd.saturated());
        }
    }
}
