//! Rigid-wildcard pattern mining in the TEIRESIAS/Pratt style — the
//! other related-work baseline (Section 2).
//!
//! TEIRESIAS patterns are strings of solid characters and *rigid*
//! wild-cards (`A..T.C` means exactly two arbitrary characters, then
//! exactly one), subject to an ⟨L, W⟩ density constraint: every
//! sub-pattern containing `L` solid characters spans at most `W`
//! positions. Support is the number of occurrence positions. Because
//! the wild-cards are rigid, support *is* anti-monotone under
//! extension, so plain Apriori pruning is sound — exactly the property
//! the paper's flexible-gap model breaks.
//!
//! This implementation mines all ⟨L, W⟩ patterns with at least
//! `min_support` occurrences by level-wise rightward extension, and
//! flags the right-maximal ones (no single-step extension preserves
//! every occurrence). It exists as a comparator: the
//! `repro`-level experiments contrast what rigid patterns can and
//! cannot see against the paper's flexible gaps.

use crate::error::MineError;
use perigap_seq::Sequence;
use std::collections::HashMap;
use std::fmt;

/// A rigid pattern: solid characters at fixed relative positions.
/// `slots[i] = Some(code)` is a solid character, `None` a wild-card;
/// the first and last slots are always solid.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RigidPattern {
    slots: Vec<Option<u8>>,
}

impl RigidPattern {
    /// A single-character pattern.
    pub fn solid(code: u8) -> RigidPattern {
        RigidPattern {
            slots: vec![Some(code)],
        }
    }

    /// The slot vector.
    pub fn slots(&self) -> &[Option<u8>] {
        &self.slots
    }

    /// Total span in subject positions.
    pub fn span(&self) -> usize {
        self.slots.len()
    }

    /// Number of solid characters.
    pub fn solid_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Append `wildcards` wild-cards and a solid character.
    pub fn extend(&self, wildcards: usize, code: u8) -> RigidPattern {
        let mut slots = self.slots.clone();
        slots.resize(slots.len() + wildcards, None);
        slots.push(Some(code));
        RigidPattern { slots }
    }

    /// ⟨L, W⟩ density: every run of `l` consecutive solids spans ≤ `w`
    /// positions.
    pub fn is_dense(&self, l: usize, w: usize) -> bool {
        let solids: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|_| i))
            .collect();
        if solids.len() < l {
            return true;
        }
        solids.windows(l).all(|run| run[run.len() - 1] - run[0] < w)
    }

    /// Whether the pattern occurs at 0-based `start` in `seq`.
    pub fn matches_at(&self, seq: &Sequence, start: usize) -> bool {
        if start + self.span() > seq.len() {
            return false;
        }
        let codes = seq.codes();
        self.slots
            .iter()
            .enumerate()
            .all(|(i, slot)| slot.is_none_or(|c| codes[start + i] == c))
    }

    /// Render with `.` wild-cards, e.g. `"A..T.C"`.
    pub fn display(&self, alphabet: &perigap_seq::Alphabet) -> String {
        self.slots
            .iter()
            .map(|s| match s {
                Some(c) => alphabet.letter(*c) as char,
                None => '.',
            })
            .collect()
    }
}

impl fmt::Debug for RigidPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Alphabet-agnostic dot notation: digits for codes.
        let text: String = self
            .slots
            .iter()
            .map(|s| match s {
                Some(c) => (b'0' + *c) as char,
                None => '.',
            })
            .collect();
        write!(f, "RigidPattern({text})")
    }
}

/// One mined rigid pattern.
#[derive(Clone, Debug)]
pub struct RigidResult {
    /// The pattern.
    pub pattern: RigidPattern,
    /// Number of occurrence positions.
    pub support: usize,
    /// True when no single rightward extension keeps every occurrence.
    pub right_maximal: bool,
}

/// Configuration of a rigid mining run.
#[derive(Clone, Copy, Debug)]
pub struct RigidConfig {
    /// Density numerator `L`: every `density_l` solids…
    pub density_l: usize,
    /// …must span at most `density_w` positions.
    pub density_w: usize,
    /// Minimum occurrence count.
    pub min_support: usize,
    /// Minimum solid characters for a pattern to be reported.
    pub min_solids: usize,
    /// Hard cap on reported/extended solids (safety valve).
    pub max_solids: usize,
}

impl RigidConfig {
    fn validate(&self) -> Result<(), MineError> {
        if self.density_l < 2 || self.density_w < self.density_l {
            return Err(MineError::InvalidGap {
                min: self.density_l,
                max: self.density_w,
            });
        }
        if self.min_support == 0 {
            return Err(MineError::InvalidThreshold(0.0));
        }
        Ok(())
    }

    /// Longest wild-card run an extension may insert: with `L` solids
    /// in `W` positions, two adjacent solids are at most `W − L + 1`
    /// apart, i.e. at most `W − L` wild-cards between them — wider
    /// runs could never be part of a dense pattern.
    fn max_gap(&self) -> usize {
        self.density_w - self.density_l
    }
}

/// Mine all ⟨L, W⟩-dense rigid patterns with support ≥ `min_support`.
pub fn rigid_mine(seq: &Sequence, config: RigidConfig) -> Result<Vec<RigidResult>, MineError> {
    config.validate()?;
    let sigma = seq.alphabet().size() as u8;
    // Occurrence lists per pattern: sorted start positions.
    let mut current: Vec<(RigidPattern, Vec<u32>)> = Vec::new();
    for code in 0..sigma {
        let occ: Vec<u32> = seq
            .codes()
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == code)
            .map(|(i, _)| i as u32)
            .collect();
        if occ.len() >= config.min_support {
            current.push((RigidPattern::solid(code), occ));
        }
    }

    let mut out: Vec<RigidResult> = Vec::new();
    let mut solids = 1usize;
    while !current.is_empty() && solids < config.max_solids {
        let mut next: Vec<(RigidPattern, Vec<u32>)> = Vec::new();
        for (pattern, occ) in &current {
            let mut fully_preserved = false;
            for wildcards in 0..=config.max_gap() {
                // Bucket surviving occurrences per appended character.
                let mut buckets: HashMap<u8, Vec<u32>> = HashMap::new();
                let next_offset = pattern.span() + wildcards;
                for &start in occ {
                    let pos = start as usize + next_offset;
                    if pos < seq.len() {
                        buckets.entry(seq.codes()[pos]).or_default().push(start);
                    }
                }
                for (code, survivors) in buckets {
                    if survivors.len() < config.min_support {
                        continue;
                    }
                    let extended = pattern.extend(wildcards, code);
                    if !extended.is_dense(config.density_l, config.density_w) {
                        continue;
                    }
                    if survivors.len() == occ.len() {
                        fully_preserved = true;
                    }
                    next.push((extended, survivors));
                }
            }
            if pattern.solid_count() >= config.min_solids {
                out.push(RigidResult {
                    pattern: pattern.clone(),
                    support: occ.len(),
                    right_maximal: !fully_preserved,
                });
            }
        }
        current = next;
        solids += 1;
    }
    // Flush the final generation.
    for (pattern, occ) in current {
        if pattern.solid_count() >= config.min_solids {
            out.push(RigidResult {
                pattern,
                support: occ.len(),
                right_maximal: true,
            });
        }
    }
    out.sort_by(|a, b| {
        (a.pattern.solid_count(), a.pattern.span())
            .cmp(&(b.pattern.solid_count(), b.pattern.span()))
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_seq::{Alphabet, Sequence};

    fn config(l: usize, w: usize, min_support: usize) -> RigidConfig {
        RigidConfig {
            density_l: l,
            density_w: w,
            min_support,
            min_solids: 2,
            max_solids: 10,
        }
    }

    /// Brute-force support: count matching start positions.
    fn brute_support(seq: &Sequence, pattern: &RigidPattern) -> usize {
        (0..seq.len())
            .filter(|&s| pattern.matches_at(seq, s))
            .count()
    }

    #[test]
    fn density_constraint() {
        // A..T.C : solids at 0, 3, 5.
        let p = RigidPattern::solid(0).extend(2, 3).extend(1, 1);
        assert_eq!(p.span(), 6);
        assert_eq!(p.solid_count(), 3);
        assert!(p.is_dense(2, 4)); // adjacent solids span ≤ 4
        assert!(!p.is_dense(2, 3)); // A..T spans 4 > 3
        assert!(p.is_dense(3, 6));
        assert!(!p.is_dense(3, 5));
    }

    #[test]
    fn display_uses_dots() {
        let p = RigidPattern::solid(0).extend(2, 3).extend(1, 1);
        assert_eq!(p.display(&Alphabet::Dna), "A..T.C");
    }

    #[test]
    fn mines_exact_repeats() {
        // "ACGT" four times: AC, A.G, CG … all with support 4.
        let seq = Sequence::dna(&"ACGT".repeat(4)).unwrap();
        let results = rigid_mine(&seq, config(2, 4, 4)).unwrap();
        assert!(!results.is_empty());
        for r in &results {
            assert_eq!(
                r.support,
                brute_support(&seq, &r.pattern),
                "{:?}",
                r.pattern
            );
            assert!(r.support >= 4);
            assert!(r.pattern.is_dense(2, 4));
        }
        // The literal AC must be among them.
        let ac = RigidPattern::solid(0).extend(0, 1);
        assert!(results.iter().any(|r| r.pattern == ac));
    }

    #[test]
    fn completeness_small_alphabet() {
        // Compare against brute force over all dense rigid patterns with
        // 2..=3 solids and span ≤ 5 on a small sequence.
        let seq = Sequence::dna("ACGTACGGTACGAACG").unwrap();
        let cfg = RigidConfig {
            density_l: 2,
            density_w: 3,
            min_support: 3,
            min_solids: 2,
            max_solids: 3,
        };
        let mined = rigid_mine(&seq, cfg).unwrap();
        // Enumerate candidates: spans from solid positions.
        let mut expected = 0usize;
        for a in 0..4u8 {
            for g1 in 0..=1usize {
                for b in 0..4u8 {
                    let p2 = RigidPattern::solid(a).extend(g1, b);
                    if brute_support(&seq, &p2) >= 3 {
                        expected += 1;
                    }
                    for g2 in 0..=1usize {
                        for c in 0..4u8 {
                            let p3 = p2.extend(g2, c);
                            if p3.is_dense(2, 3) && brute_support(&seq, &p3) >= 3 {
                                expected += 1;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(mined.len(), expected);
        for r in &mined {
            assert_eq!(r.support, brute_support(&seq, &r.pattern));
        }
    }

    #[test]
    fn apriori_holds_for_rigid_patterns() {
        // Every mined pattern's leading sub-pattern has ≥ its support —
        // the property the paper shows fails for flexible gaps.
        let seq = Sequence::dna(&"ACGGTACGT".repeat(5)).unwrap();
        let results = rigid_mine(&seq, config(2, 4, 3)).unwrap();
        for r in results.iter().filter(|r| r.pattern.solid_count() >= 3) {
            // Drop the trailing solid (and any trailing wild-cards).
            let mut slots = r.pattern.slots().to_vec();
            slots.pop();
            while slots.last() == Some(&None) {
                slots.pop();
            }
            let parent = RigidPattern { slots };
            assert!(
                brute_support(&seq, &parent) >= r.support,
                "Apriori violated for {:?}",
                r.pattern
            );
        }
    }

    #[test]
    fn right_maximality_flags() {
        // "ACG" repeated with a trailing G: every AC is followed by G,
        // so AC extends to ACG at full support and is not right-maximal;
        // ACG itself loses its last occurrence on extension and is.
        let seq = Sequence::dna(&"ACG".repeat(10)).unwrap();
        let cfg = RigidConfig {
            density_l: 2,
            density_w: 2,
            min_support: 3,
            min_solids: 2,
            max_solids: 3,
        };
        let results = rigid_mine(&seq, cfg).unwrap();
        let ac = RigidPattern::solid(0).extend(0, 1);
        let found = results.iter().find(|r| r.pattern == ac).expect("AC mined");
        assert!(!found.right_maximal, "AC → ACG preserves every occurrence");
        let acg = ac.extend(0, 2);
        let found = results
            .iter()
            .find(|r| r.pattern == acg)
            .expect("ACG mined");
        assert!(found.right_maximal, "ACG → ACGA drops the final occurrence");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let seq = Sequence::dna("ACGT").unwrap();
        assert!(rigid_mine(&seq, config(1, 4, 1)).is_err());
        assert!(rigid_mine(
            &seq,
            RigidConfig {
                density_l: 3,
                density_w: 2,
                min_support: 1,
                min_solids: 2,
                max_solids: 5,
            }
        )
        .is_err());
        assert!(rigid_mine(
            &seq,
            RigidConfig {
                density_l: 2,
                density_w: 4,
                min_support: 0,
                min_solids: 2,
                max_solids: 5,
            }
        )
        .is_err());
    }
}
