//! Error type for the mining core.

use std::fmt;

/// Errors produced while configuring or running the miner.
#[derive(Debug, Clone, PartialEq)]
pub enum MineError {
    /// A gap requirement with `min > max`.
    InvalidGap {
        /// Requested minimum gap.
        min: usize,
        /// Requested maximum gap.
        max: usize,
    },
    /// A support threshold outside `(0, 1]`.
    InvalidThreshold(f64),
    /// A pattern string could not be parsed.
    PatternParse(String),
    /// The subject sequence is too short for any pattern of the minimum
    /// mined length under the gap requirement.
    SequenceTooShort {
        /// Subject sequence length.
        len: usize,
        /// Minimum span required.
        needed: usize,
    },
    /// The `m` parameter of MPPm must be at least 1.
    InvalidM(usize),
    /// The enumeration baseline would exceed its candidate budget.
    EnumerationBudget {
        /// Candidates the next level would require.
        required: u128,
        /// Configured budget.
        budget: u128,
    },
    /// The next generation (BFS) or subtree buffer (DFS) would push the
    /// live arena bytes past `MppConfig::max_arena_bytes`.
    MemoryCeiling {
        /// Configured ceiling in bytes.
        limit: usize,
        /// Bytes the mine would have needed to continue.
        required: usize,
    },
    /// A worker-pool thread died (panicked or exited) while it owned a
    /// join chunk, so the parallel mine cannot complete the level.
    WorkerFailed {
        /// The chunk index the failure was observed on (`usize::MAX`
        /// when the dead worker never reported which chunk it held).
        chunk: usize,
        /// The panic payload, when one could be recovered.
        message: String,
    },
    /// Writing, reading, or decoding a spill record failed — an I/O
    /// error from the [`crate::spill::SpillIo`] backend, or a record
    /// that came back torn, truncated, or with a bad checksum. The run
    /// aborts rather than mine from state it cannot trust.
    SpillIo {
        /// The spill record id involved.
        record: u64,
        /// What went wrong (I/O error text or corruption description).
        message: String,
    },
    /// A packed corpus file could not be written, opened, or decoded —
    /// I/O failure, bad magic/version, a directory entry pointing
    /// outside the file, or a trailing-hash mismatch. The corpus is
    /// refused whole rather than mined partially.
    CorpusIo {
        /// What went wrong.
        message: String,
    },
    /// A checkpoint artifact (per-shard record or the manifest) failed
    /// to read, write, or decode — truncation, bit flips, a missing
    /// record the manifest claims is complete. The mine aborts; it
    /// never merges state it cannot verify.
    CheckpointIo {
        /// The shard record involved (`u64::MAX` for the manifest).
        record: u64,
        /// What went wrong.
        message: String,
    },
    /// A structurally valid checkpoint manifest describes a different
    /// run — another corpus (hash mismatch) or other mining
    /// parameters. Resuming would merge incomparable shard results, so
    /// the mine refuses instead.
    CheckpointMismatch {
        /// Which recorded field disagrees.
        field: &'static str,
        /// The value the manifest recorded.
        manifest: String,
        /// The value this run was invoked with.
        requested: String,
    },
    /// A checkpointed corpus mine stopped early on purpose (the
    /// `stop_after_shards` knob — the deterministic stand-in for a
    /// mid-run kill). Completed shards are durable; resume to finish.
    CorpusPaused {
        /// Shards checkpointed so far.
        completed: usize,
        /// Total shards in the corpus.
        total: usize,
    },
}

impl fmt::Display for MineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MineError::InvalidGap { min, max } => {
                write!(f, "invalid gap requirement [{min}, {max}]: min exceeds max")
            }
            MineError::InvalidThreshold(t) => {
                write!(f, "support threshold must be in (0, 1], got {t}")
            }
            MineError::PatternParse(msg) => write!(f, "cannot parse pattern: {msg}"),
            MineError::SequenceTooShort { len, needed } => write!(
                f,
                "sequence of length {len} cannot contain any pattern (needs ≥ {needed})"
            ),
            MineError::InvalidM(m) => write!(f, "MPPm parameter m must be ≥ 1, got {m}"),
            MineError::EnumerationBudget { required, budget } => write!(
                f,
                "enumeration would generate {required} candidates, over the budget of {budget}"
            ),
            MineError::MemoryCeiling { limit, required } => write!(
                f,
                "arena memory ceiling of {limit} bytes exceeded: mining would need {required} bytes"
            ),
            MineError::WorkerFailed { chunk, message } => {
                if *chunk == usize::MAX {
                    write!(f, "a mining worker thread died: {message}")
                } else {
                    write!(f, "a mining worker thread died on chunk {chunk}: {message}")
                }
            }
            MineError::SpillIo { record, message } => {
                write!(f, "spill record {record} failed: {message}")
            }
            MineError::CorpusIo { message } => {
                write!(f, "corpus file rejected: {message}")
            }
            MineError::CheckpointIo { record, message } => {
                if *record == u64::MAX {
                    write!(f, "checkpoint manifest failed: {message}")
                } else {
                    write!(f, "checkpoint record for shard {record} failed: {message}")
                }
            }
            MineError::CheckpointMismatch {
                field,
                manifest,
                requested,
            } => write!(
                f,
                "checkpoint manifest is from a different run: {field} was {manifest}, this run has {requested}"
            ),
            MineError::CorpusPaused { completed, total } => write!(
                f,
                "corpus mine paused after {completed} of {total} shards (checkpoints are durable; resume to finish)"
            ),
        }
    }
}

impl std::error::Error for MineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MineError::InvalidGap { min: 5, max: 3 }
            .to_string()
            .contains("[5, 3]"));
        assert!(MineError::InvalidThreshold(1.5).to_string().contains("1.5"));
        assert!(MineError::SequenceTooShort { len: 3, needed: 9 }
            .to_string()
            .contains('9'));
        assert!(MineError::InvalidM(0).to_string().contains("m must be"));
        let ceiling = MineError::MemoryCeiling {
            limit: 1024,
            required: 4096,
        }
        .to_string();
        assert!(
            ceiling.contains("1024") && ceiling.contains("4096"),
            "{ceiling}"
        );
        assert!(MineError::WorkerFailed {
            chunk: 7,
            message: "injected".into()
        }
        .to_string()
        .contains("chunk 7"));
        assert!(MineError::WorkerFailed {
            chunk: usize::MAX,
            message: "gone".into()
        }
        .to_string()
        .contains("died: gone"));
        let spill = MineError::SpillIo {
            record: 3,
            message: "checksum mismatch".into(),
        }
        .to_string();
        assert!(
            spill.contains("record 3") && spill.contains("checksum mismatch"),
            "{spill}"
        );
        assert!(MineError::CorpusIo {
            message: "bad magic".into()
        }
        .to_string()
        .contains("corpus file rejected: bad magic"));
        let ckpt = MineError::CheckpointIo {
            record: 5,
            message: "truncated".into(),
        }
        .to_string();
        assert!(
            ckpt.contains("shard 5") && ckpt.contains("truncated"),
            "{ckpt}"
        );
        assert!(MineError::CheckpointIo {
            record: u64::MAX,
            message: "bit flip".into()
        }
        .to_string()
        .contains("manifest failed: bit flip"));
        let mismatch = MineError::CheckpointMismatch {
            field: "corpus hash",
            manifest: "0xaaaa".into(),
            requested: "0xbbbb".into(),
        }
        .to_string();
        assert!(
            mismatch.contains("corpus hash") && mismatch.contains("0xbbbb"),
            "{mismatch}"
        );
        let paused = MineError::CorpusPaused {
            completed: 2,
            total: 5,
        }
        .to_string();
        assert!(paused.contains("2 of 5"), "{paused}");
    }
}
