//! Parallel candidate evaluation (an engineering extension — the paper
//! is single-threaded).
//!
//! The dominant cost of a level is independent per candidate: join two
//! parent PILs, sum the result. This module runs the level-wise engine
//! with the join fan-out spread over a **persistent worker pool**: the
//! threads are spawned once per mine and live for the whole run.
//! Each level publishes one [`LevelJob`] (the kept generation, its
//! prefix runs, and an atomic chunk cursor); the main thread and every
//! worker *steal* chunks of left-parent indices from the cursor until
//! the level is drained, so a skewed chunk cannot stall the level the
//! way statically partitioned spawns could.
//!
//! Determinism is preserved: chunk results are merged in chunk-index
//! order (chunks partition the sorted kept slice, so concatenation is
//! already globally sorted) and the final outcome is sorted exactly
//! like the serial engine's. Output is byte-identical to
//! [`crate::mpp::mpp`].
//!
//! ## Failure handling
//!
//! The cursor hands each chunk to exactly one thread, so the merge loop
//! knows exactly how many results are outstanding. Worker-side join
//! work runs under `catch_unwind`: a panic becomes a
//! [`WorkerMsg::Failed`] report and the mine aborts with
//! [`MineError::WorkerFailed`] instead of blocking forever on a chunk
//! that will never arrive (the deadlock this module shipped with — the
//! old merge loop did a bare `recv()` while the pool's retained result
//! sender kept the channel open). A belt-and-braces liveness check
//! (`JoinHandle::is_finished` during receive timeouts) covers the
//! pathological case of a worker dying without managing to report.

use crate::adaptive::{ReprCache, ReprPolicy};
use crate::arena::{build_seed, generate_candidates, prefix_runs, PilSet};
use crate::counts::OffsetCounts;
use crate::error::MineError;
use crate::gap::GapRequirement;
use crate::kernel::ResolvedKernel;
use crate::lambda::BoundTable;
use crate::mpp::{check_ceiling, prepare, MppConfig};
use crate::pattern::Pattern;
use crate::pil::JoinCounters;
use crate::prune::Pruner;
use crate::result::{FrequentPattern, LevelStats, MineOutcome, MineStats};
use crate::trace::{
    AbortEvent, CompleteEvent, LevelEvent, MineObserver, NoopObserver, PoolLevelEvent, SeedEvent,
    WorkerLevelStats,
};
use perigap_seq::Sequence;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Below this many join tasks a level runs serially — chunk handoff
/// overhead would dominate.
pub(crate) const PARALLEL_THRESHOLD: usize = 256;

/// Stealing granularity: aim for this many chunks per thread so a slow
/// chunk is absorbed by the others...
pub(crate) const CHUNKS_PER_THREAD: usize = 8;

/// ...but never bother stealing fewer than this many left parents.
pub(crate) const MIN_CHUNK: usize = 32;

/// How long the merge loop waits between liveness checks of the worker
/// threads while chunk results are outstanding.
const RECV_TICK: Duration = Duration::from_millis(50);

/// Once a worker thread is observed dead, how long the merge loop keeps
/// draining the channel for an in-flight failure report before giving
/// up with a generic [`MineError::WorkerFailed`].
const DEAD_WORKER_GRACE: Duration = Duration::from_secs(1);

/// MPP with the candidate-evaluation step parallelized over `threads`
/// OS threads. Produces byte-identical outcomes to [`crate::mpp::mpp`].
pub fn mpp_parallel(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    n: usize,
    config: MppConfig,
    threads: usize,
) -> Result<MineOutcome, MineError> {
    mpp_parallel_traced(seq, gap, rho, n, config, threads, &mut NoopObserver)
}

/// [`mpp_parallel`] with a [`MineObserver`] attached. Beyond the serial
/// events, every pool-engaged level also emits a
/// [`PoolLevelEvent`] with the per-worker chunk/candidate/busy-time
/// breakdown.
pub fn mpp_parallel_traced<O: MineObserver>(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    n: usize,
    config: MppConfig,
    threads: usize,
    observer: &mut O,
) -> Result<MineOutcome, MineError> {
    assert!(threads >= 1, "need at least one thread");
    let started = Instant::now();
    let repr_before = crate::adaptive::repr_stats();
    let (counts, rho_exact) = prepare(seq, gap, rho, &config)?;
    let kern = config.kernel.resolve();
    let seed_started = Instant::now();
    let pils = build_seed(seq, gap, config.start_level, kern);
    observer.on_seed(&SeedEvent {
        level: config.start_level,
        patterns: pils.len(),
        pil_entries: pils.entry_count(),
        arena_bytes: pils.arena_bytes(),
        elapsed: seed_started.elapsed(),
    });
    let run = run_parallel(
        seq,
        &counts,
        &rho_exact,
        n,
        &config,
        kern,
        pils,
        threads,
        PoolHooks::default(),
        observer,
    );
    let (mut outcome, peak) = match run {
        Ok(done) => done,
        Err(e) => {
            observer.on_abort(&AbortEvent {
                message: e.to_string(),
            });
            return Err(e);
        }
    };
    outcome.stats.total_elapsed = started.elapsed();
    observer.on_repr(
        &crate::adaptive::repr_stats()
            .since(repr_before)
            .to_event(config.pil_repr.mode),
    );
    observer.on_complete(
        &CompleteEvent::from_outcome(&outcome)
            .with_peak_arena_bytes(peak)
            .with_kernel(kern),
    );
    Ok(outcome)
}

/// Test-only fault injection, carried by every pool job. Outside
/// `cfg(test)` this is a zero-sized token whose accessors fold to
/// constants.
#[derive(Clone, Copy, Default)]
pub(crate) struct PoolHooks {
    /// Make every worker thread panic on the first item it claims.
    #[cfg(test)]
    pub(crate) panic_workers: bool,
    /// Keep the calling thread out of the stealing loop, guaranteeing a
    /// worker claims an item.
    #[cfg(test)]
    pub(crate) main_no_steal: bool,
}

impl PoolHooks {
    pub(crate) fn panic_workers(&self) -> bool {
        #[cfg(test)]
        {
            self.panic_workers
        }
        #[cfg(not(test))]
        {
            false
        }
    }

    pub(crate) fn main_no_steal(&self) -> bool {
        #[cfg(test)]
        {
            self.main_no_steal
        }
        #[cfg(not(test))]
        {
            false
        }
    }
}

/// A unit of pool work: a fixed roster of independent items claimed
/// off an atomic cursor. The breadth-first engine's [`LevelJob`] (items
/// = chunks of left parents) and the hybrid engine's subtree job
/// (items = prefix-run components, see [`crate::dfs`]) both implement
/// this, sharing one pool, one merge loop, and one failure protocol.
pub(crate) trait PoolJob: Send + Sync + 'static {
    /// What one item produces.
    type Out: Send + 'static;

    /// Number of items to claim; the cursor drains at this count.
    fn n_items(&self) -> usize;

    /// The shared claim cursor.
    fn cursor(&self) -> &AtomicUsize;

    /// Fault-injection switches.
    fn hooks(&self) -> &PoolHooks;

    /// The level this job's [`PoolLevelEvent`] reports.
    fn progress_level(&self) -> usize;

    /// Process item `item`. Runs under `catch_unwind` on workers.
    fn process(&self, item: usize) -> Self::Out;

    /// How many candidates `out` contributes to the per-worker
    /// [`WorkerLevelStats`] tally.
    fn out_weight(out: &Self::Out) -> usize;
}

/// One level's join fan-out, shared with the pool. Workers claim chunk
/// indices from `cursor` until it passes `n_chunks`.
struct LevelJob {
    /// The current (kept-filtered inputs) generation.
    set: PilSet,
    /// Indices into `set` that survived the L̂ bound, ascending.
    kept: Vec<usize>,
    /// Equal-prefix runs over `kept` (see [`crate::arena::prefix_runs`]).
    runs: Vec<(usize, usize)>,
    gap: GapRequirement,
    next_level: usize,
    chunk: usize,
    n_chunks: usize,
    cursor: AtomicUsize,
    hooks: PoolHooks,
    /// PIL representation policy; each chunk builds its own
    /// [`ReprCache`] (suffix reuse amortizes within a chunk).
    repr: ReprPolicy,
    /// Compute kernel for the dense probe inside each chunk.
    kern: ResolvedKernel,
    /// Shared pruning state; floor reads inside a chunk see raises from
    /// every other thread's already-merged levels.
    pruner: Pruner,
}

impl PoolJob for LevelJob {
    type Out = (PilSet, JoinCounters);

    fn n_items(&self) -> usize {
        self.n_chunks
    }

    fn cursor(&self) -> &AtomicUsize {
        &self.cursor
    }

    fn hooks(&self) -> &PoolHooks {
        &self.hooks
    }

    fn progress_level(&self) -> usize {
        self.next_level
    }

    /// Generate the candidates whose left parent lies in chunk `c`,
    /// together with the chunk's join counters (merged level-wide by
    /// the caller).
    fn process(&self, c: usize) -> (PilSet, JoinCounters) {
        let lo = c * self.chunk;
        let hi = (lo + self.chunk).min(self.kept.len());
        let mut out = PilSet::new(self.next_level);
        let mut repr = ReprCache::with_kernel(self.repr, self.kern, Some(self.gap));
        repr.begin(self.set.len());
        let mut jc = JoinCounters::default();
        generate_candidates(
            &self.set,
            &self.kept,
            &self.runs,
            self.gap,
            lo,
            hi,
            &mut out,
            &mut repr,
            self.kern,
            &mut jc,
            &self.pruner,
        );
        (out, jc)
    }

    fn out_weight(out: &(PilSet, JoinCounters)) -> usize {
        out.0.len()
    }
}

/// What a worker sends back for each item it claimed. Exactly one
/// message per claimed item, success or not — the invariant the merge
/// loop's outstanding count rests on.
enum WorkerMsg<T> {
    /// Item `chunk` completed with the given output.
    Chunk {
        chunk: usize,
        worker: usize,
        out: T,
        elapsed: Duration,
    },
    /// The worker panicked while processing `chunk` and is exiting.
    Failed { chunk: usize, message: String },
}

/// Render a panic payload for the failure report.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// A worker thread: claim items of the current job until its cursor
/// drains. The work runs under `catch_unwind` so every claimed
/// item yields exactly one [`WorkerMsg`]; after reporting a failure
/// the worker exits.
fn worker_loop<J: PoolJob>(
    id: usize,
    job_rx: mpsc::Receiver<Arc<J>>,
    results: mpsc::Sender<WorkerMsg<J::Out>>,
) {
    while let Ok(job) = job_rx.recv() {
        loop {
            let c = job.cursor().fetch_add(1, Ordering::Relaxed);
            if c >= job.n_items() {
                break;
            }
            let chunk_started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if job.hooks().panic_workers() {
                    panic!("injected worker panic");
                }
                job.process(c)
            }));
            match outcome {
                Ok(out) => {
                    let msg = WorkerMsg::Chunk {
                        chunk: c,
                        worker: id,
                        out,
                        elapsed: chunk_started.elapsed(),
                    };
                    if results.send(msg).is_err() {
                        return;
                    }
                }
                Err(payload) => {
                    // `&*payload` reborrows the payload itself; a bare
                    // `&payload` would coerce the Box into the `dyn Any`
                    // and every downcast would miss.
                    let _ = results.send(WorkerMsg::Failed {
                        chunk: c,
                        message: panic_message(&*payload),
                    });
                    return;
                }
            }
        }
    }
}

/// The persistent pool: `threads − 1` workers (the main thread is the
/// remaining worker) that live for the whole mine and steal items of
/// whatever job is current. Worker `0` is the calling thread; pool
/// threads are `1..threads` (named `pgmine-worker-<id>`).
pub(crate) struct WorkerPool<J: PoolJob> {
    job_txs: Vec<mpsc::Sender<Arc<J>>>,
    results_rx: mpsc::Receiver<WorkerMsg<J::Out>>,
    handles: Vec<JoinHandle<()>>,
}

impl<J: PoolJob> WorkerPool<J> {
    pub(crate) fn new(workers: usize) -> WorkerPool<J> {
        let (results_tx, results_rx) = mpsc::channel();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for id in 1..=workers {
            let (job_tx, job_rx) = mpsc::channel::<Arc<J>>();
            let results = results_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("pgmine-worker-{id}"))
                .spawn(move || worker_loop(id, job_rx, results))
                .expect("spawn mining worker");
            handles.push(handle);
            job_txs.push(job_tx);
        }
        // `results_tx` is dropped here on purpose: only workers hold
        // senders, so if every worker dies the merge loop observes a
        // disconnect instead of blocking forever.
        WorkerPool {
            job_txs,
            results_rx,
            handles,
        }
    }

    /// Drain one job across the pool plus the calling thread; return
    /// the per-item outputs in item order. A worker failure aborts with
    /// [`MineError::WorkerFailed`] in bounded time.
    pub(crate) fn run(&self, job: Arc<J>) -> Result<(Vec<J::Out>, PoolLevelEvent), MineError> {
        let level_started = Instant::now();
        for tx in &self.job_txs {
            // A send only fails if a worker died; the stealing loop
            // below still completes the level without it (and the
            // liveness check reports the death if it claimed a chunk).
            let _ = tx.send(Arc::clone(&job));
        }
        let n_items = job.n_items();
        let workers = self.handles.len() + 1; // worker 0 = this thread
        let mut chunks = vec![0usize; workers];
        let mut candidates = vec![0usize; workers];
        let mut busy = vec![Duration::ZERO; workers];
        let mut parts: Vec<Option<J::Out>> = (0..n_items).map(|_| None).collect();
        let mut mined_here = 0usize;
        if !job.hooks().main_no_steal() {
            loop {
                let c = job.cursor().fetch_add(1, Ordering::Relaxed);
                if c >= n_items {
                    break;
                }
                let chunk_started = Instant::now();
                let out = job.process(c);
                busy[0] += chunk_started.elapsed();
                chunks[0] += 1;
                candidates[0] += J::out_weight(&out);
                parts[c] = Some(out);
                mined_here += 1;
            }
        }
        // Each item was claimed by exactly one thread, and every
        // worker-claimed item sends exactly one message (success or
        // failure — see `worker_loop`), so the merge waits on a count.
        let mut outstanding = n_items - mined_here;
        let mut dead_since: Option<Instant> = None;
        while outstanding > 0 {
            match self.results_rx.recv_timeout(RECV_TICK) {
                Ok(WorkerMsg::Chunk {
                    chunk,
                    worker,
                    out,
                    elapsed,
                }) => {
                    chunks[worker] += 1;
                    candidates[worker] += J::out_weight(&out);
                    busy[worker] += elapsed;
                    parts[chunk] = Some(out);
                    outstanding -= 1;
                }
                Ok(WorkerMsg::Failed { chunk, message }) => {
                    return Err(MineError::WorkerFailed { chunk, message });
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Every worker is gone and no failure report made
                    // it out.
                    return Err(MineError::WorkerFailed {
                        chunk: usize::MAX,
                        message: "all worker threads exited with chunks outstanding".into(),
                    });
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // A worker never exits while the pool lives unless
                    // it failed, so a finished handle here means a
                    // death the channel may still be carrying a report
                    // for — drain a little longer, then give up.
                    if self.handles.iter().any(JoinHandle::is_finished) {
                        let since = *dead_since.get_or_insert_with(Instant::now);
                        if since.elapsed() > DEAD_WORKER_GRACE {
                            return Err(MineError::WorkerFailed {
                                chunk: usize::MAX,
                                message: "a worker thread died without reporting a failure".into(),
                            });
                        }
                    }
                }
            }
        }
        let wall = level_started.elapsed();
        let event = PoolLevelEvent {
            level: job.progress_level(),
            chunks: n_items,
            workers: (0..workers)
                .map(|w| WorkerLevelStats {
                    worker: w,
                    chunks: chunks[w],
                    candidates: candidates[w],
                    busy: busy[w],
                    idle: wall.saturating_sub(busy[w]),
                })
                .collect(),
        };
        let outs = parts
            .into_iter()
            .map(|p| p.expect("all items accounted for"))
            .collect();
        Ok((outs, event))
    }
}

impl<J: PoolJob> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        // Closing the job channels lands every worker's `recv` on Err.
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The parallel twin of `run_levelwise`. Kept separate so the serial
/// engine stays dependency-free and obviously faithful to Figure 3.
/// Returns the outcome plus the peak live arena bytes, like the serial
/// engine.
#[allow(clippy::too_many_arguments)]
fn run_parallel<O: MineObserver>(
    seq: &Sequence,
    counts: &OffsetCounts,
    rho: &perigap_math::BigRatio,
    n: usize,
    config: &MppConfig,
    kern: ResolvedKernel,
    seed: PilSet,
    threads: usize,
    hooks: PoolHooks,
    observer: &mut O,
) -> Result<(MineOutcome, usize), MineError> {
    let gap = counts.gap();
    let sigma = seq.alphabet().size() as u128;
    let start = config.start_level;
    let n = n.clamp(start, counts.l1().max(start));
    let hard_cap = config.max_level.unwrap_or(usize::MAX).min(counts.l2());

    // Spawned once; lives until the mine returns.
    let pool = (threads > 1).then(|| WorkerPool::<LevelJob>::new(threads - 1));

    let mut stats = MineStats {
        n_used: n,
        ..MineStats::default()
    };
    let pruner = Pruner::new(&config.prune, counts.gap().flexibility());
    let mut frequent: Vec<FrequentPattern> = Vec::new();
    let mut bounds = BoundTable::new(counts, rho, n);
    let mut current = seed;
    let mut kept: Vec<usize> = Vec::new();
    let mut level = start;
    let mut candidates_at_level: u128 = sigma.saturating_pow(start as u32);
    let mut peak = current.arena_bytes();
    check_ceiling(config.max_arena_bytes, peak)?;

    while level <= hard_cap {
        let level_started = Instant::now();
        if counts.n(level).is_zero() {
            break;
        }
        let row = bounds.row(level);

        kept.clear();
        let mut frequent_here = 0usize;
        for i in 0..current.len() {
            let sup = current.support(i);
            let admits_exact = row.exact.admits_u128(sup);
            let admits_lhat = row.lhat.admits_u128(sup);
            if (admits_exact || admits_lhat) && !pruner.admits_search(sup) {
                continue;
            }
            if admits_exact && pruner.admits_result(current.pattern_codes(i), sup) {
                frequent.push(FrequentPattern {
                    pattern: Pattern::from_codes(current.pattern_codes(i).to_vec()),
                    support: sup,
                    ratio: sup as f64 / row.n_f64,
                });
                frequent_here += 1;
            }
            if admits_lhat && pruner.admits_frontier(current.pattern_codes(i)) {
                kept.push(i);
            }
        }
        let evaluated = current.len();
        let extended = kept.len();
        let gen_saturated = current.saturated();
        stats.support_saturated |= gen_saturated;
        let finish_level = |stats: &mut MineStats,
                            observer: &mut O,
                            join_elapsed: Duration,
                            elapsed,
                            arena_bytes: usize,
                            jc: JoinCounters| {
            stats.levels.push(LevelStats {
                level,
                candidates: candidates_at_level,
                frequent: frequent_here,
                extended,
                elapsed,
            });
            observer.on_level(&LevelEvent {
                level,
                candidates: candidates_at_level,
                evaluated,
                frequent: frequent_here,
                kept: extended,
                pruned_bound: evaluated - extended,
                pruned_support: evaluated - frequent_here,
                arena_bytes,
                joins: jc.joins,
                probed: jc.probed,
                reallocs: jc.reallocs,
                bytes_moved: jc.bytes_moved,
                join_elapsed,
                elapsed,
                saturated: gen_saturated,
            });
        };

        if kept.is_empty() || level == hard_cap {
            finish_level(
                &mut stats,
                observer,
                Duration::ZERO,
                level_started.elapsed(),
                current.arena_bytes(),
                JoinCounters::default(),
            );
            break;
        }

        // Join fan-out: stolen in chunks when it is worth the handoff.
        let join_started = Instant::now();
        let runs = prefix_runs(&current, &kept);
        // The parents move into the job below; their size is part of
        // the live footprint either way.
        let parent_bytes = current.arena_bytes();
        let mut level_jc = JoinCounters::default();
        let next: PilSet = match &pool {
            Some(pool) if kept.len() >= PARALLEL_THRESHOLD => {
                let chunk = kept
                    .len()
                    .div_ceil(threads * CHUNKS_PER_THREAD)
                    .max(MIN_CHUNK);
                let n_chunks = kept.len().div_ceil(chunk);
                let job = Arc::new(LevelJob {
                    set: std::mem::take(&mut current),
                    kept: std::mem::take(&mut kept),
                    runs,
                    gap,
                    next_level: level + 1,
                    chunk,
                    n_chunks,
                    cursor: AtomicUsize::new(0),
                    hooks,
                    repr: config.pil_repr,
                    kern,
                    pruner: pruner.clone(),
                });
                let (parts, pool_event) = pool.run(job)?;
                observer.on_pool(&pool_event);
                let mut sets = Vec::with_capacity(parts.len());
                for (set, jc) in parts {
                    level_jc.absorb(&jc);
                    sets.push(set);
                }
                PilSet::concat(level + 1, sets)
            }
            _ => {
                let mut out = PilSet::new(level + 1);
                let mut repr = ReprCache::with_kernel(config.pil_repr, kern, Some(gap));
                repr.begin(current.len());
                generate_candidates(
                    &current,
                    &kept,
                    &runs,
                    gap,
                    0,
                    kept.len(),
                    &mut out,
                    &mut repr,
                    kern,
                    &mut level_jc,
                    &pruner,
                );
                out
            }
        };
        let live = parent_bytes + next.arena_bytes();
        peak = peak.max(live);
        check_ceiling(config.max_arena_bytes, live)?;
        finish_level(
            &mut stats,
            observer,
            join_started.elapsed(),
            level_started.elapsed(),
            live,
            level_jc,
        );

        candidates_at_level = next.len() as u128;
        if next.is_empty() {
            break;
        }
        current = next;
        level += 1;
    }

    let mut outcome = MineOutcome { frequent, stats };
    pruner.finish(&mut outcome);
    Ok((outcome, peak))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpp::mpp;
    use crate::trace::MetricsObserver;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    /// `mpp_parallel` with fault injection, for the regression tests.
    fn mpp_parallel_with_hooks(
        seq: &Sequence,
        g: GapRequirement,
        rho: f64,
        n: usize,
        config: MppConfig,
        threads: usize,
        hooks: PoolHooks,
    ) -> Result<MineOutcome, MineError> {
        let (counts, rho_exact) = prepare(seq, g, rho, &config)?;
        let kern = config.kernel.resolve();
        let pils = build_seed(seq, g, config.start_level, kern);
        run_parallel(
            seq,
            &counts,
            &rho_exact,
            n,
            &config,
            kern,
            pils,
            threads,
            hooks,
            &mut NoopObserver,
        )
        .map(|(outcome, _peak)| outcome)
    }

    fn assert_same_outcome(parallel: &MineOutcome, serial: &MineOutcome, label: &str) {
        assert_eq!(parallel.frequent.len(), serial.frequent.len(), "{label}");
        for (a, b) in parallel.frequent.iter().zip(&serial.frequent) {
            assert_eq!(a.pattern, b.pattern, "{label}");
            assert_eq!(a.support, b.support, "{label}");
        }
        assert_eq!(parallel.stats.n_used, serial.stats.n_used, "{label}");
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let seq = uniform(&mut StdRng::seed_from_u64(95), Alphabet::Dna, 400);
        let g = gap(1, 3);
        let rho = 0.0008;
        let serial = mpp(&seq, g, rho, 12, MppConfig::default()).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let parallel = mpp_parallel(&seq, g, rho, 12, MppConfig::default(), threads).unwrap();
            assert_same_outcome(&parallel, &serial, &format!("{threads} threads"));
        }
    }

    #[test]
    fn pool_engages_above_threshold_and_matches_serial() {
        // A protein alphabet seeds 20^3 = 8000 level-3 patterns, so the
        // kept set comfortably exceeds PARALLEL_THRESHOLD and the level
        // actually crosses the worker pool.
        let seq = uniform(&mut StdRng::seed_from_u64(99), Alphabet::Protein, 3_000);
        let g = gap(0, 2);
        let rho = 1e-6;
        let serial = mpp(&seq, g, rho, 6, MppConfig::default()).unwrap();
        let kept_level3 = serial.stats.levels[0].extended;
        assert!(
            kept_level3 >= PARALLEL_THRESHOLD,
            "test must exercise the pool (kept = {kept_level3})"
        );
        for threads in [2usize, 4, 8] {
            let parallel = mpp_parallel(&seq, g, rho, 6, MppConfig::default(), threads).unwrap();
            assert_same_outcome(&parallel, &serial, &format!("{threads} threads"));
        }
    }

    #[test]
    fn worker_panic_surfaces_as_error_not_hang() {
        // Regression: a panicking worker used to leave the merge loop
        // blocked on `recv()` forever. The mine must now abort with
        // `WorkerFailed` in bounded time. `main_no_steal` keeps the
        // main thread out of the cursor race so a worker is guaranteed
        // to claim (and die on) a chunk.
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let seq = uniform(&mut StdRng::seed_from_u64(99), Alphabet::Protein, 3_000);
            let hooks = PoolHooks {
                panic_workers: true,
                main_no_steal: true,
            };
            let result =
                mpp_parallel_with_hooks(&seq, gap(0, 2), 1e-6, 6, MppConfig::default(), 4, hooks);
            let _ = tx.send(result);
        });
        let result = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("mine must error out in bounded time, not deadlock");
        match result {
            Err(MineError::WorkerFailed { message, .. }) => {
                assert!(message.contains("injected"), "unexpected message {message}");
            }
            Ok(_) => panic!("mine must fail when every worker panics"),
            Err(other) => panic!("expected WorkerFailed, got {other:?}"),
        }
    }

    #[test]
    fn pool_events_account_every_chunk() {
        let seq = uniform(&mut StdRng::seed_from_u64(99), Alphabet::Protein, 3_000);
        let mut metrics = MetricsObserver::new();
        let outcome = mpp_parallel_traced(
            &seq,
            gap(0, 2),
            1e-6,
            6,
            MppConfig::default(),
            4,
            &mut metrics,
        )
        .unwrap();
        assert!(
            !metrics.pool.is_empty(),
            "pool must engage above the threshold"
        );
        for p in &metrics.pool {
            assert_eq!(p.workers.len(), 4, "main + 3 pool workers");
            let claimed: usize = p.workers.iter().map(|w| w.chunks).sum();
            assert_eq!(claimed, p.chunks, "level {}", p.level);
        }
        // Observer totals agree with the engine's own stats.
        assert_eq!(metrics.levels.len(), outcome.stats.levels.len());
        for (e, s) in metrics.levels.iter().zip(&outcome.stats.levels) {
            assert_eq!(e.level, s.level);
            assert_eq!(e.candidates, s.candidates);
            assert_eq!(e.frequent, s.frequent);
            assert_eq!(e.kept, s.extended);
        }
        assert!(metrics.seed.is_some());
        assert_eq!(
            metrics.complete.as_ref().unwrap().frequent,
            outcome.frequent.len()
        );
    }

    #[test]
    fn parallel_runs_are_deterministic() {
        let seq = uniform(&mut StdRng::seed_from_u64(96), Alphabet::Dna, 300);
        let g = gap(2, 4);
        let a = mpp_parallel(&seq, g, 0.001, 10, MppConfig::default(), 4).unwrap();
        let b = mpp_parallel(&seq, g, 0.001, 10, MppConfig::default(), 4).unwrap();
        assert_eq!(a.frequent.len(), b.frequent.len());
        for (x, y) in a.frequent.iter().zip(&b.frequent) {
            assert_eq!(x.pattern, y.pattern);
            assert_eq!(x.support, y.support);
        }
    }

    #[test]
    fn level_elapsed_covers_filter_and_join() {
        // Every level must report a non-degenerate duration, and the
        // sum of level times must not exceed the total.
        let seq = uniform(&mut StdRng::seed_from_u64(101), Alphabet::Dna, 500);
        let outcome = mpp_parallel(&seq, gap(1, 3), 0.0008, 12, MppConfig::default(), 4).unwrap();
        let level_sum: std::time::Duration = outcome.stats.levels.iter().map(|l| l.elapsed).sum();
        assert!(level_sum <= outcome.stats.total_elapsed);
        assert!(!outcome.stats.levels.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let seq = uniform(&mut StdRng::seed_from_u64(97), Alphabet::Dna, 100);
        let _ = mpp_parallel(&seq, gap(1, 2), 0.01, 5, MppConfig::default(), 0);
    }

    #[test]
    fn error_paths_match_serial() {
        let seq = uniform(&mut StdRng::seed_from_u64(98), Alphabet::Dna, 100);
        assert!(matches!(
            mpp_parallel(&seq, gap(1, 2), 0.0, 5, MppConfig::default(), 2),
            Err(MineError::InvalidThreshold(_))
        ));
    }
}
