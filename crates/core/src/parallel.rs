//! Parallel candidate evaluation (an engineering extension — the paper
//! is single-threaded).
//!
//! The dominant cost of a level is independent per candidate: join two
//! parent PILs, sum the result. This module runs the level-wise engine
//! with the join fan-out spread over a **persistent worker pool**: the
//! threads are spawned once per mine and live for the whole run.
//! Each level publishes one [`LevelJob`] (the kept generation, its
//! prefix runs, and an atomic chunk cursor); the main thread and every
//! worker *steal* chunks of left-parent indices from the cursor until
//! the level is drained, so a skewed chunk cannot stall the level the
//! way statically partitioned spawns could.
//!
//! Determinism is preserved: chunk results are merged in chunk-index
//! order (chunks partition the sorted kept slice, so concatenation is
//! already globally sorted) and the final outcome is sorted exactly
//! like the serial engine's. Output is byte-identical to
//! [`crate::mpp::mpp`].

use crate::arena::{build_seed, generate_candidates, prefix_runs, PilSet};
use crate::counts::OffsetCounts;
use crate::error::MineError;
use crate::gap::GapRequirement;
use crate::lambda::PruneBound;
use crate::mpp::{prepare, MppConfig};
use crate::pattern::Pattern;
use crate::result::{FrequentPattern, LevelStats, MineOutcome, MineStats};
use perigap_seq::Sequence;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// Below this many join tasks a level runs serially — chunk handoff
/// overhead would dominate.
const PARALLEL_THRESHOLD: usize = 256;

/// Stealing granularity: aim for this many chunks per thread so a slow
/// chunk is absorbed by the others...
const CHUNKS_PER_THREAD: usize = 8;

/// ...but never bother stealing fewer than this many left parents.
const MIN_CHUNK: usize = 32;

/// MPP with the candidate-evaluation step parallelized over `threads`
/// OS threads. Produces byte-identical outcomes to [`crate::mpp::mpp`].
pub fn mpp_parallel(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    n: usize,
    config: MppConfig,
    threads: usize,
) -> Result<MineOutcome, MineError> {
    assert!(threads >= 1, "need at least one thread");
    let started = Instant::now();
    let (counts, rho_exact) = prepare(seq, gap, rho, config)?;
    let pils = build_seed(seq, gap, config.start_level);
    let mut outcome = run_parallel(seq, &counts, &rho_exact, n, config, pils, threads);
    outcome.stats.total_elapsed = started.elapsed();
    Ok(outcome)
}

/// One level's join fan-out, shared with the pool. Workers claim chunk
/// indices from `cursor` until it passes `n_chunks`.
struct LevelJob {
    /// The current (kept-filtered inputs) generation.
    set: PilSet,
    /// Indices into `set` that survived the L̂ bound, ascending.
    kept: Vec<usize>,
    /// Equal-prefix runs over `kept` (see [`crate::arena::prefix_runs`]).
    runs: Vec<(usize, usize)>,
    gap: GapRequirement,
    next_level: usize,
    chunk: usize,
    n_chunks: usize,
    cursor: AtomicUsize,
}

impl LevelJob {
    /// Generate the candidates whose left parent lies in chunk `c`.
    fn process(&self, c: usize) -> PilSet {
        let lo = c * self.chunk;
        let hi = (lo + self.chunk).min(self.kept.len());
        let mut out = PilSet::new(self.next_level);
        generate_candidates(
            &self.set, &self.kept, &self.runs, self.gap, lo, hi, &mut out,
        );
        out
    }
}

/// The persistent pool: `threads − 1` workers (the main thread is the
/// remaining worker) that live for the whole mine and steal chunks of
/// whatever job is current.
struct WorkerPool {
    job_txs: Vec<mpsc::Sender<Arc<LevelJob>>>,
    results_rx: mpsc::Receiver<(usize, PilSet)>,
    /// Kept so `results_rx.recv` can never observe a closed channel
    /// while the pool is alive.
    _results_tx: mpsc::Sender<(usize, PilSet)>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize) -> WorkerPool {
        let (results_tx, results_rx) = mpsc::channel();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = mpsc::channel::<Arc<LevelJob>>();
            let results = results_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    loop {
                        let c = job.cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= job.n_chunks {
                            break;
                        }
                        if results.send((c, job.process(c))).is_err() {
                            return;
                        }
                    }
                }
            }));
            job_txs.push(job_tx);
        }
        WorkerPool {
            job_txs,
            results_rx,
            _results_tx: results_tx,
            handles,
        }
    }

    /// Drain one job across the pool plus the calling thread; merge the
    /// chunk results in index order.
    fn run(&self, job: Arc<LevelJob>) -> PilSet {
        for tx in &self.job_txs {
            // A send only fails if a worker died; the stealing loop
            // below still completes the level without it.
            let _ = tx.send(Arc::clone(&job));
        }
        let mut parts: Vec<Option<PilSet>> = (0..job.n_chunks).map(|_| None).collect();
        let mut mined_here = 0usize;
        loop {
            let c = job.cursor.fetch_add(1, Ordering::Relaxed);
            if c >= job.n_chunks {
                break;
            }
            parts[c] = Some(job.process(c));
            mined_here += 1;
        }
        // Every chunk was claimed exactly once; the rest arrive from
        // the workers that claimed them.
        for _ in mined_here..job.n_chunks {
            let (c, out) = self.results_rx.recv().expect("pool workers alive");
            parts[c] = Some(out);
        }
        PilSet::concat(
            job.next_level,
            parts
                .into_iter()
                .map(|p| p.expect("all chunks accounted for")),
        )
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels lands every worker's `recv` on Err.
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The parallel twin of `run_levelwise`. Kept separate so the serial
/// engine stays dependency-free and obviously faithful to Figure 3.
fn run_parallel(
    seq: &Sequence,
    counts: &OffsetCounts,
    rho: &perigap_math::BigRatio,
    n: usize,
    config: MppConfig,
    seed: PilSet,
    threads: usize,
) -> MineOutcome {
    let gap = counts.gap();
    let sigma = seq.alphabet().size() as u128;
    let start = config.start_level;
    let n = n.clamp(start, counts.l1().max(start));
    let hard_cap = config.max_level.unwrap_or(usize::MAX).min(counts.l2());

    // Spawned once; lives until the mine returns.
    let pool = (threads > 1).then(|| WorkerPool::new(threads - 1));

    let mut stats = MineStats {
        n_used: n,
        ..MineStats::default()
    };
    let mut frequent: Vec<FrequentPattern> = Vec::new();
    let mut current = seed;
    let mut kept: Vec<usize> = Vec::new();
    let mut level = start;
    let mut candidates_at_level: u128 = sigma.saturating_pow(start as u32);

    while level <= hard_cap {
        let level_started = Instant::now();
        if counts.n(level).is_zero() {
            break;
        }
        let exact_bound = PruneBound::exact(counts, rho, level);
        let lhat_bound = if level < n {
            PruneBound::theorem1(counts, rho, n, n - level)
        } else {
            exact_bound.clone()
        };
        let n_l_f64 = counts.n_f64(level);

        kept.clear();
        let mut frequent_here = 0usize;
        for i in 0..current.len() {
            let sup = current.support(i);
            if exact_bound.admits_u128(sup) {
                frequent.push(FrequentPattern {
                    pattern: Pattern::from_codes(current.pattern_codes(i).to_vec()),
                    support: sup,
                    ratio: sup as f64 / n_l_f64,
                });
                frequent_here += 1;
            }
            if lhat_bound.admits_u128(sup) {
                kept.push(i);
            }
        }
        let extended = kept.len();
        let push_stats = |stats: &mut MineStats, elapsed| {
            stats.levels.push(LevelStats {
                level,
                candidates: candidates_at_level,
                frequent: frequent_here,
                extended,
                elapsed,
            });
        };

        if kept.is_empty() || level == hard_cap {
            push_stats(&mut stats, level_started.elapsed());
            break;
        }

        // Join fan-out: stolen in chunks when it is worth the handoff.
        let runs = prefix_runs(&current, &kept);
        let next: PilSet = match &pool {
            Some(pool) if kept.len() >= PARALLEL_THRESHOLD => {
                let chunk = kept
                    .len()
                    .div_ceil(threads * CHUNKS_PER_THREAD)
                    .max(MIN_CHUNK);
                let n_chunks = kept.len().div_ceil(chunk);
                let job = Arc::new(LevelJob {
                    set: std::mem::take(&mut current),
                    kept: std::mem::take(&mut kept),
                    runs,
                    gap,
                    next_level: level + 1,
                    chunk,
                    n_chunks,
                    cursor: AtomicUsize::new(0),
                });
                pool.run(job)
            }
            _ => {
                let mut out = PilSet::new(level + 1);
                generate_candidates(&current, &kept, &runs, gap, 0, kept.len(), &mut out);
                out
            }
        };
        push_stats(&mut stats, level_started.elapsed());

        candidates_at_level = next.len() as u128;
        if next.is_empty() {
            break;
        }
        current = next;
        level += 1;
    }

    let mut outcome = MineOutcome { frequent, stats };
    outcome.sort();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpp::mpp;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    fn assert_same_outcome(parallel: &MineOutcome, serial: &MineOutcome, label: &str) {
        assert_eq!(parallel.frequent.len(), serial.frequent.len(), "{label}");
        for (a, b) in parallel.frequent.iter().zip(&serial.frequent) {
            assert_eq!(a.pattern, b.pattern, "{label}");
            assert_eq!(a.support, b.support, "{label}");
        }
        assert_eq!(parallel.stats.n_used, serial.stats.n_used, "{label}");
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let seq = uniform(&mut StdRng::seed_from_u64(95), Alphabet::Dna, 400);
        let g = gap(1, 3);
        let rho = 0.0008;
        let serial = mpp(&seq, g, rho, 12, MppConfig::default()).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let parallel = mpp_parallel(&seq, g, rho, 12, MppConfig::default(), threads).unwrap();
            assert_same_outcome(&parallel, &serial, &format!("{threads} threads"));
        }
    }

    #[test]
    fn pool_engages_above_threshold_and_matches_serial() {
        // A protein alphabet seeds 20^3 = 8000 level-3 patterns, so the
        // kept set comfortably exceeds PARALLEL_THRESHOLD and the level
        // actually crosses the worker pool.
        let seq = uniform(&mut StdRng::seed_from_u64(99), Alphabet::Protein, 3_000);
        let g = gap(0, 2);
        let rho = 1e-6;
        let serial = mpp(&seq, g, rho, 6, MppConfig::default()).unwrap();
        let kept_level3 = serial.stats.levels[0].extended;
        assert!(
            kept_level3 >= PARALLEL_THRESHOLD,
            "test must exercise the pool (kept = {kept_level3})"
        );
        for threads in [2usize, 4, 8] {
            let parallel = mpp_parallel(&seq, g, rho, 6, MppConfig::default(), threads).unwrap();
            assert_same_outcome(&parallel, &serial, &format!("{threads} threads"));
        }
    }

    #[test]
    fn parallel_runs_are_deterministic() {
        let seq = uniform(&mut StdRng::seed_from_u64(96), Alphabet::Dna, 300);
        let g = gap(2, 4);
        let a = mpp_parallel(&seq, g, 0.001, 10, MppConfig::default(), 4).unwrap();
        let b = mpp_parallel(&seq, g, 0.001, 10, MppConfig::default(), 4).unwrap();
        assert_eq!(a.frequent.len(), b.frequent.len());
        for (x, y) in a.frequent.iter().zip(&b.frequent) {
            assert_eq!(x.pattern, y.pattern);
            assert_eq!(x.support, y.support);
        }
    }

    #[test]
    fn level_elapsed_covers_filter_and_join() {
        // Every level must report a non-degenerate duration, and the
        // sum of level times must not exceed the total.
        let seq = uniform(&mut StdRng::seed_from_u64(101), Alphabet::Dna, 500);
        let outcome = mpp_parallel(&seq, gap(1, 3), 0.0008, 12, MppConfig::default(), 4).unwrap();
        let level_sum: std::time::Duration = outcome.stats.levels.iter().map(|l| l.elapsed).sum();
        assert!(level_sum <= outcome.stats.total_elapsed);
        assert!(!outcome.stats.levels.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let seq = uniform(&mut StdRng::seed_from_u64(97), Alphabet::Dna, 100);
        let _ = mpp_parallel(&seq, gap(1, 2), 0.01, 5, MppConfig::default(), 0);
    }

    #[test]
    fn error_paths_match_serial() {
        let seq = uniform(&mut StdRng::seed_from_u64(98), Alphabet::Dna, 100);
        assert!(matches!(
            mpp_parallel(&seq, gap(1, 2), 0.0, 5, MppConfig::default(), 2),
            Err(MineError::InvalidThreshold(_))
        ));
    }
}
