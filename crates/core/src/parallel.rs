//! Parallel candidate evaluation (an engineering extension — the paper
//! is single-threaded).
//!
//! The dominant cost of a level is independent per candidate: join two
//! parent PILs, sum the result. This module re-runs the level-wise
//! engine with the join/count step fanned out over scoped threads.
//! Determinism is preserved: results are merged in partition order and
//! the final outcome is sorted exactly like the serial engine's.

use crate::counts::OffsetCounts;
use crate::error::MineError;
use crate::gap::GapRequirement;
use crate::lambda::PruneBound;
use crate::mpp::{prepare, MppConfig};
use crate::pattern::Pattern;
use crate::pil::Pil;
use crate::result::{FrequentPattern, LevelStats, MineOutcome, MineStats};
use perigap_seq::Sequence;
use std::collections::HashMap;
use std::time::Instant;

/// Below this many join tasks a level runs serially — thread spawn
/// overhead would dominate.
const PARALLEL_THRESHOLD: usize = 256;

/// MPP with the candidate-evaluation step parallelized over `threads`
/// OS threads. Produces byte-identical outcomes to [`crate::mpp::mpp`].
pub fn mpp_parallel(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    n: usize,
    config: MppConfig,
    threads: usize,
) -> Result<MineOutcome, MineError> {
    assert!(threads >= 1, "need at least one thread");
    let started = Instant::now();
    let (counts, rho_exact) = prepare(seq, gap, rho, config)?;
    let pils = Pil::build_all(seq, gap, config.start_level);
    let mut outcome = run_parallel(seq, &counts, &rho_exact, n, config, pils, threads);
    outcome.stats.total_elapsed = started.elapsed();
    Ok(outcome)
}

/// The parallel twin of `run_levelwise`. Kept separate so the serial
/// engine stays dependency-free and obviously faithful to Figure 3.
fn run_parallel(
    seq: &Sequence,
    counts: &OffsetCounts,
    rho: &perigap_math::BigRatio,
    n: usize,
    config: MppConfig,
    seed_pils: HashMap<Pattern, Pil>,
    threads: usize,
) -> MineOutcome {
    let gap = counts.gap();
    let sigma = seq.alphabet().size() as u128;
    let start = config.start_level;
    let n = n.clamp(start, counts.l1().max(start));
    let hard_cap = config.max_level.unwrap_or(usize::MAX).min(counts.l2());

    let mut stats = MineStats { n_used: n, ..MineStats::default() };
    let mut frequent: Vec<FrequentPattern> = Vec::new();
    let mut current: Vec<(Pattern, Pil)> = seed_pils.into_iter().collect();
    // Deterministic processing order regardless of HashMap iteration.
    current.sort_by(|a, b| a.0.codes().cmp(b.0.codes()));
    let mut level = start;
    let mut candidates_at_level: u128 = sigma.saturating_pow(start as u32);

    while level <= hard_cap {
        let level_started = Instant::now();
        if counts.n(level).is_zero() {
            break;
        }
        let exact_bound = PruneBound::exact(counts, rho, level);
        let lhat_bound = if level < n {
            PruneBound::theorem1(counts, rho, n, n - level)
        } else {
            exact_bound.clone()
        };
        let n_l_f64 = counts.n_f64(level);

        let mut kept: Vec<(Pattern, Pil)> = Vec::new();
        let mut frequent_here = 0usize;
        for (pattern, pil) in current.drain(..) {
            let sup = pil.support();
            if exact_bound.admits_u128(sup) {
                frequent.push(FrequentPattern {
                    pattern: pattern.clone(),
                    support: sup,
                    ratio: sup as f64 / n_l_f64,
                });
                frequent_here += 1;
            }
            if lhat_bound.admits_u128(sup) {
                kept.push((pattern, pil));
            }
        }
        stats.levels.push(LevelStats {
            level,
            candidates: candidates_at_level,
            frequent: frequent_here,
            extended: kept.len(),
            elapsed: level_started.elapsed(),
        });
        if kept.is_empty() || level == hard_cap {
            break;
        }

        // Join phase, fanned out.
        let mut by_prefix: HashMap<&[u8], Vec<usize>> = HashMap::new();
        for (idx, (pattern, _)) in kept.iter().enumerate() {
            by_prefix
                .entry(&pattern.codes()[..pattern.len() - 1])
                .or_default()
                .push(idx);
        }
        let next: Vec<(Pattern, Pil)> = if threads <= 1 || kept.len() < PARALLEL_THRESHOLD {
            join_range(&kept, &by_prefix, gap, 0, kept.len())
        } else {
            let workers = threads.min(kept.len());
            let chunk = kept.len().div_ceil(workers);
            let kept_ref = &kept;
            let by_prefix_ref = &by_prefix;
            let mut partials: Vec<Vec<(Pattern, Pil)>> = Vec::with_capacity(workers);
            crossbeam::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let lo = w * chunk;
                        let hi = ((w + 1) * chunk).min(kept_ref.len());
                        scope.spawn(move |_| join_range(kept_ref, by_prefix_ref, gap, lo, hi))
                    })
                    .collect();
                for h in handles {
                    partials.push(h.join().expect("join worker panicked"));
                }
            })
            .expect("crossbeam scope");
            partials.into_iter().flatten().collect()
        };
        candidates_at_level = next.len() as u128;
        if next.is_empty() {
            break;
        }
        current = next;
        level += 1;
    }

    let mut outcome = MineOutcome { frequent, stats };
    outcome.sort();
    outcome
}

/// Generate the candidates whose *left parent* index lies in
/// `lo..hi` — a disjoint partition of the join work.
fn join_range(
    kept: &[(Pattern, Pil)],
    by_prefix: &HashMap<&[u8], Vec<usize>>,
    gap: GapRequirement,
    lo: usize,
    hi: usize,
) -> Vec<(Pattern, Pil)> {
    let mut out = Vec::new();
    for (p1, pil1) in &kept[lo..hi] {
        if let Some(partners) = by_prefix.get(&p1.codes()[1..]) {
            for &idx in partners {
                let (p2, pil2) = &kept[idx];
                let candidate = p1.join(p2).expect("overlap holds by construction");
                let pil = Pil::join(pil1, pil2, gap);
                out.push((candidate, pil));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpp::mpp;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let seq = uniform(&mut StdRng::seed_from_u64(95), Alphabet::Dna, 400);
        let g = gap(1, 3);
        let rho = 0.0008;
        let serial = mpp(&seq, g, rho, 12, MppConfig::default()).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let parallel =
                mpp_parallel(&seq, g, rho, 12, MppConfig::default(), threads).unwrap();
            assert_eq!(
                parallel.frequent.len(),
                serial.frequent.len(),
                "{threads} threads"
            );
            for (a, b) in parallel.frequent.iter().zip(&serial.frequent) {
                assert_eq!(a.pattern, b.pattern, "{threads} threads");
                assert_eq!(a.support, b.support, "{threads} threads");
            }
            assert_eq!(parallel.stats.n_used, serial.stats.n_used);
        }
    }

    #[test]
    fn parallel_runs_are_deterministic() {
        let seq = uniform(&mut StdRng::seed_from_u64(96), Alphabet::Dna, 300);
        let g = gap(2, 4);
        let a = mpp_parallel(&seq, g, 0.001, 10, MppConfig::default(), 4).unwrap();
        let b = mpp_parallel(&seq, g, 0.001, 10, MppConfig::default(), 4).unwrap();
        assert_eq!(a.frequent.len(), b.frequent.len());
        for (x, y) in a.frequent.iter().zip(&b.frequent) {
            assert_eq!(x.pattern, y.pattern);
            assert_eq!(x.support, y.support);
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let seq = uniform(&mut StdRng::seed_from_u64(97), Alphabet::Dna, 100);
        let _ = mpp_parallel(&seq, gap(1, 2), 0.01, 5, MppConfig::default(), 0);
    }

    #[test]
    fn error_paths_match_serial() {
        let seq = uniform(&mut StdRng::seed_from_u64(98), Alphabet::Dna, 100);
        assert!(matches!(
            mpp_parallel(&seq, gap(1, 2), 0.0, 5, MppConfig::default(), 2),
            Err(MineError::InvalidThreshold(_))
        ));
    }
}
