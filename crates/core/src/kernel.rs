//! Runtime-dispatched compute kernels for the two dominant inner
//! loops: the dense window probe and the level-3 seeding scan.
//!
//! The mining engines spend their plateau levels in
//! [`crate::pil::join_dense_into`] (one clamped prefix-sum probe per
//! prefix offset) and their start-up in the level-3 seeding scan over
//! the sequence. Both have hand-vectorized AVX2 twins here, selected
//! **at runtime**:
//!
//! * [`Kernel`] is the user-facing choice (`--kernel auto|scalar|simd`).
//! * [`Kernel::resolve`] turns it into a [`ResolvedKernel`] by probing
//!   the CPU once (`is_x86_feature_detected!("avx2")`) — `auto` and
//!   `simd` both fall back to the scalar kernels on machines without
//!   AVX2 (or off x86-64 entirely), and the [`FORCE_SCALAR_ENV`]
//!   environment variable forces the fallback everywhere, which is how
//!   CI proves the fallback path on hardware that *does* have the
//!   features.
//!
//! The ISSUE that motivated this layer asked for `std::simd`; that API
//! is unstable on the pinned toolchain, so the vector kernels use the
//! stable `core::arch::x86_64` intrinsics behind the same runtime
//! detection, with the scalar kernels as the portable fallback (see
//! DESIGN.md §12).
//!
//! ## Bit-identity
//!
//! Kernel choice is pure performance: both vector kernels perform the
//! same `u64` arithmetic as their scalar twins on the same operands —
//! the probe reads a windowed-sum array whose entries are exactly the
//! `psum[hi] − psum[lo]` differences the scalar probe computes, and the
//! seeding scan accumulates the same per-`(pattern, start)` event
//! counts with the same saturation rule — so mined patterns, supports,
//! `MineStats`, and every saturation flag are byte-identical across
//! `--kernel` choices. The differential suites in `tests/prop_engine.rs`
//! and the unit tests below hold that line.

use crate::gap::GapRequirement;
use crate::packed::KeyCodec;
use crate::pil::{join_dense_into, DensePil, JoinCounters};
use perigap_seq::Sequence;
use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// Environment variable that forces the scalar kernels for the whole
/// process, regardless of CPU features or `--kernel` choice. Used by CI
/// to prove the runtime fallback engages on feature-rich hardware.
pub const FORCE_SCALAR_ENV: &str = "PERIGAP_FORCE_SCALAR";

/// The user-facing kernel choice (`pgmine mine --kernel …`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Kernel {
    /// Use the vector kernels when the CPU supports them (the default).
    #[default]
    Auto,
    /// Always use the scalar kernels.
    Scalar,
    /// Prefer the vector kernels; falls back to scalar at runtime when
    /// the required features are missing.
    Simd,
}

impl Kernel {
    /// Resolve against the running CPU: the answer every join and seed
    /// call will actually use.
    pub fn resolve(self) -> ResolvedKernel {
        match self {
            Kernel::Scalar => ResolvedKernel::Scalar,
            Kernel::Auto | Kernel::Simd => {
                if simd_available() {
                    ResolvedKernel::Simd
                } else {
                    ResolvedKernel::Scalar
                }
            }
        }
    }
}

impl FromStr for Kernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Kernel, String> {
        match s {
            "auto" => Ok(Kernel::Auto),
            "scalar" => Ok(Kernel::Scalar),
            "simd" => Ok(Kernel::Simd),
            other => Err(format!("unknown kernel {other:?} (auto|scalar|simd)")),
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kernel::Auto => "auto",
            Kernel::Scalar => "scalar",
            Kernel::Simd => "simd",
        })
    }
}

/// What [`Kernel::resolve`] decided for this process: the concrete
/// kernel set every engine call dispatches on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedKernel {
    /// Portable scalar kernels.
    Scalar,
    /// AVX2 vector kernels (x86-64 with AVX2 detected at runtime).
    Simd,
}

impl ResolvedKernel {
    /// Stable lowercase name, for trace events and CI greps.
    pub fn name(self) -> &'static str {
        match self {
            ResolvedKernel::Scalar => "scalar",
            ResolvedKernel::Simd => "simd",
        }
    }
}

impl fmt::Display for ResolvedKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// True when the vector kernels can run: x86-64 with AVX2 detected at
/// runtime and [`FORCE_SCALAR_ENV`] unset. Probed once per process.
pub fn simd_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        if std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| !v.is_empty()) {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// The dense window probe behind a kernel switch: scalar goes to
/// [`join_dense_into`]; SIMD gathers from the suffix's windowed-sum
/// array when it was built for this gap (see
/// [`DensePil::build_windowed`]) and falls back to the scalar probe
/// otherwise. Output and counters are identical either way.
pub fn join_dense_kernel(
    kern: ResolvedKernel,
    a: &[(u32, u64)],
    b: &DensePil,
    gap: GapRequirement,
    out: &mut Vec<(u32, u64)>,
    counters: &mut JoinCounters,
) {
    #[cfg(target_arch = "x86_64")]
    if kern == ResolvedKernel::Simd {
        let width = (gap.max_step() - gap.min_step() + 1) as u64;
        if b.wsum().is_some_and(|(w, _)| w == width) && simd_available() {
            // SAFETY: `simd_available` verified AVX2 at runtime.
            unsafe { join_dense_avx2(a, b, gap, out, counters) };
            return;
        }
    }
    let _ = kern;
    join_dense_into(a, b, gap, out, counters);
}

/// AVX2 dense probe: interior offsets collapse to **one** gathered load
/// from the windowed-sum array (`w = wsum[x + min_step − base]`),
/// replacing the scalar kernel's two clamped prefix-sum loads; only the
/// few offsets whose window is clipped at the suffix's left edge take
/// the two-sided scalar form. Bit-identical to [`join_dense_into`]:
/// `wsum[i]` is precomputed as exactly `psum[min(i+W, span)] − psum[i]`,
/// the value the scalar clamp arithmetic produces for every interior
/// probe.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn join_dense_avx2(
    a: &[(u32, u64)],
    b: &DensePil,
    gap: GapRequirement,
    out: &mut Vec<(u32, u64)>,
    counters: &mut JoinCounters,
) {
    use std::arch::x86_64::*;
    counters.joins += 1;
    let base = b.base();
    let end = base + b.span() as u64;
    // Clip to the occupied range [base, end - 1]; `end` itself is the
    // exclusive psum bound (mirrors `join_dense_into`).
    let (from, to) = crate::pil::overlap_range(a, base, end - 1, gap);
    let a = &a[from..to];
    if a.is_empty() {
        return;
    }
    counters.probed += a.len() as u64;
    let min_step = gap.min_step() as u64;
    let max_step = gap.max_step() as u64;
    let psum = b.psum();
    let (_, wsum) = b.wsum().expect("caller checked the windowed sums");
    let start = out.len();
    let cap_before = out.capacity();
    out.resize(start + a.len(), (0, 0));
    let dst = &mut out[start..];
    let mut k = 0usize;
    // Scalar prologue: offsets whose window is clipped at the left edge
    // (x + min_step < base) need the two-sided clamped probe. At most
    // `width` offsets qualify.
    let mut i = 0usize;
    while i < a.len() && (a[i].0 as u64) + min_step < base {
        let x = a[i].0;
        let lo = (x as u64 + min_step).clamp(base, end) - base;
        let hi = (x as u64 + max_step + 1).clamp(base, end) - base;
        let w = psum[hi as usize] - psum[lo as usize];
        dst[k] = (x, w);
        k += (w > 0) as usize;
        i += 1;
    }
    // Interior: overlap clipping guarantees x + min_step ∈ [base, end],
    // so the probe index x + min_step − base is in bounds and the
    // window sum is one load.
    let body = &a[i..];
    let wptr = wsum.as_ptr() as *const i64;
    let mut lanes = [0u64; 4];
    let mut chunks = body.chunks_exact(4);
    for chunk in chunks.by_ref() {
        let idx = _mm256_set_epi64x(
            (chunk[3].0 as u64 + min_step - base) as i64,
            (chunk[2].0 as u64 + min_step - base) as i64,
            (chunk[1].0 as u64 + min_step - base) as i64,
            (chunk[0].0 as u64 + min_step - base) as i64,
        );
        let w = _mm256_i64gather_epi64::<8>(wptr, idx);
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, w);
        for (&(x, _), &w) in chunk.iter().zip(lanes.iter()) {
            dst[k] = (x, w);
            k += (w > 0) as usize;
        }
    }
    for &(x, _) in chunks.remainder() {
        let w = wsum[(x as u64 + min_step - base) as usize];
        dst[k] = (x, w);
        k += (w > 0) as usize;
    }
    out.truncate(start + k);
    counters.note_growth(out, cap_before);
}

/// Vectorized level-3 seeding: the recursive per-start key scan
/// flattened into three explicit loops, with the innermost gap window —
/// a **contiguous** byte range of the sequence — widened eight symbols
/// at a time into packed keys by AVX2, and the per-event arena bumps
/// replaced by a stamp-cleared key histogram flushed once per start.
///
/// Returns `None` when the vector path cannot run (off x86-64, AVX2
/// missing, or the key table would be too large); the caller then uses
/// the recursive scalar scan. On `Some`, the slot table is
/// entry-identical to the scalar scan's: one `(start, count)` entry per
/// `(pattern, start)` pair, starts ascending, with the same saturation
/// rule (an event on a count already at `u64::MAX` is lost and flags
/// the generation).
/// Per-key slot table produced by level-3 seeding: one `(start, count)`
/// entry per `(pattern, start)` pair, indexed by packed key.
pub(crate) type SeedSlots = Vec<Vec<(u32, u64)>>;

pub(crate) fn build_seed_l3_simd(
    seq: &Sequence,
    gap: GapRequirement,
    codec: KeyCodec,
    max_key_bits: u32,
) -> Option<(SeedSlots, bool)> {
    if !simd_available() || codec.key_bits(3) > max_key_bits {
        return None;
    }
    #[cfg(target_arch = "x86_64")]
    {
        let mut slots: Vec<Vec<(u32, u64)>> = vec![Vec::new(); 1usize << codec.key_bits(3)];
        // SAFETY: `simd_available` verified AVX2 at runtime.
        let saturated = unsafe { seed_scan_l3_avx2(seq.codes(), gap, codec.bits(), &mut slots) };
        Some((slots, saturated))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        None
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn seed_scan_l3_avx2(
    codes: &[u8],
    gap: GapRequirement,
    bits: u32,
    slots: &mut [Vec<(u32, u64)>],
) -> bool {
    use std::arch::x86_64::*;
    let len = codes.len();
    let min_step = gap.min_step();
    let max_step = gap.max_step();
    // Lazily-cleared histogram: `stamp[key] == start` marks `hist[key]`
    // live for the current start, so no per-start clearing of the
    // (up to 2^20-slot) table is ever needed.
    let mut stamp = vec![0u32; slots.len()];
    let mut hist = vec![0u64; slots.len()];
    let mut touched: Vec<u32> = Vec::new();
    let mut saturated = false;
    let mut keybuf = [0u32; 8];
    for start in 1..=len {
        let cur = start as u32;
        touched.clear();
        let k0 = (codes[start - 1] as u32) << (2 * bits);
        for step1 in min_step..=max_step {
            let p2 = start + step1;
            if p2 > len {
                break;
            }
            let k1 = k0 | ((codes[p2 - 1] as u32) << bits);
            let lo3 = p2 + min_step;
            if lo3 > len {
                // Larger steps only overshoot further.
                break;
            }
            let hi3 = (p2 + max_step).min(len);
            let window = &codes[lo3 - 1..hi3];
            let broadcast = _mm256_set1_epi32(k1 as i32);
            let mut chunks = window.chunks_exact(8);
            for chunk in chunks.by_ref() {
                let bytes = _mm_loadl_epi64(chunk.as_ptr() as *const __m128i);
                let keys = _mm256_or_si256(_mm256_cvtepu8_epi32(bytes), broadcast);
                _mm256_storeu_si256(keybuf.as_mut_ptr() as *mut __m256i, keys);
                for &key in &keybuf {
                    bump_hist(
                        key as usize,
                        cur,
                        &mut stamp,
                        &mut hist,
                        &mut touched,
                        &mut saturated,
                    );
                }
            }
            for &c in chunks.remainder() {
                bump_hist(
                    (k1 | c as u32) as usize,
                    cur,
                    &mut stamp,
                    &mut hist,
                    &mut touched,
                    &mut saturated,
                );
            }
        }
        // One arena push per (pattern, start) pair — the scalar scan's
        // `bump` produces exactly this entry, only via `last_mut`
        // checks on every event.
        for &key in &touched {
            slots[key as usize].push((cur, hist[key as usize]));
        }
    }
    saturated
}

/// Benchmark hook: run the full level-3 seeding (scalar table walk or
/// the AVX2 scan, per `kern`) and return `(patterns, pil_entries)` of
/// the seeded generation. Exists so the harness can time the seeding
/// kernels in isolation without making the arena types public.
pub fn seed_level3(seq: &Sequence, gap: GapRequirement, kern: ResolvedKernel) -> (usize, usize) {
    let set = crate::arena::build_seed(seq, gap, 3, kern);
    (set.len(), set.entry_count())
}

/// One seeding event: first touch per start initializes the slot,
/// later touches accumulate with the scalar `bump`'s saturation rule.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn bump_hist(
    key: usize,
    cur: u32,
    stamp: &mut [u32],
    hist: &mut [u64],
    touched: &mut Vec<u32>,
    saturated: &mut bool,
) {
    if stamp[key] != cur {
        stamp[key] = cur;
        hist[key] = 1;
        touched.push(key as u32);
    } else {
        *saturated |= hist[key] == u64::MAX;
        hist[key] = hist[key].saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    #[test]
    fn kernel_parses_displays_and_defaults() {
        assert_eq!(Kernel::default(), Kernel::Auto);
        for (text, kern) in [
            ("auto", Kernel::Auto),
            ("scalar", Kernel::Scalar),
            ("simd", Kernel::Simd),
        ] {
            assert_eq!(text.parse::<Kernel>().unwrap(), kern);
            assert_eq!(kern.to_string(), text);
        }
        assert!("avx512".parse::<Kernel>().is_err());
    }

    #[test]
    fn resolve_respects_scalar_and_availability() {
        assert_eq!(Kernel::Scalar.resolve(), ResolvedKernel::Scalar);
        let expect = if simd_available() {
            ResolvedKernel::Simd
        } else {
            ResolvedKernel::Scalar
        };
        assert_eq!(Kernel::Auto.resolve(), expect);
        assert_eq!(Kernel::Simd.resolve(), expect);
        assert_eq!(expect.name(), expect.to_string());
    }

    /// A suffix PIL with `n` entries spread over a stride so windows
    /// cover zero, one, and several entries.
    fn suffix_entries(n: usize, stride: u32, start: u32) -> Vec<(u32, u64)> {
        (0..n as u32)
            .map(|i| (start + i * stride, (i as u64 % 7) + 1))
            .collect()
    }

    /// The probe must agree with the scalar kernel entry-for-entry at
    /// every lane-boundary left length (len % 4 and % 64 edges), with
    /// and without a usable windowed-sum array, including appending
    /// after existing content.
    #[test]
    fn dense_probe_is_kernel_invariant() {
        let g = gap(1, 4);
        let width = (g.max_step() - g.min_step() + 1) as u64;
        for (bn, stride, bstart) in [(40usize, 2u32, 6u32), (300, 1, 1), (9, 11, 30)] {
            let b_entries = suffix_entries(bn, stride, bstart);
            let windowed = DensePil::build_windowed(&b_entries, g).unwrap();
            assert_eq!(windowed.wsum().unwrap().0, width);
            let plain = DensePil::build(&b_entries).unwrap();
            for an in [0usize, 1, 3, 4, 5, 63, 64, 65, 127, 128] {
                // Left offsets straddle the suffix's left edge so the
                // scalar prologue and the gathered interior both run.
                let a: Vec<(u32, u64)> = (0..an as u32).map(|i| (1 + i, 1)).collect();
                let mut scalar = vec![(999u32, 7u64)];
                let mut simd = scalar.clone();
                join_dense_into(&a, &windowed, g, &mut scalar, &mut JoinCounters::default());
                join_dense_kernel(
                    ResolvedKernel::Simd,
                    &a,
                    &windowed,
                    g,
                    &mut simd,
                    &mut JoinCounters::default(),
                );
                assert_eq!(scalar, simd, "windowed, |a| = {an}, |b| = {bn}");
                // Without matching windowed sums the kernel must fall
                // back to the scalar probe (still identical output).
                let mut fallback = vec![(999u32, 7u64)];
                join_dense_kernel(
                    ResolvedKernel::Simd,
                    &a,
                    &plain,
                    g,
                    &mut fallback,
                    &mut JoinCounters::default(),
                );
                assert_eq!(scalar, fallback, "fallback, |a| = {an}, |b| = {bn}");
            }
        }
    }

    /// A windowed build for one gap must not be gathered under another:
    /// the width check routes the join to the scalar probe.
    #[test]
    fn mismatched_window_width_falls_back() {
        let b_entries = suffix_entries(50, 2, 5);
        let built_for = gap(0, 3);
        let probed_with = gap(1, 9);
        let windowed = DensePil::build_windowed(&b_entries, built_for).unwrap();
        let a: Vec<(u32, u64)> = (0..70u32).map(|i| (1 + i, 2)).collect();
        let mut expect = Vec::new();
        join_dense_into(
            &a,
            &windowed,
            probed_with,
            &mut expect,
            &mut JoinCounters::default(),
        );
        let mut got = Vec::new();
        join_dense_kernel(
            ResolvedKernel::Simd,
            &a,
            &windowed,
            probed_with,
            &mut got,
            &mut JoinCounters::default(),
        );
        assert_eq!(expect, got);
    }

    #[test]
    fn seed_level3_counts_are_kernel_invariant() {
        let seq = Sequence::dna(&"ACGGTTACAGTCAGCA".repeat(25)).unwrap();
        for g in [gap(0, 1), gap(0, 9), gap(2, 5)] {
            let scalar = seed_level3(&seq, g, ResolvedKernel::Scalar);
            let simd = seed_level3(&seq, g, ResolvedKernel::Simd);
            assert_eq!(scalar, simd, "gap {g}");
            assert!(scalar.0 > 0 && scalar.1 >= scalar.0);
        }
    }
}
