//! # perigap-core
//!
//! Rust reproduction of **"Mining Periodic Patterns with Gap Requirement
//! from Sequences"** (Minghua Zhang, Ben Kao, David W. Cheung, Kevin Y.
//! Yip — SIGMOD 2005).
//!
//! Given a subject sequence `S`, a gap requirement `[N, M]` and a
//! support threshold `ρs`, the miner finds every pattern
//! `a1 g(N,M) a2 g(N,M) … al` whose *support ratio* — matching offset
//! sequences divided by all `N_l` length-`l` offset sequences — reaches
//! `ρs`.
//!
//! ```
//! use perigap_core::{GapRequirement, mpp::{mpp, MppConfig}};
//! use perigap_seq::Sequence;
//!
//! let seq = Sequence::dna(&"ACGTT".repeat(40)).unwrap();
//! let gap = GapRequirement::new(1, 3).unwrap();
//! let outcome = mpp(&seq, gap, 0.01, 10, MppConfig::default()).unwrap();
//! for f in &outcome.frequent {
//!     println!("{}  sup={} ratio={:.4}",
//!              f.pattern.display(seq.alphabet()), f.support, f.ratio);
//! }
//! ```
//!
//! ## Map of the paper
//!
//! | Paper | Module |
//! |---|---|
//! | §3 problem definition | [`gap`], [`pattern`], [`naive`] |
//! | §4.1 + Appendix (`N_l`, Theorems 3–4) | [`counts`] |
//! | §4.2 Theorems 1–2, λ and λ′ | [`lambda`], [`em`] |
//! | §5.1 MPP + PIL | [`pil`], [`mpp`] |
//! | §5.2 MPPm | [`mppm`] |
//! | §6 enumeration baseline, adaptive-n | [`enumerate`], [`adaptive`] |
//! | §2 related-work models (extensions) | [`windowed`], [`multiseq`] |

#![warn(missing_docs)]

pub mod adaptive;
pub(crate) mod arena;
pub mod asynchronous;
pub mod corpus;
pub mod counts;
pub mod dfs;
pub mod em;
pub mod enumerate;
pub mod error;
pub mod gap;
pub mod kernel;
pub mod lambda;
pub mod mpp;
pub mod mppm;
pub mod multiseq;
pub mod naive;
pub mod packed;
pub mod parallel;
pub mod pattern;
pub mod pil;
pub mod profile;
pub mod prune;
pub mod reference;
pub mod result;
pub mod rigid;
pub mod spill;
pub mod trace;
pub mod verify;
pub mod windowed;

pub use adaptive::{repr_stats, PilRepr, ReprPolicy, ReprStats};
pub use corpus::{
    mine_corpus, CheckpointConfig, Corpus, CorpusMineConfig, CorpusOutcome, ShardEngine,
};
pub use counts::OffsetCounts;
pub use error::MineError;
pub use gap::GapRequirement;
pub use kernel::{Kernel, ResolvedKernel};
pub use pattern::Pattern;
pub use pil::{DensePil, JoinCounters, Pil};
pub use prune::{select_top_k, PruneMode, TargetSpec};
pub use result::{CorpusStats, FrequentPattern, MineOutcome, MineStats};
