//! Periodic patterns `a1 g(N,M) a2 g(N,M) … al`.
//!
//! Because the mining problem fixes one gap requirement for the whole
//! run, a pattern is identified by its character codes alone (the
//! paper's shorthand: "the pattern written as ATC refers to
//! Ag(8,10)Tg(8,10)C"). The pattern's *length* is its number of
//! characters — wild-cards never count.

use crate::error::MineError;
use crate::gap::GapRequirement;
use perigap_seq::Alphabet;

/// A pattern in shorthand form: the character codes `a1 … al`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    codes: Vec<u8>,
}

impl Pattern {
    /// Build from raw codes.
    pub fn from_codes(codes: Vec<u8>) -> Pattern {
        Pattern { codes }
    }

    /// Parse shorthand text like `"ATC"` against an alphabet.
    pub fn parse(text: &str, alphabet: &Alphabet) -> Result<Pattern, MineError> {
        let codes = text
            .bytes()
            .map(|ch| {
                alphabet.code(ch).ok_or_else(|| {
                    MineError::PatternParse(format!("unknown character {:?}", ch as char))
                })
            })
            .collect::<Result<Vec<u8>, _>>()?;
        Ok(Pattern { codes })
    }

    /// Pattern length `|P|` — the number of characters (wild-cards do
    /// not count; `|A..T.C| = 3`).
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True iff the pattern has no characters.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The character codes.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// 1-based character access matching the paper's `P[i]` notation.
    ///
    /// # Panics
    /// Panics if `i` is 0 or exceeds the pattern length.
    pub fn at1(&self, i: usize) -> u8 {
        assert!(
            i >= 1 && i <= self.codes.len(),
            "P[{i}] out of range 1..={}",
            self.codes.len()
        );
        self.codes[i - 1]
    }

    /// `prefix(P)`: the first `|P| − 1` characters.
    ///
    /// # Panics
    /// Panics if `|P| < 2` (the paper only defines prefixes for
    /// length ≥ 2).
    pub fn prefix(&self) -> Pattern {
        assert!(self.codes.len() >= 2, "prefix requires |P| ≥ 2");
        Pattern {
            codes: self.codes[..self.codes.len() - 1].to_vec(),
        }
    }

    /// `suffix(P)`: the last `|P| − 1` characters.
    ///
    /// # Panics
    /// Panics if `|P| < 2`.
    pub fn suffix(&self) -> Pattern {
        assert!(self.codes.len() >= 2, "suffix requires |P| ≥ 2");
        Pattern {
            codes: self.codes[1..].to_vec(),
        }
    }

    /// The sub-pattern `P[i] … P[i+len−1]` (1-based `i`, as in
    /// Theorem 1).
    ///
    /// # Panics
    /// Panics if the range exceeds the pattern.
    pub fn sub_pattern(&self, i: usize, len: usize) -> Pattern {
        assert!(
            i >= 1 && i - 1 + len <= self.codes.len(),
            "sub-pattern out of range"
        );
        Pattern {
            codes: self.codes[i - 1..i - 1 + len].to_vec(),
        }
    }

    /// Whether `self` equals `other`'s first `|self|` characters.
    pub fn is_prefix_of(&self, other: &Pattern) -> bool {
        other.codes.len() >= self.codes.len() && other.codes[..self.codes.len()] == self.codes[..]
    }

    /// The join used by candidate generation: if `suffix(P1) =
    /// prefix(P2)`, the candidate is `P1[1] · P2`.
    ///
    /// Returns `None` when the overlap condition fails.
    pub fn join(&self, other: &Pattern) -> Option<Pattern> {
        if self.codes.len() != other.codes.len() || self.codes.is_empty() {
            return None;
        }
        if self.codes[1..] != other.codes[..other.codes.len() - 1] {
            return None;
        }
        let mut codes = Vec::with_capacity(self.codes.len() + 1);
        codes.push(self.codes[0]);
        codes.extend_from_slice(&other.codes);
        Some(Pattern { codes })
    }

    /// Shorthand rendering, e.g. `"ATC"`.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        self.codes
            .iter()
            .map(|&c| alphabet.letter(c) as char)
            .collect()
    }

    /// Full rendering with explicit gaps, e.g. `"Ag(8,10)Tg(8,10)C"`.
    pub fn display_with_gaps(&self, alphabet: &Alphabet, gap: GapRequirement) -> String {
        let mut out = String::new();
        for (i, &c) in self.codes.iter().enumerate() {
            if i > 0 {
                out.push_str(&format!("g({},{})", gap.min(), gap.max()));
            }
            out.push(alphabet.letter(c) as char);
        }
        out
    }

    /// True iff the pattern repeats a unit whose length divides `|P|`'s
    /// prefix structure — e.g. `ATATATA` repeats `AT`, `GTAGTAGT`
    /// repeats `GTA`. Patterns like these are the "periodic patterns
    /// that repeat themselves" the case study highlights.
    pub fn is_self_repeating(&self) -> bool {
        let n = self.codes.len();
        if n < 2 {
            return false;
        }
        // The smallest repeating unit has length n − b, where b is the
        // longest proper border; use the classic failure function.
        (1..n).any(|unit| {
            unit < n && (unit..n).all(|i| self.codes[i] == self.codes[i - unit]) && unit <= n / 2
        })
    }
}

impl std::fmt::Debug for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pattern({:?})", self.codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(text: &str) -> Pattern {
        Pattern::parse(text, &Alphabet::Dna).unwrap()
    }

    #[test]
    fn parse_and_display() {
        let p = pat("ATC");
        assert_eq!(p.len(), 3);
        assert_eq!(p.display(&Alphabet::Dna), "ATC");
        assert!(Pattern::parse("AXC", &Alphabet::Dna).is_err());
    }

    #[test]
    fn one_based_access_matches_paper() {
        // Paper: if P = A..T.C then P[1] = A, P[2] = T.
        let p = pat("ATC");
        assert_eq!(p.at1(1), 0); // A
        assert_eq!(p.at1(2), 3); // T
        assert_eq!(p.at1(3), 1); // C
    }

    #[test]
    fn prefix_suffix_match_paper() {
        // Paper: prefix(A..T.C) = A..T, suffix(A..T.C) = T.C.
        let p = pat("ATC");
        assert_eq!(p.prefix(), pat("AT"));
        assert_eq!(p.suffix(), pat("TC"));
    }

    #[test]
    #[should_panic(expected = "requires")]
    fn prefix_of_singleton_panics() {
        let _ = pat("A").prefix();
    }

    #[test]
    fn sub_pattern_ranges() {
        let p = pat("ACGTA");
        assert_eq!(p.sub_pattern(1, 5), p);
        assert_eq!(p.sub_pattern(2, 3), pat("CGT"));
        assert_eq!(p.sub_pattern(5, 1), pat("A"));
    }

    #[test]
    fn join_requires_overlap() {
        // Paper Section 5.1: ACG and CGT generate ACGT.
        assert_eq!(pat("ACG").join(&pat("CGT")), Some(pat("ACGT")));
        assert_eq!(pat("ACG").join(&pat("GTT")), None);
        assert_eq!(pat("ACG").join(&pat("AC")), None);
        // Self-join of a run works: AAA + AAA = AAAA.
        assert_eq!(pat("AAA").join(&pat("AAA")), Some(pat("AAAA")));
    }

    #[test]
    fn gap_display() {
        let gap = GapRequirement::new(8, 10).unwrap();
        assert_eq!(
            pat("ATC").display_with_gaps(&Alphabet::Dna, gap),
            "Ag(8,10)Tg(8,10)C"
        );
        assert_eq!(pat("A").display_with_gaps(&Alphabet::Dna, gap), "A");
    }

    #[test]
    fn self_repeating_detection() {
        // Case-study examples.
        assert!(pat("ATATATATATA").is_self_repeating());
        assert!(pat("GTAGTAGTAGT").is_self_repeating());
        assert!(pat("GGGGGGGG").is_self_repeating());
        assert!(!pat("ACGTACGA").is_self_repeating());
        assert!(!pat("A").is_self_repeating());
        assert!(pat("AA").is_self_repeating());
        assert!(!pat("AT").is_self_repeating());
    }

    #[test]
    fn is_prefix_of() {
        assert!(pat("AC").is_prefix_of(&pat("ACGT")));
        assert!(!pat("CG").is_prefix_of(&pat("ACGT")));
        assert!(pat("").is_prefix_of(&pat("A")));
    }
}
