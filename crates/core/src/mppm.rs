//! The MPPm algorithm (Section 5.2): MPP with the longest-pattern
//! estimate `n` derived automatically from the `e_m` statistic.
//!
//! After counting the supports of all start-level (length-3) patterns,
//! MPPm checks for every `k` up to `l1` whether *any* length-3 pattern
//! clears the Theorem 2 bound `λ′(k, k−3) · ρs · N_3`. If none does, no
//! length-`k` frequent pattern can exist; `n` is the largest `k` that
//! survives. From there the run is exactly MPP — on either the
//! breadth-first engine ([`mppm`]) or the hybrid BFS→DFS engine
//! ([`mppm_dfs`], see [`crate::dfs`]).

use crate::arena::{build_seed, PilSet};
use crate::counts::OffsetCounts;
use crate::em::compute_em;
use crate::error::MineError;
use crate::gap::GapRequirement;
use crate::kernel::ResolvedKernel;
use crate::lambda::PruneBound;
use crate::mpp::{prepare, run_levelwise, MppConfig};
use crate::parallel::PoolHooks;
use crate::result::{MineOutcome, MineStats};
use crate::trace::{AbortEvent, CompleteEvent, EmEvent, MineObserver, NoopObserver, SeedEvent};
use perigap_math::BigRatio;
use perigap_seq::Sequence;
use std::time::Instant;

/// Run MPPm with window parameter `m` (the paper uses `m = 8` or
/// `m = 10`).
///
/// ```
/// use perigap_core::mpp::MppConfig;
/// use perigap_core::mppm::mppm;
/// use perigap_core::GapRequirement;
/// use perigap_seq::Sequence;
///
/// let seq = Sequence::dna(&"ACGTT".repeat(50))?;
/// let gap = GapRequirement::new(1, 3)?;
/// let outcome = mppm(&seq, gap, 0.005, 4, MppConfig::default())?;
/// assert!(outcome.stats.em.is_some(), "MPPm computed e_m");
/// for f in &outcome.frequent {
///     assert!(f.ratio >= 0.005 * (1.0 - 1e-12));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn mppm(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    m: usize,
    config: MppConfig,
) -> Result<MineOutcome, MineError> {
    mppm_traced(seq, gap, rho, m, config, &mut NoopObserver)
}

/// Everything the MPPm front half (validation, `e_m`, seed supports,
/// `n` estimation) hands to whichever engine runs the level-wise back
/// half.
struct MppmPrelude {
    counts: OffsetCounts,
    rho_exact: BigRatio,
    n: usize,
    kern: ResolvedKernel,
    pils: PilSet,
    stats_seed: MineStats,
}

/// The shared MPPm front half. Emits the [`EmEvent`] and [`SeedEvent`]
/// so both engines produce identical trace preludes.
fn mppm_prelude<O: MineObserver>(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    m: usize,
    config: &MppConfig,
    observer: &mut O,
) -> Result<MppmPrelude, MineError> {
    if m == 0 {
        return Err(MineError::InvalidM(0));
    }
    let (counts, rho_exact) = prepare(seq, gap, rho, config)?;

    // Phase 1: the e_m statistic.
    let em_started = Instant::now();
    // e_m = 0 means no length-(m+1) window fits; clamping to 1 only
    // loosens λ′ and is therefore sound.
    let em = compute_em(seq, gap, m).max(1);
    let em_elapsed = em_started.elapsed();
    observer.on_em(&EmEvent {
        m,
        em,
        elapsed: em_elapsed,
    });

    // Phase 2: seed-level supports.
    let start = config.start_level;
    let kern = config.kernel.resolve();
    let seed_started = Instant::now();
    let pils = build_seed(seq, gap, start, kern);
    observer.on_seed(&SeedEvent {
        level: start,
        patterns: pils.len(),
        pil_entries: pils.entry_count(),
        arena_bytes: pils.arena_bytes(),
        elapsed: seed_started.elapsed(),
    });
    let max_sup = pils.max_support();

    // Phase 3: estimate n = max { k : some seed pattern clears
    // λ′(k, k−3)·ρs·N_3 }. Only the best-supported seed pattern matters,
    // since the bound is a fixed threshold per k.
    let l1 = counts.l1();
    let mut n = start;
    for k in (start + 1)..=l1.max(start) {
        let bound = PruneBound::theorem2(&counts, &rho_exact, k, k - start, m, em);
        if bound.admits_u128(max_sup) {
            n = k;
        }
        // Note: the bound is not monotone in k in general, so we keep
        // scanning to l1 rather than breaking at the first failure —
        // "the value of n is taken as the largest k such that length-k
        // frequent patterns may exist".
    }

    let stats_seed = MineStats {
        em: Some(em),
        em_elapsed,
        ..MineStats::default()
    };
    Ok(MppmPrelude {
        counts,
        rho_exact,
        n,
        kern,
        pils,
        stats_seed,
    })
}

/// [`mppm`] with a [`MineObserver`] attached; see
/// [`crate::mpp::mpp_traced`] for the zero-cost argument.
pub fn mppm_traced<O: MineObserver>(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    m: usize,
    config: MppConfig,
    observer: &mut O,
) -> Result<MineOutcome, MineError> {
    let started = Instant::now();
    let repr_before = crate::adaptive::repr_stats();
    let p = mppm_prelude(seq, gap, rho, m, &config, observer)?;
    let kern = p.kern;
    let run = run_levelwise(
        seq,
        &p.counts,
        &p.rho_exact,
        p.n,
        &config,
        kern,
        p.pils,
        Some(p.stats_seed),
        observer,
    );
    finish(run, started, repr_before, &config, kern, observer)
}

/// [`mppm`] on the hybrid BFS→DFS engine: the same `n` estimate and
/// seed, mined by [`crate::dfs`] with `threads` workers.
pub fn mppm_dfs(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    m: usize,
    config: MppConfig,
    threads: usize,
) -> Result<MineOutcome, MineError> {
    mppm_dfs_traced(seq, gap, rho, m, config, threads, &mut NoopObserver)
}

/// [`mppm_dfs`] with a [`MineObserver`] attached.
pub fn mppm_dfs_traced<O: MineObserver>(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    m: usize,
    config: MppConfig,
    threads: usize,
    observer: &mut O,
) -> Result<MineOutcome, MineError> {
    let started = Instant::now();
    let repr_before = crate::adaptive::repr_stats();
    let p = mppm_prelude(seq, gap, rho, m, &config, observer)?;
    let kern = p.kern;
    let run = crate::dfs::run_hybrid(
        seq,
        &p.counts,
        &p.rho_exact,
        p.n,
        &config,
        kern,
        p.pils,
        threads,
        PoolHooks::default(),
        Some(p.stats_seed),
        observer,
    );
    finish(run, started, repr_before, &config, kern, observer)
}

/// Shared MPPm tail: stamp the total wall time and emit the terminal
/// trace events — the representation histogram delta since
/// `repr_before` followed by [`CompleteEvent`] with the peak, or
/// [`AbortEvent`] on error.
fn finish<O: MineObserver>(
    run: Result<(MineOutcome, usize), MineError>,
    started: Instant,
    repr_before: crate::adaptive::ReprStats,
    config: &MppConfig,
    kern: ResolvedKernel,
    observer: &mut O,
) -> Result<MineOutcome, MineError> {
    let (mut outcome, peak) = match run {
        Ok(done) => done,
        Err(e) => {
            observer.on_abort(&AbortEvent {
                message: e.to_string(),
            });
            return Err(e);
        }
    };
    outcome.stats.total_elapsed = started.elapsed();
    observer.on_repr(
        &crate::adaptive::repr_stats()
            .since(repr_before)
            .to_event(config.pil_repr.mode),
    );
    observer.on_complete(
        &CompleteEvent::from_outcome(&outcome)
            .with_peak_arena_bytes(peak)
            .with_kernel(kern),
    );
    Ok(outcome)
}

/// The `n` MPPm would estimate, without running the mining phase —
/// used by the harness to report the paper's "MPPm estimates n = 22"
/// style numbers.
pub fn estimate_n(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    m: usize,
    config: MppConfig,
) -> Result<(usize, u64), MineError> {
    let p = mppm_prelude(seq, gap, rho, m, &config, &mut NoopObserver)?;
    let em = p.stats_seed.em.expect("prelude always records e_m");
    Ok((p.n, em))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpp::mpp;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    #[test]
    fn finds_same_patterns_as_mpp_worst_case() {
        let s = uniform(&mut StdRng::seed_from_u64(21), Alphabet::Dna, 150);
        let g = gap(2, 4);
        let rho = 0.0015;
        let worst = mpp(&s, g, rho, g.l1(150), MppConfig::default()).unwrap();
        let auto = mppm(&s, g, rho, 4, MppConfig::default()).unwrap();
        assert_eq!(worst.frequent.len(), auto.frequent.len());
        for f in &worst.frequent {
            let found = auto.get(&f.pattern).expect("MPPm must find every pattern");
            assert_eq!(found.support, f.support);
        }
    }

    #[test]
    fn estimated_n_is_sound() {
        // n must be at least the true longest frequent length no(rho):
        // Theorem 2 guarantees no length-k frequent pattern exists for
        // any k the estimate rejects.
        let s = uniform(&mut StdRng::seed_from_u64(22), Alphabet::Dna, 150);
        let g = gap(1, 2);
        let rho = 0.0005;
        let worst = mpp(&s, g, rho, g.l1(150), MppConfig::default()).unwrap();
        let no = worst.longest_len();
        let (n, em) = estimate_n(&s, g, rho, 5, MppConfig::default()).unwrap();
        assert!(n >= no, "estimated n = {n} below true longest {no}");
        assert!(em >= 1);
    }

    #[test]
    fn estimates_are_sound_and_bounded_for_every_m() {
        // For any m, the estimate must cover the true longest frequent
        // length and never exceed l1 (λ′ tightens differently per m, and
        // is not monotone in m when k − 3 < m, so only soundness and the
        // l1 cap are invariant).
        let s = uniform(&mut StdRng::seed_from_u64(23), Alphabet::Dna, 400);
        let g = gap(2, 4);
        let rho = 0.002;
        let no = mpp(&s, g, rho, g.l1(400), MppConfig::default())
            .unwrap()
            .longest_len();
        for m in [1, 2, 4, 6] {
            let (n, _) = estimate_n(&s, g, rho, m, MppConfig::default()).unwrap();
            assert!(n >= no.max(3), "m = {m}: n = {n} below longest {no}");
            assert!(n <= g.l1(400), "m = {m}: n = {n} above l1");
        }
    }

    #[test]
    fn stats_record_em() {
        let s = uniform(&mut StdRng::seed_from_u64(24), Alphabet::Dna, 150);
        let g = gap(1, 2);
        let outcome = mppm(&s, g, 0.001, 3, MppConfig::default()).unwrap();
        assert!(outcome.stats.em.is_some());
        assert!(outcome.stats.n_used >= 3);
    }

    #[test]
    fn dfs_engine_matches_bfs_engine() {
        let s = uniform(&mut StdRng::seed_from_u64(26), Alphabet::Dna, 300);
        let g = gap(1, 3);
        let rho = 0.0008;
        let bfs = mppm(&s, g, rho, 4, MppConfig::default()).unwrap();
        for threads in [1usize, 4] {
            let dfs = mppm_dfs(&s, g, rho, 4, MppConfig::default(), threads).unwrap();
            assert_eq!(bfs.frequent, dfs.frequent, "threads = {threads}");
            assert_eq!(bfs.stats.n_used, dfs.stats.n_used);
            assert_eq!(bfs.stats.em, dfs.stats.em);
        }
    }

    #[test]
    fn m_zero_is_rejected() {
        let s = uniform(&mut StdRng::seed_from_u64(25), Alphabet::Dna, 100);
        assert!(matches!(
            mppm(&s, gap(1, 2), 0.01, 0, MppConfig::default()),
            Err(MineError::InvalidM(0))
        ));
    }

    #[test]
    fn short_sequence_with_no_windows_still_mines() {
        // L admits length-3 patterns but no length-(m+1) e_m window:
        // e_m clamps to 1 and mining proceeds.
        let s = Sequence::dna("ACGTACGTACGTACG").unwrap(); // L = 15
        let g = gap(3, 4);
        // m = 4 needs span 1 + 5·4 = 21 > 15.
        let outcome = mppm(&s, g, 0.01, 4, MppConfig::default()).unwrap();
        assert_eq!(outcome.stats.em, Some(1));
    }
}
