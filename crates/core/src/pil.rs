//! The Partial Index List (PIL) — the paper's support-counting
//! structure (Section 5.1).
//!
//! `PIL(P)` is a list of `(x, y)` pairs meaning: exactly `y` offset
//! sequences of the form `[x, c2, …, cl]` match `P` against `S`. Two
//! properties make it the workhorse of the miner:
//!
//! 1. `sup(P)` is the sum of all `y` — no offset sequences are ever
//!    enumerated;
//! 2. `PIL(P)` is computable from `PIL(prefix(P))` and
//!    `PIL(suffix(P))` alone, so candidate supports come from joining
//!    their parents' lists instead of rescanning the sequence.
//!
//! The join here improves on the paper's quadratic pseudo-code with a
//! sliding-window sum over the sorted suffix list (`O(|A| + |B|)`).
//!
//! ## Performance notes
//!
//! This type is the public, per-pattern view. The miners do not
//! traverse `HashMap<Pattern, Pil>` internally: generations live in the
//! arena-backed [`crate::arena::PilSet`] (one contiguous entry buffer
//! per generation, patterns as packed integer keys during seeding — see
//! [`crate::packed::KeyCodec`]), and [`Pil::build_all`] is a conversion
//! shell over that engine. [`Pil::join`] short-circuits when either
//! side is empty and pre-reserves the output from the overlap span of
//! the two lists under the gap window (at most one entry per prefix
//! offset, and none for prefix offsets whose window cannot reach the
//! suffix range).
//!
//! ## Two layouts
//!
//! Occurrence lists come in two physical representations:
//!
//! * **sparse** — the sorted `(offset, count)` pairs of [`Pil`], joined
//!   by the sliding-window merge in [`join_into`] /
//!   [`join_multi_into`]: `O(|A| + |B|)` with two monotone cursors.
//! * **dense** — [`DensePil`], an exclusive prefix-sum array over the
//!   occupied offset span, joined by [`join_dense_into`]: one O(1)
//!   subtraction per prefix offset, `O(|A|)` regardless of `|B|` or the
//!   window width, at the cost of `span + 1` words of memory and an
//!   `O(span)` build.
//!
//! The dense build amortizes across every prefix sharing the suffix
//! (the run-local fan-out of candidate generation), which is why the
//! engines cache it per suffix — see [`crate::adaptive::ReprCache`] for
//! the occupancy-based policy that picks a side per list.

use crate::gap::GapRequirement;
use crate::pattern::Pattern;
use perigap_seq::Sequence;
use std::collections::HashMap;

/// Micro-counters for the join path, accumulated by every join kernel
/// into a caller-owned struct (plain `u64` adds — no atomics, no
/// overhead when the totals are discarded). The engines aggregate one
/// of these per level and surface it through
/// [`crate::trace::LevelEvent`], making the per-level join cost
/// attributable without an external profiler.
///
/// Semantics:
/// - `joins` — join kernel invocations (one per candidate, or one per
///   partner for the batched kernel).
/// - `probed` — probe positions scanned: left offsets examined after
///   overlap clipping (× partners for the batched kernel) plus suffix
///   entries absorbed into sliding windows. The dense and SIMD probe
///   kernels count the same clipped left offsets, so the counter is
///   kernel-invariant for a fixed representation; sparse and dense
///   counts differ by construction.
/// - `reallocs` — output-buffer growth events observed across a kernel
///   call (a lower bound on the allocator's actual reallocations).
/// - `bytes_moved` — bytes of live buffer content at each observed
///   growth event (the payload a reallocation must copy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinCounters {
    /// Join kernel invocations.
    pub joins: u64,
    /// Probe positions scanned (see type docs for the exact rule).
    pub probed: u64,
    /// Observed output-buffer growth events.
    pub reallocs: u64,
    /// Bytes of live content at each observed growth event.
    pub bytes_moved: u64,
}

impl JoinCounters {
    /// Fold `other` into `self` (saturating — these are diagnostics).
    pub fn absorb(&mut self, other: &JoinCounters) {
        self.joins = self.joins.saturating_add(other.joins);
        self.probed = self.probed.saturating_add(other.probed);
        self.reallocs = self.reallocs.saturating_add(other.reallocs);
        self.bytes_moved = self.bytes_moved.saturating_add(other.bytes_moved);
    }

    /// Record a growth event on `out` if its capacity changed since
    /// `cap_before` was sampled.
    #[inline]
    pub(crate) fn note_growth(&mut self, out: &Vec<(u32, u64)>, cap_before: usize) {
        if out.capacity() != cap_before {
            self.reallocs += 1;
            self.bytes_moved = self
                .bytes_moved
                .saturating_add((out.len() * std::mem::size_of::<(u32, u64)>()) as u64);
        }
    }
}

/// Partial index list: `(first offset, count)` pairs, strictly
/// ascending in offset. Offsets are 1-based as in the paper.
///
/// Per-entry counts are `u64` (an entry counts offset sequences that
/// share a first offset — bounded by `W^(l-1)`, far below `u64::MAX`
/// for any minable configuration; the arithmetic saturates rather than
/// wraps in the adversarial corner). [`Pil::support`] widens to `u128`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Pil {
    entries: Vec<(u32, u64)>,
}

impl Pil {
    /// An empty list (support 0).
    pub fn new() -> Pil {
        Pil::default()
    }

    /// Build from raw entries.
    ///
    /// # Panics
    /// Panics if offsets are not strictly ascending or a count is zero.
    pub fn from_entries(entries: Vec<(u32, u64)>) -> Pil {
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "PIL offsets must be strictly ascending"
        );
        assert!(
            entries.iter().all(|&(_, y)| y > 0),
            "PIL counts must be positive"
        );
        Pil { entries }
    }

    /// Internal constructor for entries already known to be valid
    /// (produced by the scan or a join).
    pub(crate) fn from_raw(entries: Vec<(u32, u64)>) -> Pil {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(entries.iter().all(|&(_, y)| y > 0));
        Pil { entries }
    }

    /// The `(x, y)` pairs.
    pub fn entries(&self) -> &[(u32, u64)] {
        &self.entries
    }

    /// Number of distinct first offsets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the pattern has no matches.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Property 1: `sup(P)` is the sum of the counts.
    ///
    /// The fold widens to `u128` before summing, so it cannot clamp for
    /// any physically representable list (< 2³² entries of ≤ 2⁶⁴ each);
    /// the saturation risk lives in the per-entry `u64` counts, which
    /// the mining engines track via `MineStats::support_saturated`.
    pub fn support(&self) -> u128 {
        self.entries
            .iter()
            .fold(0u128, |acc, &(_, y)| acc.saturating_add(y as u128))
    }

    /// `PIL` of a single-character pattern: every occurrence position
    /// with count 1.
    pub fn build_level1(seq: &Sequence, code: u8) -> Pil {
        let entries = seq
            .codes()
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == code)
            .map(|(i, _)| ((i + 1) as u32, 1u64))
            .collect();
        Pil { entries }
    }

    /// Property 2 (the paper's procedure, linear-time variant): compute
    /// `PIL(P)` from `PIL(prefix(P))` and `PIL(suffix(P))`.
    ///
    /// For each `(x, ·)` in the prefix list, `y = Σ y'` over suffix
    /// entries with `x' − x − 1 ∈ [N, M]`. Both lists are ascending, so
    /// the admissible window `[x+N+1, x+M+1]` advances monotonically and
    /// a running window sum suffices.
    ///
    /// ```
    /// use perigap_core::{GapRequirement, Pattern, Pil};
    /// use perigap_seq::{Alphabet, Sequence};
    ///
    /// // The paper's Section 5.1 example: S = AACCGTT, gap [1,2].
    /// let s = Sequence::dna("AACCGTT")?;
    /// let gap = GapRequirement::new(1, 2)?;
    /// let level2 = Pil::build_all(&s, gap, 2);
    /// let ac = Pattern::parse("AC", &Alphabet::Dna)?;
    /// let ct = Pattern::parse("CT", &Alphabet::Dna)?;
    /// let act = Pil::join(&level2[&ac], &level2[&ct], gap);
    /// assert_eq!(act.entries(), &[(1, 3), (2, 2)]);
    /// assert_eq!(act.support(), 5);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn join(prefix: &Pil, suffix: &Pil, gap: GapRequirement) -> Pil {
        Pil::join_checked(prefix, suffix, gap).0
    }

    /// [`Pil::join`] with the saturation flag surfaced: the second
    /// element is `true` when the running window sum clamped at
    /// `u64::MAX`, making the returned counts lower bounds rather than
    /// exact. Callers that compare supports (the reference engine, the
    /// verifiers) must check it instead of silently trusting clamped
    /// counts.
    pub fn join_checked(prefix: &Pil, suffix: &Pil, gap: GapRequirement) -> (Pil, bool) {
        if prefix.is_empty() || suffix.is_empty() {
            return (Pil::new(), false);
        }
        let mut out = Vec::with_capacity(overlap_reserve(&prefix.entries, &suffix.entries, gap));
        let saturated = join_into(
            &prefix.entries,
            &suffix.entries,
            gap,
            &mut out,
            &mut JoinCounters::default(),
        );
        (Pil { entries: out }, saturated)
    }

    /// [`Pil::join_checked`] evaluated through the dense prefix-sum
    /// kernel ([`DensePil`] + [`join_dense_into`]). Falls back to the
    /// sparse kernel when the suffix cannot be densified (empty list, or
    /// total count overflowing `u64` — the only configurations where the
    /// sparse kernel can saturate), so the result is bit-identical to
    /// `join_checked` in every case, saturation flag included.
    pub fn join_dense(prefix: &Pil, suffix: &Pil, gap: GapRequirement) -> (Pil, bool) {
        if prefix.is_empty() || suffix.is_empty() {
            return (Pil::new(), false);
        }
        match DensePil::build(&suffix.entries) {
            Some(dense) => {
                let mut out =
                    Vec::with_capacity(overlap_reserve(&prefix.entries, &suffix.entries, gap));
                join_dense_into(
                    &prefix.entries,
                    &dense,
                    gap,
                    &mut out,
                    &mut JoinCounters::default(),
                );
                (Pil { entries: out }, false)
            }
            None => Pil::join_checked(prefix, suffix, gap),
        }
    }

    /// Build `PIL(P)` for every length-`level` pattern that occurs in
    /// `seq` at all, by a single scan with `level − 1` nested gap steps
    /// (`O(L · W^(level−1))` work). Patterns with empty PILs are absent
    /// from the map.
    ///
    /// This is how the miner seeds level 3 ("scan S to compute the PILs
    /// of all patterns in C3", Figure 3 line 9).
    ///
    /// # Panics
    /// Panics if `level == 0`.
    pub fn build_all(seq: &Sequence, gap: GapRequirement, level: usize) -> HashMap<Pattern, Pil> {
        crate::arena::build_seed(seq, gap, level, crate::kernel::Kernel::Auto.resolve())
            .into_pil_map()
    }
}

/// The contiguous run of prefix offsets whose gap window `[x + N + 1,
/// x + M + 1]` intersects the suffix's occupied offset range
/// `[b_first, b_last]` — only those can produce output. Offsets are
/// ascending, so the contributors form one run `a[from..to]`; every
/// join kernel clips its left scan to it (probing the smaller,
/// contributing side instead of the whole prefix list) and every
/// reserve derives from its length.
#[inline]
pub(crate) fn overlap_range(
    a: &[(u32, u64)],
    b_first: u64,
    b_last: u64,
    gap: GapRequirement,
) -> (usize, usize) {
    let min_step = gap.min_step() as u64;
    let max_step = gap.max_step() as u64;
    let from = a.partition_point(|&(x, _)| (x as u64) + max_step < b_first);
    let to = a.partition_point(|&(x, _)| (x as u64) + min_step <= b_last);
    (from, to.max(from))
}

/// Tight pre-reserve for a join: the length of the overlap run (see
/// [`overlap_range`]) — at most one output entry per contributing
/// prefix offset. Disjoint ranges reserve zero. Both lists must be
/// non-empty.
fn overlap_reserve(a: &[(u32, u64)], b: &[(u32, u64)], gap: GapRequirement) -> usize {
    let (from, to) = overlap_range(a, b[0].0 as u64, b[b.len() - 1].0 as u64, gap);
    to - from
}

/// The dense PIL layout: per-offset counts over the occupied offset
/// span, stored as an exclusive prefix-sum array so any gap window
/// collapses to one subtraction.
///
/// `psum[i]` holds the total count at offsets below `base + i`
/// (`psum.len() == span + 1`), so the window sum over offset positions
/// `[p, q)` is `psum[q − base] − psum[p − base]` once both positions
/// are clamped into `[base, base + span]`.
///
/// Construction fails when the total count does not fit in `u64`.
/// Every gap window is a sub-range of the total, so a buildable dense
/// list can never overflow a window sum — which is exactly what keeps
/// the dense kernel bit-identical to the sparse one: whenever the
/// sparse kernel could saturate, `build` returns `None` and the caller
/// stays on the sparse path with its exact saturation tracking.
#[derive(Clone, Debug)]
pub struct DensePil {
    /// First occupied offset.
    base: u64,
    /// Exclusive prefix sums over the span; `len == span + 1`.
    psum: Vec<u64>,
    /// Optional windowed sums for the SIMD probe kernel:
    /// `wsum[i] = psum[min(i + width, span)] − psum[i]`, so an interior
    /// probe is a single load instead of two. Built only on request
    /// ([`DensePil::build_windowed`]) because it doubles the memory and
    /// is specific to one gap width.
    wsum: Option<(u64, Vec<u64>)>,
}

impl DensePil {
    /// Build from sparse entries (strictly ascending offsets). Returns
    /// `None` for an empty list or when the total count overflows
    /// `u64`.
    pub fn build(entries: &[(u32, u64)]) -> Option<DensePil> {
        let (&(first, _), &(last, _)) = (entries.first()?, entries.last()?);
        let base = first as u64;
        let span = (last as u64 - base) as usize + 1;
        let mut psum = vec![0u64; span + 1];
        for &(x, y) in entries {
            psum[(x as u64 - base) as usize + 1] = y;
        }
        let mut acc: u64 = 0;
        for slot in psum.iter_mut() {
            acc = acc.checked_add(*slot)?;
            *slot = acc;
        }
        Some(DensePil {
            base,
            psum,
            wsum: None,
        })
    }

    /// [`DensePil::build`] plus the windowed-sum array for `gap`'s
    /// window width, enabling the single-load SIMD probe. Same `None`
    /// conditions as `build`.
    pub fn build_windowed(entries: &[(u32, u64)], gap: GapRequirement) -> Option<DensePil> {
        let mut dense = DensePil::build(entries)?;
        let span = dense.span();
        let width = (gap.max_step() - gap.min_step() + 1) as u64;
        let psum = &dense.psum;
        let wsum = (0..=span)
            .map(|i| psum[(i + width as usize).min(span)] - psum[i])
            .collect();
        dense.wsum = Some((width, wsum));
        Some(dense)
    }

    /// Occupied offset span (number of dense slots).
    pub fn span(&self) -> usize {
        self.psum.len() - 1
    }

    /// Heap bytes held by the prefix-sum (and any windowed-sum) array.
    pub fn bytes(&self) -> usize {
        let wsum = match &self.wsum {
            Some((_, w)) => w.len(),
            None => 0,
        };
        (self.psum.len() + wsum) * std::mem::size_of::<u64>()
    }

    /// First occupied offset (the dense array's origin).
    pub(crate) fn base(&self) -> u64 {
        self.base
    }

    /// The exclusive prefix sums (`len == span + 1`).
    pub(crate) fn psum(&self) -> &[u64] {
        &self.psum
    }

    /// The windowed sums, if built, with the window width they encode.
    pub(crate) fn wsum(&self) -> Option<(u64, &[u64])> {
        self.wsum.as_ref().map(|(w, v)| (*w, v.as_slice()))
    }
}

/// The prefix-sum window probe: for each prefix offset `x` the count is
/// `psum[hi(x)] − psum[lo(x)]` with `[lo, hi)` the gap window clamped
/// into the suffix's occupied span — an O(1) probe per offset replacing
/// the sliding-window merge. Appends to `out` exactly like
/// [`join_into`] and never saturates (see [`DensePil::build`]).
///
/// The left scan is clipped to the overlap run (see [`overlap_range`])
/// and the output reserve is the run's length, not the whole prefix —
/// offsets outside the run probe a zero-width window, so skipping them
/// changes nothing but the work done. The probe arithmetic runs over
/// exact-width chunks (`chunks_exact` into a fixed-size lane buffer) so
/// LLVM vectorizes the clamp/subtract sequence; output compaction is
/// branch-free — unconditional write, conditional index advance — then
/// one truncate.
pub fn join_dense_into(
    a: &[(u32, u64)],
    b: &DensePil,
    gap: GapRequirement,
    out: &mut Vec<(u32, u64)>,
    counters: &mut JoinCounters,
) {
    const LANES: usize = 8;
    counters.joins += 1;
    let end = b.base + b.span() as u64;
    // `end` is one past the last occupied offset (it indexes psum);
    // the overlap clip wants the occupied range itself.
    let (from, to) = overlap_range(a, b.base, end - 1, gap);
    let a = &a[from..to];
    if a.is_empty() {
        return;
    }
    counters.probed += a.len() as u64;
    let min_step = gap.min_step() as u64;
    let max_step = gap.max_step() as u64;
    let base = b.base;
    let psum = b.psum.as_slice();
    let start = out.len();
    let cap_before = out.capacity();
    out.resize(start + a.len(), (0, 0));
    let dst = &mut out[start..];
    let mut k = 0usize;
    let mut sums = [0u64; LANES];
    let mut chunks = a.chunks_exact(LANES);
    for chunk in chunks.by_ref() {
        for (s, &(x, _)) in sums.iter_mut().zip(chunk) {
            let lo = (x as u64 + min_step).clamp(base, end) - base;
            let hi = (x as u64 + max_step + 1).clamp(base, end) - base;
            *s = psum[hi as usize] - psum[lo as usize];
        }
        for (&(x, _), &w) in chunk.iter().zip(sums.iter()) {
            dst[k] = (x, w);
            k += (w > 0) as usize;
        }
    }
    for &(x, _) in chunks.remainder() {
        let lo = (x as u64 + min_step).clamp(base, end) - base;
        let hi = (x as u64 + max_step + 1).clamp(base, end) - base;
        let w = psum[hi as usize] - psum[lo as usize];
        dst[k] = (x, w);
        k += (w > 0) as usize;
    }
    out.truncate(start + k);
    counters.note_growth(out, cap_before);
}

/// The sliding-window join core, appending to a caller-owned buffer so
/// the arena engine can write a whole generation into one allocation.
/// See [`Pil::join`] for the algorithm.
///
/// Returns `true` when the running window sum hit `u64::MAX`: from that
/// point the emitted counts are lower bounds, not exact (and later
/// window subtractions can only drift further below the true value).
/// Callers that report supports must surface the flag — the arena
/// engine ORs it into [`crate::arena::PilSet`] and the miners raise
/// `MineStats::support_saturated`.
pub(crate) fn join_into(
    a: &[(u32, u64)],
    b: &[(u32, u64)],
    gap: GapRequirement,
    out: &mut Vec<(u32, u64)>,
    counters: &mut JoinCounters,
) -> bool {
    counters.joins += 1;
    if a.is_empty() || b.is_empty() {
        return false;
    }
    // Clip the left scan to the overlap run: offsets outside it have an
    // empty window and can only burn cycles.
    let (from, to) = overlap_range(a, b[0].0 as u64, b[b.len() - 1].0 as u64, gap);
    let a = &a[from..to];
    if a.is_empty() {
        return false;
    }
    let cap_before = out.capacity();
    let (mut lo, mut hi) = (0usize, 0usize); // window is b[lo..hi]
    let mut window: u64 = 0;
    let mut saturated = false;
    for &(x, _) in a {
        let min_pos = x as u64 + gap.min_step() as u64;
        let max_pos = x as u64 + gap.max_step() as u64;
        while hi < b.len() && (b[hi].0 as u64) <= max_pos {
            window = match window.checked_add(b[hi].1) {
                Some(w) => w,
                None => {
                    saturated = true;
                    u64::MAX
                }
            };
            hi += 1;
        }
        while lo < hi && (b[lo].0 as u64) < min_pos {
            // Saturating: once the window has clamped, the running sum
            // sits below the true total and an exact subtraction could
            // wrap through zero.
            window = window.saturating_sub(b[lo].1);
            lo += 1;
        }
        if window > 0 {
            out.push((x, window));
        }
    }
    counters.probed += (a.len() + hi) as u64;
    counters.note_growth(out, cap_before);
    saturated
}

/// Reusable cursor state for [`join_multi_into`]: per-partner window
/// bounds and running sums in struct-of-arrays layout so the inner
/// advance loop touches three dense arrays instead of scattered
/// per-partner structs.
#[derive(Default)]
pub struct MultiJoinScratch {
    lo: Vec<usize>,
    hi: Vec<usize>,
    window: Vec<u64>,
    /// Per-partner occupied ranges (`b_first`, `b_last`), so the shared
    /// left walk can skip a partner outside its own overlap run.
    first: Vec<u64>,
    last: Vec<u64>,
    /// Output capacities sampled at call entry, for realloc counting.
    caps: Vec<usize>,
    /// Per-partner saturation flags from the most recent call.
    pub saturated: Vec<bool>,
}

impl MultiJoinScratch {
    fn reset(&mut self, partners: usize) {
        self.lo.clear();
        self.lo.resize(partners, 0);
        self.hi.clear();
        self.hi.resize(partners, 0);
        self.window.clear();
        self.window.resize(partners, 0);
        self.first.clear();
        self.last.clear();
        self.caps.clear();
        self.saturated.clear();
        self.saturated.resize(partners, false);
    }
}

/// Batched multi-suffix join: one fixed left parent `a` joined against
/// every list in `partners` simultaneously. The left entries are walked
/// once; each partner keeps its own monotone window `[lo_j, hi_j)` over
/// its entries, so the left scan and the per-offset window arithmetic
/// are amortized across every candidate that shares the parent (the
/// run-local fan-out of the DFS engine). Output `j` is written into
/// `outs[j]` (cleared first) and `scratch.saturated[j]` carries the
/// same flag [`join_into`] returns. Results are entry-for-entry
/// identical to calling `join_into(a, partners[j], gap, ..)` per `j`.
pub fn join_multi_into(
    a: &[(u32, u64)],
    partners: &[&[(u32, u64)]],
    gap: GapRequirement,
    outs: &mut [Vec<(u32, u64)>],
    scratch: &mut MultiJoinScratch,
    counters: &mut JoinCounters,
) {
    debug_assert_eq!(partners.len(), outs.len());
    counters.joins += partners.len() as u64;
    scratch.reset(partners.len());
    scratch.caps.extend(outs.iter().map(|o| o.capacity()));
    for out in outs.iter_mut() {
        out.clear();
    }
    // Clip the shared left scan to the union of the partners' occupied
    // ranges; inside it, each partner is skipped while the current
    // offset sits outside its *own* overlap run. The skip is what keeps
    // this batched walk bit-identical to per-partner [`join_into`]
    // calls: an out-of-run offset's window is empty either way, but
    // letting it advance the window would absorb entries in a different
    // order and could saturate the running sum where the per-partner
    // clipped walk never does.
    let (b_first, b_last) = partners
        .iter()
        .filter(|b| !b.is_empty())
        .fold((u64::MAX, 0u64), |(lo, hi), b| {
            (lo.min(b[0].0 as u64), hi.max(b[b.len() - 1].0 as u64))
        });
    if a.is_empty() || b_first > b_last {
        return;
    }
    for b in partners {
        // Empty partners keep the impossible (MAX, 0) range, so the
        // skip test below rejects every offset for them.
        scratch
            .first
            .push(b.first().map_or(u64::MAX, |e| e.0 as u64));
        scratch.last.push(b.last().map_or(0, |e| e.0 as u64));
    }
    let (from, to) = overlap_range(a, b_first, b_last, gap);
    let a = &a[from..to];
    let min_step = gap.min_step() as u64;
    let max_step = gap.max_step() as u64;
    let mut scanned = 0u64;
    for &(x, _) in a {
        let min_pos = x as u64 + min_step;
        let max_pos = x as u64 + max_step;
        for (j, b) in partners.iter().enumerate() {
            if max_pos < scratch.first[j] || min_pos > scratch.last[j] {
                continue;
            }
            scanned += 1;
            let mut hi = scratch.hi[j];
            let mut lo = scratch.lo[j];
            let mut window = scratch.window[j];
            while hi < b.len() && (b[hi].0 as u64) <= max_pos {
                window = match window.checked_add(b[hi].1) {
                    Some(w) => w,
                    None => {
                        scratch.saturated[j] = true;
                        u64::MAX
                    }
                };
                hi += 1;
            }
            while lo < hi && (b[lo].0 as u64) < min_pos {
                // Saturating for the same reason as `join_into`: a
                // clamped window sits below the true total.
                window = window.saturating_sub(b[lo].1);
                lo += 1;
            }
            if window > 0 {
                outs[j].push((x, window));
            }
            scratch.hi[j] = hi;
            scratch.lo[j] = lo;
            scratch.window[j] = window;
        }
    }
    let absorbed: usize = scratch.hi.iter().sum();
    counters.probed += scanned + absorbed as u64;
    for (out, &cap) in outs.iter().zip(&scratch.caps) {
        if out.capacity() != cap {
            counters.reallocs += 1;
            counters.bytes_moved = counters
                .bytes_moved
                .saturating_add((out.len() * std::mem::size_of::<(u32, u64)>()) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::support_dp;
    use perigap_seq::Alphabet;

    fn pat(text: &str) -> Pattern {
        Pattern::parse(text, &Alphabet::Dna).unwrap()
    }

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    #[test]
    fn paper_pil_example() {
        // Section 5.1: S = AACCGTT, P = ACT, [N,M] = [1,2] →
        // PIL(P) = {(1,3), (2,2)}, sup(P) = 5.
        let s = Sequence::dna("AACCGTT").unwrap();
        let g = gap(1, 2);
        let pils = Pil::build_all(&s, g, 3);
        let pil = &pils[&pat("ACT")];
        assert_eq!(pil.entries(), &[(1, 3), (2, 2)]);
        assert_eq!(pil.support(), 5);
    }

    #[test]
    fn level1_lists_occurrences() {
        let s = Sequence::dna("ACAAC").unwrap();
        let pil = Pil::build_level1(&s, 0); // A
        assert_eq!(pil.entries(), &[(1, 1), (3, 1), (4, 1)]);
        assert_eq!(pil.support(), 3);
        let none = Pil::build_level1(&s, 3); // T
        assert!(none.is_empty());
    }

    #[test]
    fn join_reproduces_paper_procedure() {
        // Build PIL(ACT) from PIL(AC) and PIL(CT) on the paper's input.
        let s = Sequence::dna("AACCGTT").unwrap();
        let g = gap(1, 2);
        let level2 = Pil::build_all(&s, g, 2);
        let joined = Pil::join(&level2[&pat("AC")], &level2[&pat("CT")], g);
        let direct = &Pil::build_all(&s, g, 3)[&pat("ACT")];
        assert_eq!(&joined, direct);
    }

    #[test]
    fn join_chain_matches_dp_oracle() {
        use perigap_seq::gen::iid::uniform;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = uniform(&mut StdRng::seed_from_u64(3), Alphabet::Dna, 300);
        let g = gap(2, 5);
        let level3 = Pil::build_all(&s, g, 3);
        // Join up to length 5 two different ways and check against DP.
        for text in ["ACGTA", "AAAAA", "TGCAT", "CCCGG"] {
            let p = pat(text);
            let p123 = pat(&text[0..3]);
            let p234 = pat(&text[1..4]);
            let p345 = pat(&text[2..5]);
            let empty = Pil::new();
            let pil_1234 = Pil::join(
                level3.get(&p123).unwrap_or(&empty),
                level3.get(&p234).unwrap_or(&empty),
                g,
            );
            let pil_2345 = Pil::join(
                level3.get(&p234).unwrap_or(&empty),
                level3.get(&p345).unwrap_or(&empty),
                g,
            );
            let pil = Pil::join(&pil_1234, &pil_2345, g);
            assert_eq!(pil.support(), support_dp(&s, g, &p), "pattern {text}");
        }
    }

    #[test]
    fn build_all_matches_dp_for_every_pattern() {
        use perigap_seq::gen::iid::uniform;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = uniform(&mut StdRng::seed_from_u64(4), Alphabet::Dna, 150);
        let g = gap(1, 3);
        for level in 1..=3 {
            let pils = Pil::build_all(&s, g, level);
            let mut total_patterns = 0;
            for (p, pil) in &pils {
                assert_eq!(pil.support(), support_dp(&s, g, p), "level {level}");
                total_patterns += 1;
            }
            assert!(total_patterns <= 4usize.pow(level as u32));
        }
    }

    #[test]
    fn join_with_empty_is_empty() {
        let s = Sequence::dna("AACCGTT").unwrap();
        let g = gap(1, 2);
        let a = Pil::build_level1(&s, 0);
        assert!(Pil::join(&a, &Pil::new(), g).is_empty());
        assert!(Pil::join(&Pil::new(), &a, g).is_empty());
    }

    #[test]
    fn join_respects_gap_window() {
        // A at 1, C at 3 and 7; gap [1,2] admits only position 3.
        let s = Sequence::dna("ATCATTC").unwrap();
        let g = gap(1, 2);
        let a = Pil::build_level1(&s, 0);
        let c = Pil::build_level1(&s, 1);
        let ac = Pil::join(&a, &c, g);
        assert_eq!(ac.entries(), &[(1, 1), (4, 1)]);
    }

    #[test]
    fn from_entries_validates() {
        assert!(std::panic::catch_unwind(|| Pil::from_entries(vec![(3, 1), (2, 1)])).is_err());
        assert!(std::panic::catch_unwind(|| Pil::from_entries(vec![(1, 0)])).is_err());
        let ok = Pil::from_entries(vec![(1, 2), (5, 1)]);
        assert_eq!(ok.support(), 3);
    }

    #[test]
    fn support_sums_counts() {
        let pil = Pil::from_entries(vec![(1, 3), (2, 2)]);
        assert_eq!(pil.support(), 5);
        assert_eq!(Pil::new().support(), 0);
    }

    #[test]
    fn join_checked_surfaces_saturation() {
        // One left offset whose window spans two counts that overflow
        // u64 when summed: the count clamps and the flag must say so.
        let a = Pil::from_entries(vec![(1, 1)]);
        let b = Pil::from_entries(vec![(3, u64::MAX), (4, 5)]);
        let g = gap(1, 5);
        let (joined, saturated) = Pil::join_checked(&a, &b, g);
        assert!(saturated, "overflowing window sum must raise the flag");
        assert_eq!(joined.entries(), &[(1, u64::MAX)]);
        // Non-overflowing joins keep the flag clear.
        let c = Pil::from_entries(vec![(3, 7)]);
        let (joined, saturated) = Pil::join_checked(&a, &c, g);
        assert!(!saturated);
        assert_eq!(joined.support(), 7);
        // Pil::join stays the unchecked view of the same result.
        assert_eq!(Pil::join(&a, &b, g).entries(), &[(1, u64::MAX)]);
    }

    #[test]
    fn multi_join_matches_single_joins() {
        use perigap_seq::gen::iid::uniform;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // A shared-parent run: one left PIL joined against every
        // level-2 PIL of a random sequence, batched vs one-at-a-time.
        let s = uniform(&mut StdRng::seed_from_u64(11), Alphabet::Dna, 400);
        for (n, m) in [(0, 0), (1, 2), (2, 5), (0, 9)] {
            let g = gap(n, m);
            let level2 = Pil::build_all(&s, g, 2);
            let mut pils: Vec<&Pil> = level2.values().collect();
            pils.sort_by_key(|p| p.entries().first().copied());
            let left = pils[0];
            let partners: Vec<&[(u32, u64)]> = pils.iter().map(|p| p.entries()).collect();
            let mut outs = vec![Vec::new(); partners.len()];
            let mut scratch = MultiJoinScratch::default();
            let mut jc = JoinCounters::default();
            join_multi_into(
                left.entries(),
                &partners,
                g,
                &mut outs,
                &mut scratch,
                &mut jc,
            );
            assert_eq!(jc.joins, partners.len() as u64);
            for (j, b) in partners.iter().enumerate() {
                let mut expect = Vec::new();
                let saturated = join_into(
                    left.entries(),
                    b,
                    g,
                    &mut expect,
                    &mut JoinCounters::default(),
                );
                assert_eq!(outs[j], expect, "partner {j} under gap [{n}, {m}]");
                assert_eq!(scratch.saturated[j], saturated);
            }
        }
    }

    #[test]
    fn join_reserve_is_tight_on_disjoint_ranges() {
        // Prefix offsets far above the suffix range: no gap window can
        // reach back, so the join must not pre-allocate at all.
        let a = Pil::from_entries((1000..1100).map(|x| (x, 1u64)).collect());
        let b = Pil::from_entries(vec![(1, 5), (2, 3)]);
        let g = gap(1, 3);
        let (joined, saturated) = Pil::join_checked(&a, &b, g);
        assert!(joined.is_empty());
        assert!(!saturated);
        assert_eq!(joined.entries.capacity(), 0, "disjoint join over-allocated");
        // Suffix far above every prefix window: same result.
        let (joined, _) = Pil::join_checked(&b, &a, gap(0, 2));
        assert!(joined.is_empty());
        assert_eq!(joined.entries.capacity(), 0);
        // Partial overlap reserves only the contributing run, not the
        // whole prefix.
        let wide = Pil::from_entries((1..=100).map(|x| (x, 1u64)).collect());
        let narrow = Pil::from_entries(vec![(50, 1)]);
        let (joined, _) = Pil::join_checked(&wide, &narrow, gap(0, 1));
        assert_eq!(joined.entries(), &[(48, 1), (49, 1)]);
        assert!(
            joined.entries.capacity() < wide.len(),
            "overlap reserve must beat the prefix-length bound"
        );
    }

    #[test]
    fn dense_build_and_probe_match_sparse_join() {
        use perigap_seq::gen::iid::uniform;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = uniform(&mut StdRng::seed_from_u64(12), Alphabet::Dna, 500);
        for (n, m) in [(0, 0), (1, 2), (2, 5), (0, 9), (7, 30)] {
            let g = gap(n, m);
            let level2 = Pil::build_all(&s, g, 2);
            let mut pils: Vec<&Pil> = level2.values().collect();
            pils.sort_by_key(|p| p.entries().first().copied());
            for a in &pils {
                for b in &pils {
                    let sparse = Pil::join_checked(a, b, g);
                    let dense = Pil::join_dense(a, b, g);
                    assert_eq!(sparse, dense, "gap [{n}, {m}]");
                }
            }
        }
    }

    #[test]
    fn dense_probe_handles_chunk_boundaries() {
        // Left lengths straddling the 8-lane chunking: 7 (remainder
        // only), 8 (one exact chunk), 9 (chunk + remainder).
        let b = Pil::from_entries(vec![(5, 2), (7, 3), (12, 1)]);
        let g = gap(0, 4);
        for len in [1u32, 7, 8, 9, 16, 17] {
            let a = Pil::from_entries((1..=len).map(|x| (x, 1u64)).collect());
            assert_eq!(
                Pil::join_dense(&a, &b, g),
                Pil::join_checked(&a, &b, g),
                "left length {len}"
            );
        }
    }

    #[test]
    fn dense_build_refuses_overflowing_totals() {
        // Window sums can overflow u64 only when the total does; build
        // must refuse so the caller stays on the saturation-exact
        // sparse kernel.
        let entries = vec![(3u32, u64::MAX), (4u32, 5u64)];
        assert!(DensePil::build(&entries).is_none());
        assert!(DensePil::build(&[]).is_none());
        // join_dense therefore reproduces the sparse saturation corner
        // bit-for-bit, flag included.
        let a = Pil::from_entries(vec![(1, 1)]);
        let b = Pil::from_entries(entries);
        let g = gap(1, 5);
        assert_eq!(Pil::join_dense(&a, &b, g), Pil::join_checked(&a, &b, g));
        assert!(Pil::join_dense(&a, &b, g).1, "fallback keeps the flag");
    }

    #[test]
    fn dense_probe_appends_like_join_into() {
        // join_dense_into must append after existing content, matching
        // the arena engine's contract with join_into.
        let a: Vec<(u32, u64)> = vec![(1, 1), (4, 2)];
        let b: Vec<(u32, u64)> = vec![(3, 5), (6, 7)];
        let g = gap(1, 2);
        let dense = DensePil::build(&b).unwrap();
        assert_eq!(dense.span(), 4);
        assert_eq!(dense.bytes(), 5 * 8);
        let mut out = vec![(99, 99)];
        join_dense_into(&a, &dense, g, &mut out, &mut JoinCounters::default());
        let mut expect = vec![(99, 99)];
        join_into(&a, &b, g, &mut expect, &mut JoinCounters::default());
        assert_eq!(out, expect);
    }

    #[test]
    fn dense_probe_reserve_uses_overlap_span() {
        // The dense kernel used to resize the output to the whole
        // prefix length; it must now reserve (and scan) only the
        // overlap run. Disjoint ranges: no allocation at all.
        let a: Vec<(u32, u64)> = (1000..1100).map(|x| (x, 1u64)).collect();
        let b = vec![(1u32, 5u64), (2, 3)];
        let dense = DensePil::build(&b).unwrap();
        let g = gap(1, 3);
        let mut out = Vec::new();
        let mut jc = JoinCounters::default();
        join_dense_into(&a, &dense, g, &mut out, &mut jc);
        assert!(out.is_empty());
        assert_eq!(out.capacity(), 0, "disjoint dense join over-allocated");
        assert_eq!(jc.probed, 0, "no left offset can contribute");
        // Partial overlap: capacity bounded by the contributing run,
        // not the prefix length.
        let wide: Vec<(u32, u64)> = (1..=100).map(|x| (x, 1u64)).collect();
        let narrow = vec![(50u32, 1u64)];
        let dense = DensePil::build(&narrow).unwrap();
        let g = gap(0, 1);
        let mut out = Vec::new();
        let mut jc = JoinCounters::default();
        join_dense_into(&wide, &dense, g, &mut out, &mut jc);
        assert_eq!(out, vec![(48, 1), (49, 1)]);
        assert!(
            out.capacity() < wide.len(),
            "dense reserve must beat the prefix-length bound"
        );
        assert_eq!(jc.probed, 2, "scan clipped to the overlap run");
        assert_eq!(jc.joins, 1);
    }

    #[test]
    fn counters_track_joins_probes_and_growth() {
        let a: Vec<(u32, u64)> = (1..=64).map(|x| (x, 1u64)).collect();
        let b: Vec<(u32, u64)> = (1..=64).map(|x| (x, 2u64)).collect();
        let g = gap(0, 4);
        let mut jc = JoinCounters::default();
        let mut out = Vec::new();
        join_into(&a, &b, g, &mut out, &mut jc);
        assert_eq!(jc.joins, 1);
        // Overlap clipping drops x = 64 (its window starts past the
        // suffix range), so 63 left offsets scan and all 64 suffix
        // entries are absorbed into the window.
        assert_eq!(jc.probed, 63 + 64);
        assert!(jc.reallocs >= 1, "unreserved output must grow");
        assert!(jc.bytes_moved > 0);
        // A pre-reserved output records no growth.
        let mut jc2 = JoinCounters::default();
        let mut out2 = Vec::with_capacity(64);
        join_into(&a, &b, g, &mut out2, &mut jc2);
        assert_eq!(jc2.reallocs, 0);
        assert_eq!(jc2.bytes_moved, 0);
        assert_eq!(out, out2);
        // absorb folds totals.
        jc.absorb(&jc2);
        assert_eq!(jc.joins, 2);
    }

    #[test]
    fn windowed_build_matches_probe_layout() {
        let entries: Vec<(u32, u64)> = vec![(5, 2), (7, 3), (12, 1), (20, 4)];
        let g = gap(1, 4);
        let plain = DensePil::build(&entries).unwrap();
        let wide = DensePil::build_windowed(&entries, g).unwrap();
        assert_eq!(plain.span(), wide.span());
        assert_eq!(wide.bytes(), 2 * plain.bytes(), "wsum doubles the array");
        let (width, wsum) = wide.wsum().unwrap();
        assert_eq!(width, 4, "gap [1,4] admits 4 window positions");
        let psum = wide.psum();
        let span = wide.span();
        for i in 0..=span {
            assert_eq!(wsum[i], psum[(i + width as usize).min(span)] - psum[i]);
        }
        assert!(plain.wsum().is_none());
        // The saturation refusal carries over.
        assert!(DensePil::build_windowed(&[(1, u64::MAX), (2, 5)], g).is_none());
    }

    #[test]
    fn multi_join_saturation_is_per_partner() {
        let left: Vec<(u32, u64)> = vec![(1, 1), (2, 1)];
        let hot: Vec<(u32, u64)> = vec![(3, u64::MAX), (4, 2)];
        let cold: Vec<(u32, u64)> = vec![(3, 9)];
        let g = gap(0, 5);
        let mut outs = vec![Vec::new(), Vec::new()];
        let mut scratch = MultiJoinScratch::default();
        let mut jc = JoinCounters::default();
        join_multi_into(&left, &[&hot, &cold], g, &mut outs, &mut scratch, &mut jc);
        assert_eq!(scratch.saturated, vec![true, false]);
        assert_eq!(outs[1], vec![(1, 9), (2, 9)]);
        // Scratch reuse across calls must fully reset the cursors.
        join_multi_into(&left, &[&cold], g, &mut outs[..1], &mut scratch, &mut jc);
        assert_eq!(scratch.saturated, vec![false]);
        assert_eq!(outs[0], vec![(1, 9), (2, 9)]);
    }
}
