//! Independent verification of mining outcomes.
//!
//! The miner's support counts flow through PIL joins; this module
//! re-derives them with the (slow, obviously-correct) position DP and
//! checks the threshold arithmetic, giving downstream users a
//! one-call audit of any result they are about to publish.

use crate::counts::OffsetCounts;
use crate::gap::GapRequirement;
use crate::lambda::PruneBound;
use crate::naive::support_dp;
use crate::pattern::Pattern;
use crate::pil::Pil;
use crate::result::MineOutcome;
use perigap_math::BigRatio;
use perigap_seq::Sequence;

/// A discrepancy found while verifying an outcome.
#[derive(Clone, Debug, PartialEq)]
pub enum Discrepancy {
    /// The recorded support does not match an independent recount.
    SupportMismatch {
        /// The pattern's shorthand character codes.
        pattern: Vec<u8>,
        /// Support recorded in the outcome.
        recorded: u128,
        /// Support recomputed by the position DP.
        recomputed: u128,
    },
    /// A reported pattern does not actually meet the threshold.
    BelowThreshold {
        /// The pattern's shorthand character codes.
        pattern: Vec<u8>,
        /// Its (verified) support.
        support: u128,
    },
    /// A reported ratio is inconsistent with `support / N_l`.
    RatioMismatch {
        /// The pattern's shorthand character codes.
        pattern: Vec<u8>,
        /// Ratio recorded in the outcome.
        recorded: f64,
        /// Recomputed ratio.
        recomputed: f64,
    },
}

/// Recount `sup(P)` by folding [`Pil::join_checked`] right-to-left
/// over the level-1 occurrence lists (the join only needs the *first*
/// characters' positions on the left, so single-character prefixes
/// suffice). Returns the support and whether any join's window sum
/// saturated — in which case the count is a lower bound, not exact.
pub fn support_via_joins(seq: &Sequence, gap: GapRequirement, pattern: &Pattern) -> (u128, bool) {
    let codes = pattern.codes();
    let Some((&last, rest)) = codes.split_last() else {
        return (0, false);
    };
    let mut pil = Pil::build_level1(seq, last);
    let mut saturated = false;
    for &c in rest.iter().rev() {
        let (joined, s) = Pil::join_checked(&Pil::build_level1(seq, c), &pil, gap);
        saturated |= s;
        pil = joined;
    }
    (pil.support(), saturated)
}

/// Re-verify every pattern of `outcome` against `seq`: recount supports
/// with the naive DP *and* a [`Pil::join_checked`] chain (two
/// independent counters must agree unless the join saturated), re-apply
/// the exact threshold test, and recheck ratios. Returns all
/// discrepancies (empty = verified).
pub fn verify_outcome(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    outcome: &MineOutcome,
) -> Vec<Discrepancy> {
    let counts = OffsetCounts::new(seq.len(), gap);
    let rho_exact = BigRatio::from_f64_exact(rho);
    let mut problems = Vec::new();
    for f in &outcome.frequent {
        let recomputed = support_dp(seq, gap, &f.pattern);
        let (rejoined, join_saturated) = support_via_joins(seq, gap, &f.pattern);
        if recomputed != f.support || (!join_saturated && rejoined != recomputed) {
            problems.push(Discrepancy::SupportMismatch {
                pattern: f.pattern.codes().to_vec(),
                recorded: f.support,
                recomputed,
            });
            continue;
        }
        let bound = PruneBound::exact(&counts, &rho_exact, f.len());
        if !bound.admits_u128(recomputed) {
            problems.push(Discrepancy::BelowThreshold {
                pattern: f.pattern.codes().to_vec(),
                support: recomputed,
            });
        }
        let expected_ratio = recomputed as f64 / counts.n_f64(f.len());
        if (expected_ratio - f.ratio).abs() > 1e-9 * expected_ratio.max(1e-300) {
            problems.push(Discrepancy::RatioMismatch {
                pattern: f.pattern.codes().to_vec(),
                recorded: f.ratio,
                recomputed: expected_ratio,
            });
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpp::MppConfig;
    use crate::mppm::mppm;
    use crate::pattern::Pattern;
    use crate::result::FrequentPattern;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_outcome_verifies() {
        let seq = uniform(&mut StdRng::seed_from_u64(61), Alphabet::Dna, 200);
        let gap = GapRequirement::new(1, 3).unwrap();
        let rho = 0.001;
        let outcome = mppm(&seq, gap, rho, 3, MppConfig::default()).unwrap();
        assert!(!outcome.frequent.is_empty());
        assert!(verify_outcome(&seq, gap, rho, &outcome).is_empty());
    }

    #[test]
    fn tampered_support_is_caught() {
        let seq = uniform(&mut StdRng::seed_from_u64(62), Alphabet::Dna, 150);
        let gap = GapRequirement::new(1, 2).unwrap();
        let rho = 0.002;
        let mut outcome = mppm(&seq, gap, rho, 3, MppConfig::default()).unwrap();
        outcome.frequent[0].support += 1;
        let problems = verify_outcome(&seq, gap, rho, &outcome);
        assert!(matches!(problems[0], Discrepancy::SupportMismatch { .. }));
    }

    #[test]
    fn smuggled_infrequent_pattern_is_caught() {
        let seq = uniform(&mut StdRng::seed_from_u64(63), Alphabet::Dna, 150);
        let gap = GapRequirement::new(1, 2).unwrap();
        let rho = 0.002;
        let mut outcome = mppm(&seq, gap, rho, 3, MppConfig::default()).unwrap();
        // Inject a pattern with its true (but sub-threshold) support.
        let counts = OffsetCounts::new(seq.len(), gap);
        let sigma = 4u8;
        let mut smuggled = None;
        'outer: for a in 0..sigma {
            for b in 0..sigma {
                for c in 0..sigma {
                    for d in 0..sigma {
                        let p = Pattern::from_codes(vec![a, b, c, d]);
                        if outcome.get(&p).is_none() {
                            let sup = support_dp(&seq, gap, &p);
                            smuggled = Some(FrequentPattern {
                                ratio: sup as f64 / counts.n_f64(4),
                                pattern: p,
                                support: sup,
                            });
                            break 'outer;
                        }
                    }
                }
            }
        }
        outcome
            .frequent
            .push(smuggled.expect("some length-4 pattern is infrequent"));
        let problems = verify_outcome(&seq, gap, rho, &outcome);
        assert!(problems
            .iter()
            .any(|d| matches!(d, Discrepancy::BelowThreshold { .. })));
    }

    #[test]
    fn join_recount_matches_dp() {
        let seq = uniform(&mut StdRng::seed_from_u64(65), Alphabet::Dna, 250);
        let gap = GapRequirement::new(0, 3).unwrap();
        for text in ["A", "ACG", "TTTT", "ACGTA"] {
            let p = Pattern::parse(text, &Alphabet::Dna).unwrap();
            let (sup, saturated) = support_via_joins(&seq, gap, &p);
            assert!(!saturated, "{text}");
            assert_eq!(sup, support_dp(&seq, gap, &p), "{text}");
        }
    }

    #[test]
    fn tampered_ratio_is_caught() {
        let seq = uniform(&mut StdRng::seed_from_u64(64), Alphabet::Dna, 150);
        let gap = GapRequirement::new(1, 2).unwrap();
        let rho = 0.002;
        let mut outcome = mppm(&seq, gap, rho, 3, MppConfig::default()).unwrap();
        outcome.frequent[0].ratio *= 2.0;
        let problems = verify_outcome(&seq, gap, rho, &outcome);
        assert!(matches!(problems[0], Discrepancy::RatioMismatch { .. }));
    }
}
