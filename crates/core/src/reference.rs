//! The *seed* implementations of seeding and mining, preserved
//! verbatim in spirit: byte-vector pattern keys, a `HashMap` per
//! generation, a `Vec` allocated per candidate, and per-level thread
//! spawns.
//!
//! These are **not** used by the production engine
//! ([`crate::mpp::mpp`] / [`crate::parallel::mpp_parallel`] run on the
//! packed-key arena in `crate::arena`). They exist so that
//!
//! 1. differential tests (`tests/prop_engine.rs`) can assert the new
//!    engine agrees with the historical one on arbitrary inputs, and
//! 2. the bench harness can print honest before/after numbers from a
//!    single binary.
//!
//! The one mechanical deviation from the seed: the per-level fan-out
//! uses `std::thread::scope` instead of `crossbeam::scope` (the
//! dependency was dropped), which does not change the work performed
//! per level — threads are still spawned and torn down at every level,
//! which is exactly the overhead the persistent pool removes.

use crate::counts::OffsetCounts;
use crate::error::MineError;
use crate::gap::GapRequirement;
use crate::lambda::PruneBound;
use crate::mpp::{prepare, MppConfig};
use crate::pattern::Pattern;
use crate::pil::Pil;
use crate::result::{FrequentPattern, LevelStats, MineOutcome, MineStats};
use perigap_seq::Sequence;
use std::collections::HashMap;
use std::time::Instant;

/// Same threshold as the production engine, so the comparison isolates
/// engine structure rather than tuning.
const PARALLEL_THRESHOLD: usize = 256;

/// The seed `Pil::build_all`: scan every start offset, heap-allocating
/// a fresh `Vec<u8>` key per scan event and hashing it into a map.
pub fn build_all_reference(
    seq: &Sequence,
    gap: GapRequirement,
    level: usize,
) -> HashMap<Pattern, Pil> {
    assert!(level >= 1, "level must be at least 1");
    let mut map: HashMap<Vec<u8>, Vec<(u32, u64)>> = HashMap::new();
    let len = seq.len();
    let mut chars = Vec::with_capacity(level);
    for start in 1..=len {
        chars.clear();
        chars.push(seq.at1(start));
        scan_rec(seq, gap, level, start, &mut chars, &mut |codes| {
            let entries = map.entry(codes.to_vec()).or_default();
            match entries.last_mut() {
                Some(last) if last.0 == start as u32 => {
                    last.1 = last.1.saturating_add(1);
                }
                _ => entries.push((start as u32, 1)),
            }
        });
    }
    map.into_iter()
        .map(|(codes, entries)| (Pattern::from_codes(codes), Pil::from_raw(entries)))
        .collect()
}

fn scan_rec(
    seq: &Sequence,
    gap: GapRequirement,
    level: usize,
    pos: usize,
    chars: &mut Vec<u8>,
    sink: &mut impl FnMut(&[u8]),
) {
    if chars.len() == level {
        sink(chars);
        return;
    }
    for step in gap.steps() {
        let next = pos + step;
        if next > seq.len() {
            break;
        }
        chars.push(seq.at1(next));
        scan_rec(seq, gap, level, next, chars, sink);
        chars.pop();
    }
}

/// The seed `mpp_parallel`: `HashMap` pipeline, per-candidate `Vec`
/// allocation, and a fresh thread spawn per level. Byte-identical
/// output to [`crate::parallel::mpp_parallel`]; slower machinery.
pub fn mpp_reference(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    n: usize,
    config: MppConfig,
    threads: usize,
) -> Result<MineOutcome, MineError> {
    assert!(threads >= 1, "need at least one thread");
    let started = Instant::now();
    let (counts, rho_exact) = prepare(seq, gap, rho, &config)?;
    let pils = build_all_reference(seq, gap, config.start_level);
    let mut outcome = run_reference(seq, &counts, &rho_exact, n, &config, pils, threads);
    outcome.stats.total_elapsed = started.elapsed();
    Ok(outcome)
}

fn run_reference(
    seq: &Sequence,
    counts: &OffsetCounts,
    rho: &perigap_math::BigRatio,
    n: usize,
    config: &MppConfig,
    seed_pils: HashMap<Pattern, Pil>,
    threads: usize,
) -> MineOutcome {
    let gap = counts.gap();
    let sigma = seq.alphabet().size() as u128;
    let start = config.start_level;
    let n = n.clamp(start, counts.l1().max(start));
    let hard_cap = config.max_level.unwrap_or(usize::MAX).min(counts.l2());

    let mut stats = MineStats {
        n_used: n,
        ..MineStats::default()
    };
    let mut frequent: Vec<FrequentPattern> = Vec::new();
    let mut current: Vec<(Pattern, Pil)> = seed_pils.into_iter().collect();
    // Deterministic processing order regardless of HashMap iteration.
    current.sort_by(|a, b| a.0.codes().cmp(b.0.codes()));
    let mut level = start;
    let mut candidates_at_level: u128 = sigma.saturating_pow(start as u32);

    while level <= hard_cap {
        let level_started = Instant::now();
        if counts.n(level).is_zero() {
            break;
        }
        let exact_bound = PruneBound::exact(counts, rho, level);
        let lhat_bound = if level < n {
            PruneBound::theorem1(counts, rho, n, n - level)
        } else {
            exact_bound.clone()
        };
        let n_l_f64 = counts.n_f64(level);

        let mut kept: Vec<(Pattern, Pil)> = Vec::new();
        let mut frequent_here = 0usize;
        for (pattern, pil) in current.drain(..) {
            let sup = pil.support();
            if exact_bound.admits_u128(sup) {
                frequent.push(FrequentPattern {
                    pattern: pattern.clone(),
                    support: sup,
                    ratio: sup as f64 / n_l_f64,
                });
                frequent_here += 1;
            }
            if lhat_bound.admits_u128(sup) {
                kept.push((pattern, pil));
            }
        }
        let extended = kept.len();
        let push_stats = |stats: &mut MineStats, elapsed| {
            stats.levels.push(LevelStats {
                level,
                candidates: candidates_at_level,
                frequent: frequent_here,
                extended,
                elapsed,
            });
        };
        if kept.is_empty() || level == hard_cap {
            push_stats(&mut stats, level_started.elapsed());
            break;
        }

        // Join phase, fanned out with a fresh spawn per level.
        let mut by_prefix: HashMap<&[u8], Vec<usize>> = HashMap::new();
        for (idx, (pattern, _)) in kept.iter().enumerate() {
            by_prefix
                .entry(&pattern.codes()[..pattern.len() - 1])
                .or_default()
                .push(idx);
        }
        let (next, joins_saturated): (Vec<(Pattern, Pil)>, bool) =
            if threads <= 1 || kept.len() < PARALLEL_THRESHOLD {
                join_range(&kept, &by_prefix, gap, 0, kept.len())
            } else {
                let workers = threads.min(kept.len());
                let chunk = kept.len().div_ceil(workers);
                let kept_ref = &kept;
                let by_prefix_ref = &by_prefix;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let lo = w * chunk;
                            let hi = ((w + 1) * chunk).min(kept_ref.len());
                            scope.spawn(move || join_range(kept_ref, by_prefix_ref, gap, lo, hi))
                        })
                        .collect();
                    let mut merged = Vec::new();
                    let mut saturated = false;
                    for h in handles {
                        let (part, s) = h.join().expect("join worker panicked");
                        merged.extend(part);
                        saturated |= s;
                    }
                    (merged, saturated)
                })
            };
        stats.support_saturated |= joins_saturated;
        push_stats(&mut stats, level_started.elapsed());
        candidates_at_level = next.len() as u128;
        if next.is_empty() {
            break;
        }
        current = next;
        level += 1;
    }

    let mut outcome = MineOutcome { frequent, stats };
    outcome.sort();
    outcome
}

/// Generate the candidates whose *left parent* index lies in
/// `lo..hi` — a disjoint partition of the join work. The second
/// element reports whether any join's window sum saturated
/// ([`Pil::join_checked`]), so comparisons against this engine know
/// when its supports are lower bounds.
fn join_range(
    kept: &[(Pattern, Pil)],
    by_prefix: &HashMap<&[u8], Vec<usize>>,
    gap: GapRequirement,
    lo: usize,
    hi: usize,
) -> (Vec<(Pattern, Pil)>, bool) {
    let mut out = Vec::new();
    let mut saturated = false;
    for (p1, pil1) in &kept[lo..hi] {
        if let Some(partners) = by_prefix.get(&p1.codes()[1..]) {
            for &idx in partners {
                let (p2, pil2) = &kept[idx];
                let candidate = p1.join(p2).expect("overlap holds by construction");
                let (pil, s) = Pil::join_checked(pil1, pil2, gap);
                saturated |= s;
                out.push((candidate, pil));
            }
        }
    }
    (out, saturated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::mpp_parallel;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    #[test]
    fn reference_build_all_matches_engine() {
        let seq = uniform(&mut StdRng::seed_from_u64(7), Alphabet::Dna, 300);
        let g = gap(0, 3);
        let reference = build_all_reference(&seq, g, 3);
        let engine = Pil::build_all(&seq, g, 3);
        assert_eq!(reference.len(), engine.len());
        for (pattern, pil) in &reference {
            assert_eq!(engine.get(pattern), Some(pil), "{pattern:?}");
        }
    }

    #[test]
    fn reference_miner_matches_engine() {
        let seq = uniform(&mut StdRng::seed_from_u64(8), Alphabet::Dna, 400);
        let g = gap(1, 3);
        let rho = 0.0008;
        for threads in [1usize, 4] {
            let old = mpp_reference(&seq, g, rho, 12, MppConfig::default(), threads).unwrap();
            let new = mpp_parallel(&seq, g, rho, 12, MppConfig::default(), threads).unwrap();
            assert_eq!(old.frequent.len(), new.frequent.len());
            for (a, b) in old.frequent.iter().zip(&new.frequent) {
                assert_eq!(a.pattern, b.pattern);
                assert_eq!(a.support, b.support);
                assert!((a.ratio - b.ratio).abs() < 1e-12);
            }
        }
    }
}
