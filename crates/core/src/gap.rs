//! Gap requirements: the `[N, M]` wild-card range between consecutive
//! pattern characters.

use crate::error::MineError;

/// A gap requirement `g(N, M)`: between two consecutive pattern
/// characters there must be between `N` and `M` wild-cards (inclusive).
///
/// In offset terms, consecutive offsets satisfy
/// `c(j+1) − c(j) − 1 ∈ [N, M]`, i.e. the *step* `c(j+1) − c(j)` lies in
/// `[N+1, M+1]`.
///
/// ```
/// use perigap_core::GapRequirement;
///
/// // The paper's standard configuration: one DNA helical turn.
/// let gap = GapRequirement::new(9, 12)?;
/// assert_eq!(gap.flexibility(), 4);           // W = M − N + 1
/// assert_eq!(gap.l1(1000), 77);               // longest fully-fitting length
/// assert_eq!(gap.min_span(3), 2 * 9 + 3);     // (l−1)·N + l
/// # Ok::<(), perigap_core::MineError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GapRequirement {
    min: usize,
    max: usize,
}

impl GapRequirement {
    /// Build a gap requirement `[N, M]`.
    ///
    /// `N ≤ M` is required; `N = M` (a rigid period) is allowed, as is
    /// `N = 0` (adjacent characters permitted).
    pub fn new(min: usize, max: usize) -> Result<GapRequirement, MineError> {
        if min > max {
            return Err(MineError::InvalidGap { min, max });
        }
        Ok(GapRequirement { min, max })
    }

    /// The minimum gap size `N`.
    pub fn min(&self) -> usize {
        self.min
    }

    /// The maximum gap size `M`.
    pub fn max(&self) -> usize {
        self.max
    }

    /// The flexibility `W = M − N + 1` (Table 1).
    pub fn flexibility(&self) -> usize {
        self.max - self.min + 1
    }

    /// Smallest admissible offset step `N + 1`.
    pub fn min_step(&self) -> usize {
        self.min + 1
    }

    /// Largest admissible offset step `M + 1`.
    pub fn max_step(&self) -> usize {
        self.max + 1
    }

    /// Whether the gap between two 1-based offsets satisfies the
    /// requirement: `next − prev − 1 ∈ [N, M]`.
    pub fn admits(&self, prev: usize, next: usize) -> bool {
        next > prev && {
            let gap = next - prev - 1;
            gap >= self.min && gap <= self.max
        }
    }

    /// Iterate over the admissible steps `N+1 ..= M+1`.
    pub fn steps(&self) -> std::ops::RangeInclusive<usize> {
        self.min_step()..=self.max_step()
    }

    /// `minspan(l) = (l − 1)·N + l`: fewest subject positions a length-`l`
    /// pattern can span (Table 1).
    pub fn min_span(&self, l: usize) -> usize {
        if l == 0 {
            0
        } else {
            (l - 1) * self.min + l
        }
    }

    /// `maxspan(l) = (l − 1)·M + l`: most subject positions a length-`l`
    /// pattern can span (Table 1).
    pub fn max_span(&self, l: usize) -> usize {
        if l == 0 {
            0
        } else {
            (l - 1) * self.max + l
        }
    }

    /// `l1 = ⌊(L + M)/(M + 1)⌋`: length of the longest pattern whose
    /// *maximum* span fits in a length-`L` sequence (Table 1).
    pub fn l1(&self, sequence_len: usize) -> usize {
        (sequence_len + self.max) / (self.max + 1)
    }

    /// `l2 = ⌊(L + N)/(N + 1)⌋`: length of the longest pattern whose
    /// *minimum* span fits in a length-`L` sequence (Table 1).
    pub fn l2(&self, sequence_len: usize) -> usize {
        (sequence_len + self.min) / (self.min + 1)
    }
}

impl std::fmt::Display for GapRequirement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let g = GapRequirement::new(9, 12).unwrap();
        assert_eq!(g.min(), 9);
        assert_eq!(g.max(), 12);
        assert_eq!(g.flexibility(), 4);
        assert_eq!(g.to_string(), "[9, 12]");
        assert!(GapRequirement::new(5, 4).is_err());
        // Rigid gap is fine.
        assert_eq!(GapRequirement::new(3, 3).unwrap().flexibility(), 1);
    }

    #[test]
    fn paper_flexibility_example() {
        // Section 4: gap [4,6] has flexibility 3; first char at j allows
        // the next at j+5, j+6, j+7.
        let g = GapRequirement::new(4, 6).unwrap();
        assert_eq!(g.flexibility(), 3);
        let steps: Vec<usize> = g.steps().collect();
        assert_eq!(steps, vec![5, 6, 7]);
        assert!(g.admits(1, 6));
        assert!(g.admits(1, 8));
        assert!(!g.admits(1, 5));
        assert!(!g.admits(1, 9));
        assert!(!g.admits(6, 1));
    }

    #[test]
    fn span_formulas() {
        // Section 4: with gap [3,4] a length-3 pattern spans at least 9.
        let g = GapRequirement::new(3, 4).unwrap();
        assert_eq!(g.min_span(3), 9);
        assert_eq!(g.max_span(3), 11);
        assert_eq!(g.min_span(1), 1);
        assert_eq!(g.max_span(1), 1);
        assert_eq!(g.min_span(0), 0);
    }

    #[test]
    fn l1_l2_paper_values() {
        // L = 1000, [9,12]: l1 = ⌊1012/13⌋ = 77 (paper Section 6),
        // l2 = ⌊1009/10⌋ = 100.
        let g = GapRequirement::new(9, 12).unwrap();
        assert_eq!(g.l1(1000), 77);
        assert_eq!(g.l2(1000), 100);
        assert!(g.l2(1000) >= g.l1(1000));
    }

    #[test]
    fn l1_l2_are_maximal() {
        let g = GapRequirement::new(9, 12).unwrap();
        let l1 = g.l1(1000);
        assert!(g.max_span(l1) <= 1000);
        assert!(g.max_span(l1 + 1) > 1000);
        let l2 = g.l2(1000);
        assert!(g.min_span(l2) <= 1000);
        assert!(g.min_span(l2 + 1) > 1000);
    }

    #[test]
    fn zero_gap_allows_adjacent() {
        let g = GapRequirement::new(0, 2).unwrap();
        assert!(g.admits(1, 2));
        assert_eq!(g.min_span(3), 3);
    }
}
