//! Asynchronous periodic patterns in the Yang–Wang–Yu style — the
//! time-series related work of Section 2.
//!
//! Their model fixes a period `p` and mines patterns that repeat
//! *contiguously* for stretches of at least `min_rep` cycles, allowing
//! the pattern's phase to shift between stretches as long as each
//! disturbance is at most `max_dis` characters long. The output for a
//! pattern is its **longest valid subsequence**: the longest run of
//! chained stretches.
//!
//! A pattern here is one period's template: `p` slots, each a solid
//! character or a wild-card (at least one solid). As in the original
//! paper, candidate templates come from the frequent single-position
//! singletons; unlike the paper's flexible-gap model, the period is
//! hard — which is exactly the contrast worth demonstrating (see the
//! `repro extensions` discussion of model trade-offs).

use crate::error::MineError;
use perigap_seq::Sequence;

/// One period template: `slots[i]` constrains position `i` of a cycle.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CycleTemplate {
    slots: Vec<Option<u8>>,
}

impl CycleTemplate {
    /// Build from slots.
    ///
    /// # Panics
    /// Panics if every slot is a wild-card or the template is empty.
    pub fn new(slots: Vec<Option<u8>>) -> CycleTemplate {
        assert!(!slots.is_empty(), "template needs a period of at least 1");
        assert!(
            slots.iter().any(Option::is_some),
            "template needs a solid position"
        );
        CycleTemplate { slots }
    }

    /// A single-solid template: character `code` at `offset` within a
    /// period of `p`.
    pub fn singleton(p: usize, offset: usize, code: u8) -> CycleTemplate {
        assert!(offset < p, "offset must fall inside the period");
        let mut slots = vec![None; p];
        slots[offset] = Some(code);
        CycleTemplate { slots }
    }

    /// The period `p`.
    pub fn period(&self) -> usize {
        self.slots.len()
    }

    /// Number of solid positions.
    pub fn solid_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Does one cycle starting at 0-based `start` match?
    fn matches_cycle(&self, seq: &Sequence, start: usize) -> bool {
        if start + self.period() > seq.len() {
            return false;
        }
        let codes = seq.codes();
        self.slots
            .iter()
            .enumerate()
            .all(|(i, slot)| slot.is_none_or(|c| codes[start + i] == c))
    }

    /// Render like `"a**t"` (wild-cards as `*`, matching the Yang
    /// paper's notation).
    pub fn display(&self, alphabet: &perigap_seq::Alphabet) -> String {
        self.slots
            .iter()
            .map(|s| match s {
                Some(c) => alphabet.letter(*c).to_ascii_lowercase() as char,
                None => '*',
            })
            .collect()
    }
}

impl std::fmt::Debug for CycleTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text: String = self
            .slots
            .iter()
            .map(|s| match s {
                Some(c) => (b'0' + *c) as char,
                None => '*',
            })
            .collect();
        write!(f, "CycleTemplate({text})")
    }
}

/// A maximal valid subsequence for one template.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidSubsequence {
    /// 0-based start of the first matched cycle.
    pub start: usize,
    /// 0-based position one past the last matched cycle.
    pub end: usize,
    /// Total matched cycles across all stretches.
    pub repetitions: usize,
}

impl ValidSubsequence {
    /// Span in characters.
    pub fn span(&self) -> usize {
        self.end - self.start
    }
}

/// The longest valid subsequence of `template` in `seq`: chains of
/// contiguous match stretches (each ≥ `min_rep` cycles), consecutive
/// stretches separated by at most `max_dis` characters. Returns `None`
/// when no stretch reaches `min_rep`.
///
/// Two-phase, like the original algorithm: first find the maximal
/// contiguous stretches per phase alignment, then chain compatible
/// stretches by a quadratic DP (stretch counts are tiny in practice).
pub fn longest_valid_subsequence(
    seq: &Sequence,
    template: &CycleTemplate,
    min_rep: usize,
    max_dis: usize,
) -> Option<ValidSubsequence> {
    assert!(min_rep >= 1, "min_rep must be at least 1");
    let p = template.period();
    if seq.len() < p {
        return None;
    }
    // Phase 1: for each phase alignment, maximal runs of matching
    // cycles. A stretch at start s with k cycles covers [s, s + k·p).
    let mut stretches: Vec<(usize, usize)> = Vec::new(); // (start, cycles)
    for phase in 0..p {
        let mut start = phase;
        let mut run = 0usize;
        let mut pos = phase;
        while pos + p <= seq.len() {
            if template.matches_cycle(seq, pos) {
                if run == 0 {
                    start = pos;
                }
                run += 1;
            } else if run > 0 {
                if run >= min_rep {
                    stretches.push((start, run));
                }
                run = 0;
            }
            pos += p;
        }
        if run >= min_rep {
            stretches.push((start, run));
        }
    }
    if stretches.is_empty() {
        return None;
    }
    stretches.sort_unstable();

    // Phase 2: chain stretches by DP over the stretch list. A stretch
    // can follow another when the disturbance between them (the gap
    // from the previous end to its start) is within max_dis; stretches
    // from overlapping phase alignments cover the same characters and
    // cannot both belong to one subsequence, so overlaps do not chain.
    let n = stretches.len();
    let mut best_reps = vec![0usize; n]; // best chain ending at i
    let mut best_start = vec![0usize; n];
    let mut best: Option<ValidSubsequence> = None;
    for i in 0..n {
        let (s, cycles) = stretches[i];
        best_reps[i] = cycles;
        best_start[i] = s;
        for j in 0..i {
            let (sj, cj) = stretches[j];
            let end_j = sj + cj * p;
            if end_j <= s && s - end_j <= max_dis && best_reps[j] + cycles > best_reps[i] {
                best_reps[i] = best_reps[j] + cycles;
                best_start[i] = best_start[j];
            }
        }
        let candidate = ValidSubsequence {
            start: best_start[i],
            end: s + cycles * p,
            repetitions: best_reps[i],
        };
        if best
            .as_ref()
            .is_none_or(|b| candidate.repetitions > b.repetitions)
        {
            best = Some(candidate);
        }
    }
    best
}

/// Mine all singleton templates of period `p` whose longest valid
/// subsequence reaches `min_total` repetitions — the first phase of
/// the Yang algorithm, enough to contrast the model with the paper's.
pub fn mine_singletons(
    seq: &Sequence,
    p: usize,
    min_rep: usize,
    max_dis: usize,
    min_total: usize,
) -> Result<Vec<(CycleTemplate, ValidSubsequence)>, MineError> {
    if p == 0 || p > seq.len() {
        return Err(MineError::SequenceTooShort {
            len: seq.len(),
            needed: p.max(1),
        });
    }
    let sigma = seq.alphabet().size() as u8;
    let mut out = Vec::new();
    for offset in 0..p {
        for code in 0..sigma {
            let template = CycleTemplate::singleton(p, offset, code);
            if let Some(valid) = longest_valid_subsequence(seq, &template, min_rep, max_dis) {
                if valid.repetitions >= min_total {
                    out.push((template, valid));
                }
            }
        }
    }
    out.sort_by_key(|(_, v)| std::cmp::Reverse(v.repetitions));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_seq::{Alphabet, Sequence};

    fn dna(text: &str) -> Sequence {
        Sequence::dna(text).unwrap()
    }

    #[test]
    fn template_construction_and_display() {
        let t = CycleTemplate::singleton(3, 1, 0);
        assert_eq!(t.period(), 3);
        assert_eq!(t.solid_count(), 1);
        assert_eq!(t.display(&Alphabet::Dna), "*a*");
        let full = CycleTemplate::new(vec![Some(0), None, Some(3)]);
        assert_eq!(full.display(&Alphabet::Dna), "a*t");
    }

    #[test]
    #[should_panic(expected = "solid position")]
    fn all_wildcards_panics() {
        let _ = CycleTemplate::new(vec![None, None]);
    }

    #[test]
    fn perfect_periodicity() {
        // ACG repeated 10 times: template "a**" matches every cycle.
        let seq = dna(&"ACG".repeat(10));
        let t = CycleTemplate::singleton(3, 0, 0);
        let v = longest_valid_subsequence(&seq, &t, 2, 0).unwrap();
        assert_eq!(v.start, 0);
        assert_eq!(v.repetitions, 10);
        assert_eq!(v.span(), 30);
    }

    #[test]
    fn disturbance_chains_stretches() {
        // Two ACG blocks separated by 2 noise chars.
        let text = format!("{}TT{}", "ACG".repeat(4), "ACG".repeat(5));
        let seq = dna(&text);
        let t = CycleTemplate::new(vec![Some(0), Some(1), Some(2)]);
        // max_dis 2 chains both stretches: 9 repetitions.
        let v = longest_valid_subsequence(&seq, &t, 2, 2).unwrap();
        assert_eq!(v.repetitions, 9);
        // max_dis 1 cannot bridge: best single stretch is 5.
        let v = longest_valid_subsequence(&seq, &t, 2, 1).unwrap();
        assert_eq!(v.repetitions, 5);
    }

    #[test]
    fn min_rep_filters_short_stretches() {
        let text = format!("{}TTTTTT{}", "ACG".repeat(2), "ACG".repeat(6));
        let seq = dna(&text);
        let t = CycleTemplate::new(vec![Some(0), Some(1), Some(2)]);
        // min_rep 3: the 2-cycle stretch does not count at all.
        let v = longest_valid_subsequence(&seq, &t, 3, 100).unwrap();
        assert_eq!(v.repetitions, 6);
    }

    #[test]
    fn asynchronous_shift_is_tolerated() {
        // The phase shifts by one character mid-sequence — the defining
        // "asynchronous" case: ACG ACG ACG | T | ACG ACG ACG.
        let text = format!("{}T{}", "ACG".repeat(3), "ACG".repeat(3));
        let seq = dna(&text);
        let t = CycleTemplate::new(vec![Some(0), Some(1), Some(2)]);
        let v = longest_valid_subsequence(&seq, &t, 2, 1).unwrap();
        assert_eq!(
            v.repetitions, 6,
            "both phases chain across the 1-char disturbance"
        );
    }

    #[test]
    fn no_match_returns_none() {
        let seq = dna(&"ACG".repeat(5));
        let t = CycleTemplate::singleton(3, 0, 3); // T at offset 0: never
        assert!(longest_valid_subsequence(&seq, &t, 2, 5).is_none());
    }

    #[test]
    fn singleton_mining_ranks_by_repetitions() {
        let seq = dna(&format!("{}{}", "ATT".repeat(12), "GCC".repeat(3)));
        let mined = mine_singletons(&seq, 3, 2, 3, 3).unwrap();
        assert!(!mined.is_empty());
        // The A-at-offset-0 template should lead with 12 repetitions.
        assert_eq!(mined[0].1.repetitions, 12);
        // Sorted non-increasing.
        assert!(mined
            .windows(2)
            .all(|w| w[0].1.repetitions >= w[1].1.repetitions));
        // Degenerate period is rejected.
        assert!(mine_singletons(&seq, 0, 2, 3, 3).is_err());
    }
}
